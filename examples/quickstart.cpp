// Quickstart: schedule a small two-choice request stream online, compare
// against the exact offline optimum, and inspect the loss structure.
//
//   ./quickstart [--n=8] [--d=4] [--load=1.5] [--rounds=200] [--seed=1]
//                [--strategy=A_balance]
#include <iostream>

#include "adversary/random.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  RandomWorkloadOptions options;
  options.n = static_cast<std::int32_t>(args.get_int("n", 8));
  options.d = static_cast<std::int32_t>(args.get_int("d", 4));
  options.load = args.get_double("load", 1.5);
  options.horizon = args.get_int("rounds", 200);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string name = args.get_string("strategy", "A_balance");
  args.finish();

  // 1. Pick a workload (here: uniformly random two-choice requests) ...
  UniformWorkload workload(options);
  // 2. ... and a strategy from the registry (any Table 1 row, the local
  //    protocols, or the EDF baselines).
  auto strategy = make_strategy(name);
  // 3. Run it. The harness replays the realized trace through the exact
  //    offline optimum (Hopcroft–Karp on the full request x slot graph).
  const RunResult result = run_experiment(workload, *strategy);

  std::cout << "strategy   : " << result.strategy << '\n'
            << "workload   : " << result.workload << '\n'
            << "injected   : " << result.metrics.injected << '\n'
            << "fulfilled  : " << result.metrics.fulfilled << '\n'
            << "expired    : " << result.metrics.expired << '\n'
            << "offline OPT: " << result.optimum << '\n'
            << "ratio      : " << result.ratio << "  (OPT / online)\n";

  // 4. The augmenting-path decomposition explains *how* the strategy lost:
  //    each augmenting path of order k is one request OPT serves that the
  //    online run did not, witnessed by a k-request reshuffle.
  std::cout << "aug. paths : " << result.paths.augmenting_paths;
  if (result.paths.augmenting_paths > 0) {
    std::cout << " (min order " << result.paths.min_order << ")";
  }
  std::cout << '\n';
  return 0;
}
