// Distributed scheduling without a central matchmaker.
//
// The global strategies assume someone sees all requests at once. In a real
// distributed data server, clients and disks exchange messages instead; the
// paper's local protocols get within constant factors of the global ones
// using 2 (A_local_fix) or at most 9 (A_local_eager) communication rounds
// per scheduling round. This example measures that trade-off: quality vs
// communication.
//
//   ./distributed_server [--disks=12] [--d=5] [--rounds=300] [--seed=3]
#include <iostream>

#include "adversary/random.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  RandomWorkloadOptions options;
  options.n = static_cast<std::int32_t>(args.get_int("disks", 12));
  options.d = static_cast<std::int32_t>(args.get_int("d", 5));
  options.load = args.get_double("load", 1.5);
  options.horizon = args.get_int("rounds", 300);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  args.finish();

  AsciiTable table({"strategy", "kind", "fulfilled", "ratio",
                    "comm rounds/round", "messages"});
  table.set_title("central matchmaker vs message passing");

  const std::vector<std::pair<std::string, std::string>> lineup = {
      {"A_eager", "global"},       {"A_balance", "global"},
      {"A_fix", "global"},         {"A_local_fix", "local"},
      {"A_local_eager", "local"},  {"EDF_two_choice", "local-ish"},
  };
  for (const auto& [name, kind] : lineup) {
    ZipfWorkload workload(options, 1.1);
    auto strategy = make_strategy(name);
    const RunResult result = run_experiment(workload, *strategy);
    const double comm_per_round =
        result.metrics.rounds == 0
            ? 0.0
            : static_cast<double>(result.metrics.communication_rounds) /
                  static_cast<double>(result.metrics.rounds);
    table.add_row({name, kind, std::to_string(result.metrics.fulfilled),
                   AsciiTable::fmt(result.ratio),
                   AsciiTable::fmt(comm_per_round, 2),
                   std::to_string(result.metrics.messages)});
  }
  table.print(std::cout);
  std::cout << "\nA_local_eager buys most of A_eager's quality for <= 9\n"
               "communication rounds; A_local_fix needs only 2 but inherits\n"
               "the ratio-2 worst case (Theorem 3.7).\n";
  return 0;
}
