// Trace tooling: record a workload to a portable text trace, inspect it,
// and replay it under any strategy — with an optional ASCII timeline of the
// executed schedule. This is how you archive an interesting instance (say,
// one that embarrassed a strategy in production) and re-run it forever.
//
//   # record 60 rounds of bursty traffic
//   ./trace_tool --gen=bursty --n=6 --d=4 --rounds=60 --seed=9 --out=t.trace
//   # what's inside?
//   ./trace_tool --inspect=t.trace
//   # replay under two strategies and draw the schedules
//   ./trace_tool --replay=t.trace --strategy=A_fix --timeline
//   ./trace_tool --replay=t.trace --strategy=A_balance --timeline
#include <fstream>
#include <iostream>

#include "adversary/random.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "analysis/timeline.hpp"
#include "engine/simulator.hpp"
#include "offline/offline.hpp"
#include "util/cli.hpp"

namespace {
using namespace reqsched;

Trace record_workload(IWorkload& workload) {
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  Trace copy(sim.trace().config());
  for (const Request& r : sim.trace().requests()) {
    RequestSpec spec;
    spec.alts = r.alts;
    spec.window = static_cast<std::int32_t>(r.deadline - r.arrival + 1);
    copy.add(r.arrival, spec);
  }
  return copy;
}

int generate(const CliArgs& args) {
  RandomWorkloadOptions options;
  options.n = static_cast<std::int32_t>(args.get_int("n", 6));
  options.d = static_cast<std::int32_t>(args.get_int("d", 4));
  options.load = args.get_double("load", 1.5);
  options.horizon = args.get_int("rounds", 60);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string family = args.get_string("gen", "uniform");
  const std::string out = args.get_string("out", "workload.trace");
  args.finish();

  std::unique_ptr<IWorkload> workload;
  if (family == "uniform") {
    workload = std::make_unique<UniformWorkload>(options);
  } else if (family == "zipf") {
    workload = std::make_unique<ZipfWorkload>(options, 1.2);
  } else if (family == "bursty") {
    workload = std::make_unique<BurstyWorkload>(options, 0.3, 2 * options.n);
  } else if (family == "blockstorm") {
    workload = std::make_unique<BlockStormWorkload>(
        options, 0.5, std::min(options.n, 4));
  } else {
    std::cerr << "unknown --gen family: " << family << '\n';
    return 1;
  }
  const Trace trace = record_workload(*workload);
  std::ofstream file(out);
  trace.save(file);
  std::cout << "wrote " << trace.size() << " requests ("
            << workload->name() << ") to " << out << '\n';
  return 0;
}

int inspect(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  const Trace trace = Trace::load(file);
  std::cout << "trace      : " << path << '\n'
            << "resources  : " << trace.config().n << '\n'
            << "deadline d : " << trace.config().d << '\n'
            << "requests   : " << trace.size() << '\n'
            << "last round : " << trace.last_useful_round() << '\n';
  std::vector<std::int64_t> per_resource(
      static_cast<std::size_t>(trace.config().n), 0);
  for (const Request& r : trace.requests()) {
    for (const ResourceId res : r.alts) {
      ++per_resource[static_cast<std::size_t>(res)];
    }
  }
  std::cout << "alt degree :";
  for (const auto count : per_resource) std::cout << ' ' << count;
  std::cout << '\n';
  return 0;
}

int replay(const CliArgs& args, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  const Trace trace = Trace::load(file);
  const std::string name = args.get_string("strategy", "A_balance");
  const bool timeline = args.get_bool("timeline", false);
  const Round timeline_rounds = args.get_int("timeline-rounds", 78);
  args.finish();
  TraceWorkload workload(trace);
  auto strategy = make_strategy(name);
  Simulator sim(workload, *strategy);
  sim.run();
  std::cout << name << " on " << path << ": fulfilled "
            << sim.metrics().fulfilled << " / " << sim.metrics().injected;
  bool single_round = true;
  for (const Request& r : trace.requests()) {
    single_round &= r.occupancy == 1;
  }
  if (single_round) {
    const std::int64_t opt = offline_optimum(sim.trace());
    std::cout << ", OPT " << opt << ", ratio "
              << (sim.metrics().fulfilled
                      ? static_cast<double>(opt) /
                            static_cast<double>(sim.metrics().fulfilled)
                      : 0.0);
  } else {
    // Multi-round occupancy runs are not bipartite rows; the exact offline
    // optimum is only defined for the single-round model.
    std::cout << ", OPT n/a (trace has occupancy runs)";
  }
  std::cout << '\n';
  if (timeline) {
    TimelineOptions options;
    options.to = std::min<Round>(trace.last_useful_round(),
                                 timeline_rounds - 1);
    std::cout << render_timeline(sim.trace(), sim.online_matching(), options);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  try {
    if (args.has("gen")) return generate(args);
    if (args.has("inspect")) {
      const std::string path = args.get_string("inspect", "");
      args.finish();
      return inspect(path);
    }
    if (args.has("replay")) {
      return replay(args, args.get_string("replay", ""));
    }
  } catch (const ContractViolation& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  // No arguments: demonstrate the full cycle in a temp file.
  std::cout << "demo: record -> inspect -> replay\n";
  const char* demo_argv[] = {"trace_tool", "--gen=blockstorm", "--n=6",
                             "--d=4",      "--rounds=40",      "--seed=5",
                             "--out=/tmp/reqsched_demo.trace"};
  generate(CliArgs(7, demo_argv));
  inspect("/tmp/reqsched_demo.trace");
  const char* replay_argv[] = {"trace_tool", "--strategy=A_balance",
                               "--timeline"};
  return replay(CliArgs(3, replay_argv), "/tmp/reqsched_demo.trace");
}
