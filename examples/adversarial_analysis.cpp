// Adversarial analysis walkthrough: watch a lower-bound construction break a
// strategy, round by round.
//
// Runs the Theorem 2.1 instance against A_fix (scripted with the paper's
// tie-breaking), prints the per-phase bookkeeping, and verifies the measured
// per-phase ratio against the closed form 2 - 1/d.
//
//   ./adversarial_analysis [--d=4] [--phases=6]
#include <cmath>
#include <iostream>

#include "adversary/theorems.hpp"
#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "analysis/timeline.hpp"
#include "engine/simulator.hpp"
#include "offline/offline.hpp"
#include "strategies/scripted.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  const auto d = static_cast<std::int32_t>(args.get_int("d", 4));
  const auto phases = static_cast<std::int32_t>(args.get_int("phases", 6));
  args.finish();

  std::cout << "Theorem 2.1: the adversary beats A_fix with 4 resources.\n"
            << "Per phase: 2d-2 requests lured onto the wrong resources,\n"
            << "then a block(2,d) that finds its slots taken.\n\n";

  AsciiTable table({"phases", "injected", "online", "OPT", "raw ratio"});
  RunResult prev;
  bool have_prev = false;
  for (const std::int32_t p : {phases / 2, phases}) {
    TheoremInstance instance = make_lb_fix(d, p);
    ScriptedStrategy strategy(instance.target, *instance.workload);
    const RunResult result = run_experiment(*instance.workload, strategy);
    REQSCHED_CHECK_MSG(strategy.violations() == 0,
                       "the plan broke the A_fix rules");
    table.add_row({std::to_string(p), std::to_string(result.metrics.injected),
                   std::to_string(result.metrics.fulfilled),
                   std::to_string(result.optimum),
                   AsciiTable::fmt(result.ratio)});
    if (have_prev) {
      const double slope = pairwise_slope_ratio(prev, result);
      table.print(std::cout);
      std::cout << "\nper-phase (startup-free) ratio: "
                << AsciiTable::fmt(slope) << "\n"
                << "theoretical 2 - 1/d           : "
                << AsciiTable::fmt(lb_fix(d).to_double()) << "  ("
                << lb_fix(d) << ")\n";
      REQSCHED_CHECK(std::abs(slope - lb_fix(d).to_double()) < 1e-9);
      std::cout << "match: exact.\n";
    }
    prev = result;
    have_prev = true;
  }

  std::cout << "\nThe raw ratio is below the bound because both sides also\n"
               "serve the startup block — the additive constant alpha that\n"
               "the competitive-ratio definition explicitly allows. The\n"
               "slope between two run lengths cancels it exactly.\n";

  // Draw the first phases: what the trapped A_fix executed, and what the
  // clairvoyant OPT would have done with the same requests.
  {
    TheoremInstance instance = make_lb_fix(d, 2);
    ScriptedStrategy strategy(instance.target, *instance.workload);
    Simulator sim(*instance.workload, strategy);
    sim.run();
    TimelineOptions options;
    options.to = 3 * d;
    std::cout << "\nA_fix's schedule (first two phases; '.' = idle):\n"
              << render_timeline(sim.trace(), sim.online_matching(), options);
    const OfflineResult opt = solve_offline(sim.trace());
    std::vector<std::pair<RequestId, SlotRef>> opt_matching;
    for (RequestId id = 0; id < sim.trace().size(); ++id) {
      const SlotRef slot = opt.assignment[static_cast<std::size_t>(id)];
      if (slot.valid()) opt_matching.emplace_back(id, slot);
    }
    std::cout << "\nthe offline optimum, same requests:\n"
              << render_timeline(sim.trace(), opt_matching, options)
              << "\nUnder A_fix the outer resources S0/S3 stay idle: the\n"
                 "lured groups sat down on S1/S2, and the block that needed\n"
                 "S1/S2 mostly expired. OPT sends the lured groups outward\n"
                 "and keeps S1/S2 for the blocks.\n";
  }
  return 0;
}
