// Video-on-demand data server (the paper's motivating application).
//
// A server farm stores every title twice on different disks (two-choice
// replication, cf. [Kor97]); clients request titles with Zipf popularity
// plus correlated release-day bursts, and every request must start within d
// rounds or the viewer is lost. This example compares the whole strategy
// portfolio on one night of traffic.
//
//   ./video_on_demand [--disks=16] [--d=6] [--rounds=400] [--seed=7]
#include <iostream>

#include "adversary/random.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reqsched;
  const CliArgs args(argc, argv);
  RandomWorkloadOptions options;
  options.n = static_cast<std::int32_t>(args.get_int("disks", 16));
  options.d = static_cast<std::int32_t>(args.get_int("d", 6));
  options.load = args.get_double("load", 1.3);
  options.horizon = args.get_int("rounds", 400);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  args.finish();

  AsciiTable table({"strategy", "fulfilled", "expired", "OPT", "ratio",
                    "lost vs OPT"});
  table.set_title("video-on-demand night: " + std::to_string(options.n) +
                  " disks, deadline " + std::to_string(options.d) +
                  " rounds, bursty Zipf traffic");

  for (const std::string& name : all_strategy_names()) {
    if (name == "EDF_single") continue;  // two-choice workload
    // Two correlated layers: Zipf popularity for the catalogue plus
    // release-day bursts hammering a single title's two replicas.
    BurstyWorkload workload(options, /*burst_probability=*/0.15,
                            /*burst_size=*/3 * options.n);
    auto strategy = make_strategy(name);
    const RunResult result = run_experiment(workload, *strategy);
    table.add_row({name, std::to_string(result.metrics.fulfilled),
                   std::to_string(result.metrics.expired),
                   std::to_string(result.optimum),
                   AsciiTable::fmt(result.ratio),
                   std::to_string(result.optimum -
                                  result.metrics.fulfilled)});
  }
  table.print(std::cout);
  std::cout << "\nReading guide: ratio = OPT/online; 1.0 means the online\n"
               "strategy matched the clairvoyant schedule. The rescheduling\n"
               "strategies (A_eager, A_balance) should sit closest to 1.\n";
  return 0;
}
