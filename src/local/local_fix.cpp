#include "local/local_fix.hpp"

#include "local/router.hpp"

namespace reqsched {

namespace {
/// Resource-side acceptance: books each delivered request into its earliest
/// still-free slot, in delivery (LDF) order. Returns the senders that could
/// not be booked (for the second-round retry). The free-slot probe is
/// answered from the runtime's window problem (same contract as
/// Schedule::earliest_free_slot).
std::vector<Message> accept_maximal(StrategyRuntime& runtime, Simulator& sim,
                                    const Delivery& delivery) {
  std::vector<Message> rejected(delivery.failed);
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    for (const Message& m : delivery.delivered[static_cast<std::size_t>(i)]) {
      const Request& r = sim.request(m.sender);
      const SlotRef slot =
          runtime.earliest_free_slot(sim, i, sim.now(), r.deadline);
      if (slot.valid()) {
        sim.assign(m.sender, slot);
      } else {
        rejected.push_back(m);
      }
    }
  }
  return rejected;
}
}  // namespace

void ALocalFix::on_round(Simulator& sim) {
  // Communication round 1: new requests to their first alternatives.
  std::vector<Message> first_wave;
  for (const RequestId id : sim.injected_now()) {
    const Request& r = sim.request(id);
    REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                       "local strategies require two alternatives");
    first_wave.push_back(Message{id, r.first(), r.deadline, false, 0});
  }
  if (first_wave.empty()) return;
  sim.record_communication(1, static_cast<std::int64_t>(first_wave.size()));
  const std::vector<Message> failed_first = accept_maximal(
      runtime_, sim, route_messages(sim.config(), std::move(first_wave)));

  // Communication round 2: failures retry at their second alternatives.
  std::vector<Message> second_wave;
  for (const Message& m : failed_first) {
    const Request& r = sim.request(m.sender);
    second_wave.push_back(Message{m.sender, r.second(), r.deadline, false, 0});
  }
  if (second_wave.empty()) return;
  sim.record_communication(1, static_cast<std::int64_t>(second_wave.size()));
  accept_maximal(runtime_, sim,
                 route_messages(sim.config(), std::move(second_wave)));
}

}  // namespace reqsched
