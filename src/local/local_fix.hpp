// A_local_fix (Section 3.2): the two-communication-round local variant of
// A_fix. Competitive ratio exactly 2 (Theorem 3.7).
//
// Communication round 1: every newly injected request is sent to its first
// alternative; each resource accepts a maximal selection it can still book.
// Communication round 2: the failed requests try their second alternative
// under the same rule. Requests failing both ways are never retried.
#pragma once

#include "engine/simulator.hpp"
#include "core/strategy.hpp"
#include "strategies/runtime.hpp"

namespace reqsched {

class ALocalFix final : public IStrategy {
 public:
  std::string name() const override { return "A_local_fix"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }

 private:
  StrategyRuntime runtime_;
};

}  // namespace reqsched
