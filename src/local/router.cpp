#include "local/router.hpp"

#include <algorithm>
#include <tuple>

namespace reqsched {

Delivery route_messages(const ProblemConfig& config,
                        std::vector<Message> messages,
                        std::int32_t capacity) {
  const std::int32_t n = config.n;
  if (capacity <= 0) capacity = config.d;

  Delivery delivery;
  delivery.delivered.resize(static_cast<std::size_t>(n));

  // Admission order: priority tag first, then latest deadline first,
  // ties broken towards the earlier-injected request. The priority tag is
  // guaranteed by the A_local_eager protocol to occur at most once per
  // resource and does not consume LDF bandwidth (the tagged message
  // concerns the resource's own first time slot).
  std::stable_sort(messages.begin(), messages.end(),
                   [](const Message& a, const Message& b) {
                     return std::tuple(!a.priority_tag, -a.deadline, a.sender) <
                            std::tuple(!b.priority_tag, -b.deadline, b.sender);
                   });

  std::vector<std::int32_t> admitted(static_cast<std::size_t>(n), 0);
  for (const Message& m : messages) {
    REQSCHED_REQUIRE(m.to >= 0 && m.to < n);
    auto& count = admitted[static_cast<std::size_t>(m.to)];
    if (m.priority_tag || count < capacity) {
      if (!m.priority_tag) ++count;
      delivery.delivered[static_cast<std::size_t>(m.to)].push_back(m);
    } else {
      delivery.failed.push_back(m);
    }
  }
  return delivery;
}

}  // namespace reqsched
