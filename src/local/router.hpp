// Synchronous message-passing substrate for the local strategies.
//
// The paper's communication model (Section 1.3, Local Strategies): per
// communication round each request may exchange fixed-size messages with
// resources; at most d messages reach a resource per communication round —
// excess messages are dropped by the latest-deadline-first (LDF) rule and
// their senders are notified of the failure. A_local_eager additionally uses
// a single high-priority tag per resource that bypasses the LDF selection.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/simulator.hpp"
#include "core/types.hpp"

namespace reqsched {

struct Message {
  RequestId sender = kNoRequest;  ///< originating request (client side)
  ResourceId to = kNoResource;    ///< destination resource
  Round deadline = kNoRound;      ///< LDF key (the sender's deadline)
  bool priority_tag = false;      ///< bypasses LDF admission (at most 1/resource)
  std::int32_t payload = 0;       ///< protocol-specific tag-along value
};

struct Delivery {
  /// delivered[i] = messages resource i received, in admission order
  /// (priority-tagged first, then latest deadline first, ties by sender id).
  std::vector<std::vector<Message>> delivered;
  /// Messages that were dropped; their senders are notified.
  std::vector<Message> failed;
};

/// Delivers one communication round's messages, enforcing the bandwidth
/// limit. `capacity` <= 0 means "use d" (the model's default bandwidth).
/// Pure routing — the calling protocol does its own communication-round and
/// message accounting via Simulator::record_communication.
Delivery route_messages(const ProblemConfig& config,
                        std::vector<Message> messages,
                        std::int32_t capacity = 0);

}  // namespace reqsched
