#include "local/local_eager.hpp"

#include <algorithm>

#include "local/router.hpp"

namespace reqsched {

namespace {

/// Resource-side maximal acceptance (same rule as A_local_fix), probing the
/// runtime's window problem for free slots.
std::vector<Message> accept_maximal(StrategyRuntime& runtime, Simulator& sim,
                                    const Delivery& delivery) {
  std::vector<Message> rejected(delivery.failed);
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    for (const Message& m : delivery.delivered[static_cast<std::size_t>(i)]) {
      const Request& r = sim.request(m.sender);
      const SlotRef slot =
          runtime.earliest_free_slot(sim, i, sim.now(), r.deadline);
      if (slot.valid()) {
        sim.assign(m.sender, slot);
      } else {
        rejected.push_back(m);
      }
    }
  }
  return rejected;
}

std::vector<RequestId> unscheduled_pending(const Simulator& sim) {
  std::vector<RequestId> out;
  for (const RequestId id : sim.alive()) {
    if (!sim.is_scheduled(id)) out.push_back(id);
  }
  return out;
}

}  // namespace

void ALocalEager::on_round(Simulator& sim) {
  const Round t = sim.now();
  std::int64_t comm_rounds = 0;
  std::int64_t messages = 0;

  // ---- Phase 1: local_fix over all unscheduled alive requests. ----
  {
    std::vector<Message> wave;
    for (const RequestId id : unscheduled_pending(sim)) {
      const Request& r = sim.request(id);
      REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                         "local strategies require two alternatives");
      wave.push_back(Message{id, r.first(), r.deadline, false, 0});
    }
    if (!wave.empty()) {
      ++comm_rounds;
      messages += static_cast<std::int64_t>(wave.size());
      const auto failed = accept_maximal(
          runtime_, sim, route_messages(sim.config(), std::move(wave), 0));
      std::vector<Message> retry;
      for (const Message& m : failed) {
        const Request& r = sim.request(m.sender);
        retry.push_back(Message{m.sender, r.second(), r.deadline, false, 0});
      }
      if (!retry.empty()) {
        ++comm_rounds;
        messages += static_cast<std::int64_t>(retry.size());
        accept_maximal(runtime_, sim,
                       route_messages(sim.config(), std::move(retry), 0));
      }
    }
  }

  // ---- Phase 2: pull one future booking into each idle current slot. ----
  {
    std::vector<Message> offers;
    for (const RequestId id : sim.alive()) {
      const SlotRef slot = sim.slot_of(id);
      if (!slot.valid() || slot.round <= t) continue;
      const Request& r = sim.request(id);
      offers.push_back(Message{id, r.other_alternative(slot.resource),
                               r.deadline, false, 0});
    }
    if (!offers.empty()) {
      comm_rounds += 2;  // offer round + cancel round
      messages += static_cast<std::int64_t>(offers.size());
      const Delivery delivery =
          route_messages(sim.config(), std::move(offers), 0);
      for (ResourceId i = 0; i < sim.config().n; ++i) {
        if (!sim.schedule().is_free({i, t})) continue;
        const auto& inbox = delivery.delivered[static_cast<std::size_t>(i)];
        for (const Message& m : inbox) {
          // The sender offered itself to exactly one resource, but may have
          // been pulled forward already if this inbox is stale; re-check.
          const SlotRef cur = sim.slot_of(m.sender);
          if (cur.valid() && cur.round > t) {
            sim.move(m.sender, SlotRef{i, t});
            ++messages;  // the cancel message to the old resource
            break;
          }
        }
      }
    }
  }

  // ---- Phase 3: rivalry exchanges, first then second alternative. The
  // second iteration's opening round overlaps the first iteration's closing
  // round (the paper's 9-round schedule). ----
  const std::int64_t phase2_rounds = comm_rounds;
  const std::int64_t iter1 = rivalry_iteration(sim, 0, messages);
  const std::int64_t iter2 = rivalry_iteration(sim, 1, messages);
  comm_rounds += iter1 + iter2 - ((iter1 > 0 && iter2 > 0) ? 1 : 0);
  if (merged_phase23_ && phase2_rounds > 2 && iter1 > 0) {
    // Bandwidth 2d - 2 lets Phase 2's cancel round also carry Phase 3's
    // opening rivalry messages (the paper's one-round saving).
    --comm_rounds;
  }

  const std::int64_t budget = merged_phase23_ ? 8 : 9;
  REQSCHED_CHECK_MSG(comm_rounds <= budget,
                     "A_local_eager exceeded " << budget
                                               << " communication rounds: "
                                               << comm_rounds);
  sim.record_communication(comm_rounds, messages);
}

std::int64_t ALocalEager::rivalry_iteration(Simulator& sim, int alt,
                                            std::int64_t& messages) {
  const Round t = sim.now();
  std::vector<Message> wave;
  for (const RequestId id : unscheduled_pending(sim)) {
    const Request& r = sim.request(id);
    const ResourceId target = alt == 0 ? r.first() : r.second();
    wave.push_back(Message{id, target, r.deadline, false, 0});
  }
  if (wave.empty()) return 0;
  std::int64_t rounds = 1;
  messages += static_cast<std::int64_t>(wave.size());
  // In the merged variant the opening rivalry wave shares a communication
  // round with Phase 2's cancel messages, enabled by bandwidth 2d - 2.
  const std::int32_t capacity =
      merged_phase23_ && alt == 0
          ? std::max(1, 2 * sim.config().d - 2)
          : 0;
  const Delivery delivery =
      route_messages(sim.config(), std::move(wave), capacity);

  // Each resource selects one rival and hands it the identity of the request
  // occupying its current slot, plus that request's other alternative.
  struct ExchangePlan {
    RequestId rival;
    RequestId displaced;
    ResourceId home;      ///< resource whose current slot is contested
    ResourceId new_home;  ///< displaced request's other alternative
  };
  std::vector<ExchangePlan> plans;
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    const auto& inbox = delivery.delivered[static_cast<std::size_t>(i)];
    if (inbox.empty()) continue;
    const RequestId occupant = sim.schedule().request_at({i, t});
    if (occupant == kNoRequest) {
      // Only reachable when the rival's phase-1 message was dropped by the
      // bandwidth limit; the resource simply accepts what it has room for.
      for (const Message& m : inbox) {
        if (sim.is_scheduled(m.sender)) continue;
        const Request& r = sim.request(m.sender);
        const SlotRef slot =
            runtime_.earliest_free_slot(sim, i, t, r.deadline);
        if (slot.valid()) sim.assign(m.sender, slot);
      }
      continue;
    }
    for (const Message& m : inbox) {
      if (sim.is_scheduled(m.sender)) continue;  // succeeded earlier
      plans.push_back(ExchangePlan{m.sender, occupant, i,
                                   sim.request(occupant).other_alternative(i)});
      break;  // one rival per resource
    }
  }
  if (plans.empty()) return rounds;

  // Next communication round: rivals forward the displaced requests to the
  // displaced requests' other alternatives; capacity-limited as usual.
  std::vector<Message> rehome;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    rehome.push_back(Message{plans[p].rival, plans[p].new_home,
                             sim.request(plans[p].displaced).deadline, false,
                             static_cast<std::int32_t>(p)});
  }
  ++rounds;
  messages += static_cast<std::int64_t>(rehome.size());
  const Delivery rehomed = route_messages(sim.config(), std::move(rehome), 0);

  // Final communication round: successful rivals use the priority tag to
  // swap into the freed current slot.
  bool any_exchange = false;
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    for (const Message& m : rehomed.delivered[static_cast<std::size_t>(i)]) {
      const ExchangePlan& plan = plans[static_cast<std::size_t>(m.payload)];
      const Request& displaced = sim.request(plan.displaced);
      // The displaced request must still be where the plan saw it.
      if (sim.slot_of(plan.displaced) != SlotRef{plan.home, t}) continue;
      if (sim.is_scheduled(plan.rival)) continue;
      const SlotRef landing =
          runtime_.earliest_free_slot(sim, i, t, displaced.deadline);
      if (!landing.valid()) continue;
      sim.move(plan.displaced, landing);
      sim.assign(plan.rival, SlotRef{plan.home, t});
      any_exchange = true;
      ++messages;  // the priority-tagged confirmation message
    }
  }
  if (any_exchange) ++rounds;
  return rounds;
}

}  // namespace reqsched
