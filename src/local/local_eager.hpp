// A_local_eager (Section 3.2): the nine-communication-round local strategy,
// 5/3-competitive (Theorem 3.8).
//
// Phase 1 (2 communication rounds): A_local_fix over ALL unscheduled alive
// requests (new and older), first alternative then second.
// Phase 2 (2 communication rounds): every request booked at a future slot
// offers itself to its other alternative; each resource with an idle current
// slot pulls one such request forward (the request cancels its old booking).
// Phase 3 (<= 5 communication rounds): every still-unscheduled request q
// rivals for its alternatives' current slots. The resource picks one rival
// and hands it the identity of the request r occupying its current slot
// (plus a high-priority tag); q tries to re-home r at r's other alternative;
// on success r moves there, and q takes over the freed current slot using
// the priority tag. Failed rivals retry once via their second alternative
// (the retry overlaps one communication round with the first attempt, which
// is how the paper reaches 9 rounds total).
#pragma once

#include "engine/simulator.hpp"
#include "core/strategy.hpp"
#include "strategies/runtime.hpp"

namespace reqsched {

class ALocalEager final : public IStrategy {
 public:
  /// `merged_phase23` implements the paper's closing note: raising the
  /// per-resource bandwidth to 2d - 2 lets Phase 2's last communication
  /// round carry Phase 3's opening messages as well, capping the protocol
  /// at 8 communication rounds instead of 9.
  explicit ALocalEager(bool merged_phase23 = false)
      : merged_phase23_(merged_phase23) {}

  std::string name() const override {
    return merged_phase23_ ? "A_local_eager_merged" : "A_local_eager";
  }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }

 private:
  /// One phase-3 rivalry iteration via alternative index `alt` (0/1).
  /// Returns the communication rounds consumed (0 if no messages flowed).
  std::int64_t rivalry_iteration(Simulator& sim, int alt,
                                 std::int64_t& messages);

  bool merged_phase23_;
  StrategyRuntime runtime_;
};

}  // namespace reqsched
