#include "analysis/augmenting.hpp"

#include <algorithm>

namespace reqsched {

PathStats analyze_augmenting_paths(
    const SlotGraph& slots, const Matching& opt,
    const std::vector<std::pair<RequestId, SlotRef>>& online,
    SolverScratch& scratch) {
  PathStats stats;
  stats.order_histogram.assign(2, 0);

  const std::int64_t request_count = slots.request_count();

  // Unit-indexed views of both matchings, in reusable scratch buffers. The
  // online matching names slots, not units; units of one slot are
  // interchangeable, so parking each online request on its slot's first
  // free unit preserves the alternating-path structure (and is the
  // historical layout verbatim when capacities are unit).
  scratch.online_slot.assign(static_cast<std::size_t>(request_count), -1);
  scratch.slot_owner.assign(static_cast<std::size_t>(slots.slot_count()), -1);
  for (const auto& [id, slot] : online) {
    const std::int32_t base = slots.slot_index(slot);
    std::int32_t s = -1;
    for (std::int32_t u = 0; u < slots.unit_stride(); ++u) {
      if (scratch.slot_owner[static_cast<std::size_t>(base + u)] < 0) {
        s = base + u;
        break;
      }
    }
    REQSCHED_CHECK_MSG(s >= 0, "online matching overfills slot " << slot);
    scratch.online_slot[static_cast<std::size_t>(id)] = s;
    scratch.slot_owner[static_cast<std::size_t>(s)] = id;
  }

  const auto online_size = static_cast<std::int64_t>(online.size());
  stats.deficiency = opt.size() - online_size;

  // Walk alternating components starting from requests that OPT serves but
  // the online algorithm does not. A component ending in an online-free slot
  // is an augmenting path; one ending in an OPT-free request is merely
  // alternating and does not certify a loss.
  for (RequestId start = 0; start < request_count; ++start) {
    if (scratch.online_slot[static_cast<std::size_t>(start)] >= 0) continue;
    if (!opt.left_matched(static_cast<std::int32_t>(start))) continue;

    std::int64_t order = 0;
    RequestId request = start;
    for (;;) {
      ++order;
      const std::int32_t slot =
          opt.left_to_right[static_cast<std::size_t>(request)];
      REQSCHED_CHECK(slot >= 0);
      const std::int64_t owner =
          scratch.slot_owner[static_cast<std::size_t>(slot)];
      if (owner < 0) {
        // Free slot for the online matching: augmenting path found.
        ++stats.augmenting_paths;
        if (static_cast<std::size_t>(order) >= stats.order_histogram.size()) {
          stats.order_histogram.resize(static_cast<std::size_t>(order) + 1, 0);
        }
        ++stats.order_histogram[static_cast<std::size_t>(order)];
        stats.min_order = stats.min_order == 0
                              ? order
                              : std::min(stats.min_order, order);
        break;
      }
      if (!opt.left_matched(static_cast<std::int32_t>(owner))) {
        // Alternating path ends at an OPT-free request; not augmenting.
        break;
      }
      request = owner;
    }
  }
  REQSCHED_CHECK_MSG(stats.augmenting_paths >= stats.deficiency,
                     "augmenting decomposition undercounts the deficiency");
  return stats;
}

PathStats analyze_augmenting_paths(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online,
    SolverScratch& scratch) {
  if (trace.empty()) {
    PathStats stats;
    stats.order_histogram.assign(2, 0);
    return stats;
  }
  scratch.slots.rebuild(trace);
  hopcroft_karp(scratch.slots.graph(), scratch.matching, scratch.match);
  return analyze_augmenting_paths(scratch.slots, scratch.matching, online,
                                  scratch);
}

PathStats analyze_augmenting_paths(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online) {
  SolverScratch scratch;
  return analyze_augmenting_paths(trace, online, scratch);
}

}  // namespace reqsched
