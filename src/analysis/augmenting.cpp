#include "analysis/augmenting.hpp"

#include <algorithm>

#include "offline/offline.hpp"

namespace reqsched {

PathStats analyze_augmenting_paths(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online) {
  PathStats stats;
  stats.order_histogram.assign(2, 0);
  if (trace.empty()) return stats;

  const OfflineGraph og(trace);
  const Matching opt = hopcroft_karp(og.graph());

  // Slot-indexed views of both matchings.
  const auto slot_count = static_cast<std::size_t>(og.slot_count());
  std::vector<std::int32_t> online_left(
      static_cast<std::size_t>(trace.size()), -1);
  std::vector<std::int64_t> online_right(slot_count, -1);
  for (const auto& [id, slot] : online) {
    const std::int32_t s = og.slot_index(slot);
    online_left[static_cast<std::size_t>(id)] = s;
    online_right[static_cast<std::size_t>(s)] = id;
  }

  std::int64_t online_size = static_cast<std::int64_t>(online.size());
  stats.deficiency = opt.size() - online_size;

  // Walk alternating components starting from requests that OPT serves but
  // the online algorithm does not. A component ending in an online-free slot
  // is an augmenting path; one ending in an OPT-free request is merely
  // alternating and does not certify a loss.
  for (RequestId start = 0; start < trace.size(); ++start) {
    if (online_left[static_cast<std::size_t>(start)] >= 0) continue;
    if (!opt.left_matched(static_cast<std::int32_t>(start))) continue;

    std::int64_t order = 0;
    RequestId request = start;
    for (;;) {
      ++order;
      const std::int32_t slot =
          opt.left_to_right[static_cast<std::size_t>(request)];
      REQSCHED_CHECK(slot >= 0);
      const std::int64_t owner = online_right[static_cast<std::size_t>(slot)];
      if (owner < 0) {
        // Free slot for the online matching: augmenting path found.
        ++stats.augmenting_paths;
        if (static_cast<std::size_t>(order) >= stats.order_histogram.size()) {
          stats.order_histogram.resize(static_cast<std::size_t>(order) + 1, 0);
        }
        ++stats.order_histogram[static_cast<std::size_t>(order)];
        stats.min_order = stats.min_order == 0
                              ? order
                              : std::min(stats.min_order, order);
        break;
      }
      if (!opt.left_matched(static_cast<std::int32_t>(owner))) {
        // Alternating path ends at an OPT-free request; not augmenting.
        break;
      }
      request = owner;
    }
  }
  REQSCHED_CHECK_MSG(stats.augmenting_paths >= stats.deficiency,
                     "augmenting decomposition undercounts the deficiency");
  return stats;
}

}  // namespace reqsched
