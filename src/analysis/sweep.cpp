#include "analysis/sweep.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "analysis/registry.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace reqsched {

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  REQSCHED_REQUIRE(spec.make_workload != nullptr);
  REQSCHED_REQUIRE(!spec.strategies.empty());

  std::vector<SweepPoint> points;
  for (const auto& strategy : spec.strategies) {
    for (const auto n : spec.ns) {
      for (const auto d : spec.ds) {
        for (const auto seed : spec.seeds) {
          SweepPoint point;
          point.strategy = strategy;
          point.n = n;
          point.d = d;
          point.seed = seed;
          points.push_back(std::move(point));
        }
      }
    }
  }

  ThreadPool pool(spec.threads);
  // One solver arena per pool worker (plus a spare slot for the calling
  // thread, which parallel_for never uses but defensive code is cheap): the
  // graph/matching buffers are reused across every point a worker processes,
  // so the sweep's steady state allocates only inside workload generation.
  //
  // No locks anywhere in the fan-out: each task owns points[i] exclusively
  // (slots pre-sized, disjoint indices), each worker owns its scratch slot
  // via current_worker_index(), and strategy/workload instances are
  // constructed inside the task so nothing strategy-shaped ever crosses the
  // worker boundary. parallel_for's wait_idle() is the join before the
  // caller reads any point.
  std::vector<SolverScratch> scratches(pool.thread_count() + 1);
  parallel_for(pool, points.size(), [&](std::size_t i) {
    SweepPoint& point = points[i];
    const std::size_t worker = ThreadPool::current_worker_index();
    SolverScratch& scratch =
        scratches[worker == ThreadPool::kNotAWorker ? pool.thread_count()
                                                    : worker];
    try {
      const auto workload = spec.make_workload(point.n, point.d, point.seed);
      auto strategy = make_strategy(point.strategy, spec.strategy_seed);
      point.result = run_experiment(*workload, *strategy,
                                    {.analyze_paths = spec.analyze_paths},
                                    scratch);
    } catch (const std::exception& e) {
      // ThreadPool tasks must not throw (a strategy's std::bad_alloc or
      // std::logic_error would take the whole process down); any failure is
      // recorded on the point and the sweep keeps going.
      point.failed = true;
      point.error = e.what();
    } catch (...) {
      point.failed = true;
      point.error = "unknown exception";
    }
  });
  return points;
}

void write_sweep_csv(std::ostream& os, std::span<const SweepPoint> points) {
  CsvWriter csv(os, {"strategy", "n", "d", "seed", "workload", "injected",
                     "fulfilled", "expired", "optimum", "ratio",
                     "violations", "failed"});
  for (const SweepPoint& p : points) {
    csv.add_row({p.strategy, std::to_string(p.n), std::to_string(p.d),
                 std::to_string(p.seed), p.result.workload,
                 std::to_string(p.result.metrics.injected),
                 std::to_string(p.result.metrics.fulfilled),
                 std::to_string(p.result.metrics.expired),
                 std::to_string(p.result.optimum),
                 AsciiTable::fmt(p.result.ratio, 6),
                 std::to_string(p.result.violations),
                 p.failed ? "1" : "0"});
  }
}

SweepSummary summarize_sweep(std::span<const SweepPoint> points) {
  SweepSummary summary;
  double sum = 0.0;
  for (const SweepPoint& p : points) {
    ++summary.points;
    if (p.failed) {
      ++summary.failures;
      continue;
    }
    sum += p.result.ratio;
    summary.max_ratio = std::max(summary.max_ratio, p.result.ratio);
  }
  const auto successes = summary.points - summary.failures;
  if (successes > 0) {
    summary.mean_ratio = sum / static_cast<double>(successes);
  } else {
    // No successful point: report NaN, never a fake "perfectly competitive"
    // 1.0 that gating callers would wave through.
    summary.mean_ratio = std::numeric_limits<double>::quiet_NaN();
    summary.max_ratio = std::numeric_limits<double>::quiet_NaN();
  }
  return summary;
}

}  // namespace reqsched
