// Parameter-sweep driver: run a (strategy x n x d x seed) grid across a
// thread pool, collect RunResults, and export CSV. Per-point simulations are
// independent, so the sweep parallelizes embarrassingly; per-point PRNG
// seeds keep results identical at any thread count.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/harness.hpp"
#include "core/workload.hpp"

namespace reqsched {

struct SweepPoint {
  std::string strategy;
  std::int32_t n = 0;
  std::int32_t d = 0;
  std::uint64_t seed = 0;
  RunResult result;
  bool failed = false;
  std::string error;  ///< exception text when failed
};

struct SweepSpec {
  std::vector<std::string> strategies;
  /// Factory for the workload at one grid point.
  std::function<std::unique_ptr<IWorkload>(std::int32_t n, std::int32_t d,
                                           std::uint64_t seed)>
      make_workload;
  std::vector<std::int32_t> ns{8};
  std::vector<std::int32_t> ds{4};
  std::vector<std::uint64_t> seeds{1};
  /// Seed handed to randomized strategies at every grid point (the workload
  /// seeds above vary the instances; this varies the strategy's coin flips).
  std::uint64_t strategy_seed = 1;
  bool analyze_paths = false;
  /// 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// Runs the whole grid; the returned points are in deterministic grid order
/// (strategy-major), independent of scheduling.
std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

/// One CSV row per point: strategy,n,d,seed,workload,injected,fulfilled,
/// expired,optimum,ratio,violations,failed.
void write_sweep_csv(std::ostream& os, std::span<const SweepPoint> points);

struct SweepSummary {
  std::int64_t points = 0;
  std::int64_t failures = 0;
  /// Aggregated over successful points only; NaN when every point failed
  /// (or the sweep was empty), so an all-failure sweep can never be mistaken
  /// for a perfectly competitive one. Callers gating on max_ratio must check
  /// all_failed() first.
  double mean_ratio = 1.0;
  double max_ratio = 1.0;

  bool all_failed() const { return failures == points; }
};

SweepSummary summarize_sweep(std::span<const SweepPoint> points);

}  // namespace reqsched
