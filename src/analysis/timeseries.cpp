#include "analysis/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/table.hpp"

namespace reqsched {

RoundSample sample_simulator_round(const Simulator& sim) {
  RoundSample sample;
  sample.round = sim.now();
  sample.injected = static_cast<std::int64_t>(sim.injected_now().size());
  sample.pending = static_cast<std::int64_t>(sim.alive().size());
  sample.booked = sim.schedule().booked_count();
  std::int64_t executing = 0;
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    if (!sim.schedule().is_free({i, sim.now()})) ++executing;
  }
  sample.executed = executing;
  sample.idle = sim.config().n - executing;
  for (const RequestId id : sim.alive()) {
    const Round slack = sim.request(id).deadline - sim.now();
    if (sample.tightest_slack < 0 || slack < sample.tightest_slack) {
      sample.tightest_slack = slack;
    }
  }
  return sample;
}

TimeSeriesProbe::TimeSeriesProbe(std::unique_ptr<IStrategy> inner)
    : inner_(std::move(inner)) {
  REQSCHED_REQUIRE(inner_ != nullptr);
}

void TimeSeriesProbe::reset(const ProblemConfig& config) {
  inner_->reset(config);
  samples_.clear();
}

void TimeSeriesProbe::on_round(Simulator& sim) {
  inner_->on_round(sim);
  samples_.push_back(sample_simulator_round(sim));
}

void write_timeseries_csv(std::ostream& os,
                          const std::vector<RoundSample>& samples) {
  CsvWriter csv(os, {"round", "injected", "executed", "pending", "booked",
                     "idle", "tightest_slack", "prefix_opt",
                     "prefix_fulfilled", "prefix_ratio"});
  for (const RoundSample& s : samples) {
    csv.add_row({std::to_string(s.round), std::to_string(s.injected),
                 std::to_string(s.executed), std::to_string(s.pending),
                 std::to_string(s.booked), std::to_string(s.idle),
                 std::to_string(s.tightest_slack),
                 std::to_string(s.prefix_opt),
                 std::to_string(s.prefix_fulfilled),
                 s.has_prefix() ? AsciiTable::fmt(s.prefix_ratio, 6) : "nan"});
  }
}

TimeSeriesSummary summarize_timeseries(const std::vector<RoundSample>& samples,
                                       std::int32_t n) {
  TimeSeriesSummary summary;
  summary.rounds = static_cast<std::int64_t>(samples.size());
  if (samples.empty() || n <= 0) return summary;
  double executed = 0;
  double pending = 0;
  for (const RoundSample& s : samples) {
    executed += static_cast<double>(s.executed);
    pending += static_cast<double>(s.pending);
    summary.peak_pending = std::max(summary.peak_pending, s.pending);
    if (s.has_prefix()) {
      summary.final_prefix_ratio = s.prefix_ratio;
      if (std::isnan(summary.max_prefix_ratio) ||
          s.prefix_ratio > summary.max_prefix_ratio) {
        summary.max_prefix_ratio = s.prefix_ratio;
      }
    }
  }
  const auto rounds = static_cast<double>(samples.size());
  summary.mean_utilization = executed / (rounds * static_cast<double>(n));
  summary.mean_pending = pending / rounds;
  return summary;
}

}  // namespace reqsched
