// Per-round time series: what a capacity planner actually looks at.
//
// Wraps any strategy and records, for every round, the injected / executed
// / pending / booked counts and the backlog's tightest deadline slack.
// Exports CSV for plotting.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategy.hpp"

namespace reqsched {

struct RoundSample {
  Round round = 0;
  std::int64_t injected = 0;   ///< requests that arrived this round
  std::int64_t executed = 0;   ///< requests fulfilled this round
  std::int64_t pending = 0;    ///< alive after the strategy step
  std::int64_t booked = 0;     ///< bookings held in the window
  std::int64_t idle = 0;       ///< resources idle this round
  /// Minimum (deadline - round) over pending requests; -1 when none.
  Round tightest_slack = -1;
};

/// Strategy decorator that samples the simulator once per round after the
/// inner strategy ran (i.e. what the upcoming execution will see).
class TimeSeriesProbe final : public IStrategy {
 public:
  explicit TimeSeriesProbe(std::unique_ptr<IStrategy> inner);

  std::string name() const override { return inner_->name(); }
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;

  const std::vector<RoundSample>& samples() const { return samples_; }

 private:
  std::unique_ptr<IStrategy> inner_;
  std::vector<RoundSample> samples_;
};

/// CSV: round,injected,executed,pending,booked,idle,tightest_slack.
void write_timeseries_csv(std::ostream& os,
                          const std::vector<RoundSample>& samples);

/// Aggregates useful for quick reporting.
struct TimeSeriesSummary {
  double mean_utilization = 0.0;  ///< executed / n per round
  double mean_pending = 0.0;
  std::int64_t peak_pending = 0;
  std::int64_t rounds = 0;
};

TimeSeriesSummary summarize_timeseries(const std::vector<RoundSample>& samples,
                                       std::int32_t n);

}  // namespace reqsched
