// Per-round time series: what a capacity planner actually looks at.
//
// Wraps any strategy and records, for every round, the injected / executed
// / pending / booked counts and the backlog's tightest deadline slack.
// Exports CSV for plotting.
#pragma once

#include <iosfwd>
#include <limits>
#include <memory>
#include <vector>

#include "engine/simulator.hpp"
#include "core/strategy.hpp"

namespace reqsched {

struct RoundSample {
  Round round = 0;
  std::int64_t injected = 0;   ///< requests that arrived this round
  std::int64_t executed = 0;   ///< requests fulfilled this round
  std::int64_t pending = 0;    ///< alive after the strategy step
  std::int64_t booked = 0;     ///< bookings held in the window
  std::int64_t idle = 0;       ///< resources idle this round
  /// Minimum (deadline - round) over pending requests; -1 when none.
  Round tightest_slack = -1;
  // Prefix-optimum columns, filled by PrefixOptimumProbe only (-1 / NaN when
  // untracked): the competitive definition is a statement about every prefix
  // of the request sequence, and these are its per-round witnesses.
  std::int64_t prefix_opt = -1;        ///< OPT over arrivals in rounds <= round
  std::int64_t prefix_fulfilled = -1;  ///< online fulfillments through round
  double prefix_ratio = std::numeric_limits<double>::quiet_NaN();

  bool has_prefix() const { return prefix_opt >= 0; }
};

/// Samples the simulator mid-round (after the strategy ran, before
/// execution): what the upcoming execution will see. Shared by the
/// time-series and prefix-optimum probes.
RoundSample sample_simulator_round(const Simulator& sim);

/// Strategy decorator that samples the simulator once per round after the
/// inner strategy ran (i.e. what the upcoming execution will see).
class TimeSeriesProbe final : public IStrategy {
 public:
  explicit TimeSeriesProbe(std::unique_ptr<IStrategy> inner);

  std::string name() const override { return inner_->name(); }
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override {
    return inner_->wants_window_problem();
  }
  bool wants_admission_fast_path() const override {
    return inner_->wants_admission_fast_path();
  }
  bool admission_probe_current_round_only() const override {
    return inner_->admission_probe_current_round_only();
  }
  bool admission_needs_empty_backlog() const override {
    return inner_->admission_needs_empty_backlog();
  }

  const std::vector<RoundSample>& samples() const { return samples_; }

 private:
  std::unique_ptr<IStrategy> inner_;
  std::vector<RoundSample> samples_;
};

/// CSV: round,injected,executed,pending,booked,idle,tightest_slack,
/// prefix_opt,prefix_fulfilled,prefix_ratio (the prefix columns are -1/nan
/// unless the samples came from a PrefixOptimumProbe).
void write_timeseries_csv(std::ostream& os,
                          const std::vector<RoundSample>& samples);

/// Aggregates useful for quick reporting.
struct TimeSeriesSummary {
  double mean_utilization = 0.0;  ///< executed / n per round
  double mean_pending = 0.0;
  std::int64_t peak_pending = 0;
  std::int64_t rounds = 0;
  /// Prefix-ratio aggregates (NaN when the samples carry no prefix data).
  double final_prefix_ratio = std::numeric_limits<double>::quiet_NaN();
  double max_prefix_ratio = std::numeric_limits<double>::quiet_NaN();
};

TimeSeriesSummary summarize_timeseries(const std::vector<RoundSample>& samples,
                                       std::int32_t n);

}  // namespace reqsched
