// Experiment harness: run (workload, strategy), compare against the exact
// offline optimum, and report competitive metrics.
#pragma once

#include <memory>
#include <string>

#include "analysis/augmenting.hpp"
#include "core/metrics.hpp"
#include "core/simulator.hpp"

namespace reqsched {

struct RunResult {
  std::string strategy;
  std::string workload;
  Metrics metrics;
  std::int64_t optimum = 0;
  /// OPT / online fulfilled (1.0 when nothing was injected). This is the
  /// raw finite-run ratio; startup transients add an additive constant that
  /// competitive analysis allows — see pairwise_slope_ratio.
  double ratio = 1.0;
  PathStats paths;
  /// ScriptedStrategy rule violations (0 for plain strategies).
  std::int64_t violations = 0;
};

struct RunOptions {
  bool analyze_paths = true;
  std::int64_t max_rounds = 1'000'000;
};

/// Runs the workload to completion under the strategy and solves the
/// realized trace offline.
RunResult run_experiment(IWorkload& workload, IStrategy& strategy,
                         const RunOptions& options = {});

/// The additive-constant-free per-phase ratio: with a short and a long run
/// of the same periodic instance, (OPT_long - OPT_short) /
/// (ALG_long - ALG_short) cancels startup effects exactly and converges to
/// the theorem's bound.
double pairwise_slope_ratio(const RunResult& short_run,
                            const RunResult& long_run);

}  // namespace reqsched
