// Experiment harness: run (workload, strategy), compare against the exact
// offline optimum, and report competitive metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/augmenting.hpp"
#include "analysis/timeseries.hpp"
#include "core/metrics.hpp"
#include "engine/simulator.hpp"

namespace reqsched {

struct RunResult {
  std::string strategy;
  std::string workload;
  Metrics metrics;
  std::int64_t optimum = 0;
  /// OPT / online fulfilled (1.0 when nothing was injected). This is the
  /// raw finite-run ratio; startup transients add an additive constant that
  /// competitive analysis allows — see prefix_slope_ratio.
  double ratio = 1.0;
  PathStats paths;
  /// ScriptedStrategy rule violations (0 for plain strategies).
  std::int64_t violations = 0;
  /// Per-round prefix series (empty unless RunOptions.track_prefix): sample
  /// t carries OPT(sigma[0..t]), the online fulfillments through round t,
  /// and their ratio. The final sample agrees with `optimum` / `metrics`
  /// exactly — run_experiment cross-checks the incremental engine against
  /// the König-certified offline solver.
  std::vector<RoundSample> prefix_series;
};

struct RunOptions {
  bool analyze_paths = true;
  /// Maintain the per-round prefix optimum (one incremental augmenting-path
  /// search per arrival) and fill RunResult.prefix_series.
  bool track_prefix = false;
  std::int64_t max_rounds = 1'000'000;
};

/// Runs the workload to completion under the strategy and solves the
/// realized trace offline.
RunResult run_experiment(IWorkload& workload, IStrategy& strategy,
                         const RunOptions& options = {});

/// Scratch-reusing variant: the offline solve and the augmenting-path
/// analysis share `scratch` (graph arena, matching buffers), so repeated
/// calls — a sweep worker, a replay loop — stop allocating once the arena
/// has grown to the largest instance seen.
RunResult run_experiment(IWorkload& workload, IStrategy& strategy,
                         const RunOptions& options, SolverScratch& scratch);

/// The additive-constant-free per-phase ratio: between two horizons of the
/// same periodic instance, (OPT_long - OPT_short) / (ALG_long - ALG_short)
/// cancels startup effects exactly and converges to the theorem's bound.
/// Degenerate deltas are flagged instead of aborting: +inf when OPT grew but
/// the algorithm did not, NaN when neither grew — callers report them.
double pairwise_slope_ratio(const RunResult& short_run,
                            const RunResult& long_run);

/// Single-run slope ratio between two intermediate horizons of a
/// prefix-tracked run (rounds index `run.prefix_series`). One long run
/// therefore yields the slope at *every* horizon — no separate short run.
double prefix_slope_ratio(const RunResult& run, Round short_round,
                          Round long_round);

/// The whole slope series against a fixed baseline: entry i is the slope
/// between `baseline_round` and round `baseline_round + 1 + i`, NaN/inf
/// flagged as in pairwise_slope_ratio.
std::vector<double> prefix_slope_series(const RunResult& run,
                                        Round baseline_round);

}  // namespace reqsched
