// StrategyRegistry — one table the examples, tests, benches, and CLIs use
// to enumerate, validate, and construct everything the library implements.
//
// Each entry carries capability flags alongside the factory:
//   incremental  — the strategy runs on the engine's delta-maintained window
//                  problem (wants_window_problem() == true), so the engine
//                  pays for the mirror and the strategy skips per-round
//                  schedule scans;
//   needs_history — the strategy (or its checker) reads the recorded Trace /
//                  retained statuses, so it cannot run under pure
//                  streaming_options();
//   randomized   — construction consumes a seed (the --strategy-seed flag;
//                  deterministic strategies ignore it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.hpp"

namespace reqsched {

enum class StrategyClass {
  kGlobal,    ///< the Table 1 rows and their randomized variants
  kLocal,     ///< message-routing local strategies (Section 3.2)
  kBaseline,  ///< EDF baselines (Observations 3.1 / 3.2)
};

struct StrategyInfo {
  std::string name;
  StrategyClass kind = StrategyClass::kGlobal;
  bool incremental = false;
  bool needs_history = false;
  bool randomized = false;
  // Generalized-model capabilities (ROADMAP item 2). A flag is set only when
  // the strategy handles the axis in full: arbitrary alternative counts
  // 1..kMaxAlternatives (k_choice), per-resource capacities b_r > 1
  // exploited unit by unit (capacitated), and multi-round occupancy runs
  // (occupancy). The paper model (k = 2, b = 1, occ = 1) needs none of them.
  bool k_choice = false;
  bool capacitated = false;
  bool occupancy = false;
};

/// The full registry, in the library's canonical listing order.
const std::vector<StrategyInfo>& strategy_registry();

/// Registry entry for `name`, or nullptr when unknown.
const StrategyInfo* find_strategy(const std::string& name);

/// Fast-fail predicate for CLI flag validation.
bool strategy_exists(const std::string& name);

/// All global two-choice strategies (the Table 1 rows): A_fix, A_current,
/// A_fix_balance, A_eager, A_balance.
std::vector<std::string> global_strategy_names();

/// The local strategies: A_local_fix, A_local_eager.
std::vector<std::string> local_strategy_names();

/// Everything, including the EDF baselines.
std::vector<std::string> all_strategy_names();

/// Names of strategies whose capability flags cover the requested model
/// axes: every requested axis must be supported (axes not requested are
/// unconstrained). strategies_supporting(false, false, false) lists all.
std::vector<std::string> strategies_supporting(bool k_choice, bool capacitated,
                                               bool occupancy);

/// Creates a strategy by its registered name; `seed` feeds the randomized
/// strategies (default 1 matches their default constructors) and is ignored
/// by deterministic ones. Throws on unknown names, listing every registered
/// name in the error.
std::unique_ptr<IStrategy> make_strategy(const std::string& name,
                                         std::uint64_t seed = 1);

}  // namespace reqsched
