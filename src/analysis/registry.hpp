// Strategy factory by name — one place the examples, tests and benches use
// to enumerate everything the library implements.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/strategy.hpp"

namespace reqsched {

/// All global two-choice strategies (the Table 1 rows): A_fix, A_current,
/// A_fix_balance, A_eager, A_balance.
std::vector<std::string> global_strategy_names();

/// The local strategies: A_local_fix, A_local_eager.
std::vector<std::string> local_strategy_names();

/// Everything, including the EDF baselines.
std::vector<std::string> all_strategy_names();

/// Creates a strategy by its registered name; throws on unknown names.
std::unique_ptr<IStrategy> make_strategy(const std::string& name);

}  // namespace reqsched
