#include "analysis/harness.hpp"

#include <limits>
#include <optional>

#include "analysis/prefix.hpp"
#include "offline/offline.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {

namespace {

double slope_of(std::int64_t d_opt, std::int64_t d_alg) {
  if (d_alg <= 0) {
    return d_opt > 0 ? std::numeric_limits<double>::infinity()
                     : std::numeric_limits<double>::quiet_NaN();
  }
  return static_cast<double>(d_opt) / static_cast<double>(d_alg);
}

const RoundSample& prefix_sample_at(const RunResult& run, Round round) {
  REQSCHED_REQUIRE_MSG(!run.prefix_series.empty(),
                       "run was not prefix-tracked (RunOptions.track_prefix)");
  REQSCHED_REQUIRE_MSG(
      round >= 0 &&
          static_cast<std::size_t>(round) < run.prefix_series.size(),
      "round " << round << " outside the sampled range [0, "
               << run.prefix_series.size() << ")");
  const RoundSample& s = run.prefix_series[static_cast<std::size_t>(round)];
  REQSCHED_REQUIRE(s.round == round && s.has_prefix());
  return s;
}

}  // namespace

RunResult run_experiment(IWorkload& workload, IStrategy& strategy,
                         const RunOptions& options) {
  SolverScratch scratch;
  return run_experiment(workload, strategy, options, scratch);
}

RunResult run_experiment(IWorkload& workload, IStrategy& strategy,
                         const RunOptions& options, SolverScratch& scratch) {
  std::optional<PrefixOptimumProbe> probe;
  IStrategy* active = &strategy;
  if (options.track_prefix) {
    probe.emplace(strategy);
    active = &*probe;
  }
  Simulator sim(workload, *active);
  sim.run(options.max_rounds);

  RunResult result;
  result.strategy = strategy.name();
  result.workload = workload.name();
  result.metrics = sim.metrics();
  result.optimum = solve_offline(sim.trace(), scratch).optimum;
  REQSCHED_CHECK_MSG(result.optimum >= result.metrics.fulfilled,
                     "online matching beat the 'optimal' offline matching");
  result.ratio = competitive_ratio(result.optimum, result.metrics.fulfilled);
  if (options.analyze_paths) {
    if (sim.trace().empty()) {
      result.paths.order_histogram.assign(2, 0);
    } else {
      // solve_offline left the graph and the optimum matching in `scratch`;
      // the path analysis reuses both instead of re-solving.
      result.paths = analyze_augmenting_paths(
          scratch.slots, scratch.matching, sim.online_matching(), scratch);
    }
  }
  if (const auto* scripted = dynamic_cast<const ScriptedStrategy*>(&strategy)) {
    result.violations = scripted->violations();
  }
  if (probe) {
    result.prefix_series = probe->take_samples();
    // Hard exactness invariant: the incremental engine's final prefix value
    // must equal the from-scratch Hopcroft–Karp + König-certified optimum.
    if (!result.prefix_series.empty()) {
      const RoundSample& last = result.prefix_series.back();
      REQSCHED_CHECK_MSG(last.prefix_opt == result.optimum,
                         "incremental prefix optimum "
                             << last.prefix_opt
                             << " disagrees with the offline solver "
                             << result.optimum);
      REQSCHED_CHECK_MSG(last.prefix_fulfilled == result.metrics.fulfilled,
                         "prefix fulfillment accounting drifted: "
                             << last.prefix_fulfilled << " vs "
                             << result.metrics.fulfilled);
    }
  }
  return result;
}

double pairwise_slope_ratio(const RunResult& short_run,
                            const RunResult& long_run) {
  return slope_of(long_run.optimum - short_run.optimum,
                  long_run.metrics.fulfilled - short_run.metrics.fulfilled);
}

double prefix_slope_ratio(const RunResult& run, Round short_round,
                          Round long_round) {
  REQSCHED_REQUIRE_MSG(short_round < long_round,
                       "slope needs two distinct increasing horizons");
  const RoundSample& a = prefix_sample_at(run, short_round);
  const RoundSample& b = prefix_sample_at(run, long_round);
  return slope_of(b.prefix_opt - a.prefix_opt,
                  b.prefix_fulfilled - a.prefix_fulfilled);
}

std::vector<double> prefix_slope_series(const RunResult& run,
                                        Round baseline_round) {
  const RoundSample& base = prefix_sample_at(run, baseline_round);
  std::vector<double> slopes;
  slopes.reserve(run.prefix_series.size() -
                 static_cast<std::size_t>(baseline_round) - 1);
  for (auto t = static_cast<std::size_t>(baseline_round) + 1;
       t < run.prefix_series.size(); ++t) {
    const RoundSample& s = run.prefix_series[t];
    slopes.push_back(slope_of(s.prefix_opt - base.prefix_opt,
                              s.prefix_fulfilled - base.prefix_fulfilled));
  }
  return slopes;
}

}  // namespace reqsched
