#include "analysis/harness.hpp"

#include <limits>

#include "offline/offline.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {

RunResult run_experiment(IWorkload& workload, IStrategy& strategy,
                         const RunOptions& options) {
  Simulator sim(workload, strategy);
  sim.run(options.max_rounds);

  RunResult result;
  result.strategy = strategy.name();
  result.workload = workload.name();
  result.metrics = sim.metrics();
  result.optimum = offline_optimum(sim.trace());
  REQSCHED_CHECK_MSG(result.optimum >= result.metrics.fulfilled,
                     "online matching beat the 'optimal' offline matching");
  result.ratio =
      result.metrics.fulfilled == 0
          ? (result.optimum == 0 ? 1.0
                                 : std::numeric_limits<double>::infinity())
          : static_cast<double>(result.optimum) /
                static_cast<double>(result.metrics.fulfilled);
  if (options.analyze_paths) {
    result.paths = analyze_augmenting_paths(sim.trace(), sim.online_matching());
  }
  if (const auto* scripted = dynamic_cast<const ScriptedStrategy*>(&strategy)) {
    result.violations = scripted->violations();
  }
  return result;
}

double pairwise_slope_ratio(const RunResult& short_run,
                            const RunResult& long_run) {
  const auto d_opt = long_run.optimum - short_run.optimum;
  const auto d_alg =
      long_run.metrics.fulfilled - short_run.metrics.fulfilled;
  REQSCHED_REQUIRE_MSG(d_alg > 0, "long run must fulfill more than short run");
  return static_cast<double>(d_opt) / static_cast<double>(d_alg);
}

}  // namespace reqsched
