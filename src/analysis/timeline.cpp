#include "analysis/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace reqsched {

namespace {
char id_glyph(RequestId id) {
  static const char kGlyphs[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kGlyphs[static_cast<std::size_t>(id % 62)];
}
}  // namespace

std::string render_timeline(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& executions,
    const TimelineOptions& options) {
  const std::int32_t n = trace.config().n;
  const Round last =
      options.to >= 0 ? options.to
                      : (trace.empty() ? 0 : trace.last_useful_round());
  REQSCHED_REQUIRE(options.from >= 0 && options.from <= last);
  const auto columns = static_cast<std::size_t>(last - options.from + 1);

  std::vector<std::string> rows(static_cast<std::size_t>(n),
                                std::string(columns, '.'));
  for (const auto& [id, slot] : executions) {
    if (slot.round < options.from || slot.round > last) continue;
    REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < n);
    rows[static_cast<std::size_t>(slot.resource)]
        [static_cast<std::size_t>(slot.round - options.from)] =
            options.show_ids ? id_glyph(id) : '#';
  }

  std::ostringstream os;
  // Round ruler (tens digit, then ones digit).
  os << "      ";
  for (std::size_t c = 0; c < columns; ++c) {
    const Round round = options.from + static_cast<Round>(c);
    os << (round % 10 == 0 ? static_cast<char>('0' + (round / 10) % 10) : ' ');
  }
  os << "\n      ";
  for (std::size_t c = 0; c < columns; ++c) {
    os << static_cast<char>('0' + (options.from + static_cast<Round>(c)) % 10);
  }
  os << '\n';
  for (std::int32_t i = 0; i < n; ++i) {
    os << 'S' << i;
    for (std::size_t pad = std::to_string(i).size(); pad < 4; ++pad) os << ' ';
    os << ' ' << rows[static_cast<std::size_t>(i)] << '\n';
  }
  return os.str();
}

}  // namespace reqsched
