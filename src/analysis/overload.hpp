// The overload machinery of the Theorem 3.4/3.6 proofs, made measurable.
//
// For every injection round t that leaves failed requests, the proofs build
// the overloaded resource set S_t: all alternatives of the failed requests,
// closed under "alternatives of requests injected at t that are scheduled at
// resources already in S_t". Every slot row {s_{i,t..t+d-1}} with i in S_t
// is an overloaded group; per resource, maximal unions of consecutive groups
// are overloaded intervals; executions of round-t requests inside S_t are
// overloaded executions, everything else is normal.
//
// The charging arguments bound how many failed requests an interval can
// host per scheduled request. This module computes the same objects from a
// finished run, so the proof's quantities become observable statistics.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "core/types.hpp"

namespace reqsched {

struct OverloadedGroup {
  ResourceId resource = kNoResource;
  Round from = kNoRound;  ///< first slot round (== injection round t)
  Round to = kNoRound;    ///< last slot round (t + d - 1)
};

struct OverloadedInterval {
  ResourceId resource = kNoResource;
  Round from = kNoRound;
  Round to = kNoRound;

  Round length() const { return to - from + 1; }
};

struct OverloadStats {
  std::int64_t failed_requests = 0;
  /// Rounds whose failures spawned an overloaded resource set.
  std::int64_t overloaded_rounds = 0;
  std::vector<OverloadedGroup> groups;
  std::vector<OverloadedInterval> intervals;
  std::int64_t overloaded_executions = 0;
  std::int64_t normal_executions = 0;
  double mean_interval_length = 0.0;
  /// Failed requests per overloaded execution — the quantity the charging
  /// arguments bound (e.g. (d-1)/d per scheduled request for A_fix).
  double failures_per_overloaded_execution = 0.0;
};

/// Computes the overload statistics of a finished run. `executions` are the
/// (request, slot) pairs the online strategy fulfilled
/// (Simulator::online_matching()); failures are inferred from the trace.
OverloadStats analyze_overload(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& executions);

}  // namespace reqsched
