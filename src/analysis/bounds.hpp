// The paper's proven bounds (Table 1), as exact fractions of d.
#pragma once

#include <cmath>

#include "util/assert.hpp"
#include "util/fraction.hpp"

namespace reqsched {

// ------------------------------- upper bounds (Section 3) ----------------

/// Theorem 3.3: A_fix and A_current are at most (2 - 1/d)-competitive.
inline Fraction ub_fix(std::int32_t d) {
  REQSCHED_REQUIRE(d >= 1);
  return Fraction(2 * d - 1, d);
}
inline Fraction ub_current(std::int32_t d) { return ub_fix(d); }

/// Theorem 3.4: A_fix_balance <= max(4/3, 2 - 2/d, 2 - 3/(d+2)).
inline Fraction ub_fix_balance(std::int32_t d) {
  REQSCHED_REQUIRE(d >= 2);
  const Fraction candidates[] = {Fraction(4, 3), Fraction(2 * d - 2, d),
                                 Fraction(2 * (d + 2) - 3, d + 2)};
  Fraction best = candidates[0];
  for (const Fraction& c : candidates) {
    if (c > best) best = c;
  }
  return best;
}

/// Theorem 3.5: A_eager <= (3d - 2)/(2d - 1).
inline Fraction ub_eager(std::int32_t d) {
  REQSCHED_REQUIRE(d >= 1);
  return Fraction(3 * d - 2, 2 * d - 1);
}

/// Theorem 3.6: A_balance <= 4/3 for d = 2 and 6(d-1)/(4d-3) for d > 2.
inline Fraction ub_balance(std::int32_t d) {
  REQSCHED_REQUIRE(d >= 2);
  return d == 2 ? Fraction(4, 3) : Fraction(6 * (d - 1), 4 * d - 3);
}

/// Observation 3.2 / Theorem 3.7: EDF with two alternatives and A_local_fix
/// are exactly 2-competitive.
inline Fraction ub_edf_two_choice() { return Fraction(2); }
inline Fraction ub_local_fix() { return Fraction(2); }

/// Theorem 3.8: A_local_eager <= 5/3.
inline Fraction ub_local_eager() { return Fraction(5, 3); }

// ------------------------------- lower bounds (Section 2) ----------------

/// Theorem 2.1.
inline Fraction lb_fix(std::int32_t d) { return ub_fix(d); }

/// Theorem 2.2 limit value e/(e-1).
inline double lb_current_limit() { return std::exp(1.0) / (std::exp(1.0) - 1.0); }

/// Theorem 2.3.
inline Fraction lb_fix_balance(std::int32_t d) {
  REQSCHED_REQUIRE(d >= 2);
  return d == 2 ? Fraction(4, 3) : Fraction(3 * d, 2 * d + 2);
}

/// Theorem 2.4.
inline Fraction lb_eager() { return Fraction(4, 3); }

/// Theorem 2.5 (d = 3x - 1).
inline Fraction lb_balance(std::int32_t d) {
  REQSCHED_REQUIRE(d >= 2 && (d + 1) % 3 == 0);
  return Fraction(5 * d + 2, 4 * d + 1);
}

/// Theorem 2.6: every deterministic online algorithm.
inline Fraction lb_universal() { return Fraction(45, 41); }

// ---------------- generalized-model references (ROADMAP item 2) ----------

/// Reference ratio for greedy online b-matching with uniform server
/// capacity b: 1 / (1 - (b/(b+1))^b), the classic Kalyanasundaram–Pruhs
/// bound whose bounded-degree refinements Albers–Schubert prove tight.
/// b = 1 recovers the paper's 2; the curve decreases toward e/(e-1) as
/// capacities grow — the yardstick EXPERIMENTS compares capacitated
/// greedy runs against.
inline double capacitated_greedy_ratio(std::int32_t b) {
  REQSCHED_REQUIRE(b >= 1);
  const double keep =
      std::pow(static_cast<double>(b) / (static_cast<double>(b) + 1.0), b);
  return 1.0 / (1.0 - keep);
}

/// Limit of capacitated_greedy_ratio as b -> infinity.
inline double capacitated_greedy_limit() {
  return std::exp(1.0) / (std::exp(1.0) - 1.0);
}

/// Park's (k, d)-choice balls-into-bins gap: placing batches of k balls
/// into the k least-loaded of d sampled bins keeps the maximum load within
/// ln ln n / ln(d/k) + O(1) of the average. k = 1 recovers the classic
/// d-choice double-logarithmic gap. In our model, d is the request's
/// alternative count; the prediction is the backlog imbalance a k-choice
/// greedy should exhibit on uniform random traffic.
inline double park_kd_gap(std::int64_t n, std::int32_t k, std::int32_t d) {
  REQSCHED_REQUIRE(n >= 2 && k >= 1 && d > k);
  return std::log(std::log(static_cast<double>(n))) /
         std::log(static_cast<double>(d) / static_cast<double>(k));
}

/// The k = 1 specialization: the d-choice max-load gap ln ln n / ln d.
inline double choice_load_gap(std::int64_t n, std::int32_t choices) {
  return park_kd_gap(n, 1, choices);
}

}  // namespace reqsched
