#include "analysis/prefix.hpp"

namespace reqsched {

PrefixOptimumProbe::PrefixOptimumProbe(IStrategy& inner) : inner_(&inner) {}

PrefixOptimumProbe::PrefixOptimumProbe(std::unique_ptr<IStrategy> inner)
    : owned_(std::move(inner)), inner_(owned_.get()) {
  REQSCHED_REQUIRE(inner_ != nullptr);
}

void PrefixOptimumProbe::reset(const ProblemConfig& config) {
  inner_->reset(config);
  tracker_.emplace(config);
  samples_.clear();
}

void PrefixOptimumProbe::on_round(Simulator& sim) {
  inner_->on_round(sim);
  REQSCHED_REQUIRE_MSG(tracker_.has_value(),
                       "probe used without a reset() from the simulator");

  for (const RequestId id : sim.injected_now()) {
    tracker_->add_request(sim.request(id));
  }

  RoundSample sample = sample_simulator_round(sim);
  sample.prefix_opt = tracker_->optimum();
  // metrics().fulfilled counts rounds before this one; the current row is
  // booked and will execute unconditionally right after on_round returns.
  sample.prefix_fulfilled = sim.metrics().fulfilled + sample.executed;
  REQSCHED_CHECK_MSG(sample.prefix_opt >= sample.prefix_fulfilled,
                     "online fulfillment beat the prefix optimum at round "
                         << sample.round);
  sample.prefix_ratio =
      competitive_ratio(sample.prefix_opt, sample.prefix_fulfilled);
  samples_.push_back(sample);
}

}  // namespace reqsched
