#include "analysis/registry.hpp"

#include "local/local_eager.hpp"
#include "local/local_fix.hpp"
#include "strategies/edf.hpp"
#include "strategies/global.hpp"
#include "strategies/randomized.hpp"
#include "util/assert.hpp"

namespace reqsched {

std::vector<std::string> global_strategy_names() {
  return {"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance"};
}

std::vector<std::string> local_strategy_names() {
  return {"A_local_fix", "A_local_eager"};
}

std::vector<std::string> all_strategy_names() {
  std::vector<std::string> names = global_strategy_names();
  for (auto& name : local_strategy_names()) names.push_back(name);
  names.push_back("EDF_two_choice");
  names.push_back("EDF_two_choice_cancel");
  names.push_back("EDF_single");
  names.push_back("A_local_eager_merged");
  names.push_back("A_current_randomized");
  names.push_back("A_fix_randomized");
  return names;
}

std::unique_ptr<IStrategy> make_strategy(const std::string& name) {
  if (name == "A_fix") return std::make_unique<AFix>();
  if (name == "A_current") return std::make_unique<ACurrent>();
  if (name == "A_fix_balance") return std::make_unique<AFixBalance>();
  if (name == "A_eager") return std::make_unique<AEager>();
  if (name == "A_balance") return std::make_unique<ABalance>();
  if (name == "A_local_fix") return std::make_unique<ALocalFix>();
  if (name == "A_local_eager") return std::make_unique<ALocalEager>();
  if (name == "A_local_eager_merged") {
    return std::make_unique<ALocalEager>(true);
  }
  if (name == "EDF_single") return std::make_unique<EdfSingle>();
  if (name == "EDF_two_choice") return std::make_unique<EdfTwoChoice>(false);
  if (name == "EDF_two_choice_cancel") {
    return std::make_unique<EdfTwoChoice>(true);
  }
  if (name == "A_current_randomized") {
    return std::make_unique<RandomizedCurrent>();
  }
  if (name == "A_fix_randomized") return std::make_unique<RandomizedFix>();
  REQSCHED_REQUIRE_MSG(false, "unknown strategy: " << name);
  return nullptr;
}

}  // namespace reqsched
