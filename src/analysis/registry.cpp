#include "analysis/registry.hpp"

#include <sstream>

#include "local/local_eager.hpp"
#include "local/local_fix.hpp"
#include "strategies/edf.hpp"
#include "strategies/global.hpp"
#include "strategies/randomized.hpp"
#include "util/assert.hpp"

namespace reqsched {

const std::vector<StrategyInfo>& strategy_registry() {
  // Capability columns: k_choice / capacitated / occupancy. The five
  // StrategyRuntime globals run on the delta window's capacity-unit
  // representation, so they cover the whole generalized model. The local
  // strategies' message protocol and the EDF baselines' copy queues are
  // defined for exactly the paper's request shape; the randomized variants
  // iterate alternative lists but rebuild slot-level (one right per slot)
  // problems, so they are k-choice only.
  static const std::vector<StrategyInfo> registry = {
      {"A_fix", StrategyClass::kGlobal, /*incremental=*/true,
       /*needs_history=*/false, /*randomized=*/false,
       /*k_choice=*/true, /*capacitated=*/true, /*occupancy=*/true},
      {"A_current", StrategyClass::kGlobal, true, false, false, true, true,
       true},
      {"A_fix_balance", StrategyClass::kGlobal, true, false, false, true, true,
       true},
      {"A_eager", StrategyClass::kGlobal, true, false, false, true, true,
       true},
      {"A_balance", StrategyClass::kGlobal, true, false, false, true, true,
       true},
      {"A_local_fix", StrategyClass::kLocal, true, false, false},
      {"A_local_eager", StrategyClass::kLocal, true, false, false},
      {"EDF_two_choice", StrategyClass::kBaseline, false, false, false},
      {"EDF_two_choice_cancel", StrategyClass::kBaseline, false, false, false},
      {"EDF_single", StrategyClass::kBaseline, false, false, false},
      {"A_local_eager_merged", StrategyClass::kLocal, true, false, false},
      {"A_current_randomized", StrategyClass::kGlobal, false, false, true,
       true, false, false},
      {"A_fix_randomized", StrategyClass::kGlobal, false, false, true, true,
       false, false},
  };
  return registry;
}

const StrategyInfo* find_strategy(const std::string& name) {
  for (const StrategyInfo& info : strategy_registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

bool strategy_exists(const std::string& name) {
  return find_strategy(name) != nullptr;
}

std::vector<std::string> global_strategy_names() {
  return {"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance"};
}

std::vector<std::string> local_strategy_names() {
  return {"A_local_fix", "A_local_eager"};
}

std::vector<std::string> all_strategy_names() {
  std::vector<std::string> names;
  for (const StrategyInfo& info : strategy_registry()) {
    names.push_back(info.name);
  }
  return names;
}

std::vector<std::string> strategies_supporting(bool k_choice, bool capacitated,
                                               bool occupancy) {
  std::vector<std::string> names;
  for (const StrategyInfo& info : strategy_registry()) {
    if (k_choice && !info.k_choice) continue;
    if (capacitated && !info.capacitated) continue;
    if (occupancy && !info.occupancy) continue;
    names.push_back(info.name);
  }
  return names;
}

std::unique_ptr<IStrategy> make_strategy(const std::string& name,
                                         std::uint64_t seed) {
  if (name == "A_fix") return std::make_unique<AFix>();
  if (name == "A_current") return std::make_unique<ACurrent>();
  if (name == "A_fix_balance") return std::make_unique<AFixBalance>();
  if (name == "A_eager") return std::make_unique<AEager>();
  if (name == "A_balance") return std::make_unique<ABalance>();
  if (name == "A_local_fix") return std::make_unique<ALocalFix>();
  if (name == "A_local_eager") return std::make_unique<ALocalEager>();
  if (name == "A_local_eager_merged") {
    return std::make_unique<ALocalEager>(true);
  }
  if (name == "EDF_single") return std::make_unique<EdfSingle>();
  if (name == "EDF_two_choice") return std::make_unique<EdfTwoChoice>(false);
  if (name == "EDF_two_choice_cancel") {
    return std::make_unique<EdfTwoChoice>(true);
  }
  if (name == "A_current_randomized") {
    return std::make_unique<RandomizedCurrent>(seed);
  }
  if (name == "A_fix_randomized") {
    return std::make_unique<RandomizedFix>(seed);
  }
  std::ostringstream known;
  for (const StrategyInfo& info : strategy_registry()) {
    known << (known.tellp() > 0 ? ", " : "") << info.name;
  }
  REQSCHED_REQUIRE_MSG(false, "unknown strategy: " << name << " (registered: "
                                                   << known.str() << ")");
  return nullptr;
}

}  // namespace reqsched
