// Augmenting-path analysis of an online outcome against the offline optimum.
//
// The paper's upper-bound proofs are arguments about the ORDER of augmenting
// paths in (G, M_online) relative to a fixed maximum matching: A_fix leaves
// no order-1 paths, A_eager/A_balance leave none of order <= 2, etc. This
// module decomposes M_online (+) M_OPT into alternating components and
// histograms the augmenting-path orders, turning those proof invariants into
// measurable, testable quantities.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "core/types.hpp"
#include "matching/slot_graph.hpp"

namespace reqsched {

struct PathStats {
  /// histogram[k] = number of augmenting paths of order k (k requests on
  /// the path). Index 0 is unused.
  std::vector<std::int64_t> order_histogram;
  std::int64_t augmenting_paths = 0;
  /// Smallest order among augmenting paths; 0 when there are none.
  std::int64_t min_order = 0;
  /// |M_OPT| - |M_online| (== number of augmenting paths).
  std::int64_t deficiency = 0;
};

/// Decomposes the symmetric difference of the online matching and a maximum
/// matching of the full request graph. `online` holds (request, execution
/// slot) pairs as produced by Simulator::online_matching().
PathStats analyze_augmenting_paths(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online);

/// Scratch-reusing variant: builds the graph and solves OPT into `scratch`.
PathStats analyze_augmenting_paths(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online,
    SolverScratch& scratch);

/// Lowest level: analyses against a pre-built graph and a pre-computed
/// maximum matching (e.g. the ones solve_offline() left in the scratch —
/// `opt` may alias `scratch.matching`). Avoids re-solving OPT entirely.
PathStats analyze_augmenting_paths(
    const SlotGraph& slots, const Matching& opt,
    const std::vector<std::pair<RequestId, SlotRef>>& online,
    SolverScratch& scratch);

}  // namespace reqsched
