// ASCII schedule timelines: resources x rounds with the executed request in
// each cell — the fastest way to SEE an adversarial construction work.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "core/types.hpp"

namespace reqsched {

struct TimelineOptions {
  Round from = 0;
  Round to = -1;  ///< inclusive; -1 = trace.last_useful_round()
  /// Label cells by request id modulo 62 (0-9a-zA-Z); '.' = idle slot.
  bool show_ids = true;
};

/// Renders the executed schedule (request, slot) pairs as a grid:
/// one line per resource, one column per round.
std::string render_timeline(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& executions,
    const TimelineOptions& options = {});

}  // namespace reqsched
