#include "analysis/overload.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"

namespace reqsched {

OverloadStats analyze_overload(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& executions) {
  OverloadStats stats;
  if (trace.empty()) return stats;
  const std::int32_t n = trace.config().n;
  const std::int32_t d = trace.config().d;

  std::vector<SlotRef> executed_at(static_cast<std::size_t>(trace.size()),
                                   kNoSlot);
  for (const auto& [id, slot] : executions) {
    executed_at[static_cast<std::size_t>(id)] = slot;
  }

  // Group requests by injection round.
  std::map<Round, std::vector<RequestId>> by_round;
  for (const Request& r : trace.requests()) {
    by_round[r.arrival].push_back(r.id);
  }

  // Per overloaded round: closure of the overloaded resource set.
  std::vector<std::set<Round>> overloaded_group_rounds(
      static_cast<std::size_t>(n));  // per resource: group start rounds
  std::map<Round, std::vector<char>> overloaded_sets;

  for (const auto& [t, ids] : by_round) {
    std::vector<char> in_set(static_cast<std::size_t>(n), 0);
    bool any_failed = false;
    for (const RequestId id : ids) {
      const Request& r = trace.request(id);
      if (executed_at[static_cast<std::size_t>(id)].valid()) continue;
      any_failed = true;
      ++stats.failed_requests;
      for (const ResourceId alt : r.alts) {
        in_set[static_cast<std::size_t>(alt)] = 1;
      }
    }
    if (!any_failed) continue;
    ++stats.overloaded_rounds;

    // Close under alternatives of round-t requests scheduled inside the set.
    for (bool grew = true; grew;) {
      grew = false;
      for (const RequestId id : ids) {
        const Request& r = trace.request(id);
        const SlotRef slot = executed_at[static_cast<std::size_t>(id)];
        if (!slot.valid() || !in_set[static_cast<std::size_t>(slot.resource)]) {
          continue;
        }
        for (const ResourceId alt : r.alts) {
          if (!in_set[static_cast<std::size_t>(alt)]) {
            in_set[static_cast<std::size_t>(alt)] = 1;
            grew = true;
          }
        }
      }
    }
    for (ResourceId i = 0; i < n; ++i) {
      if (in_set[static_cast<std::size_t>(i)]) {
        overloaded_group_rounds[static_cast<std::size_t>(i)].insert(t);
        stats.groups.push_back(OverloadedGroup{i, t, t + d - 1});
      }
    }
    overloaded_sets.emplace(t, std::move(in_set));
  }

  // Overloaded executions: round-t requests executed inside S_t.
  for (const Request& r : trace.requests()) {
    const SlotRef slot = executed_at[static_cast<std::size_t>(r.id)];
    if (!slot.valid()) continue;
    const auto it = overloaded_sets.find(r.arrival);
    if (it != overloaded_sets.end() &&
        it->second[static_cast<std::size_t>(slot.resource)]) {
      ++stats.overloaded_executions;
    } else {
      ++stats.normal_executions;
    }
  }

  // Per resource: merge group spans [t, t+d-1] into maximal intervals.
  Round total_length = 0;
  for (ResourceId i = 0; i < n; ++i) {
    const auto& starts = overloaded_group_rounds[static_cast<std::size_t>(i)];
    Round open_from = kNoRound;
    Round open_to = kNoRound;
    for (const Round t : starts) {
      if (open_from == kNoRound) {
        open_from = t;
        open_to = t + d - 1;
      } else if (t <= open_to + 1) {
        open_to = std::max(open_to, t + d - 1);
      } else {
        stats.intervals.push_back(OverloadedInterval{i, open_from, open_to});
        total_length += open_to - open_from + 1;
        open_from = t;
        open_to = t + d - 1;
      }
    }
    if (open_from != kNoRound) {
      stats.intervals.push_back(OverloadedInterval{i, open_from, open_to});
      total_length += open_to - open_from + 1;
    }
  }
  if (!stats.intervals.empty()) {
    stats.mean_interval_length =
        static_cast<double>(total_length) /
        static_cast<double>(stats.intervals.size());
  }
  if (stats.overloaded_executions > 0) {
    stats.failures_per_overloaded_execution =
        static_cast<double>(stats.failed_requests) /
        static_cast<double>(stats.overloaded_executions);
  }
  return stats;
}

}  // namespace reqsched
