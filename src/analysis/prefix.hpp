// Per-round competitive-ratio observability.
//
// PrefixOptimumProbe decorates a strategy and, besides the usual per-round
// counters, maintains the *exact* offline optimum of the request prefix seen
// so far (one incremental augmenting-path search per arrival — see
// matching/incremental.hpp). Each RoundSample then carries OPT(sigma[0..t]),
// the online fulfillments through round t, and their quotient: the raw
// competitive ratio at every horizon of a single run.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analysis/timeseries.hpp"
#include "engine/stats.hpp"  // IWYU pragma: export — competitive_ratio
#include "matching/incremental.hpp"

namespace reqsched {

class PrefixOptimumProbe final : public IStrategy {
 public:
  /// Non-owning: `inner` must outlive the probe.
  explicit PrefixOptimumProbe(IStrategy& inner);
  explicit PrefixOptimumProbe(std::unique_ptr<IStrategy> inner);

  std::string name() const override { return inner_->name(); }
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override {
    return inner_->wants_window_problem();
  }
  bool wants_admission_fast_path() const override {
    return inner_->wants_admission_fast_path();
  }
  bool admission_probe_current_round_only() const override {
    return inner_->admission_probe_current_round_only();
  }
  bool admission_needs_empty_backlog() const override {
    return inner_->admission_needs_empty_backlog();
  }

  const std::vector<RoundSample>& samples() const { return samples_; }
  std::vector<RoundSample> take_samples() { return std::move(samples_); }

  /// The exact offline optimum of every request injected so far.
  std::int64_t prefix_optimum() const {
    return tracker_ ? tracker_->optimum() : 0;
  }

 private:
  std::unique_ptr<IStrategy> owned_;
  IStrategy* inner_;
  std::optional<PrefixOptimumTracker> tracker_;
  std::vector<RoundSample> samples_;
};

}  // namespace reqsched
