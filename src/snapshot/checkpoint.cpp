#include "snapshot/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

namespace reqsched {

namespace {

constexpr char kMagic[8] = {'R', 'Q', 'S', 'N', 'A', 'P', '0', '1'};

// Section tags: every structure's bytes are preceded by its tag, so a
// truncated or reordered payload fails loudly at the first boundary instead
// of decoding one structure's bytes as another's.
constexpr std::uint32_t kSecManifest = 1;
constexpr std::uint32_t kSecWorkload = 2;
constexpr std::uint32_t kSecStrategy = 3;
constexpr std::uint32_t kSecPool = 4;
constexpr std::uint32_t kSecSchedule = 5;
constexpr std::uint32_t kSecWindow = 6;
constexpr std::uint32_t kSecOpt = 7;
constexpr std::uint32_t kSecTrace = 8;
constexpr std::uint32_t kSecEngine = 9;
constexpr std::uint32_t kSecStreamStats = 10;

void expect_tag(SnapshotReader& r, std::uint32_t tag, const char* name) {
  const std::uint32_t got = r.u32();
  REQSCHED_CHECK_MSG(got == tag, "checkpoint payload: expected the "
                                     << name << " section (tag " << tag
                                     << "), found tag " << got);
}

/// Reads a u64 element count and rejects counts that could not possibly fit
/// in the remaining payload (`min_elem_bytes` per element) — a corrupted
/// count must fail here, not in a gigabyte reserve().
std::size_t decode_count(SnapshotReader& r, std::size_t min_elem_bytes,
                         const char* what) {
  const std::uint64_t count = r.u64();
  REQSCHED_CHECK_MSG(count <= r.remaining() / min_elem_bytes,
                     "checkpoint payload: implausible " << what << " count "
                                                        << count);
  return static_cast<std::size_t>(count);
}

void encode_slot(SnapshotWriter& w, SlotRef slot) {
  w.i32(slot.resource);
  w.i64(slot.round);
}

SlotRef decode_slot(SnapshotReader& r) {
  SlotRef slot;
  slot.resource = r.i32();
  slot.round = r.i64();
  return slot;
}

void encode_request(SnapshotWriter& w, const Request& req) {
  w.i64(req.id);
  w.i64(req.arrival);
  w.i64(req.deadline);
  w.i32(req.occupancy);
  w.i32(req.alts.size());
  for (const ResourceId alt : req.alts) w.i32(alt);
}

constexpr std::size_t kMinRequestBytes = 8 + 8 + 8 + 4 + 4;

Request decode_request(SnapshotReader& r) {
  Request req;
  req.id = r.i64();
  req.arrival = r.i64();
  req.deadline = r.i64();
  req.occupancy = r.i32();
  const std::int32_t alt_count = r.i32();
  REQSCHED_CHECK_MSG(alt_count >= 0 && alt_count <= kMaxAlternatives,
                     "checkpoint payload: request with " << alt_count
                                                         << " alternatives");
  for (std::int32_t i = 0; i < alt_count; ++i) req.alts.push_back(r.i32());
  return req;
}

void encode_i32_list(SnapshotWriter& w, const std::vector<std::int32_t>& v) {
  w.u64(v.size());
  for (const std::int32_t x : v) w.i32(x);
}

std::vector<std::int32_t> decode_i32_list(SnapshotReader& r,
                                          const char* what) {
  const std::size_t count = decode_count(r, 4, what);
  std::vector<std::int32_t> v;
  v.reserve(count);
  for (std::size_t i = 0; i < count; ++i) v.push_back(r.i32());
  return v;
}

void encode_id_list(SnapshotWriter& w, const std::vector<RequestId>& v) {
  w.u64(v.size());
  for (const RequestId x : v) w.i64(x);
}

std::vector<RequestId> decode_id_list(SnapshotReader& r, const char* what) {
  const std::size_t count = decode_count(r, 8, what);
  std::vector<RequestId> v;
  v.reserve(count);
  for (std::size_t i = 0; i < count; ++i) v.push_back(r.i64());
  return v;
}

void encode_words(SnapshotWriter& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (const std::uint64_t x : v) w.u64(x);
}

std::vector<std::uint64_t> decode_words(SnapshotReader& r, const char* what) {
  const std::size_t count = decode_count(r, 8, what);
  std::vector<std::uint64_t> v;
  v.reserve(count);
  for (std::size_t i = 0; i < count; ++i) v.push_back(r.u64());
  return v;
}

/// Verifies magic, version, and the trailing checksum; returns the payload
/// span (everything between the version and the checksum). All corruption
/// classes fail here, before a single payload byte is interpreted.
std::span<const std::uint8_t> verify_container(
    std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 4;
  REQSCHED_CHECK_MSG(bytes.size() >= kHeader + 8,
                     "not a reqsched checkpoint: " << bytes.size()
                                                   << " bytes is too short");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    REQSCHED_CHECK_MSG(bytes[i] == static_cast<std::uint8_t>(kMagic[i]),
                       "not a reqsched checkpoint: bad magic");
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(bytes[sizeof(kMagic) +
                                                static_cast<std::size_t>(i)])
               << (8 * i);
  }
  REQSCHED_CHECK_MSG(version == CheckpointManager::kFormatVersion,
                     "unsupported checkpoint format version " << version);
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  bytes[bytes.size() - 8 + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  const std::uint64_t computed = fnv1a(bytes.first(bytes.size() - 8));
  REQSCHED_CHECK_MSG(stored == computed,
                     "checkpoint checksum mismatch: the file is corrupted");
  return bytes.subspan(kHeader, bytes.size() - kHeader - 8);
}

}  // namespace

// The one translation unit allowed behind the friend declarations: each
// structure's verbatim state crosses here, and only here, between fields and
// bytes. Decode never touches a live structure — every section lands in a
// plain image first, so any validation failure leaves the target untouched.
struct SnapshotAccess {
  // ---- decoded images ----

  struct PoolImage {
    bool retain = true;
    std::vector<Request> slab;
    std::vector<std::int32_t> free_list;
    std::vector<RequestStatus> status;
    std::vector<SlotRef> fulfilled;
    std::vector<std::int32_t> ring;
    RequestId base = 0;
    RequestId next = 0;
    std::vector<std::pair<Round, RequestId>> marks;
    Round last_arrival = -1;
    std::int64_t live = 0;
    std::int64_t peak_live = 0;
    std::int64_t cur_round_count = 0;
    std::int64_t max_per_round = 0;
  };

  struct ScheduleImage {
    Round window_begin = 0;
    std::vector<RequestId> grid;
    std::vector<RequestId> booked_ids;
    std::vector<SlotRef> booked_slots;
    std::vector<std::int32_t> booked_occupancy;
  };

  struct WindowImage {
    Round window_begin = 0;
    std::vector<Request> rows;
    std::vector<SlotRef> booked;
    std::vector<RequestId> grid;
  };

  struct OptImage {
    std::vector<std::vector<std::int32_t>> left_slots;
    std::vector<std::int32_t> left_match;
    std::vector<std::int32_t> left_free;
    std::vector<std::int64_t> slot_keys;
    std::vector<std::int32_t> slot_match;
    std::vector<std::uint8_t> slot_dead;
    std::vector<std::int32_t> slot_free;
    std::int64_t requests_seen = 0;
    std::int64_t retired_matched = 0;
    std::int64_t live_matched = 0;
    std::int64_t live_slot_count = 0;
    std::int64_t peak_live_slots = 0;
  };

  struct TraceImage {
    Round last_useful = kNoRound;
    std::vector<Request> requests;
  };

  struct EngineImage {
    bool window_active = false;
    bool fast_path_active = false;
    bool fast_current_round_only = false;
    bool fast_needs_empty_backlog = false;
    AdmissionOutcome outcome = AdmissionOutcome::kInactive;
    std::int64_t fast_admitted = 0;
    std::int64_t fast_rounds = 0;
    std::int64_t fast_fallbacks = 0;
    std::vector<RequestId> alive;
    Metrics metrics{};
    bool ran_any_round = false;
  };

  // ---- request pool ----

  static void encode_pool(SnapshotWriter& w, const RequestPool& p) {
    w.boolean(p.retain_);
    w.u64(p.slab_.size());
    for (const Request& req : p.slab_) encode_request(w, req);
    encode_i32_list(w, p.free_);
    w.u64(p.status_.size());
    for (const RequestStatus s : p.status_) {
      w.u8(static_cast<std::uint8_t>(s));
    }
    w.u64(p.fulfilled_slot_.size());
    for (const SlotRef slot : p.fulfilled_slot_) encode_slot(w, slot);
    encode_i32_list(w, p.ring_);
    w.i64(p.base_);
    w.i64(p.next_);
    w.u64(p.round_marks_.size());
    for (const auto& [round, id] : p.round_marks_) {
      w.i64(round);
      w.i64(id);
    }
    w.i64(p.last_arrival_);
    w.i64(p.live_);
    w.i64(p.peak_live_);
    w.i64(p.cur_round_count_);
    w.i64(p.max_per_round_);
  }

  static PoolImage decode_pool(SnapshotReader& r) {
    PoolImage img;
    img.retain = r.boolean();
    const std::size_t slab_count =
        decode_count(r, kMinRequestBytes, "pool slab");
    img.slab.reserve(slab_count);
    for (std::size_t i = 0; i < slab_count; ++i) {
      img.slab.push_back(decode_request(r));
    }
    img.free_list = decode_i32_list(r, "pool free list");
    const std::size_t status_count = decode_count(r, 1, "pool status");
    img.status.reserve(status_count);
    for (std::size_t i = 0; i < status_count; ++i) {
      const std::uint8_t s = r.u8();
      REQSCHED_CHECK_MSG(s <= static_cast<std::uint8_t>(RequestStatus::kExpired),
                         "checkpoint payload: invalid request status " << +s);
      img.status.push_back(static_cast<RequestStatus>(s));
    }
    const std::size_t slot_count = decode_count(r, 12, "pool fulfilled slots");
    img.fulfilled.reserve(slot_count);
    for (std::size_t i = 0; i < slot_count; ++i) {
      img.fulfilled.push_back(decode_slot(r));
    }
    img.ring = decode_i32_list(r, "pool ring");
    REQSCHED_CHECK_MSG(
        img.ring.empty() || (img.ring.size() & (img.ring.size() - 1)) == 0,
        "checkpoint payload: pool ring size " << img.ring.size()
                                              << " is not a power of two");
    const auto slab_size = static_cast<std::int32_t>(img.slab.size());
    for (const std::int32_t idx : img.free_list) {
      REQSCHED_CHECK_MSG(idx >= 0 && idx < slab_size,
                         "checkpoint payload: pool free-list slot " << idx
                                                                    << " out of range");
    }
    for (const std::int32_t idx : img.ring) {
      REQSCHED_CHECK_MSG(idx >= RequestPool::kExpiredTomb && idx < slab_size,
                         "checkpoint payload: pool ring entry " << idx
                                                                << " out of range");
    }
    img.base = r.i64();
    img.next = r.i64();
    const std::size_t mark_count = decode_count(r, 16, "pool round marks");
    img.marks.reserve(mark_count);
    for (std::size_t i = 0; i < mark_count; ++i) {
      const Round round = r.i64();
      const RequestId id = r.i64();
      img.marks.emplace_back(round, id);
    }
    img.last_arrival = r.i64();
    img.live = r.i64();
    img.peak_live = r.i64();
    img.cur_round_count = r.i64();
    img.max_per_round = r.i64();
    return img;
  }

  static void apply_pool(RequestPool& p, PoolImage&& img) {
    REQSCHED_CHECK_MSG(
        p.retain_ == img.retain,
        "checkpoint retain_history does not match the target engine");
    p.slab_ = std::move(img.slab);
    p.free_ = std::move(img.free_list);
    p.status_ = std::move(img.status);
    p.fulfilled_slot_ = std::move(img.fulfilled);
    p.ring_ = std::move(img.ring);
    p.base_ = img.base;
    p.next_ = img.next;
    p.round_marks_.clear();
    for (const auto& mark : img.marks) p.round_marks_.push_back(mark);
    p.last_arrival_ = img.last_arrival;
    p.live_ = img.live;
    p.peak_live_ = img.peak_live;
    p.cur_round_count_ = img.cur_round_count;
    p.max_per_round_ = img.max_per_round;
  }

  // ---- schedule ----

  static void encode_schedule(SnapshotWriter& w, const Schedule& s) {
    w.i64(s.window_begin_);
    encode_id_list(w, s.grid_);
    // unordered_map iteration order is not deterministic; sort by id so the
    // same state always produces the same bytes (and the same checksum).
    std::vector<std::pair<RequestId, Schedule::Booking>> bookings(
        s.slot_of_.begin(), s.slot_of_.end());
    std::sort(bookings.begin(), bookings.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(bookings.size());
    for (const auto& [id, booking] : bookings) {
      w.i64(id);
      encode_slot(w, booking.slot);
      w.i32(booking.occupancy);
    }
  }

  static ScheduleImage decode_schedule(SnapshotReader& r,
                                       std::size_t expected_grid) {
    ScheduleImage img;
    img.window_begin = r.i64();
    img.grid = decode_id_list(r, "schedule grid");
    REQSCHED_CHECK_MSG(img.grid.size() == expected_grid,
                       "checkpoint payload: schedule grid has "
                           << img.grid.size() << " units, engine expects "
                           << expected_grid);
    const std::size_t count = decode_count(r, 24, "schedule bookings");
    img.booked_ids.reserve(count);
    img.booked_slots.reserve(count);
    img.booked_occupancy.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      img.booked_ids.push_back(r.i64());
      img.booked_slots.push_back(decode_slot(r));
      img.booked_occupancy.push_back(r.i32());
    }
    return img;
  }

  static void apply_schedule(Schedule& s, ScheduleImage&& img) {
    s.window_begin_ = img.window_begin;
    s.grid_ = std::move(img.grid);
    s.slot_of_.clear();
    for (std::size_t i = 0; i < img.booked_ids.size(); ++i) {
      s.slot_of_.emplace(
          img.booked_ids[i],
          Schedule::Booking{img.booked_slots[i], img.booked_occupancy[i]});
    }
  }

  // ---- delta window problem ----

  static void encode_window(SnapshotWriter& w, const DeltaWindowProblem& d) {
    w.i64(d.window_begin_);
    std::vector<std::pair<RequestId, const DeltaWindowProblem::Row*>> rows;
    rows.reserve(d.rows_.size());
    for (const auto& [id, row] : d.rows_) rows.emplace_back(id, &row);
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(rows.size());
    for (const auto& [id, row] : rows) {
      encode_request(w, row->request);
      encode_slot(w, row->booked);
    }
    encode_id_list(w, d.grid_);
  }

  static WindowImage decode_window(SnapshotReader& r,
                                   std::size_t expected_grid) {
    WindowImage img;
    img.window_begin = r.i64();
    const std::size_t count =
        decode_count(r, kMinRequestBytes + 12, "window rows");
    img.rows.reserve(count);
    img.booked.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      img.rows.push_back(decode_request(r));
      img.booked.push_back(decode_slot(r));
    }
    img.grid = decode_id_list(r, "window grid");
    REQSCHED_CHECK_MSG(img.grid.size() == expected_grid,
                       "checkpoint payload: window grid has "
                           << img.grid.size() << " units, engine expects "
                           << expected_grid);
    return img;
  }

  /// Overwrites the authoritative state (rows, unit grid, window origin) and
  /// lets the owner file re-derive every maintained structure — the capacity
  /// internals never cross the snapshot boundary.
  static void apply_window(DeltaWindowProblem& d, WindowImage&& img) {
    d.window_begin_ = img.window_begin;
    d.grid_ = std::move(img.grid);
    d.rows_.clear();
    for (std::size_t i = 0; i < img.rows.size(); ++i) {
      const RequestId id = img.rows[i].id;
      d.rows_.emplace(id,
                      DeltaWindowProblem::Row{img.rows[i], img.booked[i]});
    }
    d.rebuild_derived_state();
  }

  // ---- windowed prefix OPT ----

  static void encode_opt(SnapshotWriter& w, const WindowedPrefixOpt& o) {
    w.u64(o.lefts_.size());
    for (const auto& left : o.lefts_) {
      encode_i32_list(w, left.slots);
      w.i32(left.match);
    }
    encode_i32_list(w, o.left_free_);
    w.u64(o.slots_.size());
    for (const auto& slot : o.slots_) {
      w.i64(slot.key);
      w.i32(slot.match);
      w.boolean(slot.dead);
      // slot.stamp is search-epoch scratch: restore resets all stamps and
      // the epoch counter to zero together, which is the freshly-reset
      // relation (every search pre-increments the epoch).
    }
    encode_i32_list(w, o.slot_free_);
    w.i64(o.requests_seen_);
    w.i64(o.retired_matched_);
    w.i64(o.live_matched_);
    w.i64(o.live_slot_count_);
    w.i64(o.peak_live_slots_);
  }

  static OptImage decode_opt(SnapshotReader& r) {
    OptImage img;
    const std::size_t left_count = decode_count(r, 12, "OPT lefts");
    img.left_slots.reserve(left_count);
    img.left_match.reserve(left_count);
    for (std::size_t i = 0; i < left_count; ++i) {
      img.left_slots.push_back(decode_i32_list(r, "OPT left adjacency"));
      img.left_match.push_back(r.i32());
    }
    img.left_free = decode_i32_list(r, "OPT left free list");
    const std::size_t slot_count = decode_count(r, 13, "OPT slots");
    img.slot_keys.reserve(slot_count);
    img.slot_match.reserve(slot_count);
    img.slot_dead.reserve(slot_count);
    for (std::size_t i = 0; i < slot_count; ++i) {
      img.slot_keys.push_back(r.i64());
      img.slot_match.push_back(r.i32());
      img.slot_dead.push_back(r.boolean() ? 1 : 0);
    }
    img.slot_free = decode_i32_list(r, "OPT slot free list");
    img.requests_seen = r.i64();
    img.retired_matched = r.i64();
    img.live_matched = r.i64();
    img.live_slot_count = r.i64();
    img.peak_live_slots = r.i64();
    return img;
  }

  static void apply_opt(WindowedPrefixOpt& o, OptImage&& img) {
    o.lefts_.clear();
    o.lefts_.reserve(img.left_slots.size());
    for (std::size_t i = 0; i < img.left_slots.size(); ++i) {
      WindowedPrefixOpt::LeftNode left;
      left.slots = std::move(img.left_slots[i]);
      left.match = img.left_match[i];
      o.lefts_.push_back(std::move(left));
    }
    o.left_free_ = std::move(img.left_free);
    o.slots_.clear();
    o.slots_.reserve(img.slot_keys.size());
    o.slot_index_.clear();
    for (std::size_t i = 0; i < img.slot_keys.size(); ++i) {
      o.slots_.push_back(WindowedPrefixOpt::SlotNode{
          img.slot_keys[i], img.slot_match[i], img.slot_dead[i] != 0, 0});
      if (img.slot_keys[i] >= 0) {
        const bool inserted =
            o.slot_index_.emplace(img.slot_keys[i],
                                  static_cast<std::int32_t>(i))
                .second;
        REQSCHED_CHECK_MSG(inserted,
                           "checkpoint payload: OPT slot key "
                               << img.slot_keys[i] << " interned twice");
      }
    }
    o.slot_free_ = std::move(img.slot_free);
    o.root_slots_.clear();
    o.stack_.clear();
    o.visited_.clear();
    o.bfs_.clear();
    o.stamp_ = 0;
    o.requests_seen_ = img.requests_seen;
    o.retired_matched_ = img.retired_matched;
    o.live_matched_ = img.live_matched;
    o.live_slot_count_ = img.live_slot_count;
    o.peak_live_slots_ = img.peak_live_slots;
  }

  // ---- trace ----

  static void encode_trace(SnapshotWriter& w, const Trace& t) {
    w.i64(t.last_useful_round_);
    w.u64(t.requests_.size());
    for (const Request& req : t.requests_) encode_request(w, req);
  }

  static TraceImage decode_trace(SnapshotReader& r) {
    TraceImage img;
    img.last_useful = r.i64();
    const std::size_t count = decode_count(r, kMinRequestBytes, "trace");
    img.requests.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      img.requests.push_back(decode_request(r));
    }
    return img;
  }

  static void apply_trace(Trace& t, TraceImage&& img) {
    t.requests_ = std::move(img.requests);
    t.last_useful_round_ = img.last_useful;
  }

  // ---- engine bookkeeping ----

  static void encode_engine(SnapshotWriter& w, const StreamingEngine& e) {
    w.boolean(e.window_active_);
    w.boolean(e.fast_path_active_);
    w.boolean(e.fast_current_round_only_);
    w.boolean(e.fast_needs_empty_backlog_);
    w.u8(static_cast<std::uint8_t>(e.admission_outcome_));
    w.i64(e.fast_admitted_);
    w.i64(e.fast_rounds_);
    w.i64(e.fast_fallbacks_);
    encode_id_list(w, e.alive_);
    const Metrics& m = e.metrics_;
    w.i64(m.rounds);
    w.i64(m.injected);
    w.i64(m.fulfilled);
    w.i64(m.expired);
    w.i64(m.wasted_executions);
    w.i64(m.assignments);
    w.i64(m.unassignments);
    w.i64(m.reassignments);
    w.i64(m.communication_rounds);
    w.i64(m.messages);
    w.boolean(e.ran_any_round_);
  }

  static EngineImage decode_engine(SnapshotReader& r) {
    EngineImage img;
    img.window_active = r.boolean();
    img.fast_path_active = r.boolean();
    img.fast_current_round_only = r.boolean();
    img.fast_needs_empty_backlog = r.boolean();
    const std::uint8_t outcome = r.u8();
    REQSCHED_CHECK_MSG(
        outcome <= static_cast<std::uint8_t>(AdmissionOutcome::kContended),
        "checkpoint payload: invalid admission outcome " << +outcome);
    img.outcome = static_cast<AdmissionOutcome>(outcome);
    img.fast_admitted = r.i64();
    img.fast_rounds = r.i64();
    img.fast_fallbacks = r.i64();
    img.alive = decode_id_list(r, "alive set");
    Metrics& m = img.metrics;
    m.rounds = r.i64();
    m.injected = r.i64();
    m.fulfilled = r.i64();
    m.expired = r.i64();
    m.wasted_executions = r.i64();
    m.assignments = r.i64();
    m.unassignments = r.i64();
    m.reassignments = r.i64();
    m.communication_rounds = r.i64();
    m.messages = r.i64();
    img.ran_any_round = r.boolean();
    return img;
  }

  static void apply_engine(StreamingEngine& e, EngineImage&& img) {
    e.admission_outcome_ = img.outcome;
    e.fast_admitted_ = img.fast_admitted;
    e.fast_rounds_ = img.fast_rounds;
    e.fast_fallbacks_ = img.fast_fallbacks;
    e.alive_ = std::move(img.alive);
    e.metrics_ = img.metrics;
    e.ran_any_round_ = img.ran_any_round;
    e.injected_now_.clear();
    e.fast_booked_.clear();
    e.fast_slots_.clear();
    e.spec_scratch_.clear();
    // Wall-clock throughput restarts at the resume point: rates in snapshots
    // measure this process, not the checkpointed one (docs/checkpoint.md).
    e.started_at_.reset();
  }

  // ---- whole-engine encode/restore ----

  static std::vector<std::uint8_t> encode_all(const StreamingEngine& e,
                                              CheckpointManifest manifest) {
    REQSCHED_REQUIRE_MSG(!e.in_strategy_,
                         "checkpoints are round-boundary only: encode() must "
                         "not run during on_round");
    REQSCHED_REQUIRE_MSG(e.injected_now_.empty() && e.fast_booked_.empty(),
                         "checkpoint attempted with an open round batch");
    REQSCHED_REQUIRE_MSG(!e.window_active_ ||
                             !e.window_->admission_batch_open(),
                         "checkpoint attempted with an open admission batch");
    REQSCHED_REQUIRE_MSG(
        e.workload_.resumable(),
        "workload '" << e.workload_.name()
                     << "' does not support checkpoint/restore "
                        "(IWorkload::resumable)");
    REQSCHED_REQUIRE_MSG(
        e.strategy_.resumable(),
        "strategy '" << e.strategy_.name()
                     << "' does not support checkpoint/restore "
                        "(IStrategy::resumable)");

    // Stamp everything the engine knows; the caller only supplies identity.
    manifest.config = e.config_;
    manifest.retain_history = e.options_.retain_history;
    manifest.record_trace = e.options_.record_trace;
    manifest.admission_fast_path = e.options_.admission_fast_path;
    manifest.track_live_opt = e.options_.track_live_opt;
    manifest.opt_prune_every = e.options_.opt_prune_every;
    manifest.checkpoint_every = e.options_.checkpoint_every;
    manifest.shard = e.options_.shard;
    manifest.track_stream_stats = e.options_.track_stream_stats;
    manifest.stream_stats = e.options_.stream_stats;
    manifest.frame_every = e.options_.frame_every;
    manifest.round = e.metrics_.rounds;
    manifest.trace_digest = manifest.identity_digest();
    if (manifest.git_describe.empty()) {
      manifest.git_describe = snapshot_git_describe();
    }

    SnapshotWriter w;
    for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u32(CheckpointManager::kFormatVersion);
    w.u32(kSecManifest);
    manifest.encode(w);
    w.u32(kSecWorkload);
    {
      std::vector<std::uint64_t> words;
      e.workload_.export_state(words);
      encode_words(w, words);
    }
    w.u32(kSecStrategy);
    {
      std::vector<std::uint64_t> words;
      e.strategy_.export_state(words);
      encode_words(w, words);
    }
    w.u32(kSecPool);
    encode_pool(w, *e.pool_);
    w.u32(kSecSchedule);
    encode_schedule(w, e.schedule_);
    w.u32(kSecWindow);
    w.boolean(e.window_active_);
    if (e.window_active_) encode_window(w, *e.window_);
    w.u32(kSecOpt);
    w.boolean(e.options_.track_live_opt);
    if (e.options_.track_live_opt) encode_opt(w, *e.opt_);
    w.u32(kSecTrace);
    w.boolean(e.options_.record_trace);
    if (e.options_.record_trace) encode_trace(w, e.trace_);
    w.u32(kSecEngine);
    encode_engine(w, e);
    w.u32(kSecStreamStats);
    w.boolean(e.options_.track_stream_stats);
    if (e.options_.track_stream_stats) {
      std::vector<std::uint64_t> words;
      e.stream_stats_.export_state(words);
      encode_words(w, words);
    }
    w.u64(fnv1a(w.bytes()));
    return w.take();
  }

  static CheckpointManifest restore_all(std::span<const std::uint8_t> bytes,
                                        StreamingEngine& e) {
    // Phase 1 — verify and decode everything into plain images. Nothing in
    // this phase touches the engine, so every corruption and mismatch error
    // below leaves it exactly as constructed.
    const std::span<const std::uint8_t> payload = verify_container(bytes);
    SnapshotReader r(payload);
    expect_tag(r, kSecManifest, "manifest");
    const CheckpointManifest manifest = CheckpointManifest::decode(r);

    REQSCHED_CHECK_MSG(
        e.config_ == manifest.config,
        "checkpoint problem configuration does not match the target engine");
    REQSCHED_CHECK_MSG(
        e.options_.retain_history == manifest.retain_history &&
            e.options_.record_trace == manifest.record_trace &&
            e.options_.track_live_opt == manifest.track_live_opt,
        "checkpoint engine options (retain/trace/live-OPT) do not match the "
        "target engine");
    REQSCHED_REQUIRE_MSG(!e.ran_any_round_ && e.metrics_.rounds == 0 &&
                             !e.in_strategy_,
                         "restore target must be a freshly constructed "
                         "engine");
    REQSCHED_REQUIRE_MSG(e.workload_.resumable() && e.strategy_.resumable(),
                         "restore target workload/strategy must be "
                         "resumable");

    expect_tag(r, kSecWorkload, "workload");
    const std::vector<std::uint64_t> workload_words =
        decode_words(r, "workload state");
    expect_tag(r, kSecStrategy, "strategy");
    const std::vector<std::uint64_t> strategy_words =
        decode_words(r, "strategy state");
    expect_tag(r, kSecPool, "request pool");
    PoolImage pool_img = decode_pool(r);
    const std::size_t grid_units =
        static_cast<std::size_t>(e.config_.n) *
        static_cast<std::size_t>(e.config_.d) *
        static_cast<std::size_t>(e.config_.max_capacity());
    expect_tag(r, kSecSchedule, "schedule");
    ScheduleImage sched_img = decode_schedule(r, grid_units);
    expect_tag(r, kSecWindow, "window problem");
    const bool has_window = r.boolean();
    REQSCHED_CHECK_MSG(has_window == e.window_active_,
                       "checkpoint window-problem presence does not match "
                       "the target strategy");
    WindowImage window_img;
    if (has_window) window_img = decode_window(r, grid_units);
    expect_tag(r, kSecOpt, "OPT tracker");
    const bool has_opt = r.boolean();
    REQSCHED_CHECK_MSG(has_opt == e.options_.track_live_opt,
                       "checkpoint OPT-tracker presence does not match the "
                       "target engine");
    OptImage opt_img;
    if (has_opt) opt_img = decode_opt(r);
    expect_tag(r, kSecTrace, "trace");
    const bool has_trace = r.boolean();
    REQSCHED_CHECK_MSG(has_trace == e.options_.record_trace,
                       "checkpoint trace presence does not match the target "
                       "engine");
    TraceImage trace_img;
    if (has_trace) trace_img = decode_trace(r);
    expect_tag(r, kSecEngine, "engine");
    EngineImage engine_img = decode_engine(r);
    expect_tag(r, kSecStreamStats, "stream stats");
    const bool has_stream_stats = r.boolean();
    REQSCHED_CHECK_MSG(has_stream_stats == e.options_.track_stream_stats,
                       "checkpoint stream-stats presence does not match the "
                       "target engine");
    std::vector<std::uint64_t> stream_stats_words;
    if (has_stream_stats) {
      REQSCHED_CHECK_MSG(e.options_.stream_stats == manifest.stream_stats,
                         "checkpoint stream-stats options (window/buckets/"
                         "sketch capacity) do not match the target engine");
      stream_stats_words = decode_words(r, "stream-stats state");
    }
    REQSCHED_CHECK_MSG(r.done(),
                       "checkpoint payload has " << r.remaining()
                                                 << " trailing bytes");
    REQSCHED_CHECK_MSG(
        engine_img.window_active == e.window_active_ &&
            engine_img.fast_path_active == e.fast_path_active_ &&
            engine_img.fast_current_round_only ==
                e.fast_current_round_only_ &&
            engine_img.fast_needs_empty_backlog ==
                e.fast_needs_empty_backlog_,
        "checkpoint strategy capability flags do not match the target "
        "strategy");
    REQSCHED_CHECK_MSG(engine_img.metrics.rounds == manifest.round,
                       "checkpoint manifest round "
                           << manifest.round << " disagrees with metrics "
                           << engine_img.metrics.rounds);
    REQSCHED_CHECK_MSG(sched_img.window_begin == engine_img.metrics.rounds,
                       "checkpoint schedule origin disagrees with the round "
                       "counter");
    if (has_window) {
      REQSCHED_CHECK_MSG(window_img.window_begin == sched_img.window_begin,
                         "checkpoint window problem and schedule disagree on "
                         "the current round");
    }

    // Phase 2 — apply. All inputs are checksum-verified and shape-checked;
    // field writes below cannot throw until the audit sweep.
    e.workload_.import_state(workload_words);
    e.strategy_.import_state(strategy_words);
    apply_pool(*e.pool_, std::move(pool_img));
    apply_schedule(e.schedule_, std::move(sched_img));
    if (has_window) apply_window(*e.window_, std::move(window_img));
    if (has_opt) apply_opt(*e.opt_, std::move(opt_img));
    if (has_trace) apply_trace(e.trace_, std::move(trace_img));
    if (has_stream_stats) e.stream_stats_.import_state(stream_stats_words);
    apply_engine(e, std::move(engine_img));

    // Phase 3 — validate the restored state with the full audit-oracle
    // sweep: a checkpoint that would diverge is rejected here, not resumed.
    e.pool_->audit_check();
    if (e.window_active_) e.window_->audit_check();
    if (e.options_.track_live_opt) e.opt_->audit_check();
    e.audit_check();
    return manifest;
  }
};

std::vector<std::uint8_t> CheckpointManager::encode(
    const StreamingEngine& engine, CheckpointManifest manifest) {
  return SnapshotAccess::encode_all(engine, std::move(manifest));
}

CheckpointManifest CheckpointManager::peek_manifest(
    std::span<const std::uint8_t> bytes) {
  SnapshotReader r(verify_container(bytes));
  expect_tag(r, kSecManifest, "manifest");
  return CheckpointManifest::decode(r);
}

CheckpointManifest CheckpointManager::restore(
    std::span<const std::uint8_t> bytes, StreamingEngine& engine) {
  return SnapshotAccess::restore_all(bytes, engine);
}

void CheckpointManager::save_file(const std::string& path,
                                  std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    REQSCHED_CHECK_MSG(os.good(), "cannot open " << tmp << " for writing");
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    REQSCHED_CHECK_MSG(os.good(), "short write to " << tmp);
  }
  // The rename is the commit point: readers either see the previous complete
  // checkpoint or this complete one, never a partial file.
  const int rc = std::rename(tmp.c_str(), path.c_str());
  if (rc != 0) std::remove(tmp.c_str());
  REQSCHED_CHECK_MSG(rc == 0, "cannot rename " << tmp << " to " << path);
}

std::vector<std::uint8_t> CheckpointManager::load_file(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  REQSCHED_CHECK_MSG(is.good(), "cannot open checkpoint file " << path);
  const std::streamsize size = is.tellg();
  is.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    is.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  REQSCHED_CHECK_MSG(is.good(), "short read from checkpoint file " << path);
  return bytes;
}

std::uint64_t state_digest(const StreamingEngine& engine) {
  std::uint64_t h = kFnvOffsetBasis;
  const Metrics& m = engine.metrics();
  for (const std::int64_t v :
       {m.rounds, m.injected, m.fulfilled, m.expired, m.wasted_executions,
        m.assignments, m.unassignments, m.reassignments,
        m.communication_rounds, m.messages}) {
    h = fnv1a_word(static_cast<std::uint64_t>(v), h);
  }
  h = fnv1a_word(static_cast<std::uint64_t>(engine.now()), h);
  const RequestPool& pool = engine.pool();
  h = fnv1a_word(static_cast<std::uint64_t>(pool.next_id()), h);
  h = fnv1a_word(static_cast<std::uint64_t>(pool.window_base()), h);
  h = fnv1a_word(static_cast<std::uint64_t>(pool.live_count()), h);
  // alive() is oldest-first and deterministic, so the fold is order-stable.
  for (const RequestId id : engine.alive()) {
    h = fnv1a_word(static_cast<std::uint64_t>(id), h);
    const SlotRef slot = engine.slot_of(id);
    h = fnv1a_word(static_cast<std::uint64_t>(slot.resource), h);
    h = fnv1a_word(static_cast<std::uint64_t>(slot.round), h);
  }
  h = fnv1a_word(static_cast<std::uint64_t>(engine.schedule().booked_count()),
                 h);
  if (engine.options().track_live_opt) {
    h = fnv1a_word(static_cast<std::uint64_t>(engine.live_optimum()), h);
  }
  if (engine.options().track_stream_stats) {
    // The exported word list is a complete, order-stable image of the
    // accumulator, so folding it certifies frame-for-frame continuation.
    std::vector<std::uint64_t> words;
    engine.stream_stats().export_state(words);
    for (const std::uint64_t word : words) h = fnv1a_word(word, h);
  }
  return h;
}

}  // namespace reqsched
