// Run manifest: the exact configuration a checkpoint was produced under.
//
// Every checkpoint embeds its manifest in binary (so a checkpoint file is
// self-contained: `reqsched_cli replay`/`--resume` rebuild the workload and
// strategy from it without side channels), and the same manifest renders to
// a one-line JSON object for the stream JSONL header and BENCH_latest.json —
// any recorded run is traceable to engine options, strategy name + seed,
// workload identity digest, and the git revision that built the binary.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/openloop.hpp"
#include "adversary/random.hpp"
#include "core/types.hpp"
#include "engine/stream_stats.hpp"
#include "snapshot/codec.hpp"

namespace reqsched {

/// `git describe --always --dirty` of the build, stamped at configure time
/// ("unknown" when the build was configured outside a git checkout).
const char* snapshot_git_describe();

struct CheckpointManifest {
  // ---- run identity ----
  std::string strategy_name;
  std::uint64_t strategy_seed = 1;
  /// Workload family as reqsched_cli spells it (uniform / zipf / bursty /
  /// blockstorm for the finite random families, poisson / mmpp / diurnal /
  /// flashcrowd / driftzipf for the open-loop stationary ones), "trace" for
  /// replayed traces, or a custom generator's name() — resume only
  /// reconstructs the named families.
  std::string workload_family;
  /// Generator parameters; meaningful for the finite random families.
  RandomWorkloadOptions workload{};
  /// Generator parameters for the open-loop stationary families (ignored —
  /// and left at defaults — for every other family).
  OpenLoopOptions openloop{};
  ProblemConfig config{};

  // ---- engine options (the flags that shape behaviour) ----
  bool retain_history = false;
  bool record_trace = false;
  bool admission_fast_path = true;
  bool track_live_opt = false;
  Round opt_prune_every = 16;
  Round checkpoint_every = 0;
  std::int64_t shard = 0;
  /// Streaming-statistics configuration, so a resumed run keeps emitting
  /// frames on the same window/cadence (the accumulator state itself lives
  /// in the kSecStreamStats section).
  bool track_stream_stats = false;
  StreamStatsOptions stream_stats{};
  Round frame_every = 0;

  // ---- provenance ----
  Round round = 0;  ///< rounds completed when the checkpoint was taken
  /// FNV-1a-64 over the workload identity (family, generator parameters,
  /// problem configuration, seeds) — two runs with equal digests replay the
  /// same arrival sequence.
  std::uint64_t trace_digest = 0;
  std::string git_describe;

  /// Computes the workload-identity digest from the fields above.
  std::uint64_t identity_digest() const;

  void encode(SnapshotWriter& w) const;
  static CheckpointManifest decode(SnapshotReader& r);

  /// One-line JSON object (keys sorted by topic, stable across runs).
  std::string to_json() const;
};

}  // namespace reqsched
