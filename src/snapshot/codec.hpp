// Byte-level checkpoint codec: a little-endian append-only writer and a
// bounds-checked reader, plus the FNV-1a-64 checksum the container format
// seals every checkpoint with.
//
// This header is the ONLY place in the library that turns structures into
// bytes (reqsched_lint's `snapshot-layer` rule keeps it that way): the
// stateful structures expose their fields to the codec through befriended
// SnapshotAccess hooks or plain-word export_state() hooks, and the layout
// lives entirely in src/snapshot (docs/checkpoint.md describes it).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

/// FNV-1a over `bytes`, continuing from `seed` (pass the default offset
/// basis to start a fresh digest).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t seed = kFnvOffsetBasis);
/// FNV-1a folding one 64-bit word (as 8 little-endian bytes) into `seed`.
std::uint64_t fnv1a_word(std::uint64_t word, std::uint64_t seed);

/// Append-only little-endian byte sink.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern — round-trips exactly, including NaN payloads.
  void f64(double v);
  /// u64 length + raw bytes.
  void str(const std::string& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte span. Every accessor throws
/// ContractViolation on a read past the end, so a truncated payload can
/// never be silently decoded.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> bytes)
      : data_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean();
  double f64();
  std::string str();

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t count) const {
    REQSCHED_CHECK_MSG(count <= remaining(),
                       "checkpoint payload truncated at byte " << pos_);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace reqsched
