#include "snapshot/codec.hpp"

#include <cstring>

namespace reqsched {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_word(std::uint64_t word, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

void SnapshotWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xffU);
}

void SnapshotWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xffU);
}

void SnapshotWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void SnapshotWriter::str(const std::string& v) {
  u64(v.size());
  for (const char c : v) buf_.push_back(static_cast<std::uint8_t>(c));
}

std::uint8_t SnapshotReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t SnapshotReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

bool SnapshotReader::boolean() {
  const std::uint8_t v = u8();
  REQSCHED_CHECK_MSG(v <= 1, "checkpoint payload: malformed boolean");
  return v != 0;
}

double SnapshotReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::str() {
  const std::uint64_t len = u64();
  REQSCHED_CHECK_MSG(len <= remaining(),
                     "checkpoint payload: string length past the end");
  std::string v(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return v;
}

}  // namespace reqsched
