#include "snapshot/manifest.hpp"

#include <sstream>

namespace reqsched {

#ifndef REQSCHED_GIT_DESCRIBE
#define REQSCHED_GIT_DESCRIBE "unknown"
#endif

const char* snapshot_git_describe() { return REQSCHED_GIT_DESCRIBE; }

namespace {

void encode_config(SnapshotWriter& w, const ProblemConfig& config) {
  w.i32(config.n);
  w.i32(config.d);
  w.i32(config.b);
  w.u64(config.capacities.size());
  for (const std::int32_t c : config.capacities) w.i32(c);
}

ProblemConfig decode_config(SnapshotReader& r) {
  ProblemConfig config;
  config.n = r.i32();
  config.d = r.i32();
  config.b = r.i32();
  const std::uint64_t count = r.u64();
  REQSCHED_CHECK_MSG(count <= 1'000'000,
                     "checkpoint manifest: implausible capacity count");
  config.capacities.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) config.capacities.push_back(r.i32());
  config.validate();
  return config;
}

void encode_workload_options(SnapshotWriter& w,
                             const RandomWorkloadOptions& o) {
  w.i32(o.n);
  w.i32(o.d);
  w.f64(o.load);
  w.i64(o.horizon);
  w.u64(o.seed);
  w.boolean(o.two_choice);
  w.i32(o.min_window);
  w.i32(o.k);
  w.i32(o.b);
  w.i32(o.max_occupancy);
}

RandomWorkloadOptions decode_workload_options(SnapshotReader& r) {
  RandomWorkloadOptions o;
  o.n = r.i32();
  o.d = r.i32();
  o.load = r.f64();
  o.horizon = r.i64();
  o.seed = r.u64();
  o.two_choice = r.boolean();
  o.min_window = r.i32();
  o.k = r.i32();
  o.b = r.i32();
  o.max_occupancy = r.i32();
  return o;
}

void encode_openloop_options(SnapshotWriter& w, const OpenLoopOptions& o) {
  w.i32(o.n);
  w.i32(o.d);
  w.f64(o.rho);
  w.i64(o.horizon);
  w.u64(o.seed);
  w.i32(o.k);
  w.i32(o.b);
  w.i32(o.min_window);
  w.i32(o.max_occupancy);
  w.f64(o.mmpp_high_mult);
  w.f64(o.mmpp_p_enter);
  w.f64(o.mmpp_p_exit);
  w.f64(o.diurnal_amplitude);
  w.i64(o.diurnal_period);
  w.f64(o.flash_probability);
  w.f64(o.flash_mult);
  w.i64(o.flash_duration);
  w.i32(o.flash_hot_set);
  w.f64(o.zipf_exponent);
  w.i64(o.zipf_drift_every);
}

OpenLoopOptions decode_openloop_options(SnapshotReader& r) {
  OpenLoopOptions o;
  o.n = r.i32();
  o.d = r.i32();
  o.rho = r.f64();
  o.horizon = r.i64();
  o.seed = r.u64();
  o.k = r.i32();
  o.b = r.i32();
  o.min_window = r.i32();
  o.max_occupancy = r.i32();
  o.mmpp_high_mult = r.f64();
  o.mmpp_p_enter = r.f64();
  o.mmpp_p_exit = r.f64();
  o.diurnal_amplitude = r.f64();
  o.diurnal_period = r.i64();
  o.flash_probability = r.f64();
  o.flash_mult = r.f64();
  o.flash_duration = r.i64();
  o.flash_hot_set = r.i32();
  o.zipf_exponent = r.f64();
  o.zipf_drift_every = r.i64();
  return o;
}

void json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::uint64_t CheckpointManifest::identity_digest() const {
  SnapshotWriter w;
  w.str(workload_family);
  encode_workload_options(w, workload);
  encode_openloop_options(w, openloop);
  encode_config(w, config);
  w.u64(strategy_seed);
  w.str(strategy_name);
  return fnv1a(w.bytes());
}

void CheckpointManifest::encode(SnapshotWriter& w) const {
  w.str(strategy_name);
  w.u64(strategy_seed);
  w.str(workload_family);
  encode_workload_options(w, workload);
  encode_openloop_options(w, openloop);
  encode_config(w, config);
  w.boolean(retain_history);
  w.boolean(record_trace);
  w.boolean(admission_fast_path);
  w.boolean(track_live_opt);
  w.i64(opt_prune_every);
  w.i64(checkpoint_every);
  w.i64(shard);
  w.boolean(track_stream_stats);
  w.i64(stream_stats.window);
  w.i32(stream_stats.buckets);
  w.i32(stream_stats.sketch_capacity);
  w.i64(frame_every);
  w.i64(round);
  w.u64(trace_digest);
  w.str(git_describe);
}

CheckpointManifest CheckpointManifest::decode(SnapshotReader& r) {
  CheckpointManifest m;
  m.strategy_name = r.str();
  m.strategy_seed = r.u64();
  m.workload_family = r.str();
  m.workload = decode_workload_options(r);
  m.openloop = decode_openloop_options(r);
  m.config = decode_config(r);
  m.retain_history = r.boolean();
  m.record_trace = r.boolean();
  m.admission_fast_path = r.boolean();
  m.track_live_opt = r.boolean();
  m.opt_prune_every = r.i64();
  m.checkpoint_every = r.i64();
  m.shard = r.i64();
  m.track_stream_stats = r.boolean();
  m.stream_stats.window = r.i64();
  m.stream_stats.buckets = r.i32();
  m.stream_stats.sketch_capacity = r.i32();
  m.frame_every = r.i64();
  m.round = r.i64();
  m.trace_digest = r.u64();
  m.git_describe = r.str();
  return m;
}

std::string CheckpointManifest::to_json() const {
  std::ostringstream os;
  os << "{\"manifest\":1,\"strategy\":";
  json_escaped(os, strategy_name);
  os << ",\"strategy_seed\":" << strategy_seed << ",\"workload\":";
  json_escaped(os, workload_family);
  os << ",\"seed\":" << workload.seed << ",\"n\":" << config.n
     << ",\"d\":" << config.d << ",\"b\":" << config.b
     << ",\"load\":" << workload.load << ",\"horizon\":" << workload.horizon
     << ",\"k\":" << workload.k << ",\"max_occupancy\":" << workload.max_occupancy
     << ",\"min_window\":" << workload.min_window
     << ",\"two_choice\":" << (workload.two_choice ? "true" : "false")
     << ",\"retain_history\":" << (retain_history ? "true" : "false")
     << ",\"record_trace\":" << (record_trace ? "true" : "false")
     << ",\"admission_fast_path\":" << (admission_fast_path ? "true" : "false")
     << ",\"track_live_opt\":" << (track_live_opt ? "true" : "false")
     << ",\"opt_prune_every\":" << opt_prune_every
     << ",\"checkpoint_every\":" << checkpoint_every << ",\"shard\":" << shard
     << ",\"rho\":" << openloop.rho
     << ",\"track_stream_stats\":" << (track_stream_stats ? "true" : "false")
     << ",\"stats_window\":" << stream_stats.window
     << ",\"frame_every\":" << frame_every
     << ",\"round\":" << round << ",\"trace_digest\":\"" << std::hex
     << trace_digest << std::dec << "\",\"git_describe\":";
  json_escaped(os, git_describe);
  os << "}";
  return os.str();
}

}  // namespace reqsched
