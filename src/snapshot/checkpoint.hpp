// Checkpoint/restore for the streaming engine.
//
// A checkpoint is a versioned, self-contained binary image of a run at a
// round boundary: the embedded manifest (strategy, workload, engine options,
// provenance) plus the verbatim state of every live structure — RequestPool
// (slab, free list, ring, tombstones, round marks), Schedule (unit grid +
// bookings), DeltaWindowProblem (rows + unit grid; the derived counts,
// saturation masks, and column tallies are re-derived on restore),
// WindowedPrefixOpt (live matching, closure-pruned slabs; Hall-witness
// `dead` flags travel with the slots), the engine's round/bookkeeping state
// and cumulative Metrics, and the workload/strategy word-state (PRNG
// streams, EDF queues). A restored engine continues bit-identically — same
// matchings, same metrics, same audit-oracle results — to the uninterrupted
// run.
//
// Container layout (docs/checkpoint.md):
//
//   bytes 0..7    magic "RQSNAP01"
//   bytes 8..11   u32 format version (kFormatVersion)
//   bytes 12..N-9 payload: tagged sections (manifest first)
//   bytes N-8..N  u64 FNV-1a-64 over bytes 0..N-9
//
// The loader verifies magic, version, and checksum, then decodes the whole
// payload into plain memory, and only then touches the target engine — a
// truncated, bit-flipped, or mislabeled file throws ContractViolation before
// any engine state changes; a failure during the apply/validation phase
// (impossible for checksum-valid images produced by encode()) leaves the
// engine unusable and the caller must discard it. Restore ends with the full
// audit-oracle sweep of every structure, so a checkpoint that would diverge
// is rejected, not resumed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/streaming.hpp"
#include "snapshot/manifest.hpp"

namespace reqsched {

class CheckpointManager {
 public:
  /// v2 added the open-loop workload options and stream-stats fields to the
  /// manifest plus the kSecStreamStats section. Older readers reject v2
  /// files cleanly at the version check; there are no v1 files to migrate
  /// (checkpoints are per-run artifacts, not archives).
  static constexpr std::uint32_t kFormatVersion = 2;

  /// Serializes `engine` at its current round boundary (call between step()s
  /// or from EngineOptions::checkpoint_sink — never during on_round).
  /// Requires the workload and strategy to be resumable(). The manifest's
  /// engine-option, config, round, provenance, and trace-digest fields are
  /// stamped here from the engine; the caller supplies the identity fields
  /// (strategy name/seed, workload family/options, shard).
  static std::vector<std::uint8_t> encode(const StreamingEngine& engine,
                                          CheckpointManifest manifest);

  /// Verifies the container (magic, version, checksum) and returns the
  /// embedded manifest without touching any engine.
  static CheckpointManifest peek_manifest(std::span<const std::uint8_t> bytes);

  /// Restores `bytes` into `engine`, a freshly constructed engine over a
  /// workload, strategy, and EngineOptions equal to the checkpointed run's
  /// (peek_manifest() carries everything needed to rebuild them). Decodes
  /// and validates before mutating; finishes with the audit-oracle sweep.
  /// Returns the embedded manifest.
  static CheckpointManifest restore(std::span<const std::uint8_t> bytes,
                                    StreamingEngine& engine);

  /// Writes atomically: `path` + ".tmp" then rename — a crash mid-write can
  /// never leave a truncated file at `path`.
  static void save_file(const std::string& path,
                        std::span<const std::uint8_t> bytes);

  static std::vector<std::uint8_t> load_file(const std::string& path);
};

/// Order-stable FNV-1a-64 digest of the engine's observable state (round,
/// metrics, alive ids, their bookings, live OPT when tracked) — equal
/// digests at equal rounds certify bit-identical continuation; replay mode
/// prints them to bisect divergences. Public-API only, so it works on any
/// engine, restored or not.
std::uint64_t state_digest(const StreamingEngine& engine);

}  // namespace reqsched
