// Fixed-size thread pool used to parallelize parameter sweeps
// (per-(n, d, seed) simulations are embarrassingly parallel).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reqsched {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions terminate the run
  /// (experiment tasks report failures through their result slots instead).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// Sentinel returned by current_worker_index() off the pool's threads.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// 0-based index of the calling pool worker thread, or kNotAWorker when
  /// called from any other thread. Lets tasks select per-worker state (e.g.
  /// one SolverScratch per worker) without locking.
  static std::size_t current_worker_index();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace reqsched
