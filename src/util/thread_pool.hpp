// Fixed-size thread pool used to parallelize parameter sweeps
// (per-(n, d, seed) simulations are embarrassingly parallel).
//
// All cross-thread state is REQSCHED_GUARDED_BY(mutex_): the task queue,
// the in-flight count, and the shutdown flag. Clang's thread-safety
// analysis (util/thread_annotations.hpp) proves every access happens under
// the lock; the lock-holding steps of the worker loop are split into
// REQSCHED_REQUIRES-annotated private helpers so the discipline is visible
// in the signatures, not just the bodies.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace reqsched {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions terminate the run
  /// (experiment tasks report failures through their result slots instead —
  /// see ShardResult::error and SweepPoint::failed).
  void submit(std::function<void()> task) REQSCHED_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void wait_idle() REQSCHED_EXCLUDES(mutex_);

  std::size_t thread_count() const { return workers_.size(); }

  /// Sentinel returned by current_worker_index() off the pool's threads.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// 0-based index of the calling pool worker thread, or kNotAWorker when
  /// called from any other thread. Lets tasks select per-worker state (e.g.
  /// one SolverScratch per worker) without locking — the index lives in a
  /// thread_local, so the lookup itself is lock-free by construction.
  static std::size_t current_worker_index();

 private:
  void worker_loop(std::size_t worker_index) REQSCHED_EXCLUDES(mutex_);
  /// Blocks until a task is available or shutdown is requested; pops and
  /// returns the task, or returns an empty function on shutdown-with-empty-
  /// queue (drain-then-exit: queued tasks still run before workers leave).
  std::function<void()> next_task() REQSCHED_REQUIRES(mutex_);
  /// Marks one task complete and wakes wait_idle() at zero in-flight.
  void finish_task() REQSCHED_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::queue<std::function<void()>> tasks_ REQSCHED_GUARDED_BY(mutex_);
  CondVar task_available_;
  CondVar idle_;
  /// Submitted but not yet finished (queued + executing).
  std::size_t in_flight_ REQSCHED_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ REQSCHED_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace reqsched
