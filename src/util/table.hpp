// ASCII table rendering for bench output (the paper's Table 1 and the
// per-experiment series are printed in this format).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace reqsched {

/// Column-aligned ASCII table with a header row and optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double value, int precision = 4);

  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as CSV (used next to the ASCII output so results can be
/// re-plotted without re-running the bench).
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

 private:
  std::ostream& os_;
  std::size_t columns_;
};

}  // namespace reqsched
