// Deterministic, seedable PRNG (xoshiro256**) for reproducible workloads.
//
// std::mt19937_64 would also work, but xoshiro is faster and — more
// importantly — its output is identical across standard-library
// implementations, so recorded experiment seeds replay bit-exactly anywhere.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a single seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Splits off an independent stream (for per-task determinism in sweeps).
  Prng split();

 private:
  std::uint64_t state_[4]{};
};

/// Samples an index from Zipf(s) over {0, .., n-1} using a precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Prng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace reqsched
