// Deterministic, seedable PRNG (xoshiro256**) for reproducible workloads.
//
// std::mt19937_64 would also work, but xoshiro is faster and — more
// importantly — its output is identical across standard-library
// implementations, so recorded experiment seeds replay bit-exactly anywhere.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a single seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Splits off an independent stream (for per-task determinism in sweeps).
  Prng split();

  /// The raw 256-bit generator state, for checkpoint/restore. A generator
  /// restored via set_state() replays the exact output sequence the source
  /// generator would have produced from the captured point.
  std::array<std::uint64_t, 4> state() const;

  /// Restores state captured by state(). Rejects the all-zero word vector
  /// (a fixed point of xoshiro256**, never produced by reseed()).
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t state_[4]{};
};

/// Appends the generator's four state words — the common body of the
/// export_state() checkpoint hooks of PRNG-driven workloads and strategies.
void append_prng_words(const Prng& rng, std::vector<std::uint64_t>& out);

/// Restores a generator from exactly the four words appended by
/// append_prng_words(); rejects any other word count.
void restore_prng_words(Prng& rng, std::span<const std::uint64_t> words);

/// Samples an index from Zipf(s) over {0, .., n-1} using a precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Prng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace reqsched
