// Exact rational arithmetic for competitive bounds such as (3d-2)/(2d-1).
//
// Keeping the theoretical bounds exact avoids spurious test failures from
// floating-point comparison when a measured ratio sits exactly on a bound.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>

#include "util/assert.hpp"

namespace reqsched {

/// A normalized rational number with 64-bit numerator/denominator.
class Fraction {
 public:
  constexpr Fraction() = default;

  constexpr Fraction(std::int64_t numerator, std::int64_t denominator = 1)
      : num_(numerator), den_(denominator) {
    normalize();
  }

  constexpr std::int64_t num() const { return num_; }
  constexpr std::int64_t den() const { return den_; }

  constexpr double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  friend constexpr Fraction operator+(Fraction a, Fraction b) {
    return Fraction(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
  }
  friend constexpr Fraction operator-(Fraction a, Fraction b) {
    return Fraction(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
  }
  friend constexpr Fraction operator*(Fraction a, Fraction b) {
    return Fraction(a.num_ * b.num_, a.den_ * b.den_);
  }
  friend constexpr Fraction operator/(Fraction a, Fraction b) {
    REQSCHED_REQUIRE(b.num_ != 0);
    return Fraction(a.num_ * b.den_, a.den_ * b.num_);
  }

  friend constexpr bool operator==(Fraction a, Fraction b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend constexpr std::strong_ordering operator<=>(Fraction a, Fraction b) {
    // Normalized denominators are positive, so cross-multiplying is safe.
    return a.num_ * b.den_ <=> b.num_ * a.den_;
  }

  friend std::ostream& operator<<(std::ostream& os, Fraction f) {
    os << f.num_;
    if (f.den_ != 1) os << '/' << f.den_;
    return os;
  }

 private:
  constexpr void normalize() {
    REQSCHED_REQUIRE(den_ != 0);
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace reqsched
