// Minimal monotonic stopwatch for harness timing output.
#pragma once

#include <chrono>

namespace reqsched {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace reqsched
