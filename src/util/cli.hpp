// Tiny command-line flag parser shared by examples and bench binaries.
//
// Supported syntax: --key=value, --key value, and bare --flag (boolean).
// Unknown flags are an error so typos in experiment sweeps cannot silently
// fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace reqsched {

class CliArgs {
 public:
  /// Parses argv; throws ContractViolation on malformed input.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, std::string fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --d=2,4,8,16.
  std::vector<std::int64_t> get_int_list(
      const std::string& key, std::vector<std::int64_t> fallback) const;

  /// Keys that were provided but never queried — call at end to catch typos.
  std::vector<std::string> unused_keys() const;

  /// Fail-fast typo guard: throws ContractViolation listing every provided
  /// flag no get_*/has() call ever asked about. Call after the last flag
  /// read (a misspelled --flag must abort the run, not silently fall back
  /// to a default).
  void finish() const;

  const std::string& program_name() const { return program_; }

 private:
  std::optional<std::string> lookup(const std::string& key) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace reqsched
