#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace reqsched {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  REQSCHED_REQUIRE(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> row) {
  REQSCHED_REQUIRE_MSG(row.size() == header_.size(),
                       "row has " << row.size() << " cells, expected "
                                  << header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : os_(os), columns_(header.size()) {
  REQSCHED_REQUIRE(columns_ > 0);
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c) os_ << ',';
    os_ << header[c];
  }
  os_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  REQSCHED_REQUIRE(row.size() == columns_);
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c) os_ << ',';
    os_ << row[c];
  }
  os_ << '\n';
}

}  // namespace reqsched
