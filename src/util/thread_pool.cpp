#include "util/thread_pool.hpp"

#include <algorithm>

namespace reqsched {

namespace {
thread_local std::size_t tl_worker_index = ThreadPool::kNotAWorker;
}  // namespace

std::size_t ThreadPool::current_worker_index() { return tl_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // only reachable when shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace reqsched
