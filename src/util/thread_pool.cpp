#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace reqsched {

namespace {
thread_local std::size_t tl_worker_index = ThreadPool::kNotAWorker;
}  // namespace

std::size_t ThreadPool::current_worker_index() { return tl_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // An empty task is indistinguishable from next_task()'s shutdown sentinel
  // and would strand a worker with in_flight_ never decremented.
  REQSCHED_REQUIRE_MSG(task != nullptr, "ThreadPool::submit needs a callable");
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.wait(mutex_);
}

std::function<void()> ThreadPool::next_task() {
  while (!shutting_down_ && tasks_.empty()) task_available_.wait(mutex_);
  // Shutdown drains: queued tasks still run, workers leave on empty.
  if (tasks_.empty()) return {};
  std::function<void()> task = std::move(tasks_.front());
  tasks_.pop();
  return task;
}

void ThreadPool::finish_task() {
  MutexLock lock(mutex_);
  --in_flight_;
  if (in_flight_ == 0) idle_.notify_all();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      task = next_task();
    }
    if (!task) return;
    task();  // outside the lock: tasks may submit() or run long
    finish_task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace reqsched
