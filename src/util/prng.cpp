#include "util/prng.hpp"

#include <algorithm>
#include <cmath>

namespace reqsched {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Prng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zero outputs from any seed, but keep the guard for clarity.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Prng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound) {
  REQSCHED_REQUIRE(bound > 0);
  // Lemire-style rejection sampling keeps the distribution exactly uniform.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Prng::next_in(std::int64_t lo, std::int64_t hi) {
  REQSCHED_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Prng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Prng::next_bool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return next_double() < p;
}

Prng Prng::split() {
  Prng child(0);
  for (auto& word : child.state_) word = next();
  return child;
}

std::array<std::uint64_t, 4> Prng::state() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Prng::set_state(const std::array<std::uint64_t, 4>& state) {
  REQSCHED_REQUIRE_MSG(
      state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
      "Prng::set_state: the all-zero state is a fixed point of xoshiro256**");
  for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
}

void append_prng_words(const Prng& rng, std::vector<std::uint64_t>& out) {
  for (const std::uint64_t word : rng.state()) out.push_back(word);
}

void restore_prng_words(Prng& rng, std::span<const std::uint64_t> words) {
  REQSCHED_REQUIRE_MSG(words.size() == 4,
                       "restore_prng_words: expected exactly 4 state words");
  rng.set_state({words[0], words[1], words[2], words[3]});
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  REQSCHED_REQUIRE(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfSampler::sample(Prng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace reqsched
