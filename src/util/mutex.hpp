// Annotated locking primitives: the only sanctioned way to lock in src/.
//
// Mutex/MutexLock/CondVar are thin wrappers over the standard primitives
// carrying the thread-safety capability annotations from
// util/thread_annotations.hpp, so clang's `-Wthread-safety` analysis can
// prove that every REQSCHED_GUARDED_BY member is only touched under its
// mutex. Raw std::mutex members and std::lock_guard/std::unique_lock/
// std::scoped_lock uses in src/ are banned by the `thread-guards` lint rule
// — the analysis cannot see through them, so a raw lock is an unchecked
// lock.
//
// CondVar wraps std::condition_variable_any (it must unlock a Mutex, not a
// std::mutex). The wrapper costs one extra indirection per wait — noise on
// the coarse-grained paths that block (ThreadPool task handoff, JSONL
// fan-in); the per-round engine hot paths are single-threaded by design and
// never lock at all (docs/architecture.md, "Threading model").
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace reqsched {

/// Annotated exclusive mutex. Prefer MutexLock for scoped holds; call
/// lock()/unlock() directly only where RAII cannot express the flow.
class REQSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() REQSCHED_ACQUIRE() { mu_.lock(); }
  void unlock() REQSCHED_RELEASE() { mu_.unlock(); }
  bool try_lock() REQSCHED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped hold of a Mutex; the analysis treats the constructor as the
/// acquire and the destructor as the release.
class REQSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) REQSCHED_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() REQSCHED_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over Mutex. Deliberately predicate-less: the waiting
/// loop (`while (!cond) cv.wait(mutex);`) stays in the caller, where the
/// analysis can check that `cond` reads guarded state under the lock — a
/// predicate lambda would be analyzed as a separate unannotated function
/// and defeat the check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires before returning.
  /// Spurious wakeups happen; always wait in a condition loop.
  void wait(Mutex& mutex) REQSCHED_REQUIRES(mutex) { cv_.wait(mutex); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace reqsched
