// Contract checking for reqsched.
//
// REQSCHED_CHECK is always on (including release builds): the correctness of
// the competitive-ratio measurements depends on schedule/matching validity,
// so violations must never pass silently. Failures throw ContractViolation,
// which keeps them testable with EXPECT_THROW.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reqsched {

/// Thrown when an internal invariant or precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace reqsched

#define REQSCHED_CHECK(expr)                                                    \
  do {                                                                          \
    if (!(expr))                                                                \
      ::reqsched::detail::contract_fail("check", #expr, __FILE__, __LINE__, ""); \
  } while (false)

#define REQSCHED_CHECK_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream reqsched_os_;                                 \
      reqsched_os_ << msg; /* NOLINT */                                \
      ::reqsched::detail::contract_fail("check", #expr, __FILE__,      \
                                        __LINE__, reqsched_os_.str()); \
    }                                                                  \
  } while (false)

#define REQSCHED_REQUIRE(expr)                                             \
  do {                                                                     \
    if (!(expr))                                                           \
      ::reqsched::detail::contract_fail("precondition", #expr, __FILE__,   \
                                        __LINE__, "");                     \
  } while (false)

#define REQSCHED_REQUIRE_MSG(expr, msg)                                      \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream reqsched_os_;                                       \
      reqsched_os_ << msg; /* NOLINT */                                      \
      ::reqsched::detail::contract_fail("precondition", #expr, __FILE__,     \
                                        __LINE__, reqsched_os_.str());       \
    }                                                                        \
  } while (false)

// Debug-only checks: linear-or-worse validation that is too expensive for the
// release hot path (e.g. duplicate-edge detection in graph builders). Active
// whenever NDEBUG is off, and force-enabled by the sanitized tier-1 pass
// (-DREQSCHED_SANITIZE=ON defines REQSCHED_DEBUG_CHECKS) so CI exercises them
// even though the default build type is RelWithDebInfo.
#if !defined(REQSCHED_DEBUG_CHECKS) && !defined(NDEBUG)
#define REQSCHED_DEBUG_CHECKS 1
#endif

#ifdef REQSCHED_DEBUG_CHECKS
#define REQSCHED_DEBUG_REQUIRE(expr) REQSCHED_REQUIRE(expr)
#define REQSCHED_DEBUG_REQUIRE_MSG(expr, msg) REQSCHED_REQUIRE_MSG(expr, msg)
#else
#define REQSCHED_DEBUG_REQUIRE(expr) \
  do {                               \
  } while (false)
#define REQSCHED_DEBUG_REQUIRE_MSG(expr, msg) \
  do {                                        \
  } while (false)
#endif

// Audit-only oracles: O(n)-or-worse invariant re-derivations (naive set
// models, full-structure consistency sweeps, Hall-witness certificates) that
// run after every mutation of the delta-maintained hot structures. Far too
// expensive for any normal build — the per-mutation call sites are gated on
// REQSCHED_AUDIT_ENABLED, set only by -DREQSCHED_AUDIT=ON (tools/check.sh
// --audit, the `audit` CI job), which reruns the whole test suite under
// them. The REQSCHED_AUDIT_REQUIRE macros themselves always check: they
// appear only inside the cold audit_check() bodies, which every build
// compiles so tests/test_audit.cpp can corrupt a structure and invoke the
// oracle directly. Violations throw ContractViolation like every other
// contract macro.
#ifdef REQSCHED_AUDIT
#define REQSCHED_AUDIT_ENABLED 1
#else
#define REQSCHED_AUDIT_ENABLED 0
#endif

#define REQSCHED_AUDIT_REQUIRE(expr)                                      \
  do {                                                                    \
    if (!(expr))                                                          \
      ::reqsched::detail::contract_fail("audit", #expr, __FILE__,         \
                                        __LINE__, "");                    \
  } while (false)

#define REQSCHED_AUDIT_REQUIRE_MSG(expr, msg)                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream reqsched_os_;                                  \
      reqsched_os_ << msg; /* NOLINT */                                 \
      ::reqsched::detail::contract_fail("audit", #expr, __FILE__,       \
                                        __LINE__, reqsched_os_.str());  \
    }                                                                   \
  } while (false)
