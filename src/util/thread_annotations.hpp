// Clang thread-safety ("capability") annotation macros — the compile-time
// half of the repo's lock discipline. Under clang, `-Wthread-safety`
// (promoted to an error by the build, see the top-level CMakeLists) checks
// that every access to a REQSCHED_GUARDED_BY member happens with its mutex
// held and that REQSCHED_REQUIRES functions are only called under the lock.
// Under any other compiler every macro expands to nothing, so the
// annotations cost zero and gate nothing off-clang — the clang CI job is
// where the analysis is enforced.
//
// The annotated primitives live in util/mutex.hpp (Mutex, MutexLock,
// CondVar); raw std::mutex / std::lock_guard in src/ are banned by the
// `thread-guards` lint rule because the analysis cannot see through them.
// Cheat-sheet and false-positive guidance: docs/static_analysis.md.
#pragma once

#if defined(__clang__)
#define REQSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REQSCHED_THREAD_ANNOTATION(x)  // no-op off-clang
#endif

/// Marks a class as a capability (something that can be held), e.g.
/// `class REQSCHED_CAPABILITY("mutex") Mutex`.
#define REQSCHED_CAPABILITY(x) REQSCHED_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock).
#define REQSCHED_SCOPED_CAPABILITY REQSCHED_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be read or written while holding `x`.
#define REQSCHED_GUARDED_BY(x) REQSCHED_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* may only be touched while holding `x`
/// (the pointer itself is unguarded — make it const).
#define REQSCHED_PT_GUARDED_BY(x) REQSCHED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held (lock-holding
/// private helpers split out of public entry points).
#define REQSCHED_REQUIRES(...) \
  REQSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and returns holding it.
#define REQSCHED_ACQUIRE(...) \
  REQSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define REQSCHED_RELEASE(...) \
  REQSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define REQSCHED_TRY_ACQUIRE(result, ...) \
  REQSCHED_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function that must be called with the capability *not* held (public
/// entry points that take the lock themselves; catches self-deadlock).
#define REQSCHED_EXCLUDES(...) \
  REQSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its class.
#define REQSCHED_RETURN_CAPABILITY(x) \
  REQSCHED_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline holds anyway.
#define REQSCHED_NO_THREAD_SAFETY_ANALYSIS \
  REQSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)
