#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>

#include "util/assert.hpp"

namespace reqsched {

CliArgs::CliArgs(int argc, const char* const* argv) {
  REQSCHED_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    REQSCHED_REQUIRE_MSG(token.rfind("--", 0) == 0,
                         "expected --key[=value], got '" << token << "'");
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  used_[key] = true;
  return values_.count(key) != 0;
}

std::optional<std::string> CliArgs::lookup(const std::string& key) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& key,
                                std::string fallback) const {
  return lookup(key).value_or(std::move(fallback));
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  REQSCHED_REQUIRE_MSG(ec == std::errc() && ptr == v->data() + v->size(),
                       "--" << key << " expects an integer, got '" << *v << "'");
  return out;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  REQSCHED_REQUIRE_MSG(end == v->c_str() + v->size(),
                       "--" << key << " expects a number, got '" << *v << "'");
  return out;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  REQSCHED_REQUIRE_MSG(false, "--" << key << " expects a boolean, got '" << *v
                                   << "'");
  return fallback;
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const auto comma = v->find(',', pos);
    const std::string part =
        v->substr(pos, comma == std::string::npos ? std::string::npos
                                                  : comma - pos);
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    REQSCHED_REQUIRE_MSG(ec == std::errc() && ptr == part.data() + part.size(),
                         "--" << key << " expects integers, got '" << part
                              << "'");
    out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> CliArgs::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!used_.count(key)) out.push_back(key);
  }
  return out;
}

void CliArgs::finish() const {
  const auto unused = unused_keys();
  if (unused.empty()) return;
  std::string list;
  for (const auto& key : unused) {
    if (!list.empty()) list += ", ";
    list += "--" + key;
  }
  REQSCHED_REQUIRE_MSG(false, "unrecognized flag"
                                  << (unused.size() > 1 ? "s" : "") << ": "
                                  << list);
}

}  // namespace reqsched
