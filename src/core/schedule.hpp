// The online schedule: a sliding window of n x d time slots.
//
// At round t the window covers slots s_{i,t'} with t <= t' < t+d. Assigning
// request r to slot (i, t') books resource i for round t'; when the simulator
// executes round t it reads row t, fulfills the booked requests, and slides
// the window forward.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

class Schedule {
 public:
  explicit Schedule(ProblemConfig config);

  const ProblemConfig& config() const { return config_; }

  /// First round of the current window (== the simulator's current round).
  Round window_begin() const { return window_begin_; }
  /// One past the last round of the window.
  Round window_end() const { return window_begin_ + config_.d; }

  bool in_window(Round round) const {
    return round >= window_begin_ && round < window_end();
  }

  /// Request booked at `slot`, or kNoRequest.
  RequestId request_at(SlotRef slot) const;

  bool is_free(SlotRef slot) const { return request_at(slot) == kNoRequest; }

  /// Slot the request is booked into, or kNoSlot.
  SlotRef slot_of(RequestId id) const;

  bool is_scheduled(RequestId id) const { return slot_of(id).valid(); }

  /// Books `request` into `slot`. The slot must be free and inside the
  /// window, the request unbooked, and the slot must be one of the request's
  /// alternatives within its deadline.
  void assign(const Request& request, SlotRef slot);

  /// Removes the booking of `id` (must be booked).
  void unassign(RequestId id);

  /// Number of booked slots in round `round` of the window.
  std::int32_t booked_in_round(Round round) const;

  /// All free slots of `resource` within the window, earliest first.
  std::vector<SlotRef> free_slots_of(ResourceId resource) const;

  /// Earliest free slot of `resource` in [from, to] (window-clamped), or
  /// kNoSlot.
  SlotRef earliest_free_slot(ResourceId resource, Round from, Round to) const;

  /// Clears row `window_begin()` and slides the window one round forward.
  /// The caller must have consumed (executed) the row first; any requests
  /// still booked there are unbooked and returned.
  std::vector<RequestId> advance();

  /// Total booked slots in the window.
  std::int64_t booked_count() const {
    return static_cast<std::int64_t>(slot_of_.size());
  }

 private:
  std::size_t grid_index(SlotRef slot) const {
    return static_cast<std::size_t>(slot.resource) *
               static_cast<std::size_t>(config_.d) +
           static_cast<std::size_t>(slot.round % config_.d);
  }

  ProblemConfig config_{};
  Round window_begin_ = 0;
  std::vector<RequestId> grid_;  ///< n*d ring buffer, kNoRequest when free
  std::unordered_map<RequestId, SlotRef> slot_of_;
};

}  // namespace reqsched
