// The online schedule: a sliding window of n x d time slots.
//
// At round t the window covers slots s_{i,t'} with t <= t' < t+d. Assigning
// request r to slot (i, t') books resource i for round t'; when the simulator
// executes round t it reads row t, fulfills the booked requests, and slides
// the window forward.
//
// Capacitated generalization: a slot (i, t') holds capacity_of(i) execution
// units, so up to b_i requests can be booked into the same slot. A request
// with occupancy o > 1 books one unit of its resource in each of o
// consecutive rounds starting at its slot; once executed, the remaining
// rounds' units turn into anonymous holds (kHeldUnit) that keep the capacity
// busy until the occupancy run ends. With b == 1 and occupancy == 1 all of
// this degenerates to the historical one-cell-per-slot behaviour.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

class Schedule {
 public:
  explicit Schedule(ProblemConfig config);

  const ProblemConfig& config() const { return config_; }

  /// First round of the current window (== the simulator's current round).
  Round window_begin() const { return window_begin_; }
  /// One past the last round of the window.
  Round window_end() const { return window_begin_ + config_.d; }

  bool in_window(Round round) const {
    return round >= window_begin_ && round < window_end();
  }

  /// First *request* occupant of the slot's units, or kNoRequest (holds are
  /// skipped). With unit capacity this is the historical single occupant.
  RequestId request_at(SlotRef slot) const;

  /// Occupant of one capacity unit: a RequestId, kHeldUnit, or kNoRequest.
  RequestId occupant_unit(SlotRef slot, std::int32_t unit) const;

  /// Unbooked capacity units left in the slot.
  std::int32_t free_units(SlotRef slot) const;

  bool is_free(SlotRef slot) const { return free_units(slot) > 0; }

  /// Start slot the request is booked into, or kNoSlot.
  SlotRef slot_of(RequestId id) const;

  bool is_scheduled(RequestId id) const { return slot_of(id).valid(); }

  /// Books `request` starting at `slot`: one unit of slot.resource in each
  /// of the request's occupancy rounds. Every covered round must be inside
  /// the window with a free unit, the request unbooked, and the start must
  /// be one of the request's alternatives within its deadline.
  void assign(const Request& request, SlotRef slot);

  /// Removes the booking of `id` (must be booked): frees every unit of its
  /// occupancy run.
  void unassign(RequestId id);

  /// Execution-time release: frees the start-round unit (consumed by the
  /// execution) and converts the remaining occupancy rounds to holds. With
  /// occupancy 1 this is exactly unassign().
  void fulfill_release(RequestId id);

  /// Number of units booked by requests in round `round` (holds excluded).
  std::int32_t booked_in_round(Round round) const;

  /// Number of units held by finished-but-still-occupying executions in
  /// round `round`.
  std::int32_t held_in_round(Round round) const;

  /// All slots of `resource` within the window that still have a free unit,
  /// earliest first.
  std::vector<SlotRef> free_slots_of(ResourceId resource) const;

  /// Earliest slot of `resource` with a free unit in [from, to]
  /// (window-clamped), or kNoSlot.
  SlotRef earliest_free_slot(ResourceId resource, Round from, Round to) const;

  /// Clears row `window_begin()` and slides the window one round forward.
  /// The caller must have consumed (executed) the row first; any requests
  /// still booked there are unbooked and returned. Holds in the departing
  /// row simply end (their occupancy run is over).
  std::vector<RequestId> advance();

  /// Total booked requests in the window.
  std::int64_t booked_count() const {
    return static_cast<std::int64_t>(slot_of_.size());
  }

 private:
  friend struct SnapshotAccess;  ///< checkpoint codec (src/snapshot)
  std::size_t slot_base(SlotRef slot) const {
    return (static_cast<std::size_t>(slot.resource) *
                static_cast<std::size_t>(config_.d) +
            static_cast<std::size_t>(slot.round % config_.d)) *
           static_cast<std::size_t>(b_max_);
  }
  /// Books one unit of `slot` for `id` (or kHeldUnit); returns the unit.
  std::int32_t take_unit(SlotRef slot, RequestId id);
  /// Frees the unit of `slot` occupied by `id`.
  void release_unit(SlotRef slot, RequestId id);

  ProblemConfig config_{};
  std::int32_t b_max_ = 1;  ///< unit stride (config_.max_capacity())
  Round window_begin_ = 0;
  struct Booking {
    SlotRef slot = kNoSlot;         ///< start slot
    std::int32_t occupancy = 1;     ///< rounds covered from the start
  };

  /// n*d*b_max ring of capacity units: a RequestId, kHeldUnit, or
  /// kNoRequest. Units u >= capacity_of(resource) are padding and never
  /// scanned.
  std::vector<RequestId> grid_;
  std::unordered_map<RequestId, Booking> slot_of_;
};

}  // namespace reqsched
