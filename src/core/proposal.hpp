// Adversarial proposal interface.
//
// The lower-bound constructions (src/adversary) communicate an intended
// online schedule to the scripted strategy checker (src/strategies) through
// this interface. It lives in core so the two layers stay mutually
// independent: the adversary never sees strategy internals and the
// strategies never see adversary internals — the same information-flow
// firewall the paper's adaptive-adversary model requires (both sides observe
// only the public simulator state).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace reqsched {

class Simulator;

/// Complete set of bookings the window should hold after this round's step:
/// (request, slot) pairs. Bookings of pending requests absent from the
/// proposal are released (which the fix-family checkers reject).
using Proposal = std::vector<std::pair<RequestId, SlotRef>>;

class IProposalSource {
 public:
  virtual ~IProposalSource() = default;
  /// Called during on_round; std::nullopt defers to the fallback strategy.
  virtual std::optional<Proposal> propose(const Simulator& sim) = 0;
};

}  // namespace reqsched
