// Run metrics collected by the simulator.
#pragma once

#include <cstdint>
#include <ostream>

#include "util/assert.hpp"

namespace reqsched {

struct Metrics {
  std::int64_t rounds = 0;
  std::int64_t injected = 0;
  std::int64_t fulfilled = 0;
  std::int64_t expired = 0;
  /// Rounds a resource burned serving an already-fulfilled duplicate copy
  /// (only the independent-copy EDF strategy of Observation 3.2 does this).
  std::int64_t wasted_executions = 0;
  /// Schedule edits performed by the strategy.
  std::int64_t assignments = 0;
  std::int64_t unassignments = 0;
  /// Assignments of requests that had been booked before (rescheduling);
  /// zero for the A_fix family by construction.
  std::int64_t reassignments = 0;
  /// Communication rounds consumed (local strategies only).
  std::int64_t communication_rounds = 0;
  /// Messages sent over the network (local strategies only).
  std::int64_t messages = 0;

  double fulfilled_fraction() const {
    return injected == 0
               ? 1.0
               : static_cast<double>(fulfilled) / static_cast<double>(injected);
  }

  /// Every injected request is accounted for exactly once: fulfilled,
  /// expired, or still pending when the run stopped. The engine asserts this
  /// at the end of every run (with pending_at_end == 0 for drained runs).
  void check_conservation(std::int64_t pending_at_end) const {
    REQSCHED_CHECK_MSG(
        injected == fulfilled + expired + pending_at_end,
        "request conservation violated: injected=" << injected
            << " != fulfilled=" << fulfilled << " + expired=" << expired
            << " + pending=" << pending_at_end);
  }

  friend bool operator==(const Metrics&, const Metrics&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Metrics& m) {
    os << "rounds=" << m.rounds << " injected=" << m.injected
       << " fulfilled=" << m.fulfilled << " expired=" << m.expired
       << " wasted=" << m.wasted_executions
       << " (re)assignments=" << m.assignments << '/' << m.reassignments;
    if (m.communication_rounds != 0 || m.messages != 0) {
      os << " comm_rounds=" << m.communication_rounds
         << " messages=" << m.messages;
    }
    return os;
  }
};

}  // namespace reqsched
