// Workload (adversary) interface.
//
// The paper's adversary chooses, per round, how many requests arrive and
// their alternative resources. Adaptive adversaries (Theorem 2.6) may observe
// the online algorithm's public state, which they receive as a read-only view
// of the running simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"

namespace reqsched {

class Simulator;

class IWorkload {
 public:
  virtual ~IWorkload() = default;

  virtual std::string name() const = 0;

  /// Problem parameters this workload is built for.
  virtual ProblemConfig config() const = 0;

  /// Appends the requests to inject at round `t` to `out` (the engine owns
  /// and reuses the vector across rounds — generators allocate nothing per
  /// round in steady state). Called exactly once per round with strictly
  /// increasing `t`. `sim` is the observable state *before* this round's
  /// strategy step (adaptive adversaries may query it).
  virtual void generate(Round t, const Simulator& sim,
                        std::vector<RequestSpec>& out) = 0;

  /// True when no request will be injected at any round >= t. The simulator
  /// keeps running after exhaustion until all alive requests drain.
  virtual bool exhausted(Round t) const = 0;

  /// Called when a simulator (re)starts with this workload.
  virtual void reset() {}

  /// True when this workload supports checkpoint/resume: export_state()
  /// captures *all* mutable cross-round state (PRNG words, cursors) and
  /// import_state() restores it after reset(), such that generate() replays
  /// the exact remaining arrival sequence. Adaptive or externally-driven
  /// workloads stay false; checkpointing them is rejected up front.
  virtual bool resumable() const { return false; }

  /// Appends this workload's mutable state as raw 64-bit words. The snapshot
  /// layer owns framing and byte format; workloads never serialize bytes
  /// themselves (reqsched_lint keeps it that way).
  virtual void export_state(std::vector<std::uint64_t>& out) const {
    (void)out;
  }

  /// Restores state captured by export_state() on a freshly reset() instance
  /// built with identical parameters. The default (stateless) hook accepts
  /// only an empty word list.
  virtual void import_state(std::span<const std::uint64_t> state) {
    REQSCHED_REQUIRE_MSG(state.empty(),
                         "import_state: stateless workload given state words");
  }
};

/// Replays a pre-recorded trace.
class TraceWorkload final : public IWorkload {
 public:
  explicit TraceWorkload(const Trace& trace);

  std::string name() const override { return "trace"; }
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override { cursor_ = 0; }

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(static_cast<std::uint64_t>(cursor_));
  }
  void import_state(std::span<const std::uint64_t> state) override {
    REQSCHED_REQUIRE_MSG(state.size() == 1,
                         "TraceWorkload::import_state: expected one word");
    REQSCHED_REQUIRE(state[0] <= static_cast<std::uint64_t>(trace_.size()));
    cursor_ = static_cast<std::size_t>(state[0]);
  }

 private:
  const Trace& trace_;
  std::size_t cursor_ = 0;
};

}  // namespace reqsched
