// Workload (adversary) interface.
//
// The paper's adversary chooses, per round, how many requests arrive and
// their alternative resources. Adaptive adversaries (Theorem 2.6) may observe
// the online algorithm's public state, which they receive as a read-only view
// of the running simulator.
#pragma once

#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"

namespace reqsched {

class Simulator;

class IWorkload {
 public:
  virtual ~IWorkload() = default;

  virtual std::string name() const = 0;

  /// Problem parameters this workload is built for.
  virtual ProblemConfig config() const = 0;

  /// Appends the requests to inject at round `t` to `out` (the engine owns
  /// and reuses the vector across rounds — generators allocate nothing per
  /// round in steady state). Called exactly once per round with strictly
  /// increasing `t`. `sim` is the observable state *before* this round's
  /// strategy step (adaptive adversaries may query it).
  virtual void generate(Round t, const Simulator& sim,
                        std::vector<RequestSpec>& out) = 0;

  /// True when no request will be injected at any round >= t. The simulator
  /// keeps running after exhaustion until all alive requests drain.
  virtual bool exhausted(Round t) const = 0;

  /// Called when a simulator (re)starts with this workload.
  virtual void reset() {}
};

/// Replays a pre-recorded trace.
class TraceWorkload final : public IWorkload {
 public:
  explicit TraceWorkload(const Trace& trace);

  std::string name() const override { return "trace"; }
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override { cursor_ = 0; }

 private:
  const Trace& trace_;
  std::size_t cursor_ = 0;
};

}  // namespace reqsched
