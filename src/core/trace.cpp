#include "core/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

namespace reqsched {

RequestId Trace::add(Round arrival, const RequestSpec& spec) {
  REQSCHED_REQUIRE_MSG(arrival >= 0, "arrival rounds start at 0");
  REQSCHED_REQUIRE_MSG(
      requests_.empty() || arrival >= requests_.back().arrival,
      "requests must be added in arrival order");
  REQSCHED_REQUIRE_MSG(spec.first >= 0 && spec.first < config_.n,
                       "first alternative out of range: S" << spec.first);
  REQSCHED_REQUIRE_MSG(
      spec.second == kNoResource ||
          (spec.second >= 0 && spec.second < config_.n),
      "second alternative out of range: S" << spec.second);
  REQSCHED_REQUIRE_MSG(spec.second != spec.first,
                       "the two alternatives must be distinct resources");

  const std::int32_t window = spec.window > 0 ? spec.window : config_.d;
  REQSCHED_REQUIRE_MSG(window <= config_.d,
                       "per-request window may not exceed the instance d");

  Request r;
  r.id = static_cast<RequestId>(requests_.size());
  r.arrival = arrival;
  r.deadline = arrival + window - 1;
  r.first = spec.first;
  r.second = spec.second;
  requests_.push_back(r);
  last_useful_round_ = std::max(last_useful_round_, r.deadline);
  return r.id;
}

void Trace::save(std::ostream& os) const {
  os << "reqsched-trace " << config_.n << ' ' << config_.d << ' '
     << requests_.size() << '\n';
  for (const auto& r : requests_) {
    os << r.arrival << ' ' << r.first << ' ' << r.second << ' ' << r.deadline
       << '\n';
  }
}

Trace Trace::load(std::istream& is) {
  std::string magic;
  ProblemConfig config;
  std::int64_t count = -1;
  is >> magic >> config.n >> config.d >> count;
  REQSCHED_CHECK_MSG(static_cast<bool>(is) && magic == "reqsched-trace",
                     "not a reqsched trace stream");
  REQSCHED_CHECK_MSG(count >= 0, "negative request count in trace header");
  Trace trace(config);
  for (std::int64_t i = 0; i < count; ++i) {
    Round arrival = kNoRound;
    Round deadline = kNoRound;
    RequestSpec spec;
    is >> arrival >> spec.first >> spec.second >> deadline;
    REQSCHED_CHECK_MSG(static_cast<bool>(is), "truncated trace stream");
    REQSCHED_CHECK_MSG(arrival >= 0,
                       "negative arrival at request " << i);
    // Validate the serialized deadline directly instead of deferring to
    // whatever add() happens to catch after the window back-computation.
    REQSCHED_CHECK_MSG(
        deadline >= arrival && deadline <= arrival + config.d - 1,
        "deadline " << deadline << " outside [" << arrival << ", "
                    << arrival + config.d - 1 << "] at request " << i);
    spec.window = static_cast<std::int32_t>(deadline - arrival + 1);
    trace.add(arrival, spec);
  }
  // A well-formed stream ends when the declared count does: trailing request
  // rows mean the header undercounts and the trace would be silently
  // truncated.
  is >> std::ws;
  REQSCHED_CHECK_MSG(
      is.eof() || is.peek() == std::char_traits<char>::eof(),
      "trace stream continues past the declared request count");
  return trace;
}

}  // namespace reqsched
