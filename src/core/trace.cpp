#include "core/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace reqsched {
namespace {

/// True when the request round-trips through the v1 line format: at most
/// two alternatives and a one-round execution.
bool v1_representable(const Request& r) {
  return r.alternative_count() <= 2 && r.occupancy == 1;
}

void check_spec(const RequestSpec& spec, const ProblemConfig& config) {
  REQSCHED_REQUIRE_MSG(!spec.alts.empty(),
                       "a request needs at least one alternative");
  for (std::int32_t i = 0; i < spec.alts.size(); ++i) {
    const ResourceId alt = spec.alts[i];
    REQSCHED_REQUIRE_MSG(alt >= 0 && alt < config.n,
                         "alternative out of range: S" << alt);
    for (std::int32_t j = 0; j < i; ++j) {
      REQSCHED_REQUIRE_MSG(spec.alts[j] != alt,
                           "alternatives must be distinct resources (S"
                               << alt << " repeats)");
    }
  }
}

}  // namespace

RequestId Trace::add(Round arrival, const RequestSpec& spec) {
  REQSCHED_REQUIRE_MSG(arrival >= 0, "arrival rounds start at 0");
  REQSCHED_REQUIRE_MSG(
      requests_.empty() || arrival >= requests_.back().arrival,
      "requests must be added in arrival order");
  check_spec(spec, config_);

  const std::int32_t window = spec.window > 0 ? spec.window : config_.d;
  REQSCHED_REQUIRE_MSG(window <= config_.d,
                       "per-request window may not exceed the instance d");
  REQSCHED_REQUIRE_MSG(spec.occupancy >= 1,
                       "occupancy must be at least one round");
  REQSCHED_REQUIRE_MSG(
      spec.occupancy <= window,
      "occupancy " << spec.occupancy << " cannot fit in a " << window
                   << "-round window");

  Request r;
  r.id = static_cast<RequestId>(requests_.size());
  r.arrival = arrival;
  r.deadline = arrival + window - 1;
  r.occupancy = spec.occupancy;
  r.alts = spec.alts;
  requests_.push_back(r);
  last_useful_round_ = std::max(last_useful_round_, r.deadline);
  return r.id;
}

void Trace::save(std::ostream& os) const {
  const bool v1 = config_.unit_capacity() && config_.capacities.empty() &&
                  std::all_of(requests_.begin(), requests_.end(),
                              v1_representable);
  if (v1) {
    // The historical format, byte-for-byte: traces of the paper's model stay
    // readable by pre-generalization tooling.
    os << "reqsched-trace " << config_.n << ' ' << config_.d << ' '
       << requests_.size() << '\n';
    for (const auto& r : requests_) {
      os << r.arrival << ' ' << r.first() << ' ' << r.second() << ' '
         << r.deadline << '\n';
    }
    return;
  }
  os << "reqsched-trace-v2 " << config_.n << ' ' << config_.d << ' '
     << requests_.size() << '\n';
  os << "capacity " << config_.b;
  for (std::int32_t c : config_.capacities) os << ' ' << c;
  os << '\n';
  for (const auto& r : requests_) {
    os << r.arrival << ' ' << r.deadline << ' ' << r.occupancy << ' '
       << r.alternative_count();
    for (ResourceId alt : r.alts) os << ' ' << alt;
    os << '\n';
  }
}

namespace {

Trace load_v1_body(std::istream& is, const ProblemConfig& config,
                   std::int64_t count) {
  Trace trace(config);
  for (std::int64_t i = 0; i < count; ++i) {
    Round arrival = kNoRound;
    Round deadline = kNoRound;
    ResourceId first = kNoResource;
    ResourceId second = kNoResource;
    is >> arrival >> first >> second >> deadline;
    REQSCHED_CHECK_MSG(static_cast<bool>(is), "truncated trace stream");
    REQSCHED_CHECK_MSG(arrival >= 0, "negative arrival at request " << i);
    // Validate the serialized deadline directly instead of deferring to
    // whatever add() happens to catch after the window back-computation.
    REQSCHED_CHECK_MSG(
        deadline >= arrival && deadline <= arrival + config.d - 1,
        "deadline " << deadline << " outside [" << arrival << ", "
                    << arrival + config.d - 1 << "] at request " << i);
    RequestSpec spec{first, second,
                     static_cast<std::int32_t>(deadline - arrival + 1)};
    trace.add(arrival, spec);
  }
  return trace;
}

Trace load_v2_body(std::istream& is, ProblemConfig config,
                   std::int64_t count) {
  // Capacity line: `capacity b [c_0 ... c_{n-1}]`.
  std::string keyword;
  is >> keyword;
  REQSCHED_CHECK_MSG(static_cast<bool>(is) && keyword == "capacity",
                     "v2 trace stream is missing its capacity line");
  is >> config.b;
  REQSCHED_CHECK_MSG(static_cast<bool>(is) && config.b >= 1,
                     "bad uniform capacity in trace header");
  std::string rest;
  std::getline(is, rest);
  std::istringstream caps(rest);
  std::int32_t c = 0;
  while (caps >> c) {
    REQSCHED_CHECK_MSG(c >= 1, "bad per-resource capacity in trace header");
    config.capacities.push_back(c);
  }
  REQSCHED_CHECK_MSG(
      config.capacities.empty() ||
          config.capacities.size() == static_cast<std::size_t>(config.n),
      "per-resource capacity list must have exactly n entries");

  Trace trace(config);
  for (std::int64_t i = 0; i < count; ++i) {
    Round arrival = kNoRound;
    Round deadline = kNoRound;
    std::int32_t occupancy = 0;
    std::int32_t alternatives = 0;
    is >> arrival >> deadline >> occupancy >> alternatives;
    REQSCHED_CHECK_MSG(static_cast<bool>(is), "truncated trace stream");
    REQSCHED_CHECK_MSG(arrival >= 0, "negative arrival at request " << i);
    REQSCHED_CHECK_MSG(
        deadline >= arrival && deadline <= arrival + config.d - 1,
        "deadline " << deadline << " outside [" << arrival << ", "
                    << arrival + config.d - 1 << "] at request " << i);
    REQSCHED_CHECK_MSG(
        alternatives >= 1 && alternatives <= kMaxAlternatives,
        "alternative count " << alternatives << " outside [1, "
                             << kMaxAlternatives << "] at request " << i);
    const auto window = static_cast<std::int32_t>(deadline - arrival + 1);
    REQSCHED_CHECK_MSG(occupancy >= 1 && occupancy <= window,
                       "occupancy " << occupancy << " outside [1, " << window
                                    << "] at request " << i);
    RequestSpec spec;
    spec.window = window;
    spec.occupancy = occupancy;
    for (std::int32_t a = 0; a < alternatives; ++a) {
      ResourceId alt = kNoResource;
      is >> alt;
      REQSCHED_CHECK_MSG(static_cast<bool>(is), "truncated trace stream");
      spec.alts.push_back(alt);
    }
    trace.add(arrival, spec);
  }
  return trace;
}

}  // namespace

Trace Trace::load(std::istream& is) {
  std::string magic;
  ProblemConfig config;
  std::int64_t count = -1;
  is >> magic >> config.n >> config.d >> count;
  REQSCHED_CHECK_MSG(static_cast<bool>(is) && (magic == "reqsched-trace" ||
                                               magic == "reqsched-trace-v2"),
                     "not a reqsched trace stream");
  REQSCHED_CHECK_MSG(count >= 0, "negative request count in trace header");
  Trace trace = magic == "reqsched-trace"
                    ? load_v1_body(is, config, count)
                    : load_v2_body(is, std::move(config), count);
  // A well-formed stream ends when the declared count does: trailing request
  // rows mean the header undercounts and the trace would be silently
  // truncated.
  is >> std::ws;
  REQSCHED_CHECK_MSG(
      is.eof() || is.peek() == std::char_traits<char>::eof(),
      "trace stream continues past the declared request count");
  return trace;
}

}  // namespace reqsched
