// Fundamental identifiers and configuration for the scheduling model.
//
// Model recap (Berenbrink/Riedel/Scheideler, SPAA 1999): n resources work in
// synchronized rounds; every resource fulfills at most one request per round;
// each request names two distinct alternative resources and must be fulfilled
// within d rounds of its arrival or it is cancelled.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

/// Absolute round number (time step), starting at 0.
using Round = std::int64_t;

/// Resource index in [0, n).
using ResourceId = std::int32_t;

/// Request index into the realized trace, assigned in injection order.
using RequestId = std::int64_t;

inline constexpr Round kNoRound = -1;
inline constexpr ResourceId kNoResource = -1;
inline constexpr RequestId kNoRequest = -1;
/// Occupant sentinel for a capacity unit still held by the multi-round
/// occupancy of an already-executed request (reusable-resource model): the
/// unit is busy, but no live request owns it. Never a valid RequestId.
inline constexpr RequestId kHeldUnit = -2;

/// Static problem parameters.
///
/// The paper's model is unit capacity (every resource fulfills at most one
/// request per round). The capacitated generalization (Albers–Schubert
/// b-matching) lets resource r fulfill up to b_r requests per round: a
/// uniform `b`, optionally overridden per resource by `capacities`.
struct ProblemConfig {
  std::int32_t n = 1;  ///< number of resources
  std::int32_t d = 1;  ///< deadline window length (rounds, inclusive)
  /// Uniform per-(resource, round) execution capacity; 1 is the paper model.
  std::int32_t b = 1;
  /// Per-resource capacity override (size n when non-empty; entries >= 1).
  /// Empty means "uniform b everywhere".
  std::vector<std::int32_t> capacities;

  ProblemConfig() = default;
  ProblemConfig(std::int32_t resources, std::int32_t window,
                std::int32_t uniform_capacity = 1,
                std::vector<std::int32_t> per_resource = {})
      : n(resources),
        d(window),
        b(uniform_capacity),
        capacities(std::move(per_resource)) {}

  std::int32_t capacity_of(ResourceId resource) const {
    return capacities.empty() ? b
                              : capacities[static_cast<std::size_t>(resource)];
  }

  /// Largest b_r — the unit stride of capacity-expanded grids.
  std::int32_t max_capacity() const {
    return capacities.empty()
               ? b
               : *std::max_element(capacities.begin(), capacities.end());
  }

  /// True in the paper's unit-capacity model (every b_r == 1); the hot
  /// structures keep their historical single-bit-per-slot behaviour exactly
  /// when this holds.
  bool unit_capacity() const { return max_capacity() == 1; }

  /// Total execution units available per round (sum of b_r).
  std::int64_t units_per_round() const {
    if (capacities.empty()) {
      return static_cast<std::int64_t>(n) * b;
    }
    std::int64_t total = 0;
    for (std::int32_t c : capacities) total += c;
    return total;
  }

  void validate() const {
    REQSCHED_CHECK_MSG(n >= 1, "need at least one resource");
    REQSCHED_CHECK_MSG(d >= 1, "deadline window must span at least one round");
    REQSCHED_CHECK_MSG(b >= 1, "per-round capacity must be at least one");
    REQSCHED_CHECK_MSG(
        capacities.empty() ||
            capacities.size() == static_cast<std::size_t>(n),
        "per-resource capacities must cover every resource (got "
            << capacities.size() << " entries for n=" << n << ")");
    for (std::int32_t c : capacities) {
      REQSCHED_CHECK_MSG(c >= 1, "per-resource capacity must be at least one");
    }
  }

  /// Exact configuration identity (the checkpoint loader refuses to restore
  /// into an engine configured differently).
  friend bool operator==(const ProblemConfig&, const ProblemConfig&) = default;
};

/// One time slot: resource `resource` during round `round`.
struct SlotRef {
  ResourceId resource = kNoResource;
  Round round = kNoRound;

  friend bool operator==(const SlotRef&, const SlotRef&) = default;

  bool valid() const { return resource != kNoResource && round != kNoRound; }

  friend std::ostream& operator<<(std::ostream& os, const SlotRef& s) {
    return os << "s(" << s.resource << ',' << s.round << ')';
  }
};

inline constexpr SlotRef kNoSlot{};

/// Lifecycle of a request inside the simulator.
enum class RequestStatus : std::uint8_t {
  kPending,    ///< alive, not yet fulfilled
  kFulfilled,  ///< executed before its deadline
  kExpired,    ///< deadline passed unfulfilled
};

inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kFulfilled: return "fulfilled";
    case RequestStatus::kExpired: return "expired";
  }
  return "?";
}

}  // namespace reqsched

template <>
struct std::hash<reqsched::SlotRef> {
  std::size_t operator()(const reqsched::SlotRef& s) const noexcept {
    const auto h1 = std::hash<reqsched::ResourceId>{}(s.resource);
    const auto h2 = std::hash<reqsched::Round>{}(s.round);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
