// Fundamental identifiers and configuration for the scheduling model.
//
// Model recap (Berenbrink/Riedel/Scheideler, SPAA 1999): n resources work in
// synchronized rounds; every resource fulfills at most one request per round;
// each request names two distinct alternative resources and must be fulfilled
// within d rounds of its arrival or it is cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

#include "util/assert.hpp"

namespace reqsched {

/// Absolute round number (time step), starting at 0.
using Round = std::int64_t;

/// Resource index in [0, n).
using ResourceId = std::int32_t;

/// Request index into the realized trace, assigned in injection order.
using RequestId = std::int64_t;

inline constexpr Round kNoRound = -1;
inline constexpr ResourceId kNoResource = -1;
inline constexpr RequestId kNoRequest = -1;

/// Static problem parameters.
struct ProblemConfig {
  std::int32_t n = 1;  ///< number of resources
  std::int32_t d = 1;  ///< deadline window length (rounds, inclusive)

  void validate() const {
    REQSCHED_CHECK_MSG(n >= 1, "need at least one resource");
    REQSCHED_CHECK_MSG(d >= 1, "deadline window must span at least one round");
  }
};

/// One time slot: resource `resource` during round `round`.
struct SlotRef {
  ResourceId resource = kNoResource;
  Round round = kNoRound;

  friend bool operator==(const SlotRef&, const SlotRef&) = default;

  bool valid() const { return resource != kNoResource && round != kNoRound; }

  friend std::ostream& operator<<(std::ostream& os, const SlotRef& s) {
    return os << "s(" << s.resource << ',' << s.round << ')';
  }
};

inline constexpr SlotRef kNoSlot{};

/// Lifecycle of a request inside the simulator.
enum class RequestStatus : std::uint8_t {
  kPending,    ///< alive, not yet fulfilled
  kFulfilled,  ///< executed before its deadline
  kExpired,    ///< deadline passed unfulfilled
};

inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kFulfilled: return "fulfilled";
    case RequestStatus::kExpired: return "expired";
  }
  return "?";
}

}  // namespace reqsched

template <>
struct std::hash<reqsched::SlotRef> {
  std::size_t operator()(const reqsched::SlotRef& s) const noexcept {
    const auto h1 = std::hash<reqsched::ResourceId>{}(s.resource);
    const auto h2 = std::hash<reqsched::Round>{}(s.round);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
