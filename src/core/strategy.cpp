#include "core/strategy.hpp"

namespace reqsched {

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFix: return "A_fix";
    case StrategyKind::kCurrent: return "A_current";
    case StrategyKind::kFixBalance: return "A_fix_balance";
    case StrategyKind::kEager: return "A_eager";
    case StrategyKind::kBalance: return "A_balance";
  }
  return "?";
}

}  // namespace reqsched
