#include "core/schedule.hpp"

#include <algorithm>

namespace reqsched {

Schedule::Schedule(ProblemConfig config) : config_(config) {
  config_.validate();
  grid_.assign(static_cast<std::size_t>(config_.n) *
                   static_cast<std::size_t>(config_.d),
               kNoRequest);
}

RequestId Schedule::request_at(SlotRef slot) const {
  REQSCHED_REQUIRE_MSG(slot.resource >= 0 && slot.resource < config_.n,
                       "resource out of range: " << slot);
  REQSCHED_REQUIRE_MSG(in_window(slot.round),
                       "slot outside window [" << window_begin_ << ','
                                               << window_end() << "): "
                                               << slot);
  return grid_[grid_index(slot)];
}

SlotRef Schedule::slot_of(RequestId id) const {
  const auto it = slot_of_.find(id);
  return it == slot_of_.end() ? kNoSlot : it->second;
}

void Schedule::assign(const Request& request, SlotRef slot) {
  REQSCHED_REQUIRE_MSG(in_window(slot.round),
                       "assign outside window: " << slot);
  REQSCHED_REQUIRE_MSG(request.allows_slot(slot),
                       request << " does not allow " << slot);
  REQSCHED_REQUIRE_MSG(is_free(slot), "slot already booked: " << slot);
  REQSCHED_REQUIRE_MSG(!is_scheduled(request.id),
                       request << " is already booked at "
                               << slot_of(request.id));
  grid_[grid_index(slot)] = request.id;
  slot_of_.emplace(request.id, slot);
}

void Schedule::unassign(RequestId id) {
  const auto it = slot_of_.find(id);
  REQSCHED_REQUIRE_MSG(it != slot_of_.end(), "request r" << id
                                                         << " is not booked");
  grid_[grid_index(it->second)] = kNoRequest;
  slot_of_.erase(it);
}

std::int32_t Schedule::booked_in_round(Round round) const {
  REQSCHED_REQUIRE(in_window(round));
  std::int32_t count = 0;
  for (ResourceId i = 0; i < config_.n; ++i) {
    if (grid_[grid_index({i, round})] != kNoRequest) ++count;
  }
  return count;
}

std::vector<SlotRef> Schedule::free_slots_of(ResourceId resource) const {
  std::vector<SlotRef> out;
  for (Round t = window_begin_; t < window_end(); ++t) {
    const SlotRef slot{resource, t};
    if (grid_[grid_index(slot)] == kNoRequest) out.push_back(slot);
  }
  return out;
}

SlotRef Schedule::earliest_free_slot(ResourceId resource, Round from,
                                     Round to) const {
  const Round lo = std::max(from, window_begin_);
  const Round hi = std::min(to, window_end() - 1);
  for (Round t = lo; t <= hi; ++t) {
    const SlotRef slot{resource, t};
    if (grid_[grid_index(slot)] == kNoRequest) return slot;
  }
  return kNoSlot;
}

std::vector<RequestId> Schedule::advance() {
  std::vector<RequestId> leftover;
  for (ResourceId i = 0; i < config_.n; ++i) {
    const SlotRef slot{i, window_begin_};
    RequestId& cell = grid_[grid_index(slot)];
    if (cell != kNoRequest) {
      leftover.push_back(cell);
      slot_of_.erase(cell);
      cell = kNoRequest;
    }
  }
  ++window_begin_;
  return leftover;
}

}  // namespace reqsched
