#include "core/schedule.hpp"

#include <algorithm>
#include <utility>

namespace reqsched {

Schedule::Schedule(ProblemConfig config) : config_(std::move(config)) {
  config_.validate();
  b_max_ = config_.max_capacity();
  grid_.assign(static_cast<std::size_t>(config_.n) *
                   static_cast<std::size_t>(config_.d) *
                   static_cast<std::size_t>(b_max_),
               kNoRequest);
}

RequestId Schedule::request_at(SlotRef slot) const {
  REQSCHED_REQUIRE_MSG(slot.resource >= 0 && slot.resource < config_.n,
                       "resource out of range: " << slot);
  REQSCHED_REQUIRE_MSG(in_window(slot.round),
                       "slot outside window [" << window_begin_ << ','
                                               << window_end() << "): "
                                               << slot);
  const std::size_t base = slot_base(slot);
  const std::int32_t cap = config_.capacity_of(slot.resource);
  for (std::int32_t u = 0; u < cap; ++u) {
    const RequestId occupant = grid_[base + static_cast<std::size_t>(u)];
    if (occupant != kNoRequest && occupant != kHeldUnit) return occupant;
  }
  return kNoRequest;
}

RequestId Schedule::occupant_unit(SlotRef slot, std::int32_t unit) const {
  REQSCHED_REQUIRE_MSG(slot.resource >= 0 && slot.resource < config_.n,
                       "resource out of range: " << slot);
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(unit >= 0 && unit < config_.capacity_of(slot.resource));
  return grid_[slot_base(slot) + static_cast<std::size_t>(unit)];
}

std::int32_t Schedule::free_units(SlotRef slot) const {
  REQSCHED_REQUIRE_MSG(slot.resource >= 0 && slot.resource < config_.n,
                       "resource out of range: " << slot);
  REQSCHED_REQUIRE_MSG(in_window(slot.round),
                       "slot outside window [" << window_begin_ << ','
                                               << window_end() << "): "
                                               << slot);
  const std::size_t base = slot_base(slot);
  const std::int32_t cap = config_.capacity_of(slot.resource);
  std::int32_t free = 0;
  for (std::int32_t u = 0; u < cap; ++u) {
    if (grid_[base + static_cast<std::size_t>(u)] == kNoRequest) ++free;
  }
  return free;
}

SlotRef Schedule::slot_of(RequestId id) const {
  const auto it = slot_of_.find(id);
  return it == slot_of_.end() ? kNoSlot : it->second.slot;
}

std::int32_t Schedule::take_unit(SlotRef slot, RequestId id) {
  const std::size_t base = slot_base(slot);
  const std::int32_t cap = config_.capacity_of(slot.resource);
  for (std::int32_t u = 0; u < cap; ++u) {
    RequestId& cell = grid_[base + static_cast<std::size_t>(u)];
    if (cell == kNoRequest) {
      cell = id;
      return u;
    }
  }
  REQSCHED_REQUIRE_MSG(false, "no free unit in " << slot);
  return -1;
}

void Schedule::release_unit(SlotRef slot, RequestId id) {
  const std::size_t base = slot_base(slot);
  const std::int32_t cap = config_.capacity_of(slot.resource);
  for (std::int32_t u = 0; u < cap; ++u) {
    RequestId& cell = grid_[base + static_cast<std::size_t>(u)];
    if (cell == id) {
      cell = kNoRequest;
      return;
    }
  }
  REQSCHED_REQUIRE_MSG(false, "r" << id << " occupies no unit of " << slot);
}

void Schedule::assign(const Request& request, SlotRef slot) {
  REQSCHED_REQUIRE_MSG(in_window(slot.round),
                       "assign outside window: " << slot);
  REQSCHED_REQUIRE_MSG(request.allows_slot(slot),
                       request << " does not allow " << slot);
  REQSCHED_REQUIRE_MSG(!is_scheduled(request.id),
                       request << " is already booked at "
                               << slot_of(request.id));
  const Round last = slot.round + request.occupancy - 1;
  REQSCHED_REQUIRE_MSG(in_window(last),
                       request << " occupancy run leaves the window at "
                               << slot);
  for (Round t = slot.round; t <= last; ++t) {
    const SlotRef step{slot.resource, t};
    REQSCHED_REQUIRE_MSG(is_free(step), "no free unit at " << step);
  }
  for (Round t = slot.round; t <= last; ++t) {
    take_unit({slot.resource, t}, request.id);
  }
  slot_of_.emplace(request.id, Booking{slot, request.occupancy});
}

void Schedule::unassign(RequestId id) {
  const auto it = slot_of_.find(id);
  REQSCHED_REQUIRE_MSG(it != slot_of_.end(), "request r" << id
                                                         << " is not booked");
  const Booking booking = it->second;
  for (Round t = booking.slot.round;
       t <= booking.slot.round + booking.occupancy - 1; ++t) {
    release_unit({booking.slot.resource, t}, id);
  }
  slot_of_.erase(it);
}

void Schedule::fulfill_release(RequestId id) {
  const auto it = slot_of_.find(id);
  REQSCHED_REQUIRE_MSG(it != slot_of_.end(), "request r" << id
                                                         << " is not booked");
  const Booking booking = it->second;
  release_unit(booking.slot, id);
  for (Round t = booking.slot.round + 1;
       t <= booking.slot.round + booking.occupancy - 1; ++t) {
    // The execution is running: the unit stays busy but no longer belongs
    // to a live request.
    const SlotRef slot{booking.slot.resource, t};
    const std::size_t base = slot_base(slot);
    const std::int32_t cap = config_.capacity_of(slot.resource);
    bool converted = false;
    for (std::int32_t u = 0; u < cap && !converted; ++u) {
      RequestId& cell = grid_[base + static_cast<std::size_t>(u)];
      if (cell == id) {
        cell = kHeldUnit;
        converted = true;
      }
    }
    REQSCHED_REQUIRE_MSG(converted,
                         "r" << id << " occupies no unit of " << slot);
  }
  slot_of_.erase(it);
}

std::int32_t Schedule::booked_in_round(Round round) const {
  REQSCHED_REQUIRE(in_window(round));
  std::int32_t count = 0;
  for (ResourceId i = 0; i < config_.n; ++i) {
    const std::size_t base = slot_base({i, round});
    const std::int32_t cap = config_.capacity_of(i);
    for (std::int32_t u = 0; u < cap; ++u) {
      const RequestId cell = grid_[base + static_cast<std::size_t>(u)];
      if (cell != kNoRequest && cell != kHeldUnit) ++count;
    }
  }
  return count;
}

std::int32_t Schedule::held_in_round(Round round) const {
  REQSCHED_REQUIRE(in_window(round));
  std::int32_t count = 0;
  for (ResourceId i = 0; i < config_.n; ++i) {
    const std::size_t base = slot_base({i, round});
    const std::int32_t cap = config_.capacity_of(i);
    for (std::int32_t u = 0; u < cap; ++u) {
      if (grid_[base + static_cast<std::size_t>(u)] == kHeldUnit) ++count;
    }
  }
  return count;
}

std::vector<SlotRef> Schedule::free_slots_of(ResourceId resource) const {
  std::vector<SlotRef> out;
  for (Round t = window_begin_; t < window_end(); ++t) {
    const SlotRef slot{resource, t};
    if (is_free(slot)) out.push_back(slot);
  }
  return out;
}

SlotRef Schedule::earliest_free_slot(ResourceId resource, Round from,
                                     Round to) const {
  const Round lo = std::max(from, window_begin_);
  const Round hi = std::min(to, window_end() - 1);
  for (Round t = lo; t <= hi; ++t) {
    const SlotRef slot{resource, t};
    if (is_free(slot)) return slot;
  }
  return kNoSlot;
}

std::vector<RequestId> Schedule::advance() {
  std::vector<RequestId> leftover;
  for (ResourceId i = 0; i < config_.n; ++i) {
    const std::size_t base = slot_base({i, window_begin_});
    const std::int32_t cap = config_.capacity_of(i);
    for (std::int32_t u = 0; u < cap; ++u) {
      const RequestId cell = grid_[base + static_cast<std::size_t>(u)];
      if (cell == kHeldUnit) {
        // The occupancy run ends with this round.
        grid_[base + static_cast<std::size_t>(u)] = kNoRequest;
      } else if (cell != kNoRequest) {
        leftover.push_back(cell);
      }
    }
  }
  // Unbook after the scan: an occupancy run starting in the departing row
  // owns units in later rounds too, and unassign clears all of them.
  for (RequestId id : leftover) unassign(id);
  ++window_begin_;
  return leftover;
}

}  // namespace reqsched
