// Forwarding header: the Simulator moved into the engine layer when the
// round loop was factored into StreamingEngine. Kept so the many existing
// `#include "core/simulator.hpp"` sites (strategies, adversaries, analysis,
// tools) keep compiling unchanged.
#pragma once

#include "engine/simulator.hpp"  // IWYU pragma: export
