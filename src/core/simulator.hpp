// Round-driven simulator: the data server working in synchronized rounds.
//
// Per round t it (1) expires requests whose deadline has passed, (2) injects
// the adversary's new requests, (3) runs the online strategy, and (4) executes
// the current row of the schedule (each resource fulfills its booked request).
// The realized request sequence is recorded as a Trace so the offline optimum
// can be computed after the run.
#pragma once

#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "core/strategy.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"

namespace reqsched {

class Simulator {
 public:
  /// Both `workload` and `strategy` must outlive the simulator.
  Simulator(IWorkload& workload, IStrategy& strategy);

  /// Runs rounds until the workload is exhausted and all requests resolved.
  /// `max_rounds` is a runaway guard (violated => ContractViolation).
  const Metrics& run(std::int64_t max_rounds = 1'000'000);

  /// Executes a single round; returns false when the run is complete.
  bool step();

  bool finished() const;

  // ---- read API (strategies, adversaries, analysis) ----

  const ProblemConfig& config() const { return config_; }
  Round now() const { return schedule_.window_begin(); }

  const Trace& trace() const { return trace_; }
  const Request& request(RequestId id) const { return trace_.request(id); }

  RequestStatus status(RequestId id) const {
    REQSCHED_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < status_.size());
    return status_[static_cast<std::size_t>(id)];
  }
  bool is_pending(RequestId id) const {
    return status(id) == RequestStatus::kPending;
  }

  /// Requests injected in the current round (valid during on_round).
  std::span<const RequestId> injected_now() const { return injected_now_; }

  /// All pending (alive, unfulfilled) requests, oldest first.
  std::span<const RequestId> alive() const { return alive_; }

  const Schedule& schedule() const { return schedule_; }

  bool is_scheduled(RequestId id) const { return schedule_.is_scheduled(id); }
  SlotRef slot_of(RequestId id) const { return schedule_.slot_of(id); }

  /// Where a fulfilled request was executed (kNoSlot otherwise).
  SlotRef fulfilled_slot(RequestId id) const {
    REQSCHED_REQUIRE(id >= 0 &&
                     static_cast<std::size_t>(id) < fulfilled_slot_.size());
    return fulfilled_slot_[static_cast<std::size_t>(id)];
  }

  /// The final online matching: (request, execution slot) pairs.
  std::vector<std::pair<RequestId, SlotRef>> online_matching() const;

  const Metrics& metrics() const { return metrics_; }

  // ---- write API (strategy only, during on_round) ----

  /// Books a pending request into a free window slot it allows.
  void assign(RequestId id, SlotRef slot);

  /// Removes a booking.
  void unassign(RequestId id);

  /// Moves a booking (unassign + assign, counted as one reassignment).
  void move(RequestId id, SlotRef slot);

  /// Adds to the reassignment counter (used by strategies that rebook via
  /// two-phase unassign/assign instead of move()).
  void note_reassignments(std::int64_t count);

  /// Records that `resource` burns the current round serving an
  /// already-fulfilled duplicate copy (independent-copy EDF only).
  void record_wasted_execution(ResourceId resource);

  /// Adds communication-round / message accounting (local strategies).
  void record_communication(std::int64_t rounds, std::int64_t messages);

 private:
  void expire_round_start();
  void inject();
  void execute();

  ProblemConfig config_{};
  IWorkload& workload_;
  IStrategy& strategy_;

  Trace trace_;
  Schedule schedule_;
  std::vector<RequestStatus> status_;
  std::vector<SlotRef> fulfilled_slot_;
  std::vector<RequestId> alive_;
  std::vector<RequestId> injected_now_;
  Metrics metrics_{};
  bool in_strategy_ = false;
  bool ran_any_round_ = false;
};

}  // namespace reqsched
