// Request representation.
//
// The paper's core model fixes every request to exactly two alternative
// resources and a one-round execution. The generalized representation keeps
// that case free of any indirection — a small inline alternative list (no
// heap, k <= kMaxAlternatives) plus an occupancy duration — so the k-choice
// (Park's (k,d)-choice), vertex-capacitated (Albers–Schubert b-matching),
// and reusable-resource (Baek–Wang) settings share one request type with
// the two-choice paper model.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>

#include "core/types.hpp"

namespace reqsched {

/// Upper bound on alternatives per request (inline storage; the paper's
/// model uses 2, Park's (k,d)-choice any k <= this).
inline constexpr std::int32_t kMaxAlternatives = 8;

/// Inline, ordered list of alternative resources. Order is semantic: probes
/// and matchers enumerate alternatives in list order (the paper's
/// {first, second} tie-break generalizes to "earliest listed wins").
class AltList {
 public:
  AltList() = default;

  /// Two-choice convenience: `second == kNoResource` makes a 1-element list
  /// (the EDF single-alternative workloads).
  AltList(ResourceId first, ResourceId second = kNoResource) {
    if (first != kNoResource) push_back(first);
    if (second != kNoResource) push_back(second);
  }

  AltList(std::initializer_list<ResourceId> resources) {
    for (ResourceId r : resources) push_back(r);
  }

  std::int32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  ResourceId operator[](std::int32_t i) const {
    REQSCHED_REQUIRE(i >= 0 && i < count_);
    return alt_[static_cast<std::size_t>(i)];
  }

  /// Like operator[] but returns kNoResource past the end — the two-choice
  /// call sites read `at(1)` on single-alternative requests.
  ResourceId at(std::int32_t i) const {
    return i >= 0 && i < count_ ? alt_[static_cast<std::size_t>(i)]
                                : kNoResource;
  }

  void push_back(ResourceId r) {
    REQSCHED_REQUIRE_MSG(count_ < kMaxAlternatives,
                         "more than " << kMaxAlternatives
                                      << " alternatives on one request");
    alt_[static_cast<std::size_t>(count_++)] = r;
  }

  bool contains(ResourceId r) const {
    for (std::int32_t i = 0; i < count_; ++i) {
      if (alt_[static_cast<std::size_t>(i)] == r) return true;
    }
    return false;
  }

  const ResourceId* begin() const { return alt_.data(); }
  const ResourceId* end() const { return alt_.data() + count_; }
  std::span<const ResourceId> span() const { return {begin(), end()}; }

  friend bool operator==(const AltList& a, const AltList& b) {
    if (a.count_ != b.count_) return false;
    for (std::int32_t i = 0; i < a.count_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  std::array<ResourceId, kMaxAlternatives> alt_{};
  std::int32_t count_ = 0;
};

/// Workload-side description of a request, before the simulator assigns an
/// id and arrival round.
struct RequestSpec {
  /// Alternative resources, in tie-break order (k >= 1).
  AltList alts;
  /// Deadline window override in rounds; <= 0 means "use the instance d".
  /// The paper's core model uses a uniform d, but Observations 3.1/3.2 note
  /// the EDF results extend to heterogeneous deadlines, so we carry it.
  std::int32_t window = 0;
  /// Rounds of resource time one execution consumes (reusable-resource
  /// occupancy); the paper's model is 1.
  std::int32_t occupancy = 1;

  RequestSpec() = default;

  /// Two-choice construction, source-compatible with the historical
  /// {first, second, window} aggregate form.
  RequestSpec(ResourceId first_alt, ResourceId second_alt,
              std::int32_t window_rounds = 0, std::int32_t occ = 1)
      : alts(first_alt, second_alt), window(window_rounds), occupancy(occ) {}

  explicit RequestSpec(AltList alternatives, std::int32_t window_rounds = 0,
                       std::int32_t occ = 1)
      : alts(alternatives), window(window_rounds), occupancy(occ) {}

  ResourceId first() const { return alts.at(0); }
  ResourceId second() const { return alts.at(1); }
};

/// A realized request in the trace.
struct Request {
  RequestId id = kNoRequest;
  Round arrival = kNoRound;
  /// Last round (inclusive) in which the request may still be *running*:
  /// arrival + window - 1. With occupancy o, an execution may start no
  /// later than deadline - (o - 1).
  Round deadline = kNoRound;
  /// Rounds of resource time the execution consumes (>= 1).
  std::int32_t occupancy = 1;
  /// Alternative resources in tie-break order.
  AltList alts;

  Request() = default;
  Request(RequestId request_id, Round arrives, Round due,
          AltList alternatives, std::int32_t occ = 1)
      : id(request_id),
        arrival(arrives),
        deadline(due),
        occupancy(occ),
        alts(alternatives) {}

  ResourceId first() const { return alts.at(0); }
  ResourceId second() const { return alts.at(1); }

  std::int32_t alternative_count() const { return alts.size(); }

  bool allows_resource(ResourceId r) const { return alts.contains(r); }

  /// The other alternative, given one of them (requires two alternatives).
  ResourceId other_alternative(ResourceId r) const {
    REQSCHED_REQUIRE(alternative_count() == 2 && allows_resource(r));
    return r == alts.at(0) ? alts.at(1) : alts.at(0);
  }

  /// Latest round an execution may start and still finish by the deadline.
  Round latest_start() const { return deadline - (occupancy - 1); }

  /// May an execution *start* in `slot`? (With occupancy 1 this is exactly
  /// the historical containment check.)
  bool allows_slot(const SlotRef& slot) const {
    return allows_resource(slot.resource) && slot.round >= arrival &&
           slot.round <= latest_start();
  }

  friend std::ostream& operator<<(std::ostream& os, const Request& r) {
    os << "r" << r.id << "(t=" << r.arrival << ",dl=" << r.deadline;
    if (r.occupancy != 1) os << ",occ=" << r.occupancy;
    const char* sep = ",S";
    for (ResourceId alt : r.alts) {
      os << sep << alt;
      sep = "|S";
    }
    return os << ')';
  }
};

}  // namespace reqsched
