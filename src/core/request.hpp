// Request representation.
#pragma once

#include <array>
#include <ostream>

#include "core/types.hpp"

namespace reqsched {

/// Workload-side description of a request, before the simulator assigns an
/// id and arrival round.
struct RequestSpec {
  ResourceId first = kNoResource;   ///< first alternative resource
  ResourceId second = kNoResource;  ///< second alternative (kNoResource for
                                    ///< single-alternative EDF workloads)
  /// Deadline window override in rounds; <= 0 means "use the instance d".
  /// The paper's core model uses a uniform d, but Observations 3.1/3.2 note
  /// the EDF results extend to heterogeneous deadlines, so we carry it.
  std::int32_t window = 0;
};

/// A realized request in the trace.
struct Request {
  RequestId id = kNoRequest;
  Round arrival = kNoRound;
  /// Last round (inclusive) in which the request may be executed:
  /// arrival + window - 1.
  Round deadline = kNoRound;
  ResourceId first = kNoResource;
  ResourceId second = kNoResource;  ///< kNoResource for single-alternative

  int alternative_count() const { return second == kNoResource ? 1 : 2; }

  bool allows_resource(ResourceId r) const {
    return r == first || (second != kNoResource && r == second);
  }

  /// The other alternative, given one of them (requires two alternatives).
  ResourceId other_alternative(ResourceId r) const {
    REQSCHED_REQUIRE(alternative_count() == 2 && allows_resource(r));
    return r == first ? second : first;
  }

  bool allows_slot(const SlotRef& slot) const {
    return allows_resource(slot.resource) && slot.round >= arrival &&
           slot.round <= deadline;
  }

  friend std::ostream& operator<<(std::ostream& os, const Request& r) {
    os << "r" << r.id << "(t=" << r.arrival << ",dl=" << r.deadline << ",S"
       << r.first;
    if (r.second != kNoResource) os << "|S" << r.second;
    return os << ')';
  }
};

}  // namespace reqsched
