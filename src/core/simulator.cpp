#include "core/simulator.hpp"

#include <algorithm>

namespace reqsched {

Simulator::Simulator(IWorkload& workload, IStrategy& strategy)
    : config_(workload.config()),
      workload_(workload),
      strategy_(strategy),
      trace_(config_),
      schedule_(config_) {
  config_.validate();
  workload_.reset();
  strategy_.reset(config_);
}

bool Simulator::finished() const {
  return ran_any_round_ && alive_.empty() && workload_.exhausted(now());
}

const Metrics& Simulator::run(std::int64_t max_rounds) {
  while (!finished()) {
    REQSCHED_CHECK_MSG(metrics_.rounds < max_rounds,
                       "simulation exceeded " << max_rounds << " rounds");
    step();
  }
  return metrics_;
}

bool Simulator::step() {
  if (finished()) return false;
  expire_round_start();
  inject();

  in_strategy_ = true;
  strategy_.on_round(*this);
  in_strategy_ = false;
  injected_now_.clear();

  execute();
  ++metrics_.rounds;
  ran_any_round_ = true;
  return true;
}

void Simulator::expire_round_start() {
  const Round t = now();
  auto out = alive_.begin();
  for (const RequestId id : alive_) {
    const Request& r = request(id);
    if (r.deadline < t) {
      REQSCHED_CHECK_MSG(!schedule_.is_scheduled(id),
                         r << " expired while still booked at "
                           << schedule_.slot_of(id));
      status_[static_cast<std::size_t>(id)] = RequestStatus::kExpired;
      ++metrics_.expired;
    } else {
      *out++ = id;
    }
  }
  alive_.erase(out, alive_.end());
}

void Simulator::inject() {
  const Round t = now();
  const auto specs = workload_.generate(t, *this);
  injected_now_.clear();
  for (const RequestSpec& spec : specs) {
    const RequestId id = trace_.add(t, spec);
    REQSCHED_CHECK(static_cast<std::size_t>(id) == status_.size());
    status_.push_back(RequestStatus::kPending);
    fulfilled_slot_.push_back(kNoSlot);
    alive_.push_back(id);
    injected_now_.push_back(id);
    ++metrics_.injected;
  }
}

void Simulator::execute() {
  const Round t = now();
  std::int64_t fulfilled_now = 0;
  for (ResourceId i = 0; i < config_.n; ++i) {
    const RequestId id = schedule_.request_at({i, t});
    if (id == kNoRequest) continue;
    REQSCHED_CHECK(is_pending(id));
    schedule_.unassign(id);
    status_[static_cast<std::size_t>(id)] = RequestStatus::kFulfilled;
    fulfilled_slot_[static_cast<std::size_t>(id)] = SlotRef{i, t};
    ++metrics_.fulfilled;
    ++fulfilled_now;
  }
  if (fulfilled_now > 0) {
    // Mark-and-compact (same pattern as expire_round_start): one pass over
    // the backlog instead of an O(|alive|) erase per fulfilled request.
    auto out = alive_.begin();
    for (const RequestId id : alive_) {
      if (status_[static_cast<std::size_t>(id)] == RequestStatus::kPending) {
        *out++ = id;
      }
    }
    alive_.erase(out, alive_.end());
  }
  const auto leftover = schedule_.advance();
  REQSCHED_CHECK_MSG(leftover.empty(),
                     "schedule row survived execution unexpectedly");
}

std::vector<std::pair<RequestId, SlotRef>> Simulator::online_matching() const {
  std::vector<std::pair<RequestId, SlotRef>> out;
  for (RequestId id = 0; id < trace_.size(); ++id) {
    const SlotRef slot = fulfilled_slot_[static_cast<std::size_t>(id)];
    if (slot.valid()) out.emplace_back(id, slot);
  }
  return out;
}

void Simulator::assign(RequestId id, SlotRef slot) {
  REQSCHED_REQUIRE_MSG(in_strategy_,
                       "schedule edits are only allowed during on_round");
  REQSCHED_REQUIRE_MSG(is_pending(id), "cannot book non-pending r" << id);
  schedule_.assign(request(id), slot);
  ++metrics_.assignments;
}

void Simulator::unassign(RequestId id) {
  REQSCHED_REQUIRE_MSG(in_strategy_,
                       "schedule edits are only allowed during on_round");
  schedule_.unassign(id);
  ++metrics_.unassignments;
}

void Simulator::move(RequestId id, SlotRef slot) {
  REQSCHED_REQUIRE_MSG(in_strategy_,
                       "schedule edits are only allowed during on_round");
  schedule_.unassign(id);
  schedule_.assign(request(id), slot);
  ++metrics_.reassignments;
}

void Simulator::note_reassignments(std::int64_t count) {
  REQSCHED_REQUIRE(in_strategy_ && count >= 0);
  metrics_.reassignments += count;
}

void Simulator::record_wasted_execution(ResourceId resource) {
  REQSCHED_REQUIRE(in_strategy_);
  REQSCHED_REQUIRE(resource >= 0 && resource < config_.n);
  REQSCHED_REQUIRE_MSG(schedule_.is_free({resource, now()}),
                       "a wasted execution burns an idle slot");
  ++metrics_.wasted_executions;
}

void Simulator::record_communication(std::int64_t rounds,
                                     std::int64_t messages) {
  metrics_.communication_rounds += rounds;
  metrics_.messages += messages;
}

}  // namespace reqsched
