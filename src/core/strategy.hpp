// Online strategy interface.
//
// Once per round, after expiry and injection and before execution, the
// simulator hands control to the strategy, which edits the schedule through
// the simulator's assign/unassign API. The paper's per-strategy rules
// (no rescheduling, balance objectives, ...) are behavioural properties of
// concrete strategies, enforced by the strategy implementations themselves
// and verified independently by the rule monitors in analysis/.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"

namespace reqsched {

class Simulator;

/// The paper's named strategy classes. Lives in core because both the
/// strategy implementations (src/strategies) and the lower-bound
/// constructions (src/adversary) refer to the classes by name, and those two
/// layers must not include each other.
enum class StrategyKind { kFix, kCurrent, kFixBalance, kEager, kBalance };

const char* to_string(StrategyKind kind);

class IStrategy {
 public:
  virtual ~IStrategy() = default;

  virtual std::string name() const = 0;

  /// Called when a simulator (re)starts; strategies drop all per-run state.
  virtual void reset(const ProblemConfig& config) { (void)config; }

  /// One scheduling step at sim.now(). May call sim.assign()/sim.unassign().
  virtual void on_round(Simulator& sim) = 0;

  /// True when the strategy consumes the engine's delta-maintained window
  /// problem (matching/delta_window.hpp). The engine only pays for mirroring
  /// schedule edits into that structure when the strategy asks for it.
  /// Decorators (probes, scripted wrappers, timers) must forward this.
  virtual bool wants_window_problem() const { return false; }

  /// True when the strategy's treatment of fresh arrivals is exactly "match
  /// the injected batch into the free window, round-asc {first, second}" —
  /// i.e. match_new_into_window semantics. The engine may then pre-book
  /// uncontended arrivals in its admission fast path (provably the matching
  /// Kuhn would produce) and report AdmissionOutcome::kAdmitted, which the
  /// strategy must honour by skipping its own matcher for the batch.
  /// Strategies that rebook existing requests on arrival, or that treat the
  /// batch jointly with the backlog, must return false. Decorators forward
  /// this; adversarial wrappers that propose complete bookings (scripted
  /// replays) must NOT — pre-booked arrivals would invalidate their
  /// proposals. Requires wants_window_problem().
  virtual bool wants_admission_fast_path() const { return false; }

  /// Fast-path refinement: true when the strategy's own matcher only ever
  /// books the *current* round (A_current), so the engine must clamp its
  /// admission probes to round t — an arrival whose earliest allowed slot
  /// lies beyond t would be left unbooked by the strategy's matcher, and
  /// pre-booking it there would diverge. Only read when
  /// wants_admission_fast_path(). Decorators forward this.
  virtual bool admission_probe_current_round_only() const { return false; }

  /// Fast-path refinement: true when the strategy's matcher treats fresh
  /// arrivals *jointly* with the unscheduled backlog (A_current,
  /// A_fix_balance), so greedy pre-booking of the batch is only provably
  /// the matcher's result on rounds whose backlog is already fully booked.
  /// The engine checks DeltaWindowProblem::unbooked_row_count() per round
  /// and punts otherwise. Only read when wants_admission_fast_path().
  /// Decorators forward this.
  virtual bool admission_needs_empty_backlog() const { return false; }

  /// True when this strategy supports checkpoint/resume: export_state()
  /// captures *all* mutable cross-round state (PRNG words, EDF queues) and
  /// import_state() restores it after reset(), such that on_round() makes
  /// the exact decisions the uninterrupted run would have made. Strategies
  /// with unserializable state (scripted replays mid-script, decorators over
  /// arbitrary inner strategies) stay false; checkpointing them is rejected
  /// up front. Decorators over resumable strategies must forward all three
  /// hooks.
  virtual bool resumable() const { return false; }

  /// Appends this strategy's mutable state as raw 64-bit words. The snapshot
  /// layer owns framing and byte format; strategies never serialize bytes
  /// themselves (reqsched_lint keeps it that way).
  virtual void export_state(std::vector<std::uint64_t>& out) const {
    (void)out;
  }

  /// Restores state captured by export_state() on a freshly reset() instance
  /// built with identical parameters (same seed). The default (stateless)
  /// hook accepts only an empty word list.
  virtual void import_state(std::span<const std::uint64_t> state) {
    REQSCHED_REQUIRE_MSG(state.empty(),
                         "import_state: stateless strategy given state words");
  }
};

}  // namespace reqsched
