// A realized request sequence (trace), recorded by the simulator and consumed
// by the offline optimum and by trace (de)serialization.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

/// Immutable-after-run record of everything the adversary injected.
/// Requests are stored in injection order (arrival, then per-round order),
/// which is also RequestId order.
class Trace {
 public:
  Trace() = default;
  explicit Trace(ProblemConfig config) : config_(config) { config_.validate(); }

  const ProblemConfig& config() const { return config_; }

  /// Appends a request arriving at `arrival`; returns its id.
  /// Arrivals must be non-decreasing.
  RequestId add(Round arrival, const RequestSpec& spec);

  const Request& request(RequestId id) const {
    REQSCHED_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < requests_.size());
    return requests_[static_cast<std::size_t>(id)];
  }

  std::span<const Request> requests() const { return requests_; }

  std::int64_t size() const { return static_cast<std::int64_t>(requests_.size()); }
  bool empty() const { return requests_.empty(); }

  /// Last round in which any request may still be executed (kNoRound if empty).
  Round last_useful_round() const { return last_useful_round_; }

  /// Plain-text serialization: header line `reqsched-trace n d count`,
  /// then one `arrival first second deadline` line per request.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  ProblemConfig config_{};
  std::vector<Request> requests_;
  Round last_useful_round_ = kNoRound;
};

}  // namespace reqsched
