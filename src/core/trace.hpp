// A realized request sequence (trace), recorded by the simulator and consumed
// by the offline optimum and by trace (de)serialization.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

/// Immutable-after-run record of everything the adversary injected.
/// Requests are stored in injection order (arrival, then per-round order),
/// which is also RequestId order.
class Trace {
 public:
  Trace() = default;
  explicit Trace(ProblemConfig config) : config_(config) { config_.validate(); }

  const ProblemConfig& config() const { return config_; }

  /// Appends a request arriving at `arrival`; returns its id.
  /// Arrivals must be non-decreasing.
  RequestId add(Round arrival, const RequestSpec& spec);

  const Request& request(RequestId id) const {
    REQSCHED_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < requests_.size());
    return requests_[static_cast<std::size_t>(id)];
  }

  std::span<const Request> requests() const { return requests_; }

  std::int64_t size() const { return static_cast<std::int64_t>(requests_.size()); }
  bool empty() const { return requests_.empty(); }

  /// Last round in which any request may still be executed (kNoRound if empty).
  Round last_useful_round() const { return last_useful_round_; }

  /// Plain-text serialization. Traces of the paper's model (k <= 2,
  /// occupancy 1, unit capacity) keep the historical v1 format — header
  /// `reqsched-trace n d count`, one `arrival first second deadline` line
  /// per request — byte-for-byte. Anything general writes v2: header
  /// `reqsched-trace-v2 n d count`, a `capacity b [c_0 ... c_{n-1}]` line,
  /// then `arrival deadline occupancy k alt_0 ... alt_{k-1}` lines. load()
  /// accepts both and validates every field against the config.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  friend struct SnapshotAccess;  ///< checkpoint codec (src/snapshot)
  ProblemConfig config_{};
  std::vector<Request> requests_;
  Round last_useful_round_ = kNoRound;
};

}  // namespace reqsched
