#include "core/workload.hpp"

namespace reqsched {

TraceWorkload::TraceWorkload(const Trace& trace) : trace_(trace) {}

ProblemConfig TraceWorkload::config() const { return trace_.config(); }

void TraceWorkload::generate(Round t, const Simulator& sim,
                             std::vector<RequestSpec>& out) {
  (void)sim;
  const auto requests = trace_.requests();
  while (cursor_ < requests.size() && requests[cursor_].arrival == t) {
    const Request& r = requests[cursor_];
    RequestSpec spec;
    spec.alts = r.alts;
    spec.window = static_cast<std::int32_t>(r.deadline - r.arrival + 1);
    spec.occupancy = r.occupancy;
    out.push_back(spec);
    ++cursor_;
  }
  REQSCHED_CHECK_MSG(cursor_ >= requests.size() ||
                         requests[cursor_].arrival > t,
                     "trace requests visited out of order");
}

bool TraceWorkload::exhausted(Round t) const {
  (void)t;
  return cursor_ >= trace_.requests().size();
}

}  // namespace reqsched
