// Bipartite graphs and matchings.
//
// This is the substrate every strategy and the offline optimum build on: the
// paper models all scheduling decisions as matchings in the bipartite graph
// of requests x time slots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

/// Adjacency-list bipartite graph over `left_count` x `right_count` vertices.
/// Edge order is significant: the augmenting-path algorithms try neighbours
/// in adjacency order, which is how adversarial tie-breaking is steered.
class BipartiteGraph {
 public:
  BipartiteGraph(std::int32_t left_count, std::int32_t right_count);

  std::int32_t left_count() const { return left_count_; }
  std::int32_t right_count() const { return right_count_; }

  void add_edge(std::int32_t left, std::int32_t right);

  std::span<const std::int32_t> neighbors(std::int32_t left) const {
    REQSCHED_REQUIRE(left >= 0 && left < left_count_);
    return adj_[static_cast<std::size_t>(left)];
  }

  std::int64_t edge_count() const { return edge_count_; }

 private:
  std::int32_t left_count_;
  std::int32_t right_count_;
  std::int64_t edge_count_ = 0;
  std::vector<std::vector<std::int32_t>> adj_;
};

/// A matching as mutual left<->right assignments (-1 = unmatched).
struct Matching {
  std::vector<std::int32_t> left_to_right;
  std::vector<std::int32_t> right_to_left;

  static Matching empty(const BipartiteGraph& g);

  std::int32_t size() const;

  bool left_matched(std::int32_t l) const {
    return left_to_right[static_cast<std::size_t>(l)] >= 0;
  }
  bool right_matched(std::int32_t r) const {
    return right_to_left[static_cast<std::size_t>(r)] >= 0;
  }

  void match(std::int32_t l, std::int32_t r);
  void unmatch_left(std::int32_t l);
};

/// Checks mutual consistency and that every matched pair is a graph edge.
void validate_matching(const BipartiteGraph& g, const Matching& m);

/// True if no edge can be added to `m` without breaking the matching
/// property (i.e. `m` is maximal).
bool is_maximal_matching(const BipartiteGraph& g, const Matching& m);

/// Greedy maximal matching: scans lefts in index order, takes the first free
/// neighbour. O(E).
Matching greedy_maximal(const BipartiteGraph& g);

/// Kuhn's augmenting-path maximum matching, processing left vertices in
/// `left_order` (all lefts if empty). Augmenting never unmatches a matched
/// left vertex, so earlier lefts in the order are preferred — this realizes
/// the adversarial "the strategy can be implemented such that ..." freedom.
/// Starts from `seed` if provided. O(V*E).
Matching kuhn_ordered(const BipartiteGraph& g,
                      std::span<const std::int32_t> left_order = {},
                      const Matching* seed = nullptr);

/// Hopcroft–Karp maximum matching. O(E * sqrt(V)).
Matching hopcroft_karp(const BipartiteGraph& g);

/// König's theorem: a minimum vertex cover (lefts, rights) derived from a
/// maximum matching; |cover| == |matching| certifies optimality.
struct VertexCover {
  std::vector<std::int32_t> lefts;
  std::vector<std::int32_t> rights;
  std::int64_t size() const {
    return static_cast<std::int64_t>(lefts.size() + rights.size());
  }
};
VertexCover koenig_cover(const BipartiteGraph& g, const Matching& maximum);

/// Checks that every edge of `g` is covered.
bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover);

}  // namespace reqsched
