// Bipartite graphs and matchings.
//
// This is the substrate every strategy and the offline optimum build on: the
// paper models all scheduling decisions as matchings in the bipartite graph
// of requests x time slots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

/// CSR (compressed sparse row) bipartite graph over `left_count` x
/// `right_count` vertices: a flat edge array plus per-left offsets, so
/// neighbour iteration is a `std::span` over contiguous memory and the whole
/// structure is two allocations regardless of edge count.
///
/// Edge order is significant: the augmenting-path algorithms try neighbours
/// in adjacency order, which is how adversarial tie-breaking is steered. Both
/// builders below preserve per-left insertion order exactly (the staged path
/// via a stable counting sort), so CSR graphs are edge-for-edge identical to
/// the legacy nested-vector layout.
///
/// Two ways to build:
///  * staged  — `add_edge()` in any order, then `finalize()`; convenient for
///    tests and per-round problems. A freshly constructed/reset graph is
///    already finalized (with zero edges), so edge-free graphs need no call.
///  * direct two-pass — `count_edges()` per left, `start_fill()`,
///    `fill_edge()` in final order, `finish_fill()`; the zero-staging hot
///    path used by `SlotGraph`, where every request's degree is known
///    up front (window x alternatives).
///
/// In debug builds (and the sanitized CI pass) both builders reject duplicate
/// (left, right) edges — duplicates would skew augmenting-path order
/// histograms.
class BipartiteGraph {
 public:
  BipartiteGraph() { reset(0, 0); }
  BipartiteGraph(std::int32_t left_count, std::int32_t right_count) {
    reset(left_count, right_count);
  }

  /// Reinitializes to an edge-free finalized graph, reusing capacity.
  void reset(std::int32_t left_count, std::int32_t right_count);

  std::int32_t left_count() const { return left_count_; }
  std::int32_t right_count() const { return right_count_; }

  /// Stages an edge; call finalize() before querying neighbours.
  void add_edge(std::int32_t left, std::int32_t right);

  /// Builds the CSR arrays from staged edges (stable counting sort: per-left
  /// insertion order is preserved). Idempotent; no-op when nothing is staged.
  void finalize();

  /// Direct two-pass builder, pass 1: declare `count` edges for `left`.
  void count_edges(std::int32_t left, std::int64_t count);
  /// Ends pass 1 (prefix-sums the degree counts) and begins pass 2.
  void start_fill();
  /// Pass 2: edges must arrive grouped by left in their final order.
  void fill_edge(std::int32_t left, std::int32_t right);
  /// Pass 2, bulk form: appends all of `rights` to `left` with one cursor
  /// range check (per-edge bounds are debug-only), so the hot build path is
  /// a single copy per left.
  void fill_edges(std::int32_t left, std::span<const std::int32_t> rights);
  /// Ends pass 2; checks every declared edge was filled.
  void finish_fill();

  /// True when the CSR arrays are current and neighbours may be queried.
  bool ready() const { return state_ == State::kReady; }

  std::span<const std::int32_t> neighbors(std::int32_t left) const {
    REQSCHED_REQUIRE(state_ == State::kReady);
    REQSCHED_REQUIRE(left >= 0 && left < left_count_);
    const auto lo = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(left)]);
    const auto hi =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(left) + 1]);
    return {edges_.data() + lo, hi - lo};
  }

  std::int64_t edge_count() const {
    return state_ == State::kStaged
               ? static_cast<std::int64_t>(pending_left_.size())
               : static_cast<std::int64_t>(edges_.size());
  }

 private:
  enum class State : std::uint8_t {
    kReady,     // CSR arrays current
    kStaged,    // add_edge() calls pending a finalize()
    kCounting,  // two-pass builder, pass 1
    kFilling,   // two-pass builder, pass 2
  };

  void check_no_duplicate_edges() const;

  std::int32_t left_count_ = 0;
  std::int32_t right_count_ = 0;
  State state_ = State::kReady;
  /// True once built via the two-pass API; add_edge() would silently drop
  /// those edges on finalize(), so the two paths cannot be mixed.
  bool direct_built_ = false;
  std::vector<std::int64_t> offsets_;  // size left_count_ + 1
  std::vector<std::int64_t> cursor_;   // fill cursors, reused across builds
  std::vector<std::int32_t> edges_;    // flat adjacency, grouped by left
  std::vector<std::int32_t> pending_left_;   // staged edges (authoritative
  std::vector<std::int32_t> pending_right_;  //   until the next reset)
};

/// A matching as mutual left<->right assignments (-1 = unmatched).
struct Matching {
  std::vector<std::int32_t> left_to_right;
  std::vector<std::int32_t> right_to_left;

  static Matching empty(const BipartiteGraph& g);

  /// Clears to the all-unmatched state sized for `g`, reusing capacity.
  void reset(const BipartiteGraph& g);

  std::int32_t size() const;

  bool left_matched(std::int32_t l) const {
    return left_to_right[static_cast<std::size_t>(l)] >= 0;
  }
  bool right_matched(std::int32_t r) const {
    return right_to_left[static_cast<std::size_t>(r)] >= 0;
  }

  void match(std::int32_t l, std::int32_t r);
  void unmatch_left(std::int32_t l);
};

/// Reusable buffers for the matching algorithms below. Passing the same
/// instance across calls keeps repeated solves (sweeps, prefix replays)
/// allocation-free once the arena has grown to the working-set size.
struct MatchingScratch {
  struct DfsFrame {
    std::int32_t left;       // left vertex this frame explores
    std::int32_t edge;       // next adjacency index to try
    std::int32_t via_right;  // matched right we entered `left` through
  };
  std::vector<std::int32_t> dist;   // Hopcroft–Karp BFS layers
  std::vector<std::int32_t> queue;  // flat FIFO (head index, no pops)
  std::vector<DfsFrame> stack;      // iterative DFS frames
  std::vector<char> visited_left;   // König BFS marks
  std::vector<char> visited_right;  // Kuhn / König visited marks
  std::vector<std::int32_t> order;  // default left order for kuhn_ordered
};

/// Checks mutual consistency and that every matched pair is a graph edge.
void validate_matching(const BipartiteGraph& g, const Matching& m);

/// True if no edge can be added to `m` without breaking the matching
/// property (i.e. `m` is maximal).
bool is_maximal_matching(const BipartiteGraph& g, const Matching& m);

/// Greedy maximal matching: scans lefts in index order, takes the first free
/// neighbour. O(E).
Matching greedy_maximal(const BipartiteGraph& g);

/// Kuhn's augmenting-path maximum matching, processing left vertices in
/// `left_order` (all lefts if empty). Augmenting never unmatches a matched
/// left vertex, so earlier lefts in the order are preferred — this realizes
/// the adversarial "the strategy can be implemented such that ..." freedom.
/// Starts from `seed` if provided. O(V*E).
Matching kuhn_ordered(const BipartiteGraph& g,
                      std::span<const std::int32_t> left_order = {},
                      const Matching* seed = nullptr);

/// Scratch-reusing variant: writes the matching into `out`.
void kuhn_ordered(const BipartiteGraph& g,
                  std::span<const std::int32_t> left_order,
                  const Matching* seed, Matching& out, MatchingScratch& scratch);

/// Hopcroft–Karp maximum matching. O(E * sqrt(V)).
Matching hopcroft_karp(const BipartiteGraph& g);

/// Scratch-reusing variant: writes the matching into `out`. The traversal
/// order is identical to the allocating variant (and to the legacy recursive
/// implementation), so results are bit-identical.
void hopcroft_karp(const BipartiteGraph& g, Matching& out,
                   MatchingScratch& scratch);

/// König's theorem: a minimum vertex cover (lefts, rights) derived from a
/// maximum matching; |cover| == |matching| certifies optimality.
struct VertexCover {
  std::vector<std::int32_t> lefts;
  std::vector<std::int32_t> rights;
  std::int64_t size() const {
    return static_cast<std::int64_t>(lefts.size() + rights.size());
  }
};
VertexCover koenig_cover(const BipartiteGraph& g, const Matching& maximum);

/// Scratch-reusing variant: writes the cover into `out`.
void koenig_cover(const BipartiteGraph& g, const Matching& maximum,
                  VertexCover& out, MatchingScratch& scratch);

/// Checks that every edge of `g` is covered.
bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover);

/// Scratch-reusing variant: marks cover membership in `scratch.visited_left`
/// / `scratch.visited_right` instead of allocating.
bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover,
                      MatchingScratch& scratch);

}  // namespace reqsched
