// Lexicographic bipartite matching.
//
// The balance strategies of the paper maximize
//   F = sum_j X_{t+j} * (n+1)^(d-j)
// over matchings, where X_{t+j} counts booked slots in round t+j. Because
// (n+1)^(d-j) > n * sum of all later weights, maximizing F is exactly the
// lexicographic maximization of the vector (X_t, ..., X_{t+d-1}). We solve
// that exactly, in two flavours:
//
//  * pure lex (A_fix_balance): maximize X_0, then X_1 given X_0, ... —
//    Megiddo-style iterated max-flows with level capacities. The result is
//    automatically a maximal matching.
//  * cardinality-first (A_eager, A_balance): first a maximum-cardinality
//    matching that keeps a required set of lefts matched, then the
//    lexicographic profile among those — staged min-cost max-flow with
//    priority costs {-K required, -B earlier levels, -1 current level}.
//
// Weights never materialize as (n+1)^d, so there is no overflow for any n, d.
#pragma once

#include <cstdint>
#include <vector>

#include "matching/bipartite.hpp"
#include "util/assert.hpp"

namespace reqsched {

struct LexMatchProblem {
  /// Finalized CSR adjacency (lefts x rights). Callers building by hand must
  /// call graph.finalize() after the last add_edge().
  BipartiteGraph graph{0, 0};
  std::int32_t level_count = 0;
  /// level_of_right[r] in [0, level_count); level 0 is most preferred.
  std::vector<std::int32_t> level_of_right;
  /// Lefts that must end up matched (cardinality-first mode only; such a
  /// matching must exist — callers pass previously-scheduled requests).
  std::vector<std::int32_t> required_lefts;
  /// true: maximize |M| first, then lex profile; false: pure lex profile.
  bool cardinality_first = false;

  std::int32_t left_count() const { return graph.left_count(); }
  std::int32_t right_count() const { return graph.right_count(); }

  void validate() const;
};

struct LexMatchResult {
  std::vector<std::int32_t> left_to_right;  ///< -1 = unmatched
  std::vector<std::int64_t> level_counts;   ///< the optimal profile
  std::int64_t cardinality = 0;
};

LexMatchResult solve_lex_matching(const LexMatchProblem& problem);

/// Compares two level profiles lexicographically (first difference wins).
/// Returns <0, 0, >0 like strcmp.
int compare_profiles(const std::vector<std::int64_t>& a,
                     const std::vector<std::int64_t>& b);

}  // namespace reqsched
