#include "matching/delta_window.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_map>

namespace reqsched {

namespace {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
}  // namespace

void DeltaWindowProblem::reset(const ProblemConfig& config) {
  config.validate();
  config_ = config;
  b_max_ = config_.max_capacity();
  window_begin_ = 0;
  rows_.clear();
  unbooked_rows_ = 0;
  booked_runs_ = 0;

  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  const std::size_t words = words_per_column();
  free_.assign(d * words, kAllOnes);
  // Clear the bits past resource n - 1 so popcount-based ranks stay exact.
  const std::size_t tail_bits = n % 64;
  if (tail_bits != 0) {
    const std::uint64_t tail_mask = (std::uint64_t{1} << tail_bits) - 1;
    for (std::size_t c = 0; c < d; ++c) free_[c * words + words - 1] = tail_mask;
  }
  grid_.assign(n * d * static_cast<std::size_t>(b_max_), kNoRequest);
  free_count_.resize(n * d);
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      free_count_[c * n + r] = config_.capacity_of(static_cast<ResourceId>(r));
    }
  }
  col_booked_.assign(d, 0);
  col_held_.assign(d, 0);
  const auto round_units = config_.units_per_round();
  REQSCHED_REQUIRE_MSG(round_units <= std::numeric_limits<std::int32_t>::max(),
                       "capacity units per round exceed 32-bit indexing");
  col_free_.assign(d, static_cast<std::int32_t>(round_units));
  unit_offset_.resize(n + 1);
  unit_offset_[0] = 0;
  for (std::size_t r = 0; r < n; ++r) {
    unit_offset_[r + 1] =
        unit_offset_[r] + config_.capacity_of(static_cast<ResourceId>(r));
  }
  // Transposed per-resource masks, multi-word for d > 64: every ring column
  // starts free, bits at or past d stay clear so rotates/sweeps are exact.
  const std::size_t res_words = words_per_resource();
  res_free_.assign(n * res_words, kAllOnes);
  const std::size_t res_tail = d % 64;
  if (res_tail != 0) {
    const std::uint64_t tail_mask = (std::uint64_t{1} << res_tail) - 1;
    for (std::size_t r = 0; r < n; ++r) {
      res_free_[r * res_words + res_words - 1] = tail_mask;
    }
  }
  claim_count_.assign(n * d, 0);
  res_claimed_.assign(n * res_words, 0);
  batch_claims_.clear();
  admission_batch_ = false;

  visited_attempt_.assign(n * d * static_cast<std::size_t>(b_max_), 0);
  owner_call_.assign(n * d * static_cast<std::size_t>(b_max_), 0);
  owner_left_.assign(n * d * static_cast<std::size_t>(b_max_), -1);
  attempt_stamp_ = 0;
  call_stamp_ = 0;
}

void DeltaWindowProblem::rebuild_derived_state() {
  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  REQSCHED_REQUIRE_MSG(
      grid_.size() == n * d * static_cast<std::size_t>(b_max_),
      "rebuild_derived_state: unit grid does not match the configuration");

  // Free counts from the authoritative unit grid; both saturation mask
  // orientations and the per-column tallies from the counts — the same
  // derivation audit_check() uses as its oracle.
  const std::size_t words = words_per_column();
  const std::size_t res_words = words_per_resource();
  free_count_.assign(n * d, 0);
  free_.assign(d * words, 0);
  res_free_.assign(n * res_words, 0);
  col_booked_.assign(d, 0);
  col_held_.assign(d, 0);
  col_free_.assign(d, 0);
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t cell = c * n + r;
      const auto cap = config_.capacity_of(static_cast<ResourceId>(r));
      std::int32_t occupied = 0;
      for (std::int32_t u = 0; u < cap; ++u) {
        const RequestId occupant = grid_[unit_base(cell) + static_cast<std::size_t>(u)];
        if (occupant == kNoRequest) continue;
        ++occupied;
        if (occupant == kHeldUnit) {
          ++col_held_[c];
        } else {
          ++col_booked_[c];
        }
      }
      // Padding units past the cell's capacity must have stayed empty.
      // Restore-path validation, not a per-round hot loop.
      for (std::int32_t u = cap; u < b_max_; ++u) {  // reqsched-lint: allow(hot-loop-guard)
        REQSCHED_REQUIRE_MSG(
            grid_[unit_base(cell) + static_cast<std::size_t>(u)] == kNoRequest,
            "rebuild_derived_state: occupied padding unit");
      }
      const std::int32_t cell_free = cap - occupied;
      free_count_[cell] = cell_free;
      col_free_[c] += cell_free;
      if (cell_free > 0) {
        free_[c * words + r / 64] |= std::uint64_t{1} << (r % 64);
        res_free_[r * res_words + c / 64] |= std::uint64_t{1} << (c % 64);
      }
    }
  }

  unit_offset_.resize(n + 1);
  unit_offset_[0] = 0;
  for (std::size_t r = 0; r < n; ++r) {
    unit_offset_[r + 1] =
        unit_offset_[r] + config_.capacity_of(static_cast<ResourceId>(r));
  }

  // Row counters from the restored row table.
  unbooked_rows_ = 0;
  booked_runs_ = 0;
  for (const auto& [id, row] : rows_) {
    if (!row.booked.valid()) {
      ++unbooked_rows_;
    } else if (row.request.occupancy > 1) {
      ++booked_runs_;
    }
  }

  // No admission batch survives a round boundary, and the stamp-versioned
  // Kuhn scratch restarts at epoch zero (equivalent to a fresh instance).
  claim_count_.assign(n * d, 0);
  res_claimed_.assign(n * res_words, 0);
  batch_claims_.clear();
  admission_batch_ = false;
  visited_attempt_.assign(n * d * static_cast<std::size_t>(b_max_), 0);
  owner_call_.assign(n * d * static_cast<std::size_t>(b_max_), 0);
  owner_left_.assign(n * d * static_cast<std::size_t>(b_max_), -1);
  attempt_stamp_ = 0;
  call_stamp_ = 0;
}

const Request& DeltaWindowProblem::row(RequestId id) const {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  return it->second.request;
}

SlotRef DeltaWindowProblem::booked_slot_of(RequestId id) const {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  return it->second.booked;
}

void DeltaWindowProblem::validate_row_request(const Request& r) const {
  REQSCHED_REQUIRE_MSG(r.alternative_count() >= 1,
                       r << " names no alternative resources");
  // Admission-boundary contract (k <= 8), not a per-round hot loop.
  for (std::int32_t i = 0; i < r.alternative_count(); ++i) {  // reqsched-lint: allow(hot-loop-guard)
    const ResourceId alt = r.alts[i];
    REQSCHED_REQUIRE(alt >= 0 && alt < config_.n);
    for (std::int32_t j = 0; j < i; ++j) {  // reqsched-lint: allow(hot-loop-guard)
      REQSCHED_REQUIRE_MSG(r.alts[j] != alt,
                           r << " repeats alternative S" << alt);
    }
  }
  REQSCHED_REQUIRE_MSG(r.occupancy >= 1 && r.latest_start() >= r.arrival,
                       r << " cannot fit its occupancy before its deadline");
}

void DeltaWindowProblem::add_request(const Request& r) {
  REQSCHED_REQUIRE_MSG(r.arrival == window_begin_,
                       r << " arrives outside the current round "
                         << window_begin_);
  REQSCHED_REQUIRE(r.deadline >= r.arrival && r.deadline < window_end());
  validate_row_request(r);
  const auto [it, inserted] = rows_.emplace(r.id, Row{r, kNoSlot});
  REQSCHED_REQUIRE_MSG(inserted, "duplicate window row for r" << r.id);
  (void)it;
  ++unbooked_rows_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::retire(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  REQSCHED_REQUIRE_MSG(!it->second.booked.valid(),
                       "r" << id << " retired while booked at "
                           << it->second.booked);
  rows_.erase(it);
  --unbooked_rows_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::retire_executed(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  const Row& row = it->second;
  REQSCHED_REQUIRE_MSG(row.booked.valid(),
                       "r" << id << " executed while not booked");
  REQSCHED_REQUIRE_MSG(row.booked.round == window_begin_,
                       "r" << id << " executed at " << row.booked
                           << " away from the current round "
                           << window_begin_);
  // The start unit is consumed by the execution; the tail of the occupancy
  // run stays busy as anonymous holds until each round departs the window.
  release_unit(row.booked, id);
  const std::int32_t occupancy = row.request.occupancy;
  for (std::int32_t j = 1; j < occupancy; ++j) {
    const SlotRef covered{row.booked.resource, row.booked.round + j};
    const std::size_t cell = cell_index(covered);
    const std::size_t base = unit_base(cell);
    const auto cap = static_cast<std::size_t>(
        config_.capacity_of(covered.resource));
    bool converted = false;
    for (std::size_t u = 0; u < cap; ++u) {
      if (grid_[base + u] == id) {
        grid_[base + u] = kHeldUnit;
        converted = true;
        break;
      }
    }
    REQSCHED_REQUIRE_MSG(converted, "r" << id
                                        << " occupancy unit missing at "
                                        << covered);
    --col_booked_[column_of(covered.round)];
    ++col_held_[column_of(covered.round)];
  }
  if (occupancy > 1) --booked_runs_;
  rows_.erase(it);
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::book(RequestId id, SlotRef slot) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  Row& row = it->second;
  REQSCHED_REQUIRE_MSG(!row.booked.valid(),
                       "r" << id << " already booked at " << row.booked);
  REQSCHED_REQUIRE(in_window(slot.round) && row.request.allows_slot(slot));
  const std::int32_t occupancy = row.request.occupancy;
  for (std::int32_t j = 0; j < occupancy; ++j) {
    const SlotRef covered{slot.resource, slot.round + j};
    REQSCHED_REQUIRE_MSG(in_window(covered.round) && is_free(covered),
                         covered << " is not free");
  }
  for (std::int32_t j = 0; j < occupancy; ++j) {
    take_unit({slot.resource, slot.round + j}, id);
  }
  row.booked = slot;
  --unbooked_rows_;
  if (occupancy > 1) ++booked_runs_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::unbook(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  Row& row = it->second;
  REQSCHED_REQUIRE_MSG(row.booked.valid(), "r" << id << " is not booked");
  for (std::int32_t j = 0; j < row.request.occupancy; ++j) {
    release_unit({row.booked.resource, row.booked.round + j}, id);
  }
  row.booked = kNoSlot;
  ++unbooked_rows_;
  if (row.request.occupancy > 1) --booked_runs_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::advance() {
  const std::size_t col = column_of(window_begin_);
  REQSCHED_REQUIRE_MSG(col_booked_[col] == 0,
                       "window column " << window_begin_
                                        << " advanced while still booked");
  if (col_held_[col] > 0) {
    // Holds in the departing round end with it: the column re-enters as
    // round window_begin + d fully free.
    const auto n = static_cast<std::size_t>(config_.n);
    for (std::size_t res = 0; res < n; ++res) {
      const std::size_t cell = col * n + res;
      const std::size_t base = unit_base(cell);
      const auto cap = static_cast<std::size_t>(
          config_.capacity_of(static_cast<ResourceId>(res)));
      std::int32_t cleared = 0;
      for (std::size_t u = 0; u < cap; ++u) {
        if (grid_[base + u] == kHeldUnit) {
          grid_[base + u] = kNoRequest;
          ++cleared;
        }
      }
      if (cleared == 0) continue;
      if (free_count_[cell] == 0) {
        set_saturation({static_cast<ResourceId>(res), window_begin_}, true);
      }
      free_count_[cell] += cleared;
      col_free_[col] += cleared;
    }
    col_held_[col] = 0;
  }
  ++window_begin_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

bool DeltaWindowProblem::is_free(SlotRef slot) const {
  return free_units(slot) > 0;
}

std::int32_t DeltaWindowProblem::free_units(SlotRef slot) const {
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < config_.n);
  return free_count_[cell_index(slot)];
}

RequestId DeltaWindowProblem::request_at(SlotRef slot) const {
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < config_.n);
  const std::size_t base = unit_base(cell_index(slot));
  const auto cap = static_cast<std::size_t>(
      config_.capacity_of(slot.resource));
  for (std::size_t u = 0; u < cap; ++u) {
    if (grid_[base + u] >= 0) return grid_[base + u];
  }
  return kNoRequest;
}

SlotRef DeltaWindowProblem::earliest_free_slot(ResourceId resource, Round from,
                                               Round to) const {
  REQSCHED_REQUIRE(resource >= 0 && resource < config_.n);
  const Round lo = std::max(from, window_begin_);
  const Round hi = std::min(to, window_end() - 1);
  if (lo > hi) return kNoSlot;
  if (has_round_masks()) {
    const std::uint64_t m =
        rotated_round_mask(resource) & round_range_mask(lo, hi);
    if (m == 0) return kNoSlot;
    return SlotRef{resource, window_begin_ + std::countr_zero(m)};
  }
  return scan_first_allowed_wide(AltList{resource}, lo, hi,
                                 /*exclude_claims=*/false);
}

SlotRef DeltaWindowProblem::first_free_allowed(RequestId id) const {
  return first_free_allowed(row(id));
}

SlotRef DeltaWindowProblem::first_free_allowed(const Request& r) const {
  return first_free_allowed(r, window_end() - 1);
}

SlotRef DeltaWindowProblem::first_free_allowed(const Request& r,
                                               Round last_start) const {
  const Round lo = std::max(r.arrival, window_begin_);
  const Round hi =
      std::min({r.latest_start(), window_end() - 1, last_start});
  if (lo > hi) return kNoSlot;
  if (has_round_masks()) {
    // O(k): each resource's free rounds are one rotated word; the earliest
    // allowed start is a ctz, round ties going to the earliest-listed
    // alternative. An occupancy run needs occ consecutive free rounds, so
    // its start mask is the AND of the shifted free mask.
    const std::uint64_t range = round_range_mask(lo, hi);
    int best_off = 64;
    ResourceId best = kNoResource;
    for (const ResourceId alt : r.alts) {
      std::uint64_t m = rotated_round_mask(alt);
      for (std::int32_t j = 1; j < r.occupancy; ++j) m &= m >> 1;
      m &= range;
      if (m == 0) continue;
      const int off = std::countr_zero(m);
      if (off < best_off) {
        best_off = off;
        best = alt;
      }
    }
    if (best == kNoResource) return kNoSlot;
    return SlotRef{best, window_begin_ + best_off};
  }
  if (r.occupancy > 1) return scan_first_run_wide(r.alts, r.occupancy, lo, hi);
  // d > 64: sweep whole words of the per-resource ring masks (ctz per word)
  // instead of probing the column masks once per round.
  return scan_first_allowed_wide(r.alts, lo, hi, /*exclude_claims=*/false);
}

SlotRef DeltaWindowProblem::scan_first_allowed_wide(const AltList& alts,
                                                    Round lo, Round hi,
                                                    bool exclude_claims) const {
  if (lo > hi) return kNoSlot;
  const auto d = static_cast<std::size_t>(config_.d);
  const std::size_t wpr = words_per_resource();
  const std::int32_t k = alts.size();
  const std::uint64_t* freq[kMaxAlternatives];
  const std::uint64_t* claimed[kMaxAlternatives];
  for (std::int32_t i = 0; i < k; ++i) {
    freq[i] = res_free_.data() + static_cast<std::size_t>(alts[i]) * wpr;
    claimed[i] =
        res_claimed_.data() + static_cast<std::size_t>(alts[i]) * wpr;
  }
  // Rounds [lo, hi] occupy at most two contiguous ring-column segments:
  // [col(lo), d) and, after the wrap, [0, col(lo) + len - d). Each segment is
  // swept word-by-word, boundary words masked, earliest set bit of the
  // combined alternatives mask winning (earliest-listed at the same column).
  const auto scan_segment = [&](std::size_t a, std::size_t b,
                                Round round_of_a) -> SlotRef {
    const std::size_t w_lo = a / 64;
    const std::size_t w_hi = b / 64;
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      std::uint64_t keep = kAllOnes;
      if (w == w_lo) keep &= kAllOnes << (a % 64);
      if (w == w_hi && (b % 64) != 63) {
        keep &= (std::uint64_t{1} << ((b % 64) + 1)) - 1;
      }
      std::uint64_t per_alt[kMaxAlternatives];
      std::uint64_t both = 0;
      for (std::int32_t i = 0; i < k; ++i) {
        std::uint64_t m = freq[i][w];
        if (exclude_claims) m &= ~claimed[i][w];
        m &= keep;
        per_alt[i] = m;
        both |= m;
      }
      if (both == 0) continue;
      const int off = std::countr_zero(both);
      const std::size_t col = w * 64 + static_cast<std::size_t>(off);
      const Round round = round_of_a + static_cast<Round>(col - a);
      for (std::int32_t i = 0; i < k; ++i) {
        if (((per_alt[i] >> off) & 1) != 0) return SlotRef{alts[i], round};
      }
    }
    return kNoSlot;
  };
  const auto len = static_cast<std::size_t>(hi - lo + 1);
  const std::size_t col_lo = column_of(lo);
  if (col_lo + len <= d) return scan_segment(col_lo, col_lo + len - 1, lo);
  const SlotRef pre_wrap = scan_segment(col_lo, d - 1, lo);
  if (pre_wrap.valid()) return pre_wrap;
  return scan_segment(0, col_lo + len - 1 - d,
                      lo + static_cast<Round>(d - col_lo));
}

SlotRef DeltaWindowProblem::scan_first_run_wide(const AltList& alts,
                                                std::int32_t occupancy,
                                                Round lo, Round hi) const {
  // Cold path (d > 64 and occupancy > 1): a naive earliest-run scan over the
  // free counts, round asc then alternative list order.
  const auto n = static_cast<std::size_t>(config_.n);
  for (Round start = lo; start <= hi; ++start) {
    for (const ResourceId alt : alts) {
      bool fits = true;
      for (std::int32_t j = 0; j < occupancy; ++j) {
        const std::size_t cell =
            column_of(start + j) * n + static_cast<std::size_t>(alt);
        if (free_count_[cell] == 0) {
          fits = false;
          break;
        }
      }
      if (fits) return SlotRef{alt, start};
    }
  }
  return kNoSlot;
}

void DeltaWindowProblem::begin_admission_batch() {
  REQSCHED_REQUIRE_MSG(!admission_batch_, "admission batches must not nest");
  admission_batch_ = true;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::end_admission_batch() {
  REQSCHED_REQUIRE_MSG(admission_batch_, "no admission batch open");
  const std::size_t wpr = words_per_resource();
  for (const SlotRef slot : batch_claims_) {
    claim_count_[cell_index(slot)] = 0;
    const std::size_t col = column_of(slot.round);
    res_claimed_[static_cast<std::size_t>(slot.resource) * wpr + col / 64] &=
        ~(std::uint64_t{1} << (col % 64));
  }
  batch_claims_.clear();
  admission_batch_ = false;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

DeltaWindowProblem::AdmissionProbe DeltaWindowProblem::admission_probe(
    const Request& r) const {
  return admission_probe(r, window_end() - 1);
}

DeltaWindowProblem::AdmissionProbe DeltaWindowProblem::admission_probe(
    const Request& r, Round last_round) const {
  REQSCHED_REQUIRE_MSG(admission_batch_,
                       "admission_probe outside an admission batch");
  REQSCHED_REQUIRE_MSG(r.occupancy == 1,
                       "the admission fast path probes unit-occupancy rows");
  const Round lo = std::max(r.arrival, window_begin_);
  const Round hi = std::min({r.deadline, window_end() - 1, last_round});
  if (lo > hi) return {};
  const std::int32_t k = r.alts.size();
  if (has_round_masks()) {
    const std::uint64_t range = round_range_mask(lo, hi);
    std::uint64_t fmask[kMaxAlternatives];
    std::uint64_t cmask[kMaxAlternatives];
    std::uint64_t any_claim = 0;
    for (std::int32_t i = 0; i < k; ++i) {
      fmask[i] = rotated_round_mask(res_free_, r.alts[i]) & range;
      cmask[i] = rotated_round_mask(res_claimed_, r.alts[i]) & range;
      any_claim |= cmask[i];
    }
    const auto choose = [&](bool exclude_claims) -> SlotRef {
      int best_off = 64;
      ResourceId best = kNoResource;
      for (std::int32_t i = 0; i < k; ++i) {
        const std::uint64_t m =
            exclude_claims ? fmask[i] & ~cmask[i] : fmask[i];
        if (m == 0) continue;
        const int off = std::countr_zero(m);
        if (off < best_off) {
          best_off = off;
          best = r.alts[i];
        }
      }
      if (best == kNoResource) return kNoSlot;
      return SlotRef{best, window_begin_ + best_off};
    };
    // No batch claim saturates this row's alternatives: the pre-batch view
    // is the live view, so greedy booking of the slot is Kuhn-identical.
    if (any_claim == 0) return {choose(false), false};
    const SlotRef live = choose(true);
    const SlotRef pre = choose(false);
    return {live, live != pre};
  }
  const SlotRef live = scan_first_allowed_wide(r.alts, lo, hi,
                                               /*exclude_claims=*/true);
  const SlotRef pre = scan_first_allowed_wide(r.alts, lo, hi,
                                              /*exclude_claims=*/false);
  return {live, live != pre};
}

void DeltaWindowProblem::claim_admission_slot(SlotRef slot) {
  REQSCHED_REQUIRE_MSG(admission_batch_,
                       "claim_admission_slot outside an admission batch");
  REQSCHED_REQUIRE_MSG(is_free(slot), slot << " is not free");
  const std::size_t cell = cell_index(slot);
  REQSCHED_REQUIRE_MSG(claim_count_[cell] < free_count_[cell],
                       slot << " already fully claimed");
  if (++claim_count_[cell] == free_count_[cell]) {
    const std::size_t col = column_of(slot.round);
    res_claimed_[static_cast<std::size_t>(slot.resource) *
                     words_per_resource() +
                 col / 64] |= std::uint64_t{1} << (col % 64);
  }
  batch_claims_.push_back(slot);
}

void DeltaWindowProblem::take_unit(SlotRef slot, RequestId id) {
  const std::size_t cell = cell_index(slot);
  REQSCHED_REQUIRE_MSG(free_count_[cell] > 0, slot << " is not free");
  const std::size_t base = unit_base(cell);
  const auto cap = static_cast<std::size_t>(
      config_.capacity_of(slot.resource));
  std::size_t u = 0;
  while (u < cap && grid_[base + u] != kNoRequest) ++u;
  REQSCHED_REQUIRE(u < cap);
  grid_[base + u] = id;
  if (--free_count_[cell] == 0) set_saturation(slot, false);
  const std::size_t col = column_of(slot.round);
  --col_free_[col];
  if (id == kHeldUnit) {
    ++col_held_[col];
  } else {
    ++col_booked_[col];
  }
}

void DeltaWindowProblem::release_unit(SlotRef slot, RequestId id) {
  const std::size_t cell = cell_index(slot);
  const std::size_t base = unit_base(cell);
  const auto cap = static_cast<std::size_t>(
      config_.capacity_of(slot.resource));
  std::size_t u = 0;
  while (u < cap && grid_[base + u] != id) ++u;
  REQSCHED_REQUIRE_MSG(u < cap,
                       "r" << id << " holds no unit of " << slot);
  grid_[base + u] = kNoRequest;
  if (free_count_[cell]++ == 0) set_saturation(slot, true);
  const std::size_t col = column_of(slot.round);
  ++col_free_[col];
  if (id == kHeldUnit) {
    --col_held_[col];
  } else {
    --col_booked_[col];
  }
}

void DeltaWindowProblem::set_saturation(SlotRef slot, bool free) {
  const std::size_t words = words_per_column();
  const std::size_t word = static_cast<std::size_t>(slot.resource) / 64;
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(slot.resource) % 64);
  const std::size_t col = column_of(slot.round);
  std::uint64_t& w = free_[col * words + word];
  if (free) {
    w |= bit;
  } else {
    w &= ~bit;
  }
  const std::uint64_t col_bit = std::uint64_t{1} << (col % 64);
  std::uint64_t& m =
      res_free_[static_cast<std::size_t>(slot.resource) * words_per_resource() +
                col / 64];
  if (free) {
    m |= col_bit;
  } else {
    m &= ~col_bit;
  }
}

std::uint64_t DeltaWindowProblem::rotated_round_mask(
    const std::vector<std::uint64_t>& masks, ResourceId res) const {
  // d <= 64 only: words_per_resource() == 1, so the resource's whole ring is
  // one word of `masks` (res_free_ or res_claimed_).
  const std::uint64_t m = masks[static_cast<std::size_t>(res)];
  const auto d = static_cast<unsigned>(config_.d);
  const auto rot = static_cast<unsigned>(column_of(window_begin_));
  if (rot == 0) return m;
  // Rotate within the low d bits; m never has bits at or above d set.
  const std::uint64_t full = d == 64 ? kAllOnes : (std::uint64_t{1} << d) - 1;
  return ((m >> rot) | (m << (d - rot))) & full;
}

std::uint64_t DeltaWindowProblem::round_range_mask(Round lo, Round hi) const {
  const auto lo_off = static_cast<unsigned>(lo - window_begin_);
  const auto hi_off = static_cast<unsigned>(hi - window_begin_);
  const std::uint64_t upto =
      hi_off == 63 ? kAllOnes : (std::uint64_t{1} << (hi_off + 1)) - 1;
  return upto & ~((std::uint64_t{1} << lo_off) - 1);
}

std::int32_t DeltaWindowProblem::free_units_below(Round round,
                                                  ResourceId resource) const {
  const std::size_t col = column_of(round);
  if (b_max_ == 1) {
    // Unit capacity: the free count is the saturation bit, so the rank is a
    // popcount over the column mask — the historical fast path.
    const std::size_t words = words_per_column();
    const std::uint64_t* column = free_.data() + col * words;
    const std::size_t word = static_cast<std::size_t>(resource) / 64;
    std::int32_t rank = 0;
    for (std::size_t w = 0; w < word; ++w) {
      rank += std::popcount(column[w]);
    }
    const std::size_t bit = static_cast<std::size_t>(resource) % 64;
    if (bit != 0) {
      rank += std::popcount(column[word] & ((std::uint64_t{1} << bit) - 1));
    }
    return rank;
  }
  const std::size_t base = col * static_cast<std::size_t>(config_.n);
  std::int32_t rank = 0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(resource); ++r) {
    rank += free_count_[base + r];
  }
  return rank;
}

void DeltaWindowProblem::collect_rights(WindowScope scope,
                                        std::vector<SlotRef>& rights) const {
  rights.clear();
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;
  if (scope == WindowScope::kFullWindow) {
    for (Round round = t; round <= window_last; ++round) {
      for (ResourceId i = 0; i < config_.n; ++i) {
        const std::int32_t cap = config_.capacity_of(i);
        for (std::int32_t u = 0; u < cap; ++u) {
          rights.push_back(SlotRef{i, round});
        }
      }
    }
    return;
  }
  const std::size_t words = words_per_column();
  const auto n = static_cast<std::size_t>(config_.n);
  for (Round round = t; round <= window_last; ++round) {
    const std::size_t col = column_of(round);
    const std::uint64_t* column = free_.data() + col * words;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = column[w];
      while (bits != 0) {
        const auto res = static_cast<ResourceId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        const std::int32_t count =
            free_count_[col * n + static_cast<std::size_t>(res)];
        for (std::int32_t u = 0; u < count; ++u) {
          rights.push_back(SlotRef{res, round});
        }
        bits &= bits - 1;
      }
    }
  }
}

void DeltaWindowProblem::build_problem(std::span<const RequestId> lefts,
                                       WindowScope scope,
                                       std::vector<SlotRef>& rights,
                                       BipartiteGraph& graph) const {
  collect_rights(scope, rights);
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;
  const bool full = scope == WindowScope::kFullWindow;
  const auto round_units = static_cast<std::int32_t>(config_.units_per_round());

  // Per-round base offsets into `rights`, so a free unit's right index is
  // base[round - t] + (its free-unit rank within the round) — O(n/64) per
  // edge at unit capacity instead of a dense O(n*d) map rebuilt every round.
  std::int32_t base[1 + 64];  // d is small; fall back to exact size if not
  std::vector<std::int32_t> base_overflow;
  std::int32_t* bases = base;
  const auto span_rounds = static_cast<std::size_t>(window_last - t + 1);
  if (span_rounds > 64) {
    base_overflow.resize(span_rounds + 1);
    bases = base_overflow.data();
  }
  if (!full) {
    std::int32_t acc = 0;
    for (Round round = t; round <= window_last; ++round) {
      bases[round - t] = acc;
      acc += free_in_round(round);
    }
  }

  // A full-window right is only rebookable when its unit is free or booked
  // by a unit-occupancy row: holds and occupancy runs keep their units until
  // they end, so the matcher must not offer them. With no runs and no holds
  // in the window (always true in the paper model) every unit qualifies and
  // the filter never runs.
  bool locked_units = full && booked_runs_ > 0;
  if (full && !locked_units) {
    for (const std::int32_t held : col_held_) {
      if (held != 0) {
        locked_units = true;
        break;
      }
    }
  }

  graph.reset(static_cast<std::int32_t>(lefts.size()),
              static_cast<std::int32_t>(rights.size()));
  const auto n = static_cast<std::size_t>(config_.n);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    const Request& r = row(lefts[l]);
    REQSCHED_REQUIRE_MSG(r.occupancy == 1,
                         r << " is a multi-round run, not a bipartite row");
    const Round lo = std::max(r.arrival, t);
    const Round hi = std::min(r.deadline, window_last);
    for (Round round = lo; round <= hi; ++round) {
      for (const ResourceId res : r.alts) {
        if (full) {
          const std::int32_t cap = config_.capacity_of(res);
          const std::int32_t right_base =
              static_cast<std::int32_t>(round - t) * round_units +
              unit_offset_[static_cast<std::size_t>(res)];
          if (!locked_units) {
            for (std::int32_t u = 0; u < cap; ++u) {
              graph.add_edge(static_cast<std::int32_t>(l), right_base + u);
            }
            continue;
          }
          const std::size_t gbase =
              unit_base(column_of(round) * n + static_cast<std::size_t>(res));
          for (std::int32_t u = 0; u < cap; ++u) {
            const RequestId occ = grid_[gbase + static_cast<std::size_t>(u)];
            if (occ == kHeldUnit ||
                (occ != kNoRequest &&
                 rows_.at(occ).request.occupancy > 1)) {
              continue;
            }
            graph.add_edge(static_cast<std::int32_t>(l), right_base + u);
          }
          continue;
        }
        const std::int32_t count =
            free_count_[column_of(round) * n + static_cast<std::size_t>(res)];
        if (count == 0) continue;
        const std::int32_t right_base =
            bases[round - t] + free_units_below(round, res);
        for (std::int32_t u = 0; u < count; ++u) {
          graph.add_edge(static_cast<std::int32_t>(l), right_base + u);
        }
      }
    }
  }
  graph.finalize();
}

bool DeltaWindowProblem::kuhn_try(
    std::int32_t left, Round window_last,
    std::vector<std::int32_t>& match_of_left) const {
  const Request& r = *kuhn_rows_[static_cast<std::size_t>(left)];
  const Round t = window_begin_;
  const Round lo = std::max(r.arrival, t);
  const Round hi = std::min(r.deadline, window_last);
  if (lo > hi) return false;
  // Candidate cells come from the saturation masks rather than per-slot
  // probes — in a saturated window almost every (round, resource) pair is
  // booked, and the augmenting search re-scans each owner's full adjacency.
  // The free counts are stable for the whole max_match (nothing books
  // mid-search), so the order visited is exactly the original round-asc,
  // alternative-list-order, free-filtered unit enumeration.
  const auto n = static_cast<std::size_t>(config_.n);
  const std::int32_t k = r.alts.size();
  const auto try_cell = [&](ResourceId res, Round round) {
    const std::size_t cell =
        column_of(round) * n + static_cast<std::size_t>(res);
    const std::int32_t count = free_count_[cell];
    const std::size_t base = unit_base(cell);
    for (std::int32_t u = 0; u < count; ++u) {
      const std::size_t gi = base + static_cast<std::size_t>(u);
      if (visited_attempt_[gi] == attempt_stamp_) continue;
      visited_attempt_[gi] = attempt_stamp_;
      const std::int32_t owner =
          owner_call_[gi] == call_stamp_ ? owner_left_[gi] : -1;
      if (owner < 0 || kuhn_try(owner, window_last, match_of_left)) {
        owner_call_[gi] = call_stamp_;
        owner_left_[gi] = left;
        match_of_left[static_cast<std::size_t>(left)] =
            static_cast<std::int32_t>(gi);
        return true;
      }
    }
    return false;
  };
  if (has_round_masks()) {
    // Skip rounds with no free unit on any alternative entirely: iterate
    // the set bits of the combined rotated round mask, earliest round first.
    const std::uint64_t range = round_range_mask(lo, hi);
    std::uint64_t per_alt[kMaxAlternatives];
    std::uint64_t both = 0;
    for (std::int32_t i = 0; i < k; ++i) {
      per_alt[i] = rotated_round_mask(r.alts[i]) & range;
      both |= per_alt[i];
    }
    while (both != 0) {
      const int off = std::countr_zero(both);
      both &= both - 1;
      const Round round = t + off;
      for (std::int32_t i = 0; i < k; ++i) {
        if (((per_alt[i] >> off) & 1) != 0 && try_cell(r.alts[i], round)) {
          return true;
        }
      }
    }
    return false;
  }
  // d > 64: same skip-empty-rounds idea, but over the multi-word per-resource
  // ring masks — whole-word ctz iteration across the (at most two) contiguous
  // ring-column segments the window maps [lo, hi] onto. The free counts are
  // stable for the whole max_match, so the visit order is still round-asc,
  // alternative list order.
  const auto d = static_cast<std::size_t>(config_.d);
  const std::size_t wpr = words_per_resource();
  const std::uint64_t* freq[kMaxAlternatives];
  for (std::int32_t i = 0; i < k; ++i) {
    freq[i] = res_free_.data() + static_cast<std::size_t>(r.alts[i]) * wpr;
  }
  const auto sweep_segment = [&](std::size_t a, std::size_t b,
                                 Round round_of_a) -> bool {
    const std::size_t w_lo = a / 64;
    const std::size_t w_hi = b / 64;
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      std::uint64_t keep = kAllOnes;
      if (w == w_lo) keep &= kAllOnes << (a % 64);
      if (w == w_hi && (b % 64) != 63) {
        keep &= (std::uint64_t{1} << ((b % 64) + 1)) - 1;
      }
      std::uint64_t per_alt[kMaxAlternatives];
      std::uint64_t both = 0;
      for (std::int32_t i = 0; i < k; ++i) {
        per_alt[i] = freq[i][w] & keep;
        both |= per_alt[i];
      }
      while (both != 0) {
        const int off = std::countr_zero(both);
        both &= both - 1;
        const std::size_t col = w * 64 + static_cast<std::size_t>(off);
        const Round round = round_of_a + static_cast<Round>(col - a);
        for (std::int32_t i = 0; i < k; ++i) {
          if (((per_alt[i] >> off) & 1) != 0 && try_cell(r.alts[i], round)) {
            return true;
          }
        }
      }
    }
    return false;
  };
  const auto len = static_cast<std::size_t>(hi - lo + 1);
  const std::size_t col_lo = column_of(lo);
  if (col_lo + len <= d) return sweep_segment(col_lo, col_lo + len - 1, lo);
  if (sweep_segment(col_lo, d - 1, lo)) return true;
  return sweep_segment(0, col_lo + len - 1 - d,
                       lo + static_cast<Round>(d - col_lo));
}

void DeltaWindowProblem::max_match(std::span<const RequestId> lefts,
                                   WindowScope scope,
                                   std::vector<SlotRef>& out) const {
  REQSCHED_REQUIRE_MSG(scope != WindowScope::kFullWindow,
                       "max_match only serves the free-slot scopes");
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;

  // One rows_ lookup per left up front; the augmenting search revisits
  // owners many times and must not pay a hash probe per visit.
  kuhn_rows_.resize(lefts.size());
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    kuhn_rows_[l] = &row(lefts[l]);
    REQSCHED_REQUIRE_MSG(kuhn_rows_[l]->occupancy == 1,
                         *kuhn_rows_[l]
                             << " is a multi-round run, not a bipartite row");
  }

  ++call_stamp_;
  match_ring_.assign(lefts.size(), -1);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    ++attempt_stamp_;
    kuhn_try(static_cast<std::int32_t>(l), window_last, match_ring_);
  }

  // Ring column -> absolute round: the window holds each column exactly once.
  const auto t_col = static_cast<Round>(column_of(t));
  out.assign(lefts.size(), kNoSlot);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    const std::int32_t gi = match_ring_[l];
    if (gi < 0) continue;
    const std::int32_t cell = gi / b_max_;
    const auto col = static_cast<Round>(cell / config_.n);
    const auto res = static_cast<ResourceId>(cell % config_.n);
    const Round round = t + ((col - t_col) + config_.d) % config_.d;
    out[l] = SlotRef{res, round};
  }
}

void DeltaWindowProblem::audit_check() const {
  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  const std::size_t words = words_per_column();

  // Naive model: occupancy derived from the row table alone.
  std::int64_t booked_rows = 0;
  std::int64_t unbooked_rows = 0;
  std::int64_t booked_runs = 0;
  for (const auto& [id, row] : rows_) {
    REQSCHED_AUDIT_REQUIRE_MSG(row.request.id == id,
                               "row key r" << id << " holds " << row.request);
    if (!row.booked.valid()) {
      ++unbooked_rows;
      continue;
    }
    ++booked_rows;
    if (row.request.occupancy > 1) ++booked_runs;
    REQSCHED_AUDIT_REQUIRE_MSG(
        in_window(row.booked.round) && row.request.allows_slot(row.booked),
        "r" << id << " booked at disallowed slot " << row.booked);
  }
  REQSCHED_AUDIT_REQUIRE_MSG(
      unbooked_rows == unbooked_rows_,
      "unbooked-row counter " << unbooked_rows_ << " vs " << unbooked_rows
                              << " unbooked rows");
  REQSCHED_AUDIT_REQUIRE_MSG(
      booked_runs == booked_runs_,
      "booked-run counter " << booked_runs_ << " vs " << booked_runs
                            << " booked multi-round rows");

  // Every occupied grid unit must be claimed by a booked row covering its
  // round (or be an anonymous hold), the free counts must be the exact unit
  // complement, and the saturation bitmasks (both orientations) must mirror
  // "count > 0".
  std::int64_t request_units = 0;
  std::unordered_map<RequestId, std::int32_t> units_of;
  for (std::size_t col = 0; col < d; ++col) {
    std::int32_t col_booked = 0;
    std::int32_t col_held = 0;
    std::int32_t col_free = 0;
    for (std::size_t res = 0; res < n; ++res) {
      const std::size_t cell = col * n + res;
      const auto cap =
          static_cast<std::size_t>(config_.capacity_of(static_cast<ResourceId>(res)));
      std::int32_t cell_busy = 0;
      for (std::size_t u = 0; u < static_cast<std::size_t>(b_max_); ++u) {
        const RequestId occ = grid_[unit_base(cell) + u];
        if (u >= cap) {
          REQSCHED_AUDIT_REQUIRE_MSG(
              occ == kNoRequest,
              "padding unit " << u << " of column " << col << " resource "
                              << res << " is occupied");
          continue;
        }
        if (occ == kNoRequest) continue;
        ++cell_busy;
        if (occ == kHeldUnit) {
          ++col_held;
          continue;
        }
        ++col_booked;
        ++request_units;
        ++units_of[occ];
        const auto it = rows_.find(occ);
        REQSCHED_AUDIT_REQUIRE_MSG(it != rows_.end(),
                                   "grid holds retired r" << occ);
        const Row& row = it->second;
        REQSCHED_AUDIT_REQUIRE_MSG(
            row.booked.valid() &&
                row.booked.resource == static_cast<ResourceId>(res) &&
                ((static_cast<Round>(col) -
                  static_cast<Round>(column_of(row.booked.round)) +
                  config_.d) %
                 config_.d) < row.request.occupancy,
            "grid cell and row booking disagree for r" << occ);
      }
      const std::int32_t free_derived =
          static_cast<std::int32_t>(cap) - cell_busy;
      col_free += free_derived;
      REQSCHED_AUDIT_REQUIRE_MSG(
          free_count_[cell] == free_derived,
          "free count for column " << col << " resource " << res
              << " disagrees with the occupancy grid ("
              << free_count_[cell] << " vs " << free_derived << ")");
      const bool bit_free =
          (free_[col * words + res / 64] >> (res % 64)) & 1;
      REQSCHED_AUDIT_REQUIRE_MSG(
          bit_free == (free_derived > 0),
          "free bit for column " << col << " resource " << res
              << " disagrees with the occupancy grid");
      const bool mask_free =
          (res_free_[res * words_per_resource() + col / 64] >> (col % 64)) & 1;
      REQSCHED_AUDIT_REQUIRE_MSG(
          mask_free == bit_free,
          "transposed res_free_ mask disagrees at column "
              << col << " resource " << res);
    }
    REQSCHED_AUDIT_REQUIRE_MSG(
        col_booked_[col] == col_booked && col_held_[col] == col_held &&
            col_free_[col] == col_free,
        "per-column unit tallies disagree at column "
            << col << ": booked " << col_booked_[col] << "/" << col_booked
            << ", held " << col_held_[col] << "/" << col_held << ", free "
            << col_free_[col] << "/" << col_free);
  }
  for (const auto& [id, row] : rows_) {
    const std::int32_t expected = row.booked.valid() ? row.request.occupancy : 0;
    const auto it = units_of.find(id);
    const std::int32_t got = it == units_of.end() ? 0 : it->second;
    REQSCHED_AUDIT_REQUIRE_MSG(got == expected,
                               "r" << id << " occupies " << got
                                   << " grid units, booking implies "
                                   << expected);
  }
  REQSCHED_AUDIT_REQUIRE_MSG(
      static_cast<std::int64_t>(units_of.size()) == booked_rows,
      units_of.size() << " occupying requests vs " << booked_rows
                      << " booked rows");
  (void)request_units;

  // Bits at or past d in the last word of each per-resource mask must never
  // be set (rotate and word-sweep correctness depend on it).
  const std::size_t res_words = words_per_resource();
  const std::size_t res_tail = d % 64;
  const std::uint64_t above =
      res_tail == 0 ? 0 : ~((std::uint64_t{1} << res_tail) - 1);
  // Cold: audit_check() only runs from mutators under
  // REQSCHED_AUDIT_ENABLED (or directly from tests).
  for (std::size_t res = 0; res < n; ++res) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE_MSG(
        (res_free_[res * res_words + res_words - 1] & above) == 0,
        "res_free_ has bits past d for resource " << res);
    REQSCHED_AUDIT_REQUIRE_MSG(
        (res_claimed_[res * res_words + res_words - 1] & above) == 0,
        "res_claimed_ has bits past d for resource " << res);
  }

  // Claim oracle: the claim counts must be exactly the units recorded in
  // batch_claims_, no cell may be claimed past its free count (claims never
  // book), the saturation overlay must flag exactly the fully-claimed
  // cells, and everything must be zero outside a batch.
  if (!admission_batch_) {
    REQSCHED_AUDIT_REQUIRE_MSG(batch_claims_.empty(),
                               "batch_claims_ non-empty outside a batch");
  }
  std::vector<std::int32_t> naive_claims(n * d, 0);
  for (const SlotRef slot : batch_claims_) {
    REQSCHED_AUDIT_REQUIRE_MSG(
        admission_batch_ && in_window(slot.round) && slot.resource >= 0 &&
            slot.resource < config_.n,
        "batch claim " << slot << " is not a window slot of an open batch");
    ++naive_claims[cell_index(slot)];
  }
  for (std::size_t col = 0; col < d; ++col) {
    for (std::size_t res = 0; res < n; ++res) {
      const std::size_t cell = col * n + res;
      REQSCHED_AUDIT_REQUIRE_MSG(
          claim_count_[cell] == naive_claims[cell],
          "claim count disagrees with the batch_claims_ slot list at column "
              << col << " resource " << res);
      REQSCHED_AUDIT_REQUIRE_MSG(
          claim_count_[cell] <= free_count_[cell],
          "cell at column " << col << " resource " << res
                            << " claimed past its free count");
      const bool claimed_bit =
          (res_claimed_[res * res_words + col / 64] >> (col % 64)) & 1;
      const bool saturated =
          claim_count_[cell] > 0 && claim_count_[cell] == free_count_[cell];
      REQSCHED_AUDIT_REQUIRE_MSG(
          claimed_bit == saturated,
          "res_claimed_ disagrees with the batch_claims_ slot list at column "
              << col << " resource " << res);
    }
  }
}

std::size_t DeltaWindowProblem::approx_bytes() const {
  return free_.capacity() * sizeof(std::uint64_t) +
         res_free_.capacity() * sizeof(std::uint64_t) +
         res_claimed_.capacity() * sizeof(std::uint64_t) +
         free_count_.capacity() * sizeof(std::int32_t) +
         claim_count_.capacity() * sizeof(std::int32_t) +
         (col_booked_.capacity() + col_held_.capacity() +
          col_free_.capacity() + unit_offset_.capacity()) *
             sizeof(std::int32_t) +
         batch_claims_.capacity() * sizeof(SlotRef) +
         grid_.capacity() * sizeof(RequestId) +
         visited_attempt_.capacity() * sizeof(std::int64_t) +
         owner_call_.capacity() * sizeof(std::int64_t) +
         owner_left_.capacity() * sizeof(std::int32_t) +
         rows_.size() * (sizeof(RequestId) + sizeof(Row) + 2 * sizeof(void*));
}

}  // namespace reqsched
