#include "matching/delta_window.hpp"

#include <algorithm>
#include <bit>

namespace reqsched {

namespace {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
}  // namespace

void DeltaWindowProblem::reset(const ProblemConfig& config) {
  config.validate();
  config_ = config;
  window_begin_ = 0;
  rows_.clear();

  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  const std::size_t words = words_per_column();
  free_.assign(d * words, kAllOnes);
  // Clear the bits past resource n - 1 so popcount-based ranks stay exact.
  const std::size_t tail_bits = n % 64;
  if (tail_bits != 0) {
    const std::uint64_t tail_mask = (std::uint64_t{1} << tail_bits) - 1;
    for (std::size_t c = 0; c < d; ++c) free_[c * words + words - 1] = tail_mask;
  }
  grid_.assign(n * d, kNoRequest);
  if (has_round_masks()) {
    const std::uint64_t all_columns =
        d == 64 ? kAllOnes : (std::uint64_t{1} << d) - 1;
    res_free_.assign(n, all_columns);
  } else {
    res_free_.clear();
  }

  visited_attempt_.assign(n * d, 0);
  owner_call_.assign(n * d, 0);
  owner_left_.assign(n * d, -1);
  attempt_stamp_ = 0;
  call_stamp_ = 0;
}

const Request& DeltaWindowProblem::row(RequestId id) const {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  return it->second.request;
}

SlotRef DeltaWindowProblem::booked_slot_of(RequestId id) const {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  return it->second.booked;
}

void DeltaWindowProblem::add_request(const Request& r) {
  REQSCHED_REQUIRE_MSG(r.arrival == window_begin_,
                       r << " arrives outside the current round "
                         << window_begin_);
  REQSCHED_REQUIRE(r.deadline >= r.arrival && r.deadline < window_end());
  REQSCHED_REQUIRE(r.first >= 0 && r.first < config_.n);
  REQSCHED_REQUIRE(r.second == kNoResource ||
                   (r.second >= 0 && r.second < config_.n &&
                    r.second != r.first));
  const auto [it, inserted] = rows_.emplace(r.id, Row{r, kNoSlot});
  REQSCHED_REQUIRE_MSG(inserted, "duplicate window row for r" << r.id);
  (void)it;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::retire(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  REQSCHED_REQUIRE_MSG(!it->second.booked.valid(),
                       "r" << id << " retired while booked at "
                           << it->second.booked);
  rows_.erase(it);
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::book(RequestId id, SlotRef slot) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  Row& row = it->second;
  REQSCHED_REQUIRE_MSG(!row.booked.valid(),
                       "r" << id << " already booked at " << row.booked);
  REQSCHED_REQUIRE(in_window(slot.round) && row.request.allows_slot(slot));
  REQSCHED_REQUIRE_MSG(is_free(slot), slot << " is not free");
  row.booked = slot;
  grid_[grid_index(slot)] = id;
  set_free(slot, false);
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::unbook(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  Row& row = it->second;
  REQSCHED_REQUIRE_MSG(row.booked.valid(), "r" << id << " is not booked");
  grid_[grid_index(row.booked)] = kNoRequest;
  set_free(row.booked, true);
  row.booked = kNoSlot;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::advance() {
  REQSCHED_REQUIRE_MSG(free_in_round(window_begin_) == config_.n,
                       "window column " << window_begin_
                                        << " advanced while still booked");
  // The vacated column re-enters as round window_begin + d, already all-free.
  ++window_begin_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

bool DeltaWindowProblem::is_free(SlotRef slot) const {
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < config_.n);
  return grid_[grid_index(slot)] == kNoRequest;
}

RequestId DeltaWindowProblem::request_at(SlotRef slot) const {
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < config_.n);
  return grid_[grid_index(slot)];
}

SlotRef DeltaWindowProblem::earliest_free_slot(ResourceId resource, Round from,
                                               Round to) const {
  REQSCHED_REQUIRE(resource >= 0 && resource < config_.n);
  const Round lo = std::max(from, window_begin_);
  const Round hi = std::min(to, window_end() - 1);
  const std::size_t words = words_per_column();
  const std::size_t word = static_cast<std::size_t>(resource) / 64;
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(resource) % 64);
  for (Round t = lo; t <= hi; ++t) {
    if (free_[column_of(t) * words + word] & bit) return SlotRef{resource, t};
  }
  return kNoSlot;
}

SlotRef DeltaWindowProblem::first_free_allowed(RequestId id) const {
  return first_free_allowed(row(id));
}

SlotRef DeltaWindowProblem::first_free_allowed(const Request& r) const {
  const Round lo = std::max(r.arrival, window_begin_);
  const Round hi = std::min(r.deadline, window_end() - 1);
  if (lo > hi) return kNoSlot;
  const bool two = r.second != kNoResource;
  if (has_round_masks()) {
    // O(1): each resource's free rounds are one rotated word; the earliest
    // allowed round is a ctz, the {first, second} tie going to first.
    const std::uint64_t range = round_range_mask(lo, hi);
    const std::uint64_t m1 = rotated_round_mask(r.first) & range;
    const std::uint64_t m2 = two ? rotated_round_mask(r.second) & range : 0;
    if ((m1 | m2) == 0) return kNoSlot;
    const int o1 = m1 != 0 ? std::countr_zero(m1) : 64;
    const int o2 = m2 != 0 ? std::countr_zero(m2) : 64;
    if (o1 <= o2) return SlotRef{r.first, window_begin_ + o1};
    return SlotRef{r.second, window_begin_ + o2};
  }
  // d > 64 fallback: a word load per round against the column masks.
  const std::size_t words = words_per_column();
  const std::size_t word1 = static_cast<std::size_t>(r.first) / 64;
  const std::uint64_t bit1 = std::uint64_t{1}
                             << (static_cast<std::size_t>(r.first) % 64);
  const std::size_t word2 =
      two ? static_cast<std::size_t>(r.second) / 64 : 0;
  const std::uint64_t bit2 =
      two ? std::uint64_t{1} << (static_cast<std::size_t>(r.second) % 64) : 0;
  for (Round t = lo; t <= hi; ++t) {
    const std::uint64_t* column = free_.data() + column_of(t) * words;
    if (column[word1] & bit1) return SlotRef{r.first, t};
    if (two && (column[word2] & bit2)) return SlotRef{r.second, t};
  }
  return kNoSlot;
}

void DeltaWindowProblem::set_free(SlotRef slot, bool free) {
  const std::size_t words = words_per_column();
  const std::size_t word = static_cast<std::size_t>(slot.resource) / 64;
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(slot.resource) % 64);
  const std::size_t col = column_of(slot.round);
  std::uint64_t& w = free_[col * words + word];
  if (free) {
    w |= bit;
  } else {
    w &= ~bit;
  }
  if (has_round_masks()) {
    const std::uint64_t col_bit = std::uint64_t{1} << col;
    std::uint64_t& m = res_free_[static_cast<std::size_t>(slot.resource)];
    if (free) {
      m |= col_bit;
    } else {
      m &= ~col_bit;
    }
  }
}

std::uint64_t DeltaWindowProblem::rotated_round_mask(ResourceId res) const {
  const std::uint64_t m = res_free_[static_cast<std::size_t>(res)];
  const auto d = static_cast<unsigned>(config_.d);
  const auto rot = static_cast<unsigned>(column_of(window_begin_));
  if (rot == 0) return m;
  // Rotate within the low d bits; m never has bits at or above d set.
  const std::uint64_t full = d == 64 ? kAllOnes : (std::uint64_t{1} << d) - 1;
  return ((m >> rot) | (m << (d - rot))) & full;
}

std::uint64_t DeltaWindowProblem::round_range_mask(Round lo, Round hi) const {
  const auto lo_off = static_cast<unsigned>(lo - window_begin_);
  const auto hi_off = static_cast<unsigned>(hi - window_begin_);
  const std::uint64_t upto =
      hi_off == 63 ? kAllOnes : (std::uint64_t{1} << (hi_off + 1)) - 1;
  return upto & ~((std::uint64_t{1} << lo_off) - 1);
}

std::int32_t DeltaWindowProblem::free_rank_below(Round round,
                                                 ResourceId resource) const {
  const std::size_t words = words_per_column();
  const std::uint64_t* column = free_.data() + column_of(round) * words;
  const std::size_t word = static_cast<std::size_t>(resource) / 64;
  std::int32_t rank = 0;
  for (std::size_t w = 0; w < word; ++w) {
    rank += std::popcount(column[w]);
  }
  const std::size_t bit = static_cast<std::size_t>(resource) % 64;
  if (bit != 0) {
    rank += std::popcount(column[word] & ((std::uint64_t{1} << bit) - 1));
  }
  return rank;
}

std::int32_t DeltaWindowProblem::free_in_round(Round round) const {
  const std::size_t words = words_per_column();
  const std::uint64_t* column = free_.data() + column_of(round) * words;
  std::int32_t count = 0;
  for (std::size_t w = 0; w < words; ++w) count += std::popcount(column[w]);
  return count;
}

void DeltaWindowProblem::collect_rights(WindowScope scope,
                                        std::vector<SlotRef>& rights) const {
  rights.clear();
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;
  if (scope == WindowScope::kFullWindow) {
    for (Round round = t; round <= window_last; ++round) {
      for (ResourceId i = 0; i < config_.n; ++i) {
        rights.push_back(SlotRef{i, round});
      }
    }
    return;
  }
  const std::size_t words = words_per_column();
  for (Round round = t; round <= window_last; ++round) {
    const std::uint64_t* column = free_.data() + column_of(round) * words;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = column[w];
      while (bits != 0) {
        const auto res = static_cast<ResourceId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        rights.push_back(SlotRef{res, round});
        bits &= bits - 1;
      }
    }
  }
}

void DeltaWindowProblem::build_problem(std::span<const RequestId> lefts,
                                       WindowScope scope,
                                       std::vector<SlotRef>& rights,
                                       BipartiteGraph& graph) const {
  collect_rights(scope, rights);
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;
  const bool full = scope == WindowScope::kFullWindow;

  // Per-round base offsets into `rights`, so a free slot's right index is
  // base[round - t] + (its free-rank within the round) — O(n/64) per edge
  // instead of a dense O(n*d) map rebuilt every round.
  std::int32_t base[1 + 64];  // d is small; fall back to exact size if not
  std::vector<std::int32_t> base_overflow;
  std::int32_t* bases = base;
  const auto span_rounds = static_cast<std::size_t>(window_last - t + 1);
  if (span_rounds > 64) {
    base_overflow.resize(span_rounds + 1);
    bases = base_overflow.data();
  }
  if (!full) {
    std::int32_t acc = 0;
    for (Round round = t; round <= window_last; ++round) {
      bases[round - t] = acc;
      acc += free_in_round(round);
    }
  }

  graph.reset(static_cast<std::int32_t>(lefts.size()),
              static_cast<std::int32_t>(rights.size()));
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    const Request& r = row(lefts[l]);
    const Round lo = std::max(r.arrival, t);
    const Round hi = std::min(r.deadline, window_last);
    for (Round round = lo; round <= hi; ++round) {
      for (const ResourceId res : {r.first, r.second}) {
        if (res == kNoResource) continue;
        std::int32_t right;
        if (full) {
          right = static_cast<std::int32_t>((round - t) * config_.n + res);
        } else {
          if (!is_free(SlotRef{res, round})) continue;
          right = bases[round - t] + free_rank_below(round, res);
        }
        graph.add_edge(static_cast<std::int32_t>(l), right);
      }
    }
  }
  graph.finalize();
}

bool DeltaWindowProblem::kuhn_try(
    std::int32_t left, Round window_last,
    std::vector<std::int32_t>& match_of_left) const {
  const Request& r = *kuhn_rows_[static_cast<std::size_t>(left)];
  const Round t = window_begin_;
  const Round lo = std::max(r.arrival, t);
  const Round hi = std::min(r.deadline, window_last);
  if (lo > hi) return false;
  // Candidate slots come from the free masks rather than per-slot occupant
  // probes — in a saturated window almost every (round, resource) pair is
  // booked, and the augmenting search re-scans each owner's full adjacency.
  // The free bits are stable for the whole max_match (nothing books
  // mid-search), so the order visited is exactly the original round-asc,
  // {first, second}, free-filtered enumeration.
  const bool two = r.second != kNoResource;
  const auto try_slot = [&](ResourceId res, Round round) {
    const std::size_t gi =
        column_of(round) * static_cast<std::size_t>(config_.n) +
        static_cast<std::size_t>(res);
    if (visited_attempt_[gi] == attempt_stamp_) return false;
    visited_attempt_[gi] = attempt_stamp_;
    const std::int32_t owner =
        owner_call_[gi] == call_stamp_ ? owner_left_[gi] : -1;
    if (owner < 0 || kuhn_try(owner, window_last, match_of_left)) {
      owner_call_[gi] = call_stamp_;
      owner_left_[gi] = left;
      match_of_left[static_cast<std::size_t>(left)] =
          static_cast<std::int32_t>(gi);
      return true;
    }
    return false;
  };
  if (has_round_masks()) {
    // Skip rounds with no free slot for either alternative entirely: iterate
    // the set bits of the combined rotated round mask, earliest round first.
    const std::uint64_t range = round_range_mask(lo, hi);
    const std::uint64_t m1 = rotated_round_mask(r.first) & range;
    const std::uint64_t m2 = two ? rotated_round_mask(r.second) & range : 0;
    std::uint64_t both = m1 | m2;
    while (both != 0) {
      const int off = std::countr_zero(both);
      both &= both - 1;
      const Round round = t + off;
      if (((m1 >> off) & 1) != 0 && try_slot(r.first, round)) return true;
      if (((m2 >> off) & 1) != 0 && try_slot(r.second, round)) return true;
    }
    return false;
  }
  const std::size_t words = words_per_column();
  const std::size_t word1 = static_cast<std::size_t>(r.first) / 64;
  const std::uint64_t bit1 = std::uint64_t{1}
                             << (static_cast<std::size_t>(r.first) % 64);
  const std::size_t word2 =
      two ? static_cast<std::size_t>(r.second) / 64 : 0;
  const std::uint64_t bit2 =
      two ? std::uint64_t{1} << (static_cast<std::size_t>(r.second) % 64) : 0;
  for (Round round = lo; round <= hi; ++round) {
    const std::uint64_t* column = free_.data() + column_of(round) * words;
    if ((column[word1] & bit1) && try_slot(r.first, round)) return true;
    if (two && (column[word2] & bit2) && try_slot(r.second, round)) return true;
  }
  return false;
}

void DeltaWindowProblem::max_match(std::span<const RequestId> lefts,
                                   WindowScope scope,
                                   std::vector<SlotRef>& out) const {
  REQSCHED_REQUIRE_MSG(scope != WindowScope::kFullWindow,
                       "max_match only serves the free-slot scopes");
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;

  // One rows_ lookup per left up front; the augmenting search revisits
  // owners many times and must not pay a hash probe per visit.
  kuhn_rows_.resize(lefts.size());
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    kuhn_rows_[l] = &row(lefts[l]);
  }

  ++call_stamp_;
  match_ring_.assign(lefts.size(), -1);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    ++attempt_stamp_;
    kuhn_try(static_cast<std::int32_t>(l), window_last, match_ring_);
  }

  // Ring column -> absolute round: the window holds each column exactly once.
  const auto t_col = static_cast<Round>(column_of(t));
  out.assign(lefts.size(), kNoSlot);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    const std::int32_t gi = match_ring_[l];
    if (gi < 0) continue;
    const auto col = static_cast<Round>(gi / config_.n);
    const auto res = static_cast<ResourceId>(gi % config_.n);
    const Round round = t + ((col - t_col) + config_.d) % config_.d;
    out[l] = SlotRef{res, round};
  }
}

void DeltaWindowProblem::audit_check() const {
  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  const std::size_t words = words_per_column();

  // Naive model: occupancy derived from the row table alone.
  std::int64_t booked_rows = 0;
  for (const auto& [id, row] : rows_) {
    REQSCHED_AUDIT_REQUIRE_MSG(row.request.id == id,
                               "row key r" << id << " holds " << row.request);
    if (!row.booked.valid()) continue;
    ++booked_rows;
    REQSCHED_AUDIT_REQUIRE_MSG(
        in_window(row.booked.round) && row.request.allows_slot(row.booked),
        "r" << id << " booked at disallowed slot " << row.booked);
    REQSCHED_AUDIT_REQUIRE_MSG(
        grid_[grid_index(row.booked)] == id,
        "grid disagrees with row table at " << row.booked << ": holds r"
            << grid_[grid_index(row.booked)] << ", row says r" << id);
  }

  // Every occupied grid cell must be claimed by exactly one booked row, and
  // the free bitmasks (both orientations) must be its exact complement.
  std::int64_t occupied = 0;
  for (std::size_t col = 0; col < d; ++col) {
    for (std::size_t res = 0; res < n; ++res) {
      const std::size_t gi = col * n + res;
      const RequestId occ = grid_[gi];
      const bool bit_free =
          (free_[col * words + res / 64] >> (res % 64)) & 1;
      REQSCHED_AUDIT_REQUIRE_MSG(
          bit_free == (occ == kNoRequest),
          "free bit for column " << col << " resource " << res
              << " disagrees with the occupancy grid (occupant r" << occ
              << ")");
      if (has_round_masks()) {
        const bool mask_free = (res_free_[res] >> col) & 1;
        REQSCHED_AUDIT_REQUIRE_MSG(
            mask_free == bit_free,
            "transposed res_free_ mask disagrees at column "
                << col << " resource " << res);
      }
      if (occ == kNoRequest) continue;
      ++occupied;
      const auto it = rows_.find(occ);
      REQSCHED_AUDIT_REQUIRE_MSG(it != rows_.end(),
                                 "grid holds retired r" << occ);
      REQSCHED_AUDIT_REQUIRE_MSG(
          it->second.booked.valid() &&
              grid_index(it->second.booked) == gi,
          "grid cell and row booking disagree for r" << occ);
    }
  }
  REQSCHED_AUDIT_REQUIRE_MSG(occupied == booked_rows,
                             occupied << " occupied slots vs " << booked_rows
                                      << " booked rows");
  if (has_round_masks()) {
    // Bits at or above d must never be set (rotate correctness depends
    // on it).
    const std::uint64_t above =
        config_.d == 64 ? 0 : ~((std::uint64_t{1} << config_.d) - 1);
    // Cold: audit_check() only runs from mutators under
    // REQSCHED_AUDIT_ENABLED (or directly from tests).
    for (std::size_t res = 0; res < n; ++res) {  // reqsched-lint: allow(hot-loop-guard)
      REQSCHED_AUDIT_REQUIRE_MSG((res_free_[res] & above) == 0,
                                 "res_free_ has bits past d for resource "
                                     << res);
    }
  }
}

std::size_t DeltaWindowProblem::approx_bytes() const {
  return free_.capacity() * sizeof(std::uint64_t) +
         res_free_.capacity() * sizeof(std::uint64_t) +
         grid_.capacity() * sizeof(RequestId) +
         visited_attempt_.capacity() * sizeof(std::int64_t) +
         owner_call_.capacity() * sizeof(std::int64_t) +
         owner_left_.capacity() * sizeof(std::int32_t) +
         rows_.size() * (sizeof(RequestId) + sizeof(Row) + 2 * sizeof(void*));
}

}  // namespace reqsched
