#include "matching/delta_window.hpp"

#include <algorithm>
#include <bit>

namespace reqsched {

namespace {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
}  // namespace

void DeltaWindowProblem::reset(const ProblemConfig& config) {
  config.validate();
  config_ = config;
  window_begin_ = 0;
  rows_.clear();

  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  const std::size_t words = words_per_column();
  free_.assign(d * words, kAllOnes);
  // Clear the bits past resource n - 1 so popcount-based ranks stay exact.
  const std::size_t tail_bits = n % 64;
  if (tail_bits != 0) {
    const std::uint64_t tail_mask = (std::uint64_t{1} << tail_bits) - 1;
    for (std::size_t c = 0; c < d; ++c) free_[c * words + words - 1] = tail_mask;
  }
  grid_.assign(n * d, kNoRequest);
  // Transposed per-resource masks, multi-word for d > 64: every ring column
  // starts free, bits at or past d stay clear so rotates/sweeps are exact.
  const std::size_t res_words = words_per_resource();
  res_free_.assign(n * res_words, kAllOnes);
  const std::size_t res_tail = d % 64;
  if (res_tail != 0) {
    const std::uint64_t tail_mask = (std::uint64_t{1} << res_tail) - 1;
    for (std::size_t r = 0; r < n; ++r) {
      res_free_[r * res_words + res_words - 1] = tail_mask;
    }
  }
  res_claimed_.assign(n * res_words, 0);
  batch_claims_.clear();
  admission_batch_ = false;

  visited_attempt_.assign(n * d, 0);
  owner_call_.assign(n * d, 0);
  owner_left_.assign(n * d, -1);
  attempt_stamp_ = 0;
  call_stamp_ = 0;
}

const Request& DeltaWindowProblem::row(RequestId id) const {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  return it->second.request;
}

SlotRef DeltaWindowProblem::booked_slot_of(RequestId id) const {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  return it->second.booked;
}

void DeltaWindowProblem::add_request(const Request& r) {
  REQSCHED_REQUIRE_MSG(r.arrival == window_begin_,
                       r << " arrives outside the current round "
                         << window_begin_);
  REQSCHED_REQUIRE(r.deadline >= r.arrival && r.deadline < window_end());
  REQSCHED_REQUIRE(r.first >= 0 && r.first < config_.n);
  REQSCHED_REQUIRE(r.second == kNoResource ||
                   (r.second >= 0 && r.second < config_.n &&
                    r.second != r.first));
  const auto [it, inserted] = rows_.emplace(r.id, Row{r, kNoSlot});
  REQSCHED_REQUIRE_MSG(inserted, "duplicate window row for r" << r.id);
  (void)it;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::retire(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  REQSCHED_REQUIRE_MSG(!it->second.booked.valid(),
                       "r" << id << " retired while booked at "
                           << it->second.booked);
  rows_.erase(it);
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::book(RequestId id, SlotRef slot) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  Row& row = it->second;
  REQSCHED_REQUIRE_MSG(!row.booked.valid(),
                       "r" << id << " already booked at " << row.booked);
  REQSCHED_REQUIRE(in_window(slot.round) && row.request.allows_slot(slot));
  REQSCHED_REQUIRE_MSG(is_free(slot), slot << " is not free");
  row.booked = slot;
  grid_[grid_index(slot)] = id;
  set_free(slot, false);
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::unbook(RequestId id) {
  const auto it = rows_.find(id);
  REQSCHED_REQUIRE_MSG(it != rows_.end(), "no window row for r" << id);
  Row& row = it->second;
  REQSCHED_REQUIRE_MSG(row.booked.valid(), "r" << id << " is not booked");
  grid_[grid_index(row.booked)] = kNoRequest;
  set_free(row.booked, true);
  row.booked = kNoSlot;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::advance() {
  REQSCHED_REQUIRE_MSG(free_in_round(window_begin_) == config_.n,
                       "window column " << window_begin_
                                        << " advanced while still booked");
  // The vacated column re-enters as round window_begin + d, already all-free.
  ++window_begin_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

bool DeltaWindowProblem::is_free(SlotRef slot) const {
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < config_.n);
  return grid_[grid_index(slot)] == kNoRequest;
}

RequestId DeltaWindowProblem::request_at(SlotRef slot) const {
  REQSCHED_REQUIRE(in_window(slot.round));
  REQSCHED_REQUIRE(slot.resource >= 0 && slot.resource < config_.n);
  return grid_[grid_index(slot)];
}

SlotRef DeltaWindowProblem::earliest_free_slot(ResourceId resource, Round from,
                                               Round to) const {
  REQSCHED_REQUIRE(resource >= 0 && resource < config_.n);
  const Round lo = std::max(from, window_begin_);
  const Round hi = std::min(to, window_end() - 1);
  if (lo > hi) return kNoSlot;
  if (has_round_masks()) {
    const std::uint64_t m =
        rotated_round_mask(resource) & round_range_mask(lo, hi);
    if (m == 0) return kNoSlot;
    return SlotRef{resource, window_begin_ + std::countr_zero(m)};
  }
  return scan_first_allowed_wide(resource, kNoResource, lo, hi,
                                 /*exclude_claims=*/false);
}

SlotRef DeltaWindowProblem::first_free_allowed(RequestId id) const {
  return first_free_allowed(row(id));
}

SlotRef DeltaWindowProblem::first_free_allowed(const Request& r) const {
  const Round lo = std::max(r.arrival, window_begin_);
  const Round hi = std::min(r.deadline, window_end() - 1);
  if (lo > hi) return kNoSlot;
  const bool two = r.second != kNoResource;
  if (has_round_masks()) {
    // O(1): each resource's free rounds are one rotated word; the earliest
    // allowed round is a ctz, the {first, second} tie going to first.
    const std::uint64_t range = round_range_mask(lo, hi);
    const std::uint64_t m1 = rotated_round_mask(r.first) & range;
    const std::uint64_t m2 = two ? rotated_round_mask(r.second) & range : 0;
    if ((m1 | m2) == 0) return kNoSlot;
    const int o1 = m1 != 0 ? std::countr_zero(m1) : 64;
    const int o2 = m2 != 0 ? std::countr_zero(m2) : 64;
    if (o1 <= o2) return SlotRef{r.first, window_begin_ + o1};
    return SlotRef{r.second, window_begin_ + o2};
  }
  // d > 64: sweep whole words of the per-resource ring masks (ctz per word)
  // instead of probing the column masks once per round.
  return scan_first_allowed_wide(r.first, r.second, lo, hi,
                                 /*exclude_claims=*/false);
}

SlotRef DeltaWindowProblem::scan_first_allowed_wide(ResourceId first,
                                                    ResourceId second, Round lo,
                                                    Round hi,
                                                    bool exclude_claims) const {
  if (lo > hi) return kNoSlot;
  const auto d = static_cast<std::size_t>(config_.d);
  const std::size_t wpr = words_per_resource();
  const std::uint64_t* f1 =
      res_free_.data() + static_cast<std::size_t>(first) * wpr;
  const std::uint64_t* c1 =
      res_claimed_.data() + static_cast<std::size_t>(first) * wpr;
  const bool two = second != kNoResource;
  const std::uint64_t* f2 =
      two ? res_free_.data() + static_cast<std::size_t>(second) * wpr : nullptr;
  const std::uint64_t* c2 =
      two ? res_claimed_.data() + static_cast<std::size_t>(second) * wpr
          : nullptr;
  // Rounds [lo, hi] occupy at most two contiguous ring-column segments:
  // [col(lo), d) and, after the wrap, [0, col(lo) + len - d). Each segment is
  // swept word-by-word, boundary words masked, earliest set bit of the
  // combined {first, second} mask wins (first preferred at the same column).
  const auto scan_segment = [&](std::size_t a, std::size_t b,
                                Round round_of_a) -> SlotRef {
    const std::size_t w_lo = a / 64;
    const std::size_t w_hi = b / 64;
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      std::uint64_t m1 = f1[w];
      std::uint64_t m2 = two ? f2[w] : 0;
      if (exclude_claims) {
        m1 &= ~c1[w];
        if (two) m2 &= ~c2[w];
      }
      std::uint64_t keep = kAllOnes;
      if (w == w_lo) keep &= kAllOnes << (a % 64);
      if (w == w_hi && (b % 64) != 63) {
        keep &= (std::uint64_t{1} << ((b % 64) + 1)) - 1;
      }
      m1 &= keep;
      m2 &= keep;
      const std::uint64_t both = m1 | m2;
      if (both == 0) continue;
      const int off = std::countr_zero(both);
      const std::size_t col = w * 64 + static_cast<std::size_t>(off);
      const Round round = round_of_a + static_cast<Round>(col - a);
      if (((m1 >> off) & 1) != 0) return SlotRef{first, round};
      return SlotRef{second, round};
    }
    return kNoSlot;
  };
  const auto len = static_cast<std::size_t>(hi - lo + 1);
  const std::size_t col_lo = column_of(lo);
  if (col_lo + len <= d) return scan_segment(col_lo, col_lo + len - 1, lo);
  const SlotRef pre_wrap = scan_segment(col_lo, d - 1, lo);
  if (pre_wrap.valid()) return pre_wrap;
  return scan_segment(0, col_lo + len - 1 - d,
                      lo + static_cast<Round>(d - col_lo));
}

void DeltaWindowProblem::begin_admission_batch() {
  REQSCHED_REQUIRE_MSG(!admission_batch_, "admission batches must not nest");
  admission_batch_ = true;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void DeltaWindowProblem::end_admission_batch() {
  REQSCHED_REQUIRE_MSG(admission_batch_, "no admission batch open");
  const std::size_t wpr = words_per_resource();
  for (const SlotRef slot : batch_claims_) {
    const std::size_t col = column_of(slot.round);
    res_claimed_[static_cast<std::size_t>(slot.resource) * wpr + col / 64] &=
        ~(std::uint64_t{1} << (col % 64));
  }
  batch_claims_.clear();
  admission_batch_ = false;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

DeltaWindowProblem::AdmissionProbe DeltaWindowProblem::admission_probe(
    const Request& r) const {
  REQSCHED_REQUIRE_MSG(admission_batch_,
                       "admission_probe outside an admission batch");
  const Round lo = std::max(r.arrival, window_begin_);
  const Round hi = std::min(r.deadline, window_end() - 1);
  if (lo > hi) return {};
  const bool two = r.second != kNoResource;
  if (has_round_masks()) {
    const std::uint64_t range = round_range_mask(lo, hi);
    const std::uint64_t f1 = rotated_round_mask(res_free_, r.first) & range;
    const std::uint64_t f2 =
        two ? rotated_round_mask(res_free_, r.second) & range : 0;
    const auto choose = [&](std::uint64_t m1, std::uint64_t m2) -> SlotRef {
      if ((m1 | m2) == 0) return kNoSlot;
      const int o1 = m1 != 0 ? std::countr_zero(m1) : 64;
      const int o2 = m2 != 0 ? std::countr_zero(m2) : 64;
      if (o1 <= o2) return SlotRef{r.first, window_begin_ + o1};
      return SlotRef{r.second, window_begin_ + o2};
    };
    const std::uint64_t c1 = rotated_round_mask(res_claimed_, r.first) & range;
    const std::uint64_t c2 =
        two ? rotated_round_mask(res_claimed_, r.second) & range : 0;
    // No batch claim touches this row's alternatives: the pre-batch view is
    // the live view, so greedy booking of the slot is Kuhn-identical.
    if ((c1 | c2) == 0) return {choose(f1, f2), false};
    const SlotRef live = choose(f1 & ~c1, f2 & ~c2);
    const SlotRef pre = choose(f1, f2);
    return {live, live != pre};
  }
  const SlotRef live = scan_first_allowed_wide(r.first, r.second, lo, hi,
                                               /*exclude_claims=*/true);
  const SlotRef pre = scan_first_allowed_wide(r.first, r.second, lo, hi,
                                              /*exclude_claims=*/false);
  return {live, live != pre};
}

void DeltaWindowProblem::claim_admission_slot(SlotRef slot) {
  REQSCHED_REQUIRE_MSG(admission_batch_,
                       "claim_admission_slot outside an admission batch");
  REQSCHED_REQUIRE_MSG(is_free(slot), slot << " is not free");
  const std::size_t col = column_of(slot.round);
  std::uint64_t& word =
      res_claimed_[static_cast<std::size_t>(slot.resource) *
                       words_per_resource() +
                   col / 64];
  const std::uint64_t bit = std::uint64_t{1} << (col % 64);
  REQSCHED_REQUIRE_MSG((word & bit) == 0, slot << " already claimed");
  word |= bit;
  batch_claims_.push_back(slot);
}

void DeltaWindowProblem::set_free(SlotRef slot, bool free) {
  const std::size_t words = words_per_column();
  const std::size_t word = static_cast<std::size_t>(slot.resource) / 64;
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(slot.resource) % 64);
  const std::size_t col = column_of(slot.round);
  std::uint64_t& w = free_[col * words + word];
  if (free) {
    w |= bit;
  } else {
    w &= ~bit;
  }
  const std::uint64_t col_bit = std::uint64_t{1} << (col % 64);
  std::uint64_t& m =
      res_free_[static_cast<std::size_t>(slot.resource) * words_per_resource() +
                col / 64];
  if (free) {
    m |= col_bit;
  } else {
    m &= ~col_bit;
  }
}

std::uint64_t DeltaWindowProblem::rotated_round_mask(
    const std::vector<std::uint64_t>& masks, ResourceId res) const {
  // d <= 64 only: words_per_resource() == 1, so the resource's whole ring is
  // one word of `masks` (res_free_ or res_claimed_).
  const std::uint64_t m = masks[static_cast<std::size_t>(res)];
  const auto d = static_cast<unsigned>(config_.d);
  const auto rot = static_cast<unsigned>(column_of(window_begin_));
  if (rot == 0) return m;
  // Rotate within the low d bits; m never has bits at or above d set.
  const std::uint64_t full = d == 64 ? kAllOnes : (std::uint64_t{1} << d) - 1;
  return ((m >> rot) | (m << (d - rot))) & full;
}

std::uint64_t DeltaWindowProblem::round_range_mask(Round lo, Round hi) const {
  const auto lo_off = static_cast<unsigned>(lo - window_begin_);
  const auto hi_off = static_cast<unsigned>(hi - window_begin_);
  const std::uint64_t upto =
      hi_off == 63 ? kAllOnes : (std::uint64_t{1} << (hi_off + 1)) - 1;
  return upto & ~((std::uint64_t{1} << lo_off) - 1);
}

std::int32_t DeltaWindowProblem::free_rank_below(Round round,
                                                 ResourceId resource) const {
  const std::size_t words = words_per_column();
  const std::uint64_t* column = free_.data() + column_of(round) * words;
  const std::size_t word = static_cast<std::size_t>(resource) / 64;
  std::int32_t rank = 0;
  for (std::size_t w = 0; w < word; ++w) {
    rank += std::popcount(column[w]);
  }
  const std::size_t bit = static_cast<std::size_t>(resource) % 64;
  if (bit != 0) {
    rank += std::popcount(column[word] & ((std::uint64_t{1} << bit) - 1));
  }
  return rank;
}

std::int32_t DeltaWindowProblem::free_in_round(Round round) const {
  const std::size_t words = words_per_column();
  const std::uint64_t* column = free_.data() + column_of(round) * words;
  std::int32_t count = 0;
  for (std::size_t w = 0; w < words; ++w) count += std::popcount(column[w]);
  return count;
}

void DeltaWindowProblem::collect_rights(WindowScope scope,
                                        std::vector<SlotRef>& rights) const {
  rights.clear();
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;
  if (scope == WindowScope::kFullWindow) {
    for (Round round = t; round <= window_last; ++round) {
      for (ResourceId i = 0; i < config_.n; ++i) {
        rights.push_back(SlotRef{i, round});
      }
    }
    return;
  }
  const std::size_t words = words_per_column();
  for (Round round = t; round <= window_last; ++round) {
    const std::uint64_t* column = free_.data() + column_of(round) * words;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = column[w];
      while (bits != 0) {
        const auto res = static_cast<ResourceId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        rights.push_back(SlotRef{res, round});
        bits &= bits - 1;
      }
    }
  }
}

void DeltaWindowProblem::build_problem(std::span<const RequestId> lefts,
                                       WindowScope scope,
                                       std::vector<SlotRef>& rights,
                                       BipartiteGraph& graph) const {
  collect_rights(scope, rights);
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;
  const bool full = scope == WindowScope::kFullWindow;

  // Per-round base offsets into `rights`, so a free slot's right index is
  // base[round - t] + (its free-rank within the round) — O(n/64) per edge
  // instead of a dense O(n*d) map rebuilt every round.
  std::int32_t base[1 + 64];  // d is small; fall back to exact size if not
  std::vector<std::int32_t> base_overflow;
  std::int32_t* bases = base;
  const auto span_rounds = static_cast<std::size_t>(window_last - t + 1);
  if (span_rounds > 64) {
    base_overflow.resize(span_rounds + 1);
    bases = base_overflow.data();
  }
  if (!full) {
    std::int32_t acc = 0;
    for (Round round = t; round <= window_last; ++round) {
      bases[round - t] = acc;
      acc += free_in_round(round);
    }
  }

  graph.reset(static_cast<std::int32_t>(lefts.size()),
              static_cast<std::int32_t>(rights.size()));
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    const Request& r = row(lefts[l]);
    const Round lo = std::max(r.arrival, t);
    const Round hi = std::min(r.deadline, window_last);
    for (Round round = lo; round <= hi; ++round) {
      for (const ResourceId res : {r.first, r.second}) {
        if (res == kNoResource) continue;
        std::int32_t right;
        if (full) {
          right = static_cast<std::int32_t>((round - t) * config_.n + res);
        } else {
          if (!is_free(SlotRef{res, round})) continue;
          right = bases[round - t] + free_rank_below(round, res);
        }
        graph.add_edge(static_cast<std::int32_t>(l), right);
      }
    }
  }
  graph.finalize();
}

bool DeltaWindowProblem::kuhn_try(
    std::int32_t left, Round window_last,
    std::vector<std::int32_t>& match_of_left) const {
  const Request& r = *kuhn_rows_[static_cast<std::size_t>(left)];
  const Round t = window_begin_;
  const Round lo = std::max(r.arrival, t);
  const Round hi = std::min(r.deadline, window_last);
  if (lo > hi) return false;
  // Candidate slots come from the free masks rather than per-slot occupant
  // probes — in a saturated window almost every (round, resource) pair is
  // booked, and the augmenting search re-scans each owner's full adjacency.
  // The free bits are stable for the whole max_match (nothing books
  // mid-search), so the order visited is exactly the original round-asc,
  // {first, second}, free-filtered enumeration.
  const bool two = r.second != kNoResource;
  const auto try_slot = [&](ResourceId res, Round round) {
    const std::size_t gi =
        column_of(round) * static_cast<std::size_t>(config_.n) +
        static_cast<std::size_t>(res);
    if (visited_attempt_[gi] == attempt_stamp_) return false;
    visited_attempt_[gi] = attempt_stamp_;
    const std::int32_t owner =
        owner_call_[gi] == call_stamp_ ? owner_left_[gi] : -1;
    if (owner < 0 || kuhn_try(owner, window_last, match_of_left)) {
      owner_call_[gi] = call_stamp_;
      owner_left_[gi] = left;
      match_of_left[static_cast<std::size_t>(left)] =
          static_cast<std::int32_t>(gi);
      return true;
    }
    return false;
  };
  if (has_round_masks()) {
    // Skip rounds with no free slot for either alternative entirely: iterate
    // the set bits of the combined rotated round mask, earliest round first.
    const std::uint64_t range = round_range_mask(lo, hi);
    const std::uint64_t m1 = rotated_round_mask(r.first) & range;
    const std::uint64_t m2 = two ? rotated_round_mask(r.second) & range : 0;
    std::uint64_t both = m1 | m2;
    while (both != 0) {
      const int off = std::countr_zero(both);
      both &= both - 1;
      const Round round = t + off;
      if (((m1 >> off) & 1) != 0 && try_slot(r.first, round)) return true;
      if (((m2 >> off) & 1) != 0 && try_slot(r.second, round)) return true;
    }
    return false;
  }
  // d > 64: same skip-empty-rounds idea, but over the multi-word per-resource
  // ring masks — whole-word ctz iteration across the (at most two) contiguous
  // ring-column segments the window maps [lo, hi] onto. The free bits are
  // stable for the whole max_match, so the visit order is still round-asc,
  // {first, second}.
  const auto d = static_cast<std::size_t>(config_.d);
  const std::size_t wpr = words_per_resource();
  const std::uint64_t* f1 =
      res_free_.data() + static_cast<std::size_t>(r.first) * wpr;
  const std::uint64_t* f2 =
      two ? res_free_.data() + static_cast<std::size_t>(r.second) * wpr
          : nullptr;
  const auto sweep_segment = [&](std::size_t a, std::size_t b,
                                 Round round_of_a) -> bool {
    const std::size_t w_lo = a / 64;
    const std::size_t w_hi = b / 64;
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      std::uint64_t m1 = f1[w];
      std::uint64_t m2 = two ? f2[w] : 0;
      std::uint64_t keep = kAllOnes;
      if (w == w_lo) keep &= kAllOnes << (a % 64);
      if (w == w_hi && (b % 64) != 63) {
        keep &= (std::uint64_t{1} << ((b % 64) + 1)) - 1;
      }
      m1 &= keep;
      m2 &= keep;
      std::uint64_t both = m1 | m2;
      while (both != 0) {
        const int off = std::countr_zero(both);
        both &= both - 1;
        const std::size_t col = w * 64 + static_cast<std::size_t>(off);
        const Round round = round_of_a + static_cast<Round>(col - a);
        if (((m1 >> off) & 1) != 0 && try_slot(r.first, round)) return true;
        if (((m2 >> off) & 1) != 0 && try_slot(r.second, round)) return true;
      }
    }
    return false;
  };
  const auto len = static_cast<std::size_t>(hi - lo + 1);
  const std::size_t col_lo = column_of(lo);
  if (col_lo + len <= d) return sweep_segment(col_lo, col_lo + len - 1, lo);
  if (sweep_segment(col_lo, d - 1, lo)) return true;
  return sweep_segment(0, col_lo + len - 1 - d,
                       lo + static_cast<Round>(d - col_lo));
}

void DeltaWindowProblem::max_match(std::span<const RequestId> lefts,
                                   WindowScope scope,
                                   std::vector<SlotRef>& out) const {
  REQSCHED_REQUIRE_MSG(scope != WindowScope::kFullWindow,
                       "max_match only serves the free-slot scopes");
  const Round t = window_begin_;
  const Round window_last =
      scope == WindowScope::kCurrentRound ? t : window_end() - 1;

  // One rows_ lookup per left up front; the augmenting search revisits
  // owners many times and must not pay a hash probe per visit.
  kuhn_rows_.resize(lefts.size());
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    kuhn_rows_[l] = &row(lefts[l]);
  }

  ++call_stamp_;
  match_ring_.assign(lefts.size(), -1);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    ++attempt_stamp_;
    kuhn_try(static_cast<std::int32_t>(l), window_last, match_ring_);
  }

  // Ring column -> absolute round: the window holds each column exactly once.
  const auto t_col = static_cast<Round>(column_of(t));
  out.assign(lefts.size(), kNoSlot);
  for (std::size_t l = 0; l < lefts.size(); ++l) {
    const std::int32_t gi = match_ring_[l];
    if (gi < 0) continue;
    const auto col = static_cast<Round>(gi / config_.n);
    const auto res = static_cast<ResourceId>(gi % config_.n);
    const Round round = t + ((col - t_col) + config_.d) % config_.d;
    out[l] = SlotRef{res, round};
  }
}

void DeltaWindowProblem::audit_check() const {
  const auto d = static_cast<std::size_t>(config_.d);
  const auto n = static_cast<std::size_t>(config_.n);
  const std::size_t words = words_per_column();

  // Naive model: occupancy derived from the row table alone.
  std::int64_t booked_rows = 0;
  for (const auto& [id, row] : rows_) {
    REQSCHED_AUDIT_REQUIRE_MSG(row.request.id == id,
                               "row key r" << id << " holds " << row.request);
    if (!row.booked.valid()) continue;
    ++booked_rows;
    REQSCHED_AUDIT_REQUIRE_MSG(
        in_window(row.booked.round) && row.request.allows_slot(row.booked),
        "r" << id << " booked at disallowed slot " << row.booked);
    REQSCHED_AUDIT_REQUIRE_MSG(
        grid_[grid_index(row.booked)] == id,
        "grid disagrees with row table at " << row.booked << ": holds r"
            << grid_[grid_index(row.booked)] << ", row says r" << id);
  }

  // Every occupied grid cell must be claimed by exactly one booked row, and
  // the free bitmasks (both orientations) must be its exact complement.
  std::int64_t occupied = 0;
  for (std::size_t col = 0; col < d; ++col) {
    for (std::size_t res = 0; res < n; ++res) {
      const std::size_t gi = col * n + res;
      const RequestId occ = grid_[gi];
      const bool bit_free =
          (free_[col * words + res / 64] >> (res % 64)) & 1;
      REQSCHED_AUDIT_REQUIRE_MSG(
          bit_free == (occ == kNoRequest),
          "free bit for column " << col << " resource " << res
              << " disagrees with the occupancy grid (occupant r" << occ
              << ")");
      const bool mask_free =
          (res_free_[res * words_per_resource() + col / 64] >> (col % 64)) & 1;
      REQSCHED_AUDIT_REQUIRE_MSG(
          mask_free == bit_free,
          "transposed res_free_ mask disagrees at column "
              << col << " resource " << res);
      if (occ == kNoRequest) continue;
      ++occupied;
      const auto it = rows_.find(occ);
      REQSCHED_AUDIT_REQUIRE_MSG(it != rows_.end(),
                                 "grid holds retired r" << occ);
      REQSCHED_AUDIT_REQUIRE_MSG(
          it->second.booked.valid() &&
              grid_index(it->second.booked) == gi,
          "grid cell and row booking disagree for r" << occ);
    }
  }
  REQSCHED_AUDIT_REQUIRE_MSG(occupied == booked_rows,
                             occupied << " occupied slots vs " << booked_rows
                                      << " booked rows");
  // Bits at or past d in the last word of each per-resource mask must never
  // be set (rotate and word-sweep correctness depend on it).
  const std::size_t res_words = words_per_resource();
  const std::size_t res_tail = d % 64;
  const std::uint64_t above =
      res_tail == 0 ? 0 : ~((std::uint64_t{1} << res_tail) - 1);
  // Cold: audit_check() only runs from mutators under
  // REQSCHED_AUDIT_ENABLED (or directly from tests).
  for (std::size_t res = 0; res < n; ++res) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE_MSG(
        (res_free_[res * res_words + res_words - 1] & above) == 0,
        "res_free_ has bits past d for resource " << res);
    REQSCHED_AUDIT_REQUIRE_MSG(
        (res_claimed_[res * res_words + res_words - 1] & above) == 0,
        "res_claimed_ has bits past d for resource " << res);
  }

  // Claim-mask oracle: the claimed bits must be exactly the slots recorded in
  // batch_claims_, every claimed slot must still be free (claims never book),
  // and everything must be zero outside a batch.
  if (!admission_batch_) {
    REQSCHED_AUDIT_REQUIRE_MSG(batch_claims_.empty(),
                               "batch_claims_ non-empty outside a batch");
  }
  std::vector<std::uint64_t> naive_claimed(n * res_words, 0);
  for (const SlotRef slot : batch_claims_) {
    REQSCHED_AUDIT_REQUIRE_MSG(
        admission_batch_ && in_window(slot.round) && slot.resource >= 0 &&
            slot.resource < config_.n,
        "batch claim " << slot << " is not a window slot of an open batch");
    REQSCHED_AUDIT_REQUIRE_MSG(grid_[grid_index(slot)] == kNoRequest,
                               "batch claim " << slot << " is booked");
    const std::size_t col = column_of(slot.round);
    naive_claimed[static_cast<std::size_t>(slot.resource) * res_words +
                  col / 64] |= std::uint64_t{1} << (col % 64);
  }
  REQSCHED_AUDIT_REQUIRE_MSG(
      naive_claimed == res_claimed_,
      "res_claimed_ disagrees with the batch_claims_ slot list");
}

std::size_t DeltaWindowProblem::approx_bytes() const {
  return free_.capacity() * sizeof(std::uint64_t) +
         res_free_.capacity() * sizeof(std::uint64_t) +
         res_claimed_.capacity() * sizeof(std::uint64_t) +
         batch_claims_.capacity() * sizeof(SlotRef) +
         grid_.capacity() * sizeof(RequestId) +
         visited_attempt_.capacity() * sizeof(std::int64_t) +
         owner_call_.capacity() * sizeof(std::int64_t) +
         owner_left_.capacity() * sizeof(std::int32_t) +
         rows_.size() * (sizeof(RequestId) + sizeof(Row) + 2 * sizeof(void*));
}

}  // namespace reqsched
