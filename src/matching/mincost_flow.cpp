#include "matching/mincost_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace reqsched {

MinCostMaxFlow::MinCostMaxFlow(std::int32_t node_count) {
  REQSCHED_REQUIRE(node_count > 0);
  head_.resize(static_cast<std::size_t>(node_count));
}

std::int32_t MinCostMaxFlow::add_edge(std::int32_t from, std::int32_t to,
                                      std::int64_t capacity,
                                      std::int64_t cost) {
  REQSCHED_REQUIRE(from >= 0 && from < node_count());
  REQSCHED_REQUIRE(to >= 0 && to < node_count());
  REQSCHED_REQUIRE(capacity >= 0);
  const auto edge_id = static_cast<std::int32_t>(to_.size() / 2);
  head_[static_cast<std::size_t>(from)].push_back(
      static_cast<std::int32_t>(to_.size()));
  to_.push_back(to);
  cap_.push_back(capacity);
  cost_.push_back(cost);
  head_[static_cast<std::size_t>(to)].push_back(
      static_cast<std::int32_t>(to_.size()));
  to_.push_back(from);
  cap_.push_back(0);
  cost_.push_back(-cost);
  original_cap_.push_back(capacity);
  return edge_id;
}

std::pair<std::int64_t, std::int64_t> MinCostMaxFlow::solve(
    std::int32_t source, std::int32_t sink) {
  REQSCHED_REQUIRE(source != sink);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  const std::size_t nodes = head_.size();
  std::int64_t total_flow = 0;
  std::int64_t total_cost = 0;

  std::vector<std::int64_t> dist(nodes);
  std::vector<std::int32_t> parent_arc(nodes);
  std::vector<char> in_queue(nodes);

  for (;;) {
    // SPFA shortest path by cost in the residual network.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent_arc.begin(), parent_arc.end(), -1);
    std::fill(in_queue.begin(), in_queue.end(), 0);
    dist[static_cast<std::size_t>(source)] = 0;
    std::deque<std::int32_t> queue{source};
    in_queue[static_cast<std::size_t>(source)] = 1;
    while (!queue.empty()) {
      const std::int32_t v = queue.front();
      queue.pop_front();
      in_queue[static_cast<std::size_t>(v)] = 0;
      for (const std::int32_t arc : head_[static_cast<std::size_t>(v)]) {
        if (cap_[static_cast<std::size_t>(arc)] <= 0) continue;
        const std::int32_t w = to_[static_cast<std::size_t>(arc)];
        const std::int64_t candidate = dist[static_cast<std::size_t>(v)] +
                                       cost_[static_cast<std::size_t>(arc)];
        if (candidate < dist[static_cast<std::size_t>(w)]) {
          dist[static_cast<std::size_t>(w)] = candidate;
          parent_arc[static_cast<std::size_t>(w)] = arc;
          if (!in_queue[static_cast<std::size_t>(w)]) {
            in_queue[static_cast<std::size_t>(w)] = 1;
            queue.push_back(w);
          }
        }
      }
    }
    if (parent_arc[static_cast<std::size_t>(sink)] < 0) break;

    // Bottleneck along the path.
    std::int64_t push = kInf;
    for (std::int32_t v = sink; v != source;) {
      const std::int32_t arc = parent_arc[static_cast<std::size_t>(v)];
      push = std::min(push, cap_[static_cast<std::size_t>(arc)]);
      v = to_[static_cast<std::size_t>(arc ^ 1)];
    }
    for (std::int32_t v = sink; v != source;) {
      const std::int32_t arc = parent_arc[static_cast<std::size_t>(v)];
      cap_[static_cast<std::size_t>(arc)] -= push;
      cap_[static_cast<std::size_t>(arc ^ 1)] += push;
      v = to_[static_cast<std::size_t>(arc ^ 1)];
    }
    total_flow += push;
    total_cost += push * dist[static_cast<std::size_t>(sink)];
  }
  return {total_flow, total_cost};
}

std::int64_t MinCostMaxFlow::flow_on(std::int32_t edge_id) const {
  REQSCHED_REQUIRE(edge_id >= 0 && static_cast<std::size_t>(edge_id) <
                                       original_cap_.size());
  return original_cap_[static_cast<std::size_t>(edge_id)] -
         cap_[static_cast<std::size_t>(edge_id) * 2];
}

}  // namespace reqsched
