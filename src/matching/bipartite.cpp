#include "matching/bipartite.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

namespace reqsched {

BipartiteGraph::BipartiteGraph(std::int32_t left_count,
                               std::int32_t right_count)
    : left_count_(left_count), right_count_(right_count) {
  REQSCHED_REQUIRE(left_count >= 0 && right_count >= 0);
  adj_.resize(static_cast<std::size_t>(left_count));
}

void BipartiteGraph::add_edge(std::int32_t left, std::int32_t right) {
  REQSCHED_REQUIRE(left >= 0 && left < left_count_);
  REQSCHED_REQUIRE(right >= 0 && right < right_count_);
  adj_[static_cast<std::size_t>(left)].push_back(right);
  ++edge_count_;
}

Matching Matching::empty(const BipartiteGraph& g) {
  Matching m;
  m.left_to_right.assign(static_cast<std::size_t>(g.left_count()), -1);
  m.right_to_left.assign(static_cast<std::size_t>(g.right_count()), -1);
  return m;
}

std::int32_t Matching::size() const {
  return static_cast<std::int32_t>(
      std::count_if(left_to_right.begin(), left_to_right.end(),
                    [](std::int32_t r) { return r >= 0; }));
}

void Matching::match(std::int32_t l, std::int32_t r) {
  REQSCHED_REQUIRE(!left_matched(l) && !right_matched(r));
  left_to_right[static_cast<std::size_t>(l)] = r;
  right_to_left[static_cast<std::size_t>(r)] = l;
}

void Matching::unmatch_left(std::int32_t l) {
  const std::int32_t r = left_to_right[static_cast<std::size_t>(l)];
  REQSCHED_REQUIRE(r >= 0);
  left_to_right[static_cast<std::size_t>(l)] = -1;
  right_to_left[static_cast<std::size_t>(r)] = -1;
}

void validate_matching(const BipartiteGraph& g, const Matching& m) {
  REQSCHED_CHECK(m.left_to_right.size() ==
                 static_cast<std::size_t>(g.left_count()));
  REQSCHED_CHECK(m.right_to_left.size() ==
                 static_cast<std::size_t>(g.right_count()));
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    const std::int32_t r = m.left_to_right[static_cast<std::size_t>(l)];
    if (r < 0) continue;
    REQSCHED_CHECK_MSG(m.right_to_left[static_cast<std::size_t>(r)] == l,
                       "matching maps are not mutual at left " << l);
    const auto nbrs = g.neighbors(l);
    REQSCHED_CHECK_MSG(std::find(nbrs.begin(), nbrs.end(), r) != nbrs.end(),
                       "matched pair (" << l << ',' << r << ") is not an edge");
  }
  for (std::int32_t r = 0; r < g.right_count(); ++r) {
    const std::int32_t l = m.right_to_left[static_cast<std::size_t>(r)];
    if (l < 0) continue;
    REQSCHED_CHECK_MSG(m.left_to_right[static_cast<std::size_t>(l)] == r,
                       "matching maps are not mutual at right " << r);
  }
}

bool is_maximal_matching(const BipartiteGraph& g, const Matching& m) {
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    if (m.left_matched(l)) continue;
    for (const std::int32_t r : g.neighbors(l)) {
      if (!m.right_matched(r)) return false;
    }
  }
  return true;
}

Matching greedy_maximal(const BipartiteGraph& g) {
  Matching m = Matching::empty(g);
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    for (const std::int32_t r : g.neighbors(l)) {
      if (!m.right_matched(r)) {
        m.match(l, r);
        break;
      }
    }
  }
  return m;
}

namespace {
bool kuhn_try(const BipartiteGraph& g, Matching& m, std::int32_t l,
              std::vector<char>& visited_right) {
  for (const std::int32_t r : g.neighbors(l)) {
    if (visited_right[static_cast<std::size_t>(r)]) continue;
    visited_right[static_cast<std::size_t>(r)] = 1;
    const std::int32_t owner = m.right_to_left[static_cast<std::size_t>(r)];
    if (owner < 0 || kuhn_try(g, m, owner, visited_right)) {
      m.left_to_right[static_cast<std::size_t>(l)] = r;
      m.right_to_left[static_cast<std::size_t>(r)] = l;
      return true;
    }
  }
  return false;
}
}  // namespace

Matching kuhn_ordered(const BipartiteGraph& g,
                      std::span<const std::int32_t> left_order,
                      const Matching* seed) {
  Matching m = seed ? *seed : Matching::empty(g);
  if (seed) validate_matching(g, m);

  std::vector<std::int32_t> order;
  if (left_order.empty()) {
    order.resize(static_cast<std::size_t>(g.left_count()));
    std::iota(order.begin(), order.end(), 0);
    left_order = order;
  }

  std::vector<char> visited_right(static_cast<std::size_t>(g.right_count()));
  for (const std::int32_t l : left_order) {
    REQSCHED_REQUIRE(l >= 0 && l < g.left_count());
    if (m.left_matched(l)) continue;
    std::fill(visited_right.begin(), visited_right.end(), 0);
    kuhn_try(g, m, l, visited_right);
  }
  return m;
}

Matching hopcroft_karp(const BipartiteGraph& g) {
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();
  Matching m = Matching::empty(g);
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.left_count()));

  const auto bfs = [&]() -> bool {
    std::queue<std::int32_t> queue;
    for (std::int32_t l = 0; l < g.left_count(); ++l) {
      if (!m.left_matched(l)) {
        dist[static_cast<std::size_t>(l)] = 0;
        queue.push(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const std::int32_t l = queue.front();
      queue.pop();
      for (const std::int32_t r : g.neighbors(l)) {
        const std::int32_t owner =
            m.right_to_left[static_cast<std::size_t>(r)];
        if (owner < 0) {
          found_free_right = true;
        } else if (dist[static_cast<std::size_t>(owner)] == kInf) {
          dist[static_cast<std::size_t>(owner)] =
              dist[static_cast<std::size_t>(l)] + 1;
          queue.push(owner);
        }
      }
    }
    return found_free_right;
  };

  const std::function<bool(std::int32_t)> dfs = [&](std::int32_t l) -> bool {
    for (const std::int32_t r : g.neighbors(l)) {
      const std::int32_t owner = m.right_to_left[static_cast<std::size_t>(r)];
      if (owner < 0 || (dist[static_cast<std::size_t>(owner)] ==
                            dist[static_cast<std::size_t>(l)] + 1 &&
                        dfs(owner))) {
        m.left_to_right[static_cast<std::size_t>(l)] = r;
        m.right_to_left[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  };

  while (bfs()) {
    for (std::int32_t l = 0; l < g.left_count(); ++l) {
      if (!m.left_matched(l)) dfs(l);
    }
  }
  return m;
}

VertexCover koenig_cover(const BipartiteGraph& g, const Matching& maximum) {
  // Alternating BFS/DFS from free left vertices; cover = (unvisited lefts,
  // visited rights).
  std::vector<char> left_visited(static_cast<std::size_t>(g.left_count()));
  std::vector<char> right_visited(static_cast<std::size_t>(g.right_count()));
  std::queue<std::int32_t> queue;
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    if (!maximum.left_matched(l)) {
      left_visited[static_cast<std::size_t>(l)] = 1;
      queue.push(l);
    }
  }
  while (!queue.empty()) {
    const std::int32_t l = queue.front();
    queue.pop();
    for (const std::int32_t r : g.neighbors(l)) {
      if (right_visited[static_cast<std::size_t>(r)]) continue;
      right_visited[static_cast<std::size_t>(r)] = 1;
      const std::int32_t owner =
          maximum.right_to_left[static_cast<std::size_t>(r)];
      if (owner >= 0 && !left_visited[static_cast<std::size_t>(owner)]) {
        left_visited[static_cast<std::size_t>(owner)] = 1;
        queue.push(owner);
      }
    }
  }
  VertexCover cover;
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    if (!left_visited[static_cast<std::size_t>(l)]) cover.lefts.push_back(l);
  }
  for (std::int32_t r = 0; r < g.right_count(); ++r) {
    if (right_visited[static_cast<std::size_t>(r)]) cover.rights.push_back(r);
  }
  return cover;
}

bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover) {
  std::vector<char> left_in(static_cast<std::size_t>(g.left_count()));
  std::vector<char> right_in(static_cast<std::size_t>(g.right_count()));
  for (const std::int32_t l : cover.lefts)
    left_in[static_cast<std::size_t>(l)] = 1;
  for (const std::int32_t r : cover.rights)
    right_in[static_cast<std::size_t>(r)] = 1;
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    for (const std::int32_t r : g.neighbors(l)) {
      if (!left_in[static_cast<std::size_t>(l)] &&
          !right_in[static_cast<std::size_t>(r)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace reqsched
