#include "matching/bipartite.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace reqsched {

void BipartiteGraph::reset(std::int32_t left_count, std::int32_t right_count) {
  REQSCHED_REQUIRE(left_count >= 0 && right_count >= 0);
  left_count_ = left_count;
  right_count_ = right_count;
  state_ = State::kReady;
  direct_built_ = false;
  offsets_.assign(static_cast<std::size_t>(left_count) + 1, 0);
  edges_.clear();
  pending_left_.clear();
  pending_right_.clear();
}

void BipartiteGraph::add_edge(std::int32_t left, std::int32_t right) {
  REQSCHED_REQUIRE(left >= 0 && left < left_count_);
  REQSCHED_REQUIRE(right >= 0 && right < right_count_);
  REQSCHED_REQUIRE_MSG(!direct_built_ && (state_ == State::kReady ||
                                          state_ == State::kStaged),
                       "add_edge() cannot be mixed with the two-pass builder");
  pending_left_.push_back(left);
  pending_right_.push_back(right);
  state_ = State::kStaged;
}

void BipartiteGraph::finalize() {
  if (state_ == State::kReady) return;
  REQSCHED_REQUIRE_MSG(state_ == State::kStaged,
                       "finalize() called during a two-pass build");
  // Stable counting sort by left vertex: degree count, prefix sum, fill.
  // Stability preserves per-left insertion order, which the augmenting-path
  // algorithms rely on for tie-breaking.
  offsets_.assign(static_cast<std::size_t>(left_count_) + 1, 0);
  for (const std::int32_t l : pending_left_) {
    ++offsets_[static_cast<std::size_t>(l) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  edges_.resize(pending_left_.size());
  for (std::size_t e = 0; e < pending_left_.size(); ++e) {
    const auto l = static_cast<std::size_t>(pending_left_[e]);
    edges_[static_cast<std::size_t>(cursor_[l]++)] = pending_right_[e];
  }
  state_ = State::kReady;
  check_no_duplicate_edges();
}

void BipartiteGraph::count_edges(std::int32_t left, std::int64_t count) {
  REQSCHED_REQUIRE(left >= 0 && left < left_count_);
  REQSCHED_REQUIRE(count >= 0);
  if (state_ != State::kCounting) {
    REQSCHED_REQUIRE_MSG(state_ == State::kReady && edges_.empty() &&
                             pending_left_.empty(),
                         "two-pass build requires a freshly reset graph");
    state_ = State::kCounting;
  }
  offsets_[static_cast<std::size_t>(left) + 1] += count;
}

void BipartiteGraph::start_fill() {
  if (state_ == State::kReady) {
    // Zero-edge graph: no count_edges() calls happened.
    REQSCHED_REQUIRE(edges_.empty() && pending_left_.empty());
    state_ = State::kCounting;
  }
  REQSCHED_REQUIRE(state_ == State::kCounting);
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  edges_.resize(static_cast<std::size_t>(offsets_.back()));
  state_ = State::kFilling;
}

void BipartiteGraph::fill_edge(std::int32_t left, std::int32_t right) {
  REQSCHED_REQUIRE(state_ == State::kFilling);
  REQSCHED_REQUIRE(left >= 0 && left < left_count_);
  REQSCHED_REQUIRE(right >= 0 && right < right_count_);
  auto& cur = cursor_[static_cast<std::size_t>(left)];
  REQSCHED_REQUIRE_MSG(cur < offsets_[static_cast<std::size_t>(left) + 1],
                       "more fill_edge() calls than declared for left "
                           << left);
  edges_[static_cast<std::size_t>(cur++)] = right;
}

void BipartiteGraph::fill_edges(std::int32_t left,
                                std::span<const std::int32_t> rights) {
  REQSCHED_REQUIRE(state_ == State::kFilling);
  REQSCHED_REQUIRE(left >= 0 && left < left_count_);
  auto& cur = cursor_[static_cast<std::size_t>(left)];
  REQSCHED_REQUIRE_MSG(
      cur + static_cast<std::int64_t>(rights.size()) <=
          offsets_[static_cast<std::size_t>(left) + 1],
      "more fill_edges() edges than declared for left " << left);
  for (const std::int32_t r : rights) {
    REQSCHED_DEBUG_REQUIRE(r >= 0 && r < right_count_);
    edges_[static_cast<std::size_t>(cur++)] = r;
  }
}

void BipartiteGraph::finish_fill() {
  REQSCHED_REQUIRE(state_ == State::kFilling);
  for (std::int32_t l = 0; l < left_count_; ++l) {
    REQSCHED_REQUIRE_MSG(
        cursor_[static_cast<std::size_t>(l)] ==
            offsets_[static_cast<std::size_t>(l) + 1],
        "fewer fill_edge() calls than declared for left " << l);
  }
  state_ = State::kReady;
  direct_built_ = true;
  check_no_duplicate_edges();
}

void BipartiteGraph::check_no_duplicate_edges() const {
#ifdef REQSCHED_DEBUG_CHECKS
  std::vector<std::int32_t> last_left(static_cast<std::size_t>(right_count_),
                                      -1);
  for (std::int32_t l = 0; l < left_count_; ++l) {
    for (const std::int32_t r : neighbors(l)) {
      REQSCHED_REQUIRE_MSG(last_left[static_cast<std::size_t>(r)] != l,
                           "duplicate edge (" << l << ',' << r << ')');
      last_left[static_cast<std::size_t>(r)] = l;
    }
  }
#endif
}

Matching Matching::empty(const BipartiteGraph& g) {
  Matching m;
  m.reset(g);
  return m;
}

void Matching::reset(const BipartiteGraph& g) {
  left_to_right.assign(static_cast<std::size_t>(g.left_count()), -1);
  right_to_left.assign(static_cast<std::size_t>(g.right_count()), -1);
}

std::int32_t Matching::size() const {
  return static_cast<std::int32_t>(
      std::count_if(left_to_right.begin(), left_to_right.end(),
                    [](std::int32_t r) { return r >= 0; }));
}

void Matching::match(std::int32_t l, std::int32_t r) {
  REQSCHED_REQUIRE(!left_matched(l) && !right_matched(r));
  left_to_right[static_cast<std::size_t>(l)] = r;
  right_to_left[static_cast<std::size_t>(r)] = l;
}

void Matching::unmatch_left(std::int32_t l) {
  const std::int32_t r = left_to_right[static_cast<std::size_t>(l)];
  REQSCHED_REQUIRE(r >= 0);
  left_to_right[static_cast<std::size_t>(l)] = -1;
  right_to_left[static_cast<std::size_t>(r)] = -1;
}

void validate_matching(const BipartiteGraph& g, const Matching& m) {
  REQSCHED_CHECK(m.left_to_right.size() ==
                 static_cast<std::size_t>(g.left_count()));
  REQSCHED_CHECK(m.right_to_left.size() ==
                 static_cast<std::size_t>(g.right_count()));
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    const std::int32_t r = m.left_to_right[static_cast<std::size_t>(l)];
    if (r < 0) continue;
    REQSCHED_CHECK_MSG(m.right_to_left[static_cast<std::size_t>(r)] == l,
                       "matching maps are not mutual at left " << l);
    const auto nbrs = g.neighbors(l);
    REQSCHED_CHECK_MSG(std::find(nbrs.begin(), nbrs.end(), r) != nbrs.end(),
                       "matched pair (" << l << ',' << r << ") is not an edge");
  }
  for (std::int32_t r = 0; r < g.right_count(); ++r) {
    const std::int32_t l = m.right_to_left[static_cast<std::size_t>(r)];
    if (l < 0) continue;
    REQSCHED_CHECK_MSG(m.left_to_right[static_cast<std::size_t>(l)] == r,
                       "matching maps are not mutual at right " << r);
  }
}

bool is_maximal_matching(const BipartiteGraph& g, const Matching& m) {
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    if (m.left_matched(l)) continue;
    for (const std::int32_t r : g.neighbors(l)) {
      if (!m.right_matched(r)) return false;
    }
  }
  return true;
}

Matching greedy_maximal(const BipartiteGraph& g) {
  Matching m = Matching::empty(g);
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    for (const std::int32_t r : g.neighbors(l)) {
      if (!m.right_matched(r)) {
        m.match(l, r);
        break;
      }
    }
  }
  return m;
}

namespace {
bool kuhn_try(const BipartiteGraph& g, Matching& m, std::int32_t l,
              std::vector<char>& visited_right) {
  for (const std::int32_t r : g.neighbors(l)) {
    if (visited_right[static_cast<std::size_t>(r)]) continue;
    visited_right[static_cast<std::size_t>(r)] = 1;
    const std::int32_t owner = m.right_to_left[static_cast<std::size_t>(r)];
    if (owner < 0 || kuhn_try(g, m, owner, visited_right)) {
      m.left_to_right[static_cast<std::size_t>(l)] = r;
      m.right_to_left[static_cast<std::size_t>(r)] = l;
      return true;
    }
  }
  return false;
}
}  // namespace

void kuhn_ordered(const BipartiteGraph& g,
                  std::span<const std::int32_t> left_order,
                  const Matching* seed, Matching& m,
                  MatchingScratch& scratch) {
  if (seed) {
    m = *seed;
    validate_matching(g, m);
  } else {
    m.reset(g);
  }

  if (left_order.empty()) {
    scratch.order.resize(static_cast<std::size_t>(g.left_count()));
    std::iota(scratch.order.begin(), scratch.order.end(), 0);
    left_order = scratch.order;
  }

  scratch.visited_right.assign(static_cast<std::size_t>(g.right_count()), 0);
  for (const std::int32_t l : left_order) {
    REQSCHED_REQUIRE(l >= 0 && l < g.left_count());
    if (m.left_matched(l)) continue;
    std::fill(scratch.visited_right.begin(), scratch.visited_right.end(), 0);
    kuhn_try(g, m, l, scratch.visited_right);
  }
}

Matching kuhn_ordered(const BipartiteGraph& g,
                      std::span<const std::int32_t> left_order,
                      const Matching* seed) {
  Matching m;
  MatchingScratch scratch;
  kuhn_ordered(g, left_order, seed, m, scratch);
  return m;
}

void hopcroft_karp(const BipartiteGraph& g, Matching& m,
                   MatchingScratch& scratch) {
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();
  m.reset(g);
  const std::int32_t left_count = g.left_count();
  scratch.dist.assign(static_cast<std::size_t>(left_count), 0);

  const auto bfs = [&]() -> bool {
    scratch.queue.clear();
    for (std::int32_t l = 0; l < left_count; ++l) {
      if (!m.left_matched(l)) {
        scratch.dist[static_cast<std::size_t>(l)] = 0;
        scratch.queue.push_back(l);
      } else {
        scratch.dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found_free_right = false;
    for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
      const std::int32_t l = scratch.queue[head];
      for (const std::int32_t r : g.neighbors(l)) {
        const std::int32_t owner =
            m.right_to_left[static_cast<std::size_t>(r)];
        if (owner < 0) {
          found_free_right = true;
        } else if (scratch.dist[static_cast<std::size_t>(owner)] == kInf) {
          scratch.dist[static_cast<std::size_t>(owner)] =
              scratch.dist[static_cast<std::size_t>(l)] + 1;
          scratch.queue.push_back(owner);
        }
      }
    }
    return found_free_right;
  };

  // Iterative layered DFS, frame-for-frame equivalent to the textbook
  // recursion: a frame descends into the first neighbour whose owner sits on
  // the next BFS layer, marks its left dead (dist = inf) when it exhausts its
  // adjacency, and a free right commits the whole stack as one augmenting
  // path by unwinding through the `via_right` edges.
  const auto dfs = [&](std::int32_t root) -> bool {
    scratch.stack.clear();
    scratch.stack.push_back({root, 0, -1});
    while (!scratch.stack.empty()) {
      MatchingScratch::DfsFrame& frame = scratch.stack.back();
      const auto nbrs = g.neighbors(frame.left);
      bool descended = false;
      while (static_cast<std::size_t>(frame.edge) < nbrs.size()) {
        const std::int32_t r = nbrs[static_cast<std::size_t>(frame.edge++)];
        const std::int32_t owner =
            m.right_to_left[static_cast<std::size_t>(r)];
        if (owner < 0) {
          std::int32_t take = r;
          for (auto it = scratch.stack.rbegin(); it != scratch.stack.rend();
               ++it) {
            m.left_to_right[static_cast<std::size_t>(it->left)] = take;
            m.right_to_left[static_cast<std::size_t>(take)] = it->left;
            take = it->via_right;
          }
          return true;
        }
        if (scratch.dist[static_cast<std::size_t>(owner)] ==
            scratch.dist[static_cast<std::size_t>(frame.left)] + 1) {
          scratch.stack.push_back({owner, 0, r});
          descended = true;
          break;
        }
      }
      if (!descended) {
        scratch.dist[static_cast<std::size_t>(frame.left)] = kInf;
        scratch.stack.pop_back();
      }
    }
    return false;
  };

  while (bfs()) {
    for (std::int32_t l = 0; l < left_count; ++l) {
      if (!m.left_matched(l)) dfs(l);
    }
  }
}

Matching hopcroft_karp(const BipartiteGraph& g) {
  Matching m;
  MatchingScratch scratch;
  hopcroft_karp(g, m, scratch);
  return m;
}

void koenig_cover(const BipartiteGraph& g, const Matching& maximum,
                  VertexCover& cover, MatchingScratch& scratch) {
  // Alternating BFS from free left vertices; cover = (unvisited lefts,
  // visited rights).
  scratch.visited_left.assign(static_cast<std::size_t>(g.left_count()), 0);
  scratch.visited_right.assign(static_cast<std::size_t>(g.right_count()), 0);
  scratch.queue.clear();
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    if (!maximum.left_matched(l)) {
      scratch.visited_left[static_cast<std::size_t>(l)] = 1;
      scratch.queue.push_back(l);
    }
  }
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const std::int32_t l = scratch.queue[head];
    for (const std::int32_t r : g.neighbors(l)) {
      if (scratch.visited_right[static_cast<std::size_t>(r)]) continue;
      scratch.visited_right[static_cast<std::size_t>(r)] = 1;
      const std::int32_t owner =
          maximum.right_to_left[static_cast<std::size_t>(r)];
      if (owner >= 0 &&
          !scratch.visited_left[static_cast<std::size_t>(owner)]) {
        scratch.visited_left[static_cast<std::size_t>(owner)] = 1;
        scratch.queue.push_back(owner);
      }
    }
  }
  cover.lefts.clear();
  cover.rights.clear();
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    if (!scratch.visited_left[static_cast<std::size_t>(l)]) {
      cover.lefts.push_back(l);
    }
  }
  for (std::int32_t r = 0; r < g.right_count(); ++r) {
    if (scratch.visited_right[static_cast<std::size_t>(r)]) {
      cover.rights.push_back(r);
    }
  }
}

VertexCover koenig_cover(const BipartiteGraph& g, const Matching& maximum) {
  VertexCover cover;
  MatchingScratch scratch;
  koenig_cover(g, maximum, cover, scratch);
  return cover;
}

bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover,
                      MatchingScratch& scratch) {
  auto& left_in = scratch.visited_left;
  auto& right_in = scratch.visited_right;
  left_in.assign(static_cast<std::size_t>(g.left_count()), 0);
  right_in.assign(static_cast<std::size_t>(g.right_count()), 0);
  for (const std::int32_t l : cover.lefts)
    left_in[static_cast<std::size_t>(l)] = 1;
  for (const std::int32_t r : cover.rights)
    right_in[static_cast<std::size_t>(r)] = 1;
  for (std::int32_t l = 0; l < g.left_count(); ++l) {
    for (const std::int32_t r : g.neighbors(l)) {
      if (!left_in[static_cast<std::size_t>(l)] &&
          !right_in[static_cast<std::size_t>(r)]) {
        return false;
      }
    }
  }
  return true;
}

bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover) {
  MatchingScratch scratch;
  return covers_all_edges(g, cover, scratch);
}

}  // namespace reqsched
