// Min-cost max-flow via successive shortest augmenting paths (SPFA).
//
// Costs may be negative on the original arcs (the lexicographic solver uses
// negative "reward" costs); the network must be free of negative cycles,
// which holds for the layered source->request->slot->level->sink networks
// built here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

class MinCostMaxFlow {
 public:
  explicit MinCostMaxFlow(std::int32_t node_count);

  std::int32_t add_edge(std::int32_t from, std::int32_t to,
                        std::int64_t capacity, std::int64_t cost);

  /// Maximizes flow from source to sink; among maximum flows, minimizes
  /// total cost. Returns {flow, cost}.
  std::pair<std::int64_t, std::int64_t> solve(std::int32_t source,
                                              std::int32_t sink);

  std::int64_t flow_on(std::int32_t edge_id) const;

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(head_.size());
  }

 private:
  // Arc-array representation: arc 2i is the i-th added edge, 2i+1 its
  // reverse.
  std::vector<std::vector<std::int32_t>> head_;  ///< node -> arc ids
  std::vector<std::int32_t> to_;
  std::vector<std::int64_t> cap_;
  std::vector<std::int64_t> cost_;
  std::vector<std::int64_t> original_cap_;
};

}  // namespace reqsched
