#include "matching/lex_matcher.hpp"

#include <algorithm>
#include <limits>

#include "matching/maxflow.hpp"
#include "matching/mincost_flow.hpp"

namespace reqsched {

void LexMatchProblem::validate() const {
  REQSCHED_CHECK_MSG(graph.ready(),
                     "LexMatchProblem graph has staged edges; call finalize()");
  REQSCHED_CHECK(level_count >= 1);
  REQSCHED_CHECK(level_of_right.size() ==
                 static_cast<std::size_t>(right_count()));
  for (const std::int32_t lvl : level_of_right) {
    REQSCHED_CHECK(lvl >= 0 && lvl < level_count);
  }
  for (const std::int32_t l : required_lefts) {
    REQSCHED_CHECK(l >= 0 && l < left_count());
  }
  REQSCHED_CHECK_MSG(cardinality_first || required_lefts.empty(),
                     "required lefts need cardinality-first mode");
}

int compare_profiles(const std::vector<std::int64_t>& a,
                     const std::vector<std::int64_t>& b) {
  REQSCHED_REQUIRE(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

namespace {

// Node layout shared by both modes:
//   0 = source, 1..L = lefts, L+1..L+R = rights,
//   L+R+1..L+R+levels = level nodes, L+R+levels+1 = sink.
struct Layout {
  std::int32_t lefts, rights, levels;
  std::int32_t source() const { return 0; }
  std::int32_t left(std::int32_t l) const { return 1 + l; }
  std::int32_t right(std::int32_t r) const { return 1 + lefts + r; }
  std::int32_t level(std::int32_t j) const { return 1 + lefts + rights + j; }
  std::int32_t sink() const { return 1 + lefts + rights + levels; }
  std::int32_t nodes() const { return 2 + lefts + rights + levels; }
};

LexMatchResult solve_pure_lex(const LexMatchProblem& p) {
  // Megiddo-style: open one level at a time, clamp each level's throughput
  // to its achieved optimum before opening the next. Flow accumulates
  // incrementally in one Dinic instance.
  const Layout lay{p.left_count(), p.right_count(), p.level_count};
  MaxFlow flow(lay.nodes());

  std::vector<std::vector<std::int32_t>> left_arcs(
      static_cast<std::size_t>(p.left_count()));
  for (std::int32_t l = 0; l < p.left_count(); ++l) {
    flow.add_edge(lay.source(), lay.left(l), 1);
    for (const std::int32_t r : p.graph.neighbors(l)) {
      left_arcs[static_cast<std::size_t>(l)].push_back(
          flow.add_edge(lay.left(l), lay.right(r), 1));
    }
  }
  for (std::int32_t r = 0; r < p.right_count(); ++r) {
    flow.add_edge(lay.right(r),
                  lay.level(p.level_of_right[static_cast<std::size_t>(r)]), 1);
  }
  std::vector<std::int32_t> level_arc(static_cast<std::size_t>(p.level_count));
  for (std::int32_t j = 0; j < p.level_count; ++j) {
    level_arc[static_cast<std::size_t>(j)] =
        flow.add_edge(lay.level(j), lay.sink(), 0);
  }

  LexMatchResult result;
  result.level_counts.assign(static_cast<std::size_t>(p.level_count), 0);
  std::int64_t total = 0;
  for (std::int32_t k = 0; k < p.level_count; ++k) {
    flow.set_capacity(level_arc[static_cast<std::size_t>(k)],
                      std::numeric_limits<std::int32_t>::max());
    total += flow.solve(lay.source(), lay.sink());
    const std::int64_t through_k =
        flow.flow_on(level_arc[static_cast<std::size_t>(k)]);
    result.level_counts[static_cast<std::size_t>(k)] = through_k;
    flow.set_capacity(level_arc[static_cast<std::size_t>(k)], through_k);
  }
  result.cardinality = total;

  result.left_to_right.assign(static_cast<std::size_t>(p.left_count()), -1);
  for (std::int32_t l = 0; l < p.left_count(); ++l) {
    const auto nbrs = p.graph.neighbors(l);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (flow.flow_on(left_arcs[static_cast<std::size_t>(l)][i]) > 0) {
        result.left_to_right[static_cast<std::size_t>(l)] = nbrs[i];
        break;
      }
    }
  }
  return result;
}

LexMatchResult solve_cardinality_first(const LexMatchProblem& p) {
  const Layout lay{p.left_count(), p.right_count(), p.level_count};
  std::vector<char> required(static_cast<std::size_t>(p.left_count()), 0);
  for (const std::int32_t l : p.required_lefts) {
    required[static_cast<std::size_t>(l)] = 1;
  }

  // Priority costs: matching a required left dominates everything, filling
  // already-fixed earlier levels dominates the current level.
  const std::int64_t b_cost = static_cast<std::int64_t>(p.right_count()) + 2;
  const std::int64_t k_cost =
      b_cost * (static_cast<std::int64_t>(p.right_count()) + 2);

  std::vector<std::int64_t> fixed(static_cast<std::size_t>(p.level_count), -1);
  LexMatchResult result;
  result.level_counts.assign(static_cast<std::size_t>(p.level_count), 0);

  for (std::int32_t step = 0; step < p.level_count; ++step) {
    MinCostMaxFlow flow(lay.nodes());
    std::vector<std::vector<std::int32_t>> left_arcs(
        static_cast<std::size_t>(p.left_count()));
    std::vector<std::int32_t> source_arc(
        static_cast<std::size_t>(p.left_count()));
    for (std::int32_t l = 0; l < p.left_count(); ++l) {
      source_arc[static_cast<std::size_t>(l)] =
          flow.add_edge(lay.source(), lay.left(l), 1,
                        required[static_cast<std::size_t>(l)] ? -k_cost : 0);
      for (const std::int32_t r : p.graph.neighbors(l)) {
        left_arcs[static_cast<std::size_t>(l)].push_back(
            flow.add_edge(lay.left(l), lay.right(r), 1, 0));
      }
    }
    for (std::int32_t r = 0; r < p.right_count(); ++r) {
      flow.add_edge(
          lay.right(r),
          lay.level(p.level_of_right[static_cast<std::size_t>(r)]), 1, 0);
    }
    std::vector<std::int32_t> level_arc(
        static_cast<std::size_t>(p.level_count));
    for (std::int32_t j = 0; j < p.level_count; ++j) {
      std::int64_t cap = std::numeric_limits<std::int32_t>::max();
      std::int64_t cost = 0;
      if (j < step) {
        cap = fixed[static_cast<std::size_t>(j)];
        cost = -b_cost;
      } else if (j == step) {
        cost = -1;
      }
      level_arc[static_cast<std::size_t>(j)] =
          flow.add_edge(lay.level(j), lay.sink(), cap, cost);
    }

    const auto [value, cost] = flow.solve(lay.source(), lay.sink());
    (void)cost;
    for (const std::int32_t l : p.required_lefts) {
      REQSCHED_CHECK_MSG(
          flow.flow_on(source_arc[static_cast<std::size_t>(l)]) == 1,
          "required left " << l << " could not stay matched");
    }
    for (std::int32_t j = 0; j < step; ++j) {
      REQSCHED_CHECK(flow.flow_on(level_arc[static_cast<std::size_t>(j)]) ==
                     fixed[static_cast<std::size_t>(j)]);
    }
    fixed[static_cast<std::size_t>(step)] =
        flow.flow_on(level_arc[static_cast<std::size_t>(step)]);
    result.level_counts[static_cast<std::size_t>(step)] =
        fixed[static_cast<std::size_t>(step)];

    if (step + 1 == p.level_count) {
      result.cardinality = value;
      result.left_to_right.assign(static_cast<std::size_t>(p.left_count()), -1);
      for (std::int32_t l = 0; l < p.left_count(); ++l) {
        const auto nbrs = p.graph.neighbors(l);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (flow.flow_on(left_arcs[static_cast<std::size_t>(l)][i]) > 0) {
            result.left_to_right[static_cast<std::size_t>(l)] = nbrs[i];
            break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

LexMatchResult solve_lex_matching(const LexMatchProblem& problem) {
  problem.validate();
  if (problem.left_count() == 0) {
    LexMatchResult empty;
    empty.level_counts.assign(static_cast<std::size_t>(problem.level_count),
                              0);
    return empty;
  }
  return problem.cardinality_first ? solve_cardinality_first(problem)
                                   : solve_pure_lex(problem);
}

}  // namespace reqsched
