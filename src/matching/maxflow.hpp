// Dinic max-flow on small integer-capacity networks.
//
// Used by the lexicographic matching solver (level-capacitated slot groups,
// Megiddo-style iterated max-flows) and available to tests as an independent
// oracle for matching cardinalities.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace reqsched {

class MaxFlow {
 public:
  explicit MaxFlow(std::int32_t node_count);

  /// Adds a directed edge with the given capacity; returns an edge id whose
  /// flow can be queried after solving.
  std::int32_t add_edge(std::int32_t from, std::int32_t to,
                        std::int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`. May be called again
  /// after capacity updates; flow accumulates on the existing preflow.
  std::int64_t solve(std::int32_t source, std::int32_t sink);

  std::int64_t flow_on(std::int32_t edge_id) const;

  /// Remaining capacity of an edge.
  std::int64_t residual(std::int32_t edge_id) const;

  /// Replaces the capacity of an edge (flow must be re-solved afterwards;
  /// lowering below current flow is rejected).
  void set_capacity(std::int32_t edge_id, std::int64_t capacity);

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(graph_.size());
  }

 private:
  struct Edge {
    std::int32_t to;
    std::int32_t rev;  ///< index of reverse edge in graph_[to]
    std::int64_t cap;  ///< remaining capacity
  };

  bool bfs(std::int32_t source, std::int32_t sink);
  std::int64_t dfs(std::int32_t v, std::int32_t sink, std::int64_t limit);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::int32_t, std::int32_t>> edge_refs_;
  std::vector<std::int64_t> original_cap_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace reqsched
