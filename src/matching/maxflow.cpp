#include "matching/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace reqsched {

MaxFlow::MaxFlow(std::int32_t node_count) {
  REQSCHED_REQUIRE(node_count > 0);
  graph_.resize(static_cast<std::size_t>(node_count));
}

std::int32_t MaxFlow::add_edge(std::int32_t from, std::int32_t to,
                               std::int64_t capacity) {
  REQSCHED_REQUIRE(from >= 0 && from < node_count());
  REQSCHED_REQUIRE(to >= 0 && to < node_count());
  REQSCHED_REQUIRE(capacity >= 0);
  auto& fwd_list = graph_[static_cast<std::size_t>(from)];
  auto& rev_list = graph_[static_cast<std::size_t>(to)];
  const auto fwd_pos = static_cast<std::int32_t>(fwd_list.size());
  const auto rev_pos = static_cast<std::int32_t>(rev_list.size());
  fwd_list.push_back(Edge{to, rev_pos, capacity});
  rev_list.push_back(Edge{from, fwd_pos, 0});
  edge_refs_.emplace_back(from, fwd_pos);
  original_cap_.push_back(capacity);
  return static_cast<std::int32_t>(edge_refs_.size()) - 1;
}

bool MaxFlow::bfs(std::int32_t source, std::int32_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::int32_t> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::int32_t v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(v)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

std::int64_t MaxFlow::dfs(std::int32_t v, std::int32_t sink,
                          std::int64_t limit) {
  if (v == sink) return limit;
  auto& i = iter_[static_cast<std::size_t>(v)];
  auto& edges = graph_[static_cast<std::size_t>(v)];
  for (; i < edges.size(); ++i) {
    Edge& e = edges[i];
    if (e.cap <= 0 ||
        level_[static_cast<std::size_t>(e.to)] !=
            level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const std::int64_t pushed = dfs(e.to, sink, std::min(limit, e.cap));
    if (pushed > 0) {
      e.cap -= pushed;
      graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(std::int32_t source, std::int32_t sink) {
  REQSCHED_REQUIRE(source != sink);
  std::int64_t flow = 0;
  while (bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    for (;;) {
      const std::int64_t pushed =
          dfs(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t MaxFlow::flow_on(std::int32_t edge_id) const {
  REQSCHED_REQUIRE(edge_id >= 0 &&
                   static_cast<std::size_t>(edge_id) < edge_refs_.size());
  const auto [from, pos] = edge_refs_[static_cast<std::size_t>(edge_id)];
  const Edge& e =
      graph_[static_cast<std::size_t>(from)][static_cast<std::size_t>(pos)];
  return original_cap_[static_cast<std::size_t>(edge_id)] - e.cap;
}

std::int64_t MaxFlow::residual(std::int32_t edge_id) const {
  REQSCHED_REQUIRE(edge_id >= 0 &&
                   static_cast<std::size_t>(edge_id) < edge_refs_.size());
  const auto [from, pos] = edge_refs_[static_cast<std::size_t>(edge_id)];
  return graph_[static_cast<std::size_t>(from)][static_cast<std::size_t>(pos)]
      .cap;
}

void MaxFlow::set_capacity(std::int32_t edge_id, std::int64_t capacity) {
  REQSCHED_REQUIRE(edge_id >= 0 &&
                   static_cast<std::size_t>(edge_id) < edge_refs_.size());
  const std::int64_t current_flow = flow_on(edge_id);
  REQSCHED_REQUIRE_MSG(capacity >= current_flow,
                       "cannot lower capacity below committed flow");
  const auto [from, pos] = edge_refs_[static_cast<std::size_t>(edge_id)];
  graph_[static_cast<std::size_t>(from)][static_cast<std::size_t>(pos)].cap =
      capacity - current_flow;
  original_cap_[static_cast<std::size_t>(edge_id)] = capacity;
}

}  // namespace reqsched
