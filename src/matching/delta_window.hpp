// Delta-maintained request x slot window problem.
//
// Every global strategy used to rebuild its bipartite matching problem from
// scratch each round: an O(n*d) scan over the schedule grid for the rights,
// a fresh graph, fresh id maps. DeltaWindowProblem replaces those rebuilds
// with one persistent structure per run, updated by the events the engine
// already emits:
//
//   add_request     — an arrival appends a row (the canonical round-asc,
//                     alternative-list-order slot enumeration, the same
//                     order SlotGraph::append_slot_edges uses),
//   retire          — an expiry removes the (unbooked) row,
//   retire_executed — an execution removes a booked row: the start unit is
//                     consumed, the occupancy tail turns into holds,
//   book/unbook     — schedule edits move per-slot free unit counts,
//   advance         — the round boundary shifts the slot columns by one.
//
// Capacity generalization: each (resource, round) cell holds capacity_of(r)
// execution units. The free *counts* per cell are authoritative; the
// historical per-column and per-resource bitmasks survive as saturation
// overlays (bit set iff the cell still has a free unit), so every O(1)
// rotate+ctz probe and the admission fast path work unchanged — and reduce
// to exactly the historical single-bit semantics when every b_r == 1.
// Requests with occupancy o book one unit of their resource in each of o
// consecutive rounds; after execution the tail units become anonymous holds
// (kHeldUnit) cleared when their round departs the window.
//
// Rights enumeration, right-index lookup, and graph construction cost
// O(free units) / O(1) / O(edges) with all buffers reused, instead of
// O(n*d) + allocations per round. The matching helpers (max_match,
// first_free_allowed) run Kuhn / greedy-maximal directly in ring-unit space,
// replicating kuhn_ordered / greedy_maximal traversal order exactly — the
// strategies built on top are bit-identical to the rebuild-per-round path.
//
// The admission-batch API (begin_admission_batch / admission_probe /
// claim_admission_slot) serves the engine's fast path: arrivals whose
// earliest free allowed slot is untouched by the batch's own claims can be
// booked greedily, provably producing the matching Kuhn would. A batch only
// *claims* units (counts in a side array) — nothing is booked until the
// whole batch proves uncontended, so a contended batch costs one sweep and
// no unwinding before it punts to the matcher (docs/streaming.md).
//
// The class is deliberately simulator-independent (events in, queries out),
// so the differential fuzz suite can drive it standalone against a freshly
// built instance after every event.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"
#include "matching/bipartite.hpp"

namespace reqsched {

/// Which slots of the window become right-hand vertices (mirrors the
/// strategies' SlotScope, redeclared here so the matching layer stays
/// independent of the strategies layer).
enum class WindowScope {
  kFreeWindow,    ///< free slots in [t, t+d)
  kCurrentRound,  ///< free slots of round t only
  kFullWindow,    ///< every slot in [t, t+d), booked or not
};

class DeltaWindowProblem {
 public:
  DeltaWindowProblem() = default;

  /// Reinitializes for a fresh run at round 0, reusing capacity.
  void reset(const ProblemConfig& config);

  const ProblemConfig& config() const { return config_; }
  Round window_begin() const { return window_begin_; }
  Round window_end() const { return window_begin_ + config_.d; }

  // ---- events (the engine mirrors its round loop into these) ----

  /// An arrival: `r.arrival` must be the current round, `r.deadline` inside
  /// the window, and the occupancy must fit the request's own window.
  void add_request(const Request& r);

  /// An expiry removes the row; it must be unbooked.
  void retire(RequestId id);

  /// An execution at the current round removes a *booked* row (booked start
  /// == the current round): the start unit is consumed and the remaining
  /// occupancy rounds become anonymous holds, still counted against
  /// capacity until their round departs the window. With occupancy 1 this
  /// is exactly unbook() + retire().
  void retire_executed(RequestId id);

  /// A schedule assign: the start slot must be in the window, one of the
  /// row's alternatives within its latest start, and every covered round
  /// must still have a free unit.
  void book(RequestId id, SlotRef slot);

  /// A schedule unassign (the row must be booked): frees every unit of the
  /// occupancy run.
  void unbook(RequestId id);

  /// The round boundary: the current round's column must hold no request
  /// bookings (the engine executes and retires it first); holds in the
  /// departing column end, and the column re-enters as round t + d fully
  /// free.
  void advance();

  // ---- queries ----

  bool has_row(RequestId id) const { return rows_.count(id) != 0; }
  std::int64_t row_count() const {
    return static_cast<std::int64_t>(rows_.size());
  }
  /// Rows currently without a booking — the engine's fast-path backlog
  /// check (strategies that only match arrivals can skip matching when the
  /// whole backlog is already booked).
  std::int64_t unbooked_row_count() const { return unbooked_rows_; }
  const Request& row(RequestId id) const;
  SlotRef booked_slot_of(RequestId id) const;

  bool in_window(Round round) const {
    return round >= window_begin_ && round < window_end();
  }
  bool is_free(SlotRef slot) const;
  /// Free capacity units left in the cell.
  std::int32_t free_units(SlotRef slot) const;
  /// First *request* occupant of the cell's units (holds skipped), or
  /// kNoRequest.
  RequestId request_at(SlotRef slot) const;

  /// Earliest slot of `resource` with a free unit in [from, to]
  /// (window-clamped), or kNoSlot — the same contract as
  /// Schedule::earliest_free_slot.
  SlotRef earliest_free_slot(ResourceId resource, Round from, Round to) const;

  /// The row's earliest bookable start (round asc, then alternative list
  /// order), or kNoSlot — one step of a greedy-maximal extension. With
  /// occupancy o > 1 the start must head a run of o rounds that each still
  /// have a free unit on the same resource.
  SlotRef first_free_allowed(RequestId id) const;

  /// Same query keyed by the request itself — skips the row-table lookup for
  /// callers that already hold the Request (the straggler sweep probes
  /// hundreds of rows per round and the hash probe would dominate). `r` must
  /// describe a current row.
  SlotRef first_free_allowed(const Request& r) const;

  /// first_free_allowed with the start additionally clamped to
  /// `last_start` — current-round-only strategies (A_current) place their
  /// occupancy runs with last_start == the current round.
  SlotRef first_free_allowed(const Request& r, Round last_start) const;

  // ---- admission fast path (engine batch-admission stage) ----

  /// Result of probing one arrival against the current admission batch:
  /// `slot` is the row's earliest allowed slot net of the batch's claims
  /// (kNoSlot when none), and `contended` reports whether an earlier claim
  /// of this batch took a unit the row's scan would have reached first —
  /// i.e. whether a Kuhn matching of the whole batch could differ from
  /// greedy booking.
  struct AdmissionProbe {
    SlotRef slot = kNoSlot;
    bool contended = false;
  };

  /// Opens an admission batch: until end_admission_batch(),
  /// claim_admission_slot() records units in per-cell claim counts and
  /// admission_probe() reports contention against those claims. Claims are
  /// probe bookkeeping only — free counts are untouched, so abandoning a
  /// contended batch needs no unwinding. Batches must not nest.
  void begin_admission_batch();

  /// Closes the batch and clears the claim counts. The caller commits an
  /// uncontended batch afterwards with ordinary book() calls.
  void end_admission_batch();

  bool admission_batch_open() const { return admission_batch_; }

  /// Probes `r` (a current row, occupancy 1) against the live view (free
  /// minus fully-claimed cells) and the pre-batch view (free) — O(k) via
  /// rotate+ctz when d <= 64, an O(k*d/64) word sweep otherwise. Only valid
  /// inside an admission batch. `contended` is true exactly when the
  /// earliest allowed slot differs between the two views: booking `slot`
  /// would then not be provably identical to the batch Kuhn matching.
  AdmissionProbe admission_probe(const Request& r) const;

  /// admission_probe with candidate slots clamped to rounds <= `last_round`
  /// — the engine probes current-round-only strategies (A_current) with
  /// last_round == the current round, mirroring the scope their own matcher
  /// would scan.
  AdmissionProbe admission_probe(const Request& r, Round last_round) const;

  /// Claims one free unit of `slot` (in-window, not yet fully claimed) for
  /// the open batch: once a cell's claims reach its free count, later
  /// probes of this batch see it as taken; the pre-batch view still sees it
  /// free. The engine claims each uncontended probe result, then commits
  /// via book() once the whole batch is admitted.
  void claim_admission_slot(SlotRef slot);

  // ---- problem construction (arena-reusing) ----

  /// Fills `rights` with the scope's capacity units ordered (round asc,
  /// resource asc, unit asc) — the library's canonical right order — a cell
  /// with f free units contributes f copies of its SlotRef. With unit
  /// capacity this is exactly the historical one-entry-per-free-slot list.
  void collect_rights(WindowScope scope, std::vector<SlotRef>& rights) const;

  /// Builds the lefts x rights CSR graph for the scope: edge order per left
  /// is (round asc, then alternative list order, then unit asc), filtered
  /// to free units unless kFullWindow — edge-for-edge identical to the
  /// per-round rebuild. Also fills `rights` as collect_rights does. Every
  /// left must have occupancy 1 (multi-round runs are not bipartite rows;
  /// strategies place them greedily).
  void build_problem(std::span<const RequestId> lefts, WindowScope scope,
                     std::vector<SlotRef>& rights, BipartiteGraph& graph) const;

  /// Maximum matching of `lefts` into the scope's free units (kFreeWindow or
  /// kCurrentRound), Kuhn's algorithm in `lefts` order with the adjacency
  /// order above — the exact kuhn_ordered traversal, run in ring-unit space
  /// without building a graph. `out[i]` is the slot for `lefts[i]` (kNoSlot
  /// when unmatched). Every left must have occupancy 1. Does not modify the
  /// window; apply via book()/the simulator.
  void max_match(std::span<const RequestId> lefts, WindowScope scope,
                 std::vector<SlotRef>& out) const;

  /// Resident estimate (capacities), for the engine's memory accounting.
  std::size_t approx_bytes() const;

  /// Audit oracle: re-derives the free counts, both saturation mask
  /// orientations, the per-column booking/hold/free tallies, the claim
  /// counts, and the unbooked-row counter from the naive set model (the row
  /// table plus the unit grid) and cross-checks every derived structure
  /// against it. O(n*d*b_max + rows). Throws ContractViolation on any
  /// disagreement. Runs after every mutation in REQSCHED_AUDIT builds;
  /// always compiled so tests can invoke it directly.
  void audit_check() const;

 private:
  friend struct AuditTestAccess;  ///< corruption hooks for tests/test_audit
  friend struct SnapshotAccess;   ///< checkpoint codec (src/snapshot)
  struct Row {
    Request request;
    SlotRef booked = kNoSlot;
  };

  /// Checkpoint-restore hook: with config_/b_max_ set (by reset()) and the
  /// authoritative state — rows_, grid_, window_begin_ — overwritten by the
  /// snapshot codec, re-derives every maintained structure (free counts,
  /// both saturation mask orientations, column tallies, row counters) and
  /// resets the admission-batch and Kuhn scratch state. Implemented in
  /// delta_window.cpp so the raw capacity internals stay in their owner
  /// file.
  void rebuild_derived_state();

  std::size_t words_per_column() const {
    return (static_cast<std::size_t>(config_.n) + 63) / 64;
  }
  /// Words per resource in the transposed (per-resource round) masks.
  std::size_t words_per_resource() const {
    return (static_cast<std::size_t>(config_.d) + 63) / 64;
  }
  bool has_round_masks() const { return config_.d <= 64; }
  /// One word of a per-resource mask array (res_free_ / res_claimed_),
  /// rotated so bit k means "round window_begin_ + k" — d <= 64 only.
  std::uint64_t rotated_round_mask(const std::vector<std::uint64_t>& masks,
                                   ResourceId res) const;
  std::uint64_t rotated_round_mask(ResourceId res) const {
    return rotated_round_mask(res_free_, res);
  }
  /// d > 64: earliest allowed slot over `alts` in rounds [lo, hi], scanned
  /// as whole 64-bit words of the per-resource ring masks (ctz per word
  /// instead of a probe per round), earliest-listed alternative winning
  /// round ties. `exclude_claims` masks the fully-claimed cells out — the
  /// live view the admission probe compares against the pre-batch view.
  SlotRef scan_first_allowed_wide(const AltList& alts, Round lo, Round hi,
                                  bool exclude_claims) const;
  /// occupancy > 1, d > 64: naive earliest-run scan over the free counts.
  SlotRef scan_first_run_wide(const AltList& alts, std::int32_t occupancy,
                              Round lo, Round hi) const;
  /// Bits [lo - window_begin_, hi - window_begin_] of a rotated mask.
  std::uint64_t round_range_mask(Round lo, Round hi) const;
  std::size_t column_of(Round round) const {
    return static_cast<std::size_t>(round % config_.d);
  }
  std::size_t cell_index(SlotRef slot) const {
    return column_of(slot.round) * static_cast<std::size_t>(config_.n) +
           static_cast<std::size_t>(slot.resource);
  }
  /// Index of the cell's first unit in the n*d*b_max unit grid.
  std::size_t unit_base(std::size_t cell) const {
    return cell * static_cast<std::size_t>(b_max_);
  }
  void validate_row_request(const Request& r) const;
  /// Takes one free unit of the cell for `id` (a request or kHeldUnit).
  void take_unit(SlotRef slot, RequestId id);
  /// Releases the unit of the cell occupied by `id`.
  void release_unit(SlotRef slot, RequestId id);
  void set_saturation(SlotRef slot, bool free);
  /// Free units in the round's column on resources < `resource`.
  std::int32_t free_units_below(Round round, ResourceId resource) const;
  std::int32_t free_in_round(Round round) const {
    return col_free_[column_of(round)];
  }
  bool kuhn_try(std::int32_t left, Round window_last,
                std::vector<std::int32_t>& match_of_left) const;

  ProblemConfig config_{};
  std::int32_t b_max_ = 1;  ///< unit stride of the grid (max capacity)
  Round window_begin_ = 0;
  std::unordered_map<RequestId, Row> rows_;
  std::int64_t unbooked_rows_ = 0;  ///< rows with no booking
  std::int64_t booked_runs_ = 0;    ///< booked rows with occupancy > 1
  /// Authoritative free unit count per cell (column-major, col * n + res).
  std::vector<std::int32_t> free_count_;
  /// Per-column saturation bitmasks, column-major: bit r of word
  /// (c * words + r/64) is set when cell (r, round with round % d == c) has
  /// at least one free unit. With unit capacity: exactly "the slot is free".
  std::vector<std::uint64_t> free_;
  /// Transposed view, words_per_resource() words per resource: bit c of word
  /// (res * words_per_resource() + c / 64) is set when the cell at ring
  /// column c has a free unit. Turns "earliest free round for this resource"
  /// into rotate + ctz when d <= 64 and a word sweep (ctz/popcount over
  /// whole words) otherwise.
  std::vector<std::uint64_t> res_free_;
  /// Admission-batch claim counts per cell; claimed units stay free in the
  /// counts (claims are probe bookkeeping, not bookings). All zero outside
  /// a batch.
  std::vector<std::int32_t> claim_count_;
  /// Saturation overlay of the claims, same shape as res_free_: bit c set
  /// when the cell at ring column c is *fully* claimed by the current batch
  /// (claims == free units > 0), so free & ~claimed is the live view and
  /// plain free the pre-batch view.
  std::vector<std::uint64_t> res_claimed_;
  /// The units claimed by the open batch (a cell may repeat up to its free
  /// count), for O(batch) clearing.
  std::vector<SlotRef> batch_claims_;
  bool admission_batch_ = false;
  /// Occupant per ring capacity unit (kNoRequest when free, kHeldUnit for an
  /// executed occupancy tail) — the authoritative occupancy used by the
  /// REQUIREs and the fuzz equality checks. Units u >= capacity_of(res) are
  /// padding and stay kNoRequest.
  std::vector<RequestId> grid_;
  /// Per ring column: units booked by requests / held by executed tails /
  /// free. booked + held + free == units_per_round() always.
  std::vector<std::int32_t> col_booked_;
  std::vector<std::int32_t> col_held_;
  std::vector<std::int32_t> col_free_;
  /// Prefix sums of capacities: unit_offset_[res] = sum of capacity_of(r')
  /// for r' < res — the kFullWindow right-index layout (res itself when
  /// capacities are unit).
  std::vector<std::int32_t> unit_offset_;

  // Kuhn scratch (mutable: max_match is logically const). Stamp-versioned so
  // a matching step touches only the units it visits — no O(n*d*b) clears.
  mutable std::vector<std::int64_t> visited_attempt_;  ///< per ring unit
  mutable std::vector<std::int64_t> owner_call_;       ///< per ring unit
  mutable std::vector<std::int32_t> owner_left_;       ///< per ring unit
  mutable std::int64_t attempt_stamp_ = 0;             ///< one per left tried
  mutable std::int64_t call_stamp_ = 0;                ///< one per max_match
  mutable std::vector<std::int32_t> match_ring_;       ///< left -> ring unit
  mutable std::vector<const Request*> kuhn_rows_;      ///< left -> row
};

}  // namespace reqsched
