// Delta-maintained request x slot window problem.
//
// Every global strategy used to rebuild its bipartite matching problem from
// scratch each round: an O(n*d) scan over the schedule grid for the rights,
// a fresh graph, fresh id maps. DeltaWindowProblem replaces those rebuilds
// with one persistent structure per run, updated by the events the engine
// already emits:
//
//   add_request  — an arrival appends a row (the canonical round-asc,
//                  {first, second} slot enumeration, the same order
//                  SlotGraph::append_slot_edges uses),
//   retire       — an expiry or execution removes the row,
//   book/unbook  — schedule edits flip per-slot free bits,
//   advance      — the round boundary shifts the slot columns by one.
//
// Rights enumeration, right-index lookup, and graph construction then cost
// O(free slots) / O(1) / O(edges) with all buffers reused, instead of
// O(n*d) + allocations per round. The matching helpers (max_match,
// first_free_allowed) run Kuhn / greedy-maximal directly in ring-slot space,
// replicating kuhn_ordered / greedy_maximal traversal order exactly — the
// strategies built on top are bit-identical to the rebuild-per-round path.
//
// The admission-batch API (begin_admission_batch / admission_probe /
// claim_admission_slot) serves the engine's fast path: arrivals whose
// earliest free allowed slot is untouched by the batch's own claims can be
// booked greedily, provably producing the matching Kuhn would. A batch only
// *claims* slots (bits in a side mask) — nothing is booked until the whole
// batch proves uncontended, so a contended batch costs one mask sweep and no
// unwinding before it punts to the matcher (docs/streaming.md has the proof).
//
// The class is deliberately simulator-independent (events in, queries out),
// so the differential fuzz suite can drive it standalone against a freshly
// built instance after every event.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"
#include "matching/bipartite.hpp"

namespace reqsched {

/// Which slots of the window become right-hand vertices (mirrors the
/// strategies' SlotScope, redeclared here so the matching layer stays
/// independent of the strategies layer).
enum class WindowScope {
  kFreeWindow,    ///< free slots in [t, t+d)
  kCurrentRound,  ///< free slots of round t only
  kFullWindow,    ///< every slot in [t, t+d), booked or not
};

class DeltaWindowProblem {
 public:
  DeltaWindowProblem() = default;

  /// Reinitializes for a fresh run at round 0, reusing capacity.
  void reset(const ProblemConfig& config);

  const ProblemConfig& config() const { return config_; }
  Round window_begin() const { return window_begin_; }
  Round window_end() const { return window_begin_ + config_.d; }

  // ---- events (the engine mirrors its round loop into these) ----

  /// An arrival: `r.arrival` must be the current round, `r.deadline` inside
  /// the window.
  void add_request(const Request& r);

  /// An expiry or execution removes the row; it must be unbooked.
  void retire(RequestId id);

  /// A schedule assign: the slot must be free, in the window, and one of the
  /// row's alternatives within its deadline.
  void book(RequestId id, SlotRef slot);

  /// A schedule unassign (the row must be booked).
  void unbook(RequestId id);

  /// The round boundary: the current round's column must be fully free (the
  /// engine executes and unbooks it first); it becomes round t + d.
  void advance();

  // ---- queries ----

  bool has_row(RequestId id) const { return rows_.count(id) != 0; }
  std::int64_t row_count() const {
    return static_cast<std::int64_t>(rows_.size());
  }
  const Request& row(RequestId id) const;
  SlotRef booked_slot_of(RequestId id) const;

  bool in_window(Round round) const {
    return round >= window_begin_ && round < window_end();
  }
  bool is_free(SlotRef slot) const;
  RequestId request_at(SlotRef slot) const;

  /// Earliest free slot of `resource` in [from, to] (window-clamped), or
  /// kNoSlot — the same contract as Schedule::earliest_free_slot.
  SlotRef earliest_free_slot(ResourceId resource, Round from, Round to) const;

  /// The row's earliest free allowed slot (round asc, then {first, second}),
  /// or kNoSlot — one step of a greedy-maximal extension.
  SlotRef first_free_allowed(RequestId id) const;

  /// Same query keyed by the request itself — skips the row-table lookup for
  /// callers that already hold the Request (the straggler sweep probes
  /// hundreds of rows per round and the hash probe would dominate). `r` must
  /// describe a current row.
  SlotRef first_free_allowed(const Request& r) const;

  // ---- admission fast path (engine batch-admission stage) ----

  /// Result of probing one arrival against the current admission batch:
  /// `slot` is the row's earliest allowed slot net of the batch's claims
  /// (kNoSlot when none), and `contended` reports whether an earlier claim
  /// of this batch took a slot the row's scan would have reached first —
  /// i.e. whether a Kuhn matching of the whole batch could differ from
  /// greedy booking.
  struct AdmissionProbe {
    SlotRef slot = kNoSlot;
    bool contended = false;
  };

  /// Opens an admission batch: until end_admission_batch(),
  /// claim_admission_slot() records slots in per-resource claim masks and
  /// admission_probe() reports contention against those claims. Claims are
  /// probe bookkeeping only — free bits are untouched, so abandoning a
  /// contended batch needs no unwinding. Batches must not nest.
  void begin_admission_batch();

  /// Closes the batch and clears the claim masks. The caller commits an
  /// uncontended batch afterwards with ordinary book() calls.
  void end_admission_batch();

  bool admission_batch_open() const { return admission_batch_; }

  /// Probes `r` (a current row) against the live view (free minus claims)
  /// and the pre-batch view (free) — O(1) via rotate+ctz when d <= 64, an
  /// O(d/64) word sweep otherwise. Only valid inside an admission batch.
  /// `contended` is true exactly when the earliest allowed slot differs
  /// between the two views: booking `slot` would then not be provably
  /// identical to the batch Kuhn matching.
  AdmissionProbe admission_probe(const Request& r) const;

  /// Marks `slot` (free, in-window) claimed for the open batch: later probes
  /// of this batch see it as taken, and the pre-batch view still sees it
  /// free. The engine claims each uncontended probe result, then commits via
  /// book() once the whole batch is admitted.
  void claim_admission_slot(SlotRef slot);

  // ---- problem construction (arena-reusing) ----

  /// Fills `rights` with the scope's slots ordered (round asc, resource asc)
  /// — the library's canonical right order — without scanning booked slots.
  void collect_rights(WindowScope scope, std::vector<SlotRef>& rights) const;

  /// Builds the lefts x rights CSR graph for the scope: edge order per left
  /// is (round asc, then first, second), filtered to free slots unless
  /// kFullWindow — edge-for-edge identical to the per-round rebuild. Also
  /// fills `rights` as collect_rights does.
  void build_problem(std::span<const RequestId> lefts, WindowScope scope,
                     std::vector<SlotRef>& rights, BipartiteGraph& graph) const;

  /// Maximum matching of `lefts` into the scope's free slots (kFreeWindow or
  /// kCurrentRound), Kuhn's algorithm in `lefts` order with the adjacency
  /// order above — the exact kuhn_ordered traversal, run in ring-slot space
  /// without building a graph. `out[i]` is the slot for `lefts[i]` (kNoSlot
  /// when unmatched). Does not modify the window; apply via book()/the
  /// simulator.
  void max_match(std::span<const RequestId> lefts, WindowScope scope,
                 std::vector<SlotRef>& out) const;

  /// Resident estimate (capacities), for the engine's memory accounting.
  std::size_t approx_bytes() const;

  /// Audit oracle: re-derives every bitmask from the naive set model (the
  /// row table) and cross-checks the occupancy grid, the per-column free
  /// words, and the transposed per-resource masks against it. O(n*d + rows).
  /// Throws ContractViolation on any disagreement. Runs after every mutation
  /// in REQSCHED_AUDIT builds; always compiled so tests can invoke it
  /// directly.
  void audit_check() const;

 private:
  friend struct AuditTestAccess;  ///< corruption hooks for tests/test_audit
  struct Row {
    Request request;
    SlotRef booked = kNoSlot;
  };

  std::size_t words_per_column() const {
    return (static_cast<std::size_t>(config_.n) + 63) / 64;
  }
  /// Words per resource in the transposed (per-resource round) masks.
  std::size_t words_per_resource() const {
    return (static_cast<std::size_t>(config_.d) + 63) / 64;
  }
  bool has_round_masks() const { return config_.d <= 64; }
  /// One word of a per-resource mask array (res_free_ / res_claimed_),
  /// rotated so bit k means "round window_begin_ + k" — d <= 64 only.
  std::uint64_t rotated_round_mask(const std::vector<std::uint64_t>& masks,
                                   ResourceId res) const;
  std::uint64_t rotated_round_mask(ResourceId res) const {
    return rotated_round_mask(res_free_, res);
  }
  /// d > 64: earliest allowed slot of the {first, second} pair in rounds
  /// [lo, hi], scanned as whole 64-bit words of the per-resource ring masks
  /// (ctz per word instead of a probe per round). `exclude_claims` masks the
  /// batch claims out — the live view the admission probe compares against
  /// the pre-batch (plain free) view.
  SlotRef scan_first_allowed_wide(ResourceId first, ResourceId second,
                                  Round lo, Round hi,
                                  bool exclude_claims) const;
  /// Bits [lo - window_begin_, hi - window_begin_] of a rotated mask.
  std::uint64_t round_range_mask(Round lo, Round hi) const;
  std::size_t column_of(Round round) const {
    return static_cast<std::size_t>(round % config_.d);
  }
  std::size_t grid_index(SlotRef slot) const {
    return column_of(slot.round) * static_cast<std::size_t>(config_.n) +
           static_cast<std::size_t>(slot.resource);
  }
  void set_free(SlotRef slot, bool free);
  /// Number of free slots in the round's column with resource < `resource`.
  std::int32_t free_rank_below(Round round, ResourceId resource) const;
  std::int32_t free_in_round(Round round) const;
  bool kuhn_try(std::int32_t left, Round window_last,
                std::vector<std::int32_t>& match_of_left) const;

  ProblemConfig config_{};
  Round window_begin_ = 0;
  std::unordered_map<RequestId, Row> rows_;
  /// Per-column free bitmasks, column-major: bit r of word (c * words + r/64)
  /// is set when slot (r, round with round % d == c) is free.
  std::vector<std::uint64_t> free_;
  /// Transposed view, words_per_resource() words per resource: bit c of word
  /// (res * words_per_resource() + c / 64) is set when the slot at ring
  /// column c is free. Turns "earliest free round for this resource" into
  /// rotate + ctz when d <= 64 and a word sweep (ctz/popcount over whole
  /// words) otherwise.
  std::vector<std::uint64_t> res_free_;
  /// Admission-batch claim masks, same shape as res_free_: bit c set when the
  /// slot at ring column c is claimed by the current batch. Claimed slots
  /// stay free in res_free_ (claims are probe bookkeeping, not bookings), so
  /// free & ~claimed is the live view and plain free the pre-batch view. All
  /// zero outside a batch.
  std::vector<std::uint64_t> res_claimed_;
  /// The slots claimed by the open batch, for O(batch) clearing.
  std::vector<SlotRef> batch_claims_;
  bool admission_batch_ = false;
  /// Occupant per ring slot (kNoRequest when free) — the authoritative
  /// occupancy used by the REQUIREs and the fuzz equality checks.
  std::vector<RequestId> grid_;

  // Kuhn scratch (mutable: max_match is logically const). Stamp-versioned so
  // a matching step touches only the slots it visits — no O(n*d) clears.
  mutable std::vector<std::int64_t> visited_attempt_;  ///< per ring slot
  mutable std::vector<std::int64_t> owner_call_;       ///< per ring slot
  mutable std::vector<std::int32_t> owner_left_;       ///< per ring slot
  mutable std::int64_t attempt_stamp_ = 0;             ///< one per left tried
  mutable std::int64_t call_stamp_ = 0;                ///< one per max_match
  mutable std::vector<std::int32_t> match_ring_;       ///< left -> ring slot
  mutable std::vector<const Request*> kuhn_rows_;      ///< left -> row
};

}  // namespace reqsched
