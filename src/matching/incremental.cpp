#include "matching/incremental.hpp"

#include <limits>

#include "matching/slot_graph.hpp"

namespace reqsched {

void IncrementalMatching::ensure_right(std::int32_t right) {
  REQSCHED_REQUIRE(right >= 0);
  if (right < right_count()) return;
  const auto count = static_cast<std::size_t>(right) + 1;
  right_to_left_.resize(count, -1);
  right_stamp_.resize(count, 0);
  right_dead_.resize(count, 0);
}

bool IncrementalMatching::add_left(std::span<const std::int32_t> rights) {
  const auto id = left_count();
  for (const std::int32_t r : rights) ensure_right(r);
  adj_edges_.insert(adj_edges_.end(), rights.begin(), rights.end());
  adj_offsets_.push_back(adj_edges_.size());
  left_to_right_.push_back(-1);
  return try_augment(id);
}

bool IncrementalMatching::try_augment(std::int32_t root) {
  ++stamp_;
  visited_.clear();
  // Iterative Kuhn DFS: `via_right` is the matched edge we entered a left
  // vertex through, so a found free right can be committed by walking the
  // stack (explicit stack — augmenting paths on long traces can exceed any
  // safe recursion depth). `scanned` gates the free-right lookahead: before
  // descending into any matched neighbor we check the whole adjacency for an
  // immediately free right, which keeps typical augmentations shallow.
  stack_.clear();
  stack_.push_back({root, 0, -1, false});
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const auto nbrs = neighbors_of(frame.left);
    if (!frame.scanned) {
      frame.scanned = true;
      for (const std::int32_t r : nbrs) {
        const auto ri = static_cast<std::size_t>(r);
        if (right_dead_[ri] != 0 || right_stamp_[ri] == stamp_) continue;
        if (right_to_left_[ri] < 0) {
          std::int32_t free_right = r;
          for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
            left_to_right_[static_cast<std::size_t>(it->left)] = free_right;
            right_to_left_[static_cast<std::size_t>(free_right)] = it->left;
            free_right = it->via_right;
          }
          ++size_;
          return true;
        }
      }
    }
    bool descended = false;
    while (frame.next_edge < nbrs.size()) {
      const std::int32_t r = nbrs[frame.next_edge++];
      const auto ri = static_cast<std::size_t>(r);
      if (right_dead_[ri] != 0 || right_stamp_[ri] == stamp_) continue;
      right_stamp_[ri] = stamp_;
      visited_.push_back(r);
      // The lookahead above already ruled out free rights in this adjacency
      // (anything free and unstamped would have ended the search), so every
      // right reached here has an owner to descend into.
      stack_.push_back({right_to_left_[ri], 0, r, false});
      descended = true;
      break;
    }
    if (!descended) stack_.pop_back();
  }
  // Failed search: the visited rights R* are a frozen Hall witness. Every
  // neighbor of every left on the (exhausted) search tree lies in R*, all of
  // R* is matched, and matched rights never become free again — so no future
  // augmenting path can enter R* and leave it, or end inside it. Marking R*
  // dead prunes it from all later searches, which amortises the total cost
  // of failed searches to O(E) over the whole insertion sequence instead of
  // O(E) *per* failure on saturated (overloaded) instances.
  for (const std::int32_t r : visited_) {
    right_dead_[static_cast<std::size_t>(r)] = 1;
  }
  return false;
}

PrefixOptimumTracker::PrefixOptimumTracker(const ProblemConfig& config)
    : config_(config) {
  config_.validate();
}

bool PrefixOptimumTracker::add_request(const Request& request) {
  REQSCHED_REQUIRE_MSG(request.arrival >= 0 &&
                           request.deadline >= request.arrival,
                       "malformed window on " << request);
  for (const ResourceId alt : request.alts) {
    REQSCHED_REQUIRE(alt >= 0 && alt < config_.n);
  }

  edges_.clear();
  if (request.occupancy == 1) {
    SlotGraph::append_slot_edges(request, config_, edges_);
  } else {
    // Reusable-resource relaxation: the occupancy run is relaxed to a
    // single-unit booking at any feasible start — an upper bound on the
    // occupancy-aware optimum, which is not a bipartite matching.
    const auto n = static_cast<std::int64_t>(config_.n);
    const std::int64_t b_max = config_.max_capacity();
    for (Round t = request.arrival; t <= request.latest_start(); ++t) {
      for (const ResourceId alt : request.alts) {
        const auto base = static_cast<std::int32_t>((t * n + alt) * b_max);
        const std::int32_t cap = config_.capacity_of(alt);
        for (std::int32_t u = 0; u < cap; ++u) {
          edges_.push_back(base + u);
        }
      }
    }
  }
  return matching_.add_left(edges_);
}

}  // namespace reqsched
