// Incremental maximum matching: prefix optima in one pass.
//
// The competitive definition `perf_OPT(sigma) <= c * perf_A(sigma) + alpha`
// quantifies over every prefix of the request sequence, so the natural
// benchmark object is OPT(sigma[0..t]) for *all* t, not just the full trace.
// Adding a left vertex (a request) to a bipartite graph raises the maximum
// matching by at most one, and it rises exactly when an augmenting path from
// the new vertex exists: if M is maximum in G and G' = G + v admits a larger
// matching M', then M xor M' contains a single M-augmenting path, which must
// start at v (every other vertex is matched the same number of times in both).
// Searching once from each arriving request therefore maintains an exact
// maximum matching forever — O(E_t) worst case per arrival instead of a full
// Hopcroft–Karp re-solve per round, which is what makes per-round
// competitive-ratio observability affordable on long traces.
//
// Failed searches are additionally amortised by saturated-region pruning:
// when the search from a new vertex dead-ends, the rights it visited form a
// Hall witness (all matched, and every neighbor of every left on the search
// tree lies inside the set), and since augmentations never unmatch a right,
// that region stays fully matched forever — no future augmenting path can
// enter it and escape or terminate inside it. Marking those rights dead and
// skipping them in later searches bounds the total cost of ALL failed
// searches by O(E), instead of O(E) per failure on overloaded instances
// where most late arrivals are unmatchable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

/// Grow-only bipartite maximum matching. Left vertices arrive one at a time
/// with their full adjacency; right vertices are created on demand. After
/// every add_left() the held matching is maximum for the graph seen so far.
class IncrementalMatching {
 public:
  IncrementalMatching() = default;

  /// Adds left vertex `left_count()` adjacent to `rights` and augments from
  /// it. Returns true when the matching grew (i.e. the new maximum is one
  /// larger than before).
  bool add_left(std::span<const std::int32_t> rights);

  std::int32_t left_count() const {
    return static_cast<std::int32_t>(adj_offsets_.size()) - 1;
  }
  std::int32_t right_count() const {
    return static_cast<std::int32_t>(right_to_left_.size());
  }

  /// Current maximum-matching cardinality (monotone non-decreasing).
  std::int64_t size() const { return size_; }

  /// Matched partner of a left vertex (-1 = unmatched).
  std::int32_t right_of(std::int32_t left) const {
    REQSCHED_REQUIRE(left >= 0 && left < left_count());
    return left_to_right_[static_cast<std::size_t>(left)];
  }

  /// Matched partner of a right vertex (-1 = unmatched or never seen).
  std::int32_t left_of(std::int32_t right) const {
    REQSCHED_REQUIRE(right >= 0);
    return right < right_count()
               ? right_to_left_[static_cast<std::size_t>(right)]
               : -1;
  }

 private:
  struct Frame {
    std::int32_t left;
    std::size_t next_edge;
    std::int32_t via_right;
    bool scanned;
  };

  bool try_augment(std::int32_t root);
  void ensure_right(std::int32_t right);
  std::span<const std::int32_t> neighbors_of(std::int32_t left) const {
    const auto lo = adj_offsets_[static_cast<std::size_t>(left)];
    const auto hi = adj_offsets_[static_cast<std::size_t>(left) + 1];
    return {adj_edges_.data() + lo, hi - lo};
  }

  /// Grow-only CSR adjacency: lefts arrive with their full adjacency, so the
  /// flat edge array is append-only and needs no second pass.
  std::vector<std::int32_t> adj_edges_;
  std::vector<std::size_t> adj_offsets_{0};
  std::vector<std::int32_t> left_to_right_;
  std::vector<std::int32_t> right_to_left_;
  /// Kuhn visited marks, versioned by search epoch so searches never pay for
  /// clearing the whole right side.
  std::vector<std::uint64_t> right_stamp_;
  /// Rights inside a frozen Hall witness (see the header comment): skipped by
  /// every later search without affecting exactness.
  std::vector<std::uint8_t> right_dead_;
  std::vector<std::int32_t> visited_;  // per-search scratch
  std::vector<Frame> stack_;           // per-search scratch (reused)
  std::uint64_t stamp_ = 0;
  std::int64_t size_ = 0;
};

/// Request-level wrapper: feeds arrivals into an IncrementalMatching over the
/// request x slot graph (slot (resource, round) = right `round * n +
/// resource`, the canonical SlotGraph indexing; edges come from
/// SlotGraph::append_slot_edges) and exposes the exact offline optimum of the
/// arrivals seen so far.
class PrefixOptimumTracker {
 public:
  explicit PrefixOptimumTracker(const ProblemConfig& config);

  /// Feeds the next arrival (trace order). Returns true when the prefix
  /// optimum grew.
  bool add_request(const Request& request);

  /// OPT over every request fed so far — exactly offline_optimum() of the
  /// corresponding prefix trace.
  std::int64_t optimum() const { return matching_.size(); }

  std::int64_t requests_seen() const { return matching_.left_count(); }

  const IncrementalMatching& matching() const { return matching_; }

 private:
  ProblemConfig config_;
  IncrementalMatching matching_;
  std::vector<std::int32_t> edges_;  // per-arrival scratch
};

}  // namespace reqsched
