// The canonical request x slot graph.
//
// Every view of a scheduling instance — the offline optimum, the incremental
// prefix engine, and the augmenting-path analysis — is a matching question in
// the same bipartite graph: requests on the left, capacity units of
// (resource, round) slots on the right, with unit u of slot (resource,
// round) at right index `(round * n + resource) * b_max + u`. With unit
// capacity (the paper model) this is exactly the historical one-right-per-
// slot layout. SlotGraph is the single definition of that graph: a CSR
// layout built in two passes from a Trace (every request's degree is known
// up front: window x total alternative capacity), plus the slot index
// mapping, plus the canonical per-request edge enumeration the incremental
// engine shares. Requests with occupancy > 1 are not bipartite rows and are
// rejected.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"
#include "core/types.hpp"
#include "matching/bipartite.hpp"

namespace reqsched {

/// The full request x slot graph of a trace, with slot index mapping.
/// Lefts are RequestIds; rights are capacity units of slots (resource,
/// round) for rounds [0, horizon]. Rebuildable in place: `rebuild()` reuses
/// all storage, so a sweep that solves thousands of instances through one
/// SlotGraph reaches a zero-allocation steady state.
class SlotGraph {
 public:
  SlotGraph() = default;
  explicit SlotGraph(const Trace& trace) { rebuild(trace); }

  /// Builds the graph for `trace`, replacing any previous contents. Edge
  /// order per request is the canonical enumeration of append_slot_edges().
  void rebuild(const Trace& trace);

  bool built() const { return built_; }

  const BipartiteGraph& graph() const {
    REQSCHED_REQUIRE(built_);
    return graph_;
  }

  std::int32_t n() const { return n_; }
  Round horizon() const { return horizon_; }
  std::int64_t request_count() const { return graph_.left_count(); }
  std::int32_t slot_count() const { return graph_.right_count(); }
  /// Unit stride of the right index space (max per-resource capacity).
  std::int32_t unit_stride() const { return b_max_; }

  /// Right index of the slot's first capacity unit (== the historical slot
  /// index when capacities are unit).
  std::int32_t slot_index(SlotRef slot) const {
    REQSCHED_REQUIRE(built_);
    REQSCHED_REQUIRE(slot.valid() && slot.round <= horizon_ &&
                     slot.resource < n_);
    return static_cast<std::int32_t>((slot.round * n_ + slot.resource) *
                                     b_max_);
  }

  /// Slot of a right index (any of the slot's capacity units maps back to
  /// the same SlotRef).
  SlotRef slot_at(std::int32_t index) const {
    REQSCHED_REQUIRE(built_);
    REQSCHED_REQUIRE(index >= 0 && index < slot_count());
    const std::int32_t cell = index / b_max_;
    return SlotRef{cell % n_, static_cast<Round>(cell / n_)};
  }

  /// The canonical request -> slot edge enumeration, shared by rebuild() and
  /// the incremental prefix engine: every capacity unit of slot (t, alt) for
  /// t in [arrival, deadline], alternatives in list order. Appends right
  /// indices to `out`; REQUIREs the unit space stays 32-bit indexable and
  /// the request has occupancy 1.
  static void append_slot_edges(const Request& request,
                                const ProblemConfig& config,
                                std::vector<std::int32_t>& out);

 private:
  bool built_ = false;
  std::int32_t n_ = 0;
  std::int32_t b_max_ = 1;
  Round horizon_ = 0;
  BipartiteGraph graph_;
  std::vector<std::int32_t> edge_scratch_;  // per-request fill buffer
};

/// Allocation arena for one offline solve + analysis pipeline: the graph, the
/// matching algorithm buffers, and the solver outputs. `run_experiment` owns
/// one per call; `run_sweep` keeps one per worker thread, so steady-state
/// sweeps stop allocating entirely.
struct SolverScratch {
  SlotGraph slots;
  MatchingScratch match;
  Matching matching;
  VertexCover cover;
  std::vector<std::int32_t> online_slot;  // per request: slot index or -1
  std::vector<std::int64_t> slot_owner;   // per slot: online owner or -1
};

}  // namespace reqsched
