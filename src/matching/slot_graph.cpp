#include "matching/slot_graph.hpp"

#include <limits>

namespace reqsched {

void SlotGraph::append_slot_edges(const Request& request,
                                  const ProblemConfig& config,
                                  std::vector<std::int32_t>& out) {
  REQSCHED_REQUIRE_MSG(request.occupancy == 1,
                       request << " is a multi-round run, not a bipartite row");
  const std::int32_t n = config.n;
  const std::int64_t b_max = config.max_capacity();
  const std::int64_t unit_end =
      (request.deadline + 1) * static_cast<std::int64_t>(n) * b_max;
  REQSCHED_REQUIRE_MSG(
      unit_end <= std::numeric_limits<std::int32_t>::max(),
      "slot unit space exceeds 32-bit indexing at round " << request.deadline);
  if (b_max == 1) {
    // Unit capacity (the paper model): unit index == slot index, one edge
    // per (round, alternative) — the historical tight loop, kept free of
    // the multiply/capacity lookups the general lane needs (the offline-
    // solve bench gate times exactly this path).
    for (Round t = request.arrival; t <= request.deadline; ++t) {
      const auto base = static_cast<std::int32_t>(t * n);
      for (const ResourceId alt : request.alts) out.push_back(base + alt);
    }
    return;
  }
  // Per-alternative capacities are round-invariant; look them up once.
  const ResourceId* alts = request.alts.begin();
  const std::int32_t k = request.alts.size();
  std::int32_t caps[kMaxAlternatives];
  for (std::int32_t i = 0; i < k; ++i) {
    caps[i] = config.capacity_of(alts[i]);
  }
  for (Round t = request.arrival; t <= request.deadline; ++t) {
    const std::int64_t base = t * static_cast<std::int64_t>(n);
    for (std::int32_t i = 0; i < k; ++i) {
      const auto unit_base =
          static_cast<std::int32_t>((base + alts[i]) * b_max);
      for (std::int32_t u = 0; u < caps[i]; ++u) {
        out.push_back(unit_base + u);
      }
    }
  }
}

void SlotGraph::rebuild(const Trace& trace) {
  n_ = trace.config().n;
  b_max_ = trace.config().max_capacity();
  horizon_ = trace.empty() ? 0 : trace.last_useful_round();
  const std::int64_t units = (horizon_ + 1) *
                             static_cast<std::int64_t>(n_) *
                             static_cast<std::int64_t>(b_max_);
  REQSCHED_REQUIRE_MSG(units <= std::numeric_limits<std::int32_t>::max(),
                       "slot unit space exceeds 32-bit indexing at horizon "
                           << horizon_);
  REQSCHED_REQUIRE_MSG(
      trace.size() <= std::numeric_limits<std::int32_t>::max(),
      "request count exceeds 32-bit indexing: " << trace.size());

  graph_.reset(static_cast<std::int32_t>(trace.size()),
               static_cast<std::int32_t>(units));
  // Two-pass CSR build: every request's degree is exactly window size times
  // the total capacity of its alternatives, so pass 1 is arithmetic, no edge
  // materialization.
  const ProblemConfig& config = trace.config();
  for (const Request& r : trace.requests()) {
    const std::int64_t window = r.deadline - r.arrival + 1;
    std::int64_t alt_units = r.alts.size();
    if (b_max_ > 1) {
      alt_units = 0;
      for (const ResourceId alt : r.alts) alt_units += config.capacity_of(alt);
    }
    graph_.count_edges(static_cast<std::int32_t>(r.id), window * alt_units);
  }
  graph_.start_fill();
  for (const Request& r : trace.requests()) {
    edge_scratch_.clear();
    append_slot_edges(r, trace.config(), edge_scratch_);
    graph_.fill_edges(static_cast<std::int32_t>(r.id), edge_scratch_);
  }
  graph_.finish_fill();
  built_ = true;
}

}  // namespace reqsched
