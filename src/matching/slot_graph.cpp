#include "matching/slot_graph.hpp"

#include <limits>

namespace reqsched {

void SlotGraph::append_slot_edges(const Request& request, std::int32_t n,
                                  std::vector<std::int32_t>& out) {
  const std::int64_t slot_end =
      (request.deadline + 1) * static_cast<std::int64_t>(n);
  REQSCHED_REQUIRE_MSG(
      slot_end <= std::numeric_limits<std::int32_t>::max(),
      "slot space exceeds 32-bit indexing at round " << request.deadline);
  for (Round t = request.arrival; t <= request.deadline; ++t) {
    const auto base = static_cast<std::int32_t>(t * n);
    out.push_back(base + request.first);
    if (request.second != kNoResource) out.push_back(base + request.second);
  }
}

void SlotGraph::rebuild(const Trace& trace) {
  n_ = trace.config().n;
  horizon_ = trace.empty() ? 0 : trace.last_useful_round();
  const std::int64_t slots = (horizon_ + 1) * static_cast<std::int64_t>(n_);
  REQSCHED_REQUIRE_MSG(slots <= std::numeric_limits<std::int32_t>::max(),
                       "slot space exceeds 32-bit indexing at horizon "
                           << horizon_);
  REQSCHED_REQUIRE_MSG(
      trace.size() <= std::numeric_limits<std::int32_t>::max(),
      "request count exceeds 32-bit indexing: " << trace.size());

  graph_.reset(static_cast<std::int32_t>(trace.size()),
               static_cast<std::int32_t>(slots));
  // Two-pass CSR build: every request's degree is exactly window size times
  // alternative count, so pass 1 is arithmetic, no edge materialization.
  for (const Request& r : trace.requests()) {
    const std::int64_t window = r.deadline - r.arrival + 1;
    graph_.count_edges(static_cast<std::int32_t>(r.id),
                       window * r.alternative_count());
  }
  graph_.start_fill();
  for (const Request& r : trace.requests()) {
    edge_scratch_.clear();
    append_slot_edges(r, n_, edge_scratch_);
    graph_.fill_edges(static_cast<std::int32_t>(r.id), edge_scratch_);
  }
  graph_.finish_fill();
  built_ = true;
}

}  // namespace reqsched
