// Windowed exact prefix optimum: OPT(sigma[0..t]) with bounded memory.
//
// PrefixOptimumTracker keeps every request and every slot it ever saw, so
// feeding it a multi-million-request stream defeats the point of the
// streaming engine. This tracker maintains the *same exact value* — the
// maximum matching over all arrivals seen so far — while recycling state
// that can provably never change again.
//
// The pruning argument. At round t every future arrival has its whole
// deadline window in rounds >= t, so every future augmenting path *starts*
// on a slot of round >= t. An augmenting path alternates
// unmatched/matched edges: from a right it can only continue through its
// matched left, and from a (previously stored) left only into that left's
// fixed adjacency. Therefore the set of vertices any future path can touch
// is the closure of the round >= t slots under
//     right -> matched left -> all of that left's slots.
// Everything outside the closure is frozen: matched pairs outside it are
// counted into a retired total and their storage recycled; unmatched slots
// outside it can never be matched (a path ending there would have to pass
// through them) and are dropped. Recycled slots all have round < t and
// future arrivals only intern slots of round >= t, so a dropped slot is
// never resurrected. The reported optimum — retired + live matching size —
// stays exactly OPT of the full arrival prefix.
//
// Unlike the naive "forget slots older than the window" (unsound: an
// augmenting path may reach arbitrarily far back through chains of matched
// lefts whose windows overlap), the closure keeps exactly the suffix of
// those chains that is still reachable.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

/// Exact prefix optimum over an arrival stream, with state bounded by the
/// reachable (non-frozen) region instead of the stream length. Mirrors the
/// iterative-Kuhn augmentation of IncrementalMatching on slab-allocated
/// vertices; rights are capacity units keyed by the canonical
/// `(round * n + resource) * b_max + unit` index (64-bit here — streams
/// outlive the 32-bit slot space).
class WindowedPrefixOpt {
 public:
  WindowedPrefixOpt() = default;
  explicit WindowedPrefixOpt(const ProblemConfig& config) { reset(config); }

  /// Re-arms for a new stream, keeping allocated capacity.
  void reset(const ProblemConfig& config);

  /// Feeds the next arrival (arrival order, same contract as
  /// PrefixOptimumTracker). Returns true when the prefix optimum grew.
  bool add_request(const Request& request);

  /// Freezes and recycles everything unreachable from slots of round >=
  /// `now`. Call with the engine's current round; any cadence is sound.
  void advance_to(Round now);

  /// OPT over every request fed so far — exactly
  /// PrefixOptimumTracker::optimum() of the same arrival sequence.
  std::int64_t optimum() const { return retired_matched_ + live_matched_; }

  std::int64_t requests_seen() const { return requests_seen_; }
  std::int64_t retired_matched() const { return retired_matched_; }
  std::int64_t live_matched() const { return live_matched_; }

  /// Currently resident slot vertices (the observability hook for "is the
  /// reachable region staying small").
  std::int64_t live_slots() const { return live_slot_count_; }
  std::int64_t peak_live_slots() const { return peak_live_slots_; }

  std::size_t approx_bytes() const;

  /// Audit oracle: full matching-validity sweep — slot/left match pointers
  /// mutually consistent, every matched slot inside its left's fixed
  /// adjacency, frozen (dead) slots unmatched, the live/retired counters
  /// re-derived, and the slot interning map exact. O(live vertices + edges).
  /// Throws ContractViolation on any disagreement. Runs after every mutation
  /// in REQSCHED_AUDIT builds (which additionally certify each Hall witness
  /// as it freezes); always compiled so tests can invoke it directly.
  void audit_check() const;

 private:
  friend struct AuditTestAccess;  ///< corruption hooks for tests/test_audit
  friend struct SnapshotAccess;   ///< checkpoint codec (src/snapshot)
  /// A stored left (request) vertex. Only successful augmentations store a
  /// left, so every live left is matched; its adjacency is fixed forever.
  struct LeftNode {
    std::vector<std::int32_t> slots;  ///< slab indices of its slot vertices
    std::int32_t match = -1;          ///< slab index of its matched slot
  };
  /// A slot (right) vertex. key < 0 marks a recycled slab entry.
  struct SlotNode {
    std::int64_t key = -1;   ///< (round * n + resource) * b_max + unit
    std::int32_t match = -1; ///< left slab index, -1 = unmatched
    /// Inside a frozen Hall witness (see IncrementalMatching): its matched
    /// pair is already counted into retired_matched_ and no future search
    /// may touch it. The storage is only recycled once the slot's round
    /// leaves the window — freeing it earlier would let a future arrival
    /// re-intern the consumed slot as free.
    bool dead = false;
    std::uint64_t stamp = 0; ///< search/prune epoch mark
  };

  std::int32_t intern_slot(std::int64_t key);
  bool try_augment();
  void free_slot(std::int32_t slot);
  /// Audit helper: checks a slab free list is in-range and duplicate-free,
  /// returns its length.
  static std::size_t audit_count_free(const std::vector<std::int32_t>& free_list,
                                      std::size_t slab_size);

  ProblemConfig config_{};
  std::vector<LeftNode> lefts_;
  std::vector<std::int32_t> left_free_;
  std::vector<SlotNode> slots_;
  std::vector<std::int32_t> slot_free_;
  std::unordered_map<std::int64_t, std::int32_t> slot_index_;

  struct Frame {
    std::int32_t left;      ///< -1 = the arriving request (virtual root)
    std::size_t next_edge;
    std::int32_t via_slot;  ///< matched slot we entered this left through
    bool scanned;
  };
  std::vector<std::int32_t> root_slots_;  // per-arrival adjacency scratch
  std::vector<Frame> stack_;              // per-search scratch
  std::vector<std::int32_t> visited_;     // per-search scratch
  std::vector<std::int32_t> bfs_;         // per-prune scratch
  std::uint64_t stamp_ = 0;

  std::int64_t requests_seen_ = 0;
  std::int64_t retired_matched_ = 0;
  std::int64_t live_matched_ = 0;
  std::int64_t live_slot_count_ = 0;
  std::int64_t peak_live_slots_ = 0;
};

}  // namespace reqsched
