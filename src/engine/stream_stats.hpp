// Streaming statistics: O(1)-memory windowed counters and mergeable
// percentile sketches for unbounded runs.
//
// Whole-trace `Metrics` answers "what happened over the run" — exactly the
// wrong shape for a 10^8-request stationary stream, where the questions are
// "what is the loss rate *now*" and "what tardiness does the p99 request see
// *lately*". StreamStats answers those with state that never grows with the
// stream:
//
//   * windowed counters — injected / fulfilled / expired over a sliding
//     window of W rounds, kept as a ring of B buckets (granularity W/B);
//     update O(1), query O(B).
//   * tardiness sketches — a deterministic compacting quantile sketch
//     (KLL-style: per-level buffers, sorted keep-every-other compaction)
//     over the tardiness of fulfilled requests (rounds waited between
//     arrival and execution, in [0, d)). Exact until the first compaction
//     (count <= capacity), bounded rank error after, and mergeable — the
//     cross-shard aggregate is a sketch merge, not a resample. Windowed
//     quantiles rotate two panes of length W, so the windowed sketch covers
//     the last W..2W rounds.
//
// Every mutable word of state exports/imports through the PR 8 snapshot
// hooks, so a checkpointed stream resumes with bit-identical frames. A
// `StatsFrame` — the periodic emission to the JSONL sink — is therefore
// deliberately free of wall-clock fields: two runs that execute the same
// rounds emit byte-identical frames, which is what the checkpoint gates
// compare. Rates-per-second stay in StatsSnapshot (engine/stats.hpp), the
// exact-on-finite-trace facade this layer streams alongside.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"

namespace reqsched {

struct StreamStatsOptions {
  /// Sliding-window length in rounds.
  Round window = 4096;
  /// Ring granularity: the window is kept as this many buckets, so windowed
  /// counters are exact to within window/buckets rounds.
  std::int32_t buckets = 16;
  /// Level-0 capacity of the quantile sketches. The sketch is *exact* while
  /// its item count stays at or below this (no compaction has happened) —
  /// which is what lets the differential suite pin streaming quantiles
  /// against whole-trace quantiles on finite traces.
  std::int32_t sketch_capacity = 4096;

  friend bool operator==(const StreamStatsOptions&,
                         const StreamStatsOptions&) = default;
};

/// Deterministic mergeable quantile sketch (KLL-style compactor).
///
/// Values are held in per-level buffers; an item at level i has weight 2^i.
/// When a level overflows its capacity the buffer is sorted and every other
/// element survives to the next level (the starting parity alternates per
/// level, so the kept/compacted halves balance deterministically — no RNG,
/// which keeps checkpoint bit-identity and replay trivial). Quantiles are
/// answered by nearest-rank over the weighted multiset: the smallest value
/// whose cumulative weight reaches ceil(q * N).
///
/// Guarantees:
///  * exact while count() <= capacity (exact() stays true);
///  * merge() is exactly associative in the exact regime (merging is pure
///    concatenation until a compaction triggers) and bounded-error beyond it
///    (the differential suite fuzzes the bound across shard groupings);
///  * memory is O(capacity): level i holds at most max(capacity >> i, 32)
///    items, a geometric series.
class QuantileSketch {
 public:
  explicit QuantileSketch(std::int32_t capacity = 4096);

  void add(double value);
  void merge(const QuantileSketch& other);

  /// Nearest-rank quantile; `q` clamped to [0, 1]. 0.0 when empty.
  double quantile(double q) const;

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// True while no compaction has happened: the sketch still holds every
  /// added value and quantile() is exact.
  bool exact() const { return exact_; }
  std::int32_t capacity() const { return capacity_; }

  void reset();
  std::size_t approx_bytes() const;

  /// Raw-word state hooks (the snapshot layer owns framing/bytes).
  void export_state(std::vector<std::uint64_t>& out) const;
  void import_state(std::span<const std::uint64_t> words, std::size_t& cursor);

  friend bool operator==(const QuantileSketch&, const QuantileSketch&) =
      default;

 private:
  std::size_t level_cap(std::size_t level) const;
  void compact_level(std::size_t level);

  std::int32_t capacity_ = 4096;
  std::int64_t count_ = 0;
  bool exact_ = true;
  /// levels_[i] holds weight-2^i items; parities_[i] alternates which half
  /// of the sorted buffer survives compaction.
  std::vector<std::vector<double>> levels_;
  std::vector<std::uint8_t> parities_;
};

/// One periodic observation of the streaming statistics. Cumulative fields
/// cover the stream since its start; `w_`-prefixed fields cover the sliding
/// window. All fields are deterministic functions of the event sequence —
/// no wall-clock — so checkpointed and uninterrupted runs emit identical
/// frames (compared byte-for-byte by the checkpoint gates).
struct StatsFrame {
  std::int64_t shard = 0;
  std::int64_t round = 0;          ///< rounds completed when emitted
  std::int64_t window = 0;         ///< configured window length (rounds)
  std::int64_t window_rounds = 0;  ///< rounds the windowed counters cover
  // cumulative
  std::int64_t injected = 0;
  std::int64_t fulfilled = 0;
  std::int64_t expired = 0;
  std::int64_t pending = 0;
  double fulfilled_fraction = 0.0;  ///< fulfilled / injected (0 if none)
  double loss_rate = 0.0;           ///< expired / injected (0 if none)
  // sliding window
  std::int64_t w_injected = 0;
  std::int64_t w_fulfilled = 0;
  std::int64_t w_expired = 0;
  double w_fulfilled_fraction = 0.0;
  double w_loss_rate = 0.0;         ///< the stationary loss-rate estimator
  // tardiness of fulfilled requests (rounds between arrival and execution);
  // windowed quantiles cover the last window..2*window rounds, 0.0 when no
  // request was fulfilled in that span.
  double tardiness_p50 = 0.0;
  double tardiness_p90 = 0.0;
  double tardiness_p99 = 0.0;
  double cum_tardiness_p50 = 0.0;
  double cum_tardiness_p99 = 0.0;

  friend bool operator==(const StatsFrame&, const StatsFrame&) = default;
};

/// One JSONL record per frame, tagged `"frame":1` so readers can tell frames
/// from StatsSnapshot records and manifest headers in the same file.
std::string to_jsonl(const StatsFrame& frame);

/// The streaming statistics accumulator the engine feeds once per event and
/// rotates once per round. Memory is O(buckets + sketch_capacity),
/// independent of the stream length (the `stream-accumulation` lint rule
/// keeps it that way).
class StreamStats {
 public:
  StreamStats() = default;

  void reset(const StreamStatsOptions& options, std::int64_t shard);
  bool active() const { return active_; }
  const StreamStatsOptions& options() const { return options_; }

  // ---- event feed (engine round loop) ----
  void on_inject(std::int64_t count);
  void on_fulfill(Round tardiness);
  void on_expire();
  /// Round boundary: advances the bucket ring and rotates the sketch panes.
  void end_round();

  // ---- queries ----
  std::int64_t rounds() const { return round_; }
  std::int64_t shard() const { return shard_; }
  /// Relabel the accumulator (the cross-shard merge stamps -1).
  void set_shard(std::int64_t shard) { shard_ = shard; }
  StatsFrame frame(std::int64_t pending) const;

  /// Cross-shard aggregation: adds `other`'s counters bucket-by-age and
  /// merges its sketches. Both sides must carry identical options; the
  /// merged window totals are the sum of the per-shard windows (shards are
  /// independent streams, so "the fleet's last-W-rounds" is exactly that
  /// sum when shards advance in lockstep, and a documented approximation
  /// otherwise).
  ///
  /// Thread discipline: StreamStats carries no lock — an accumulator is
  /// owned by one engine (one thread) while the stream runs, and merge()
  /// mutates the receiver, so concurrent merges into one target must be
  /// externally serialized. ShardedRunner satisfies this by merging on the
  /// coordinating thread after the pool joins, in fixed shard order (which
  /// also keeps the past-exact-regime sketch state deterministic run to
  /// run); anything merging live accumulators must hold a Mutex
  /// (util/mutex.hpp) around every merge into the shared target, as
  /// tests/test_concurrency.cpp demonstrates under TSan.
  void merge(const StreamStats& other);

  std::size_t approx_bytes() const;

  /// Raw-word state hooks for checkpoint/restore (snapshot layer framing).
  void export_state(std::vector<std::uint64_t>& out) const;
  void import_state(std::span<const std::uint64_t> words);

 private:
  struct Bucket {
    std::int64_t injected = 0;
    std::int64_t fulfilled = 0;
    std::int64_t expired = 0;

    friend bool operator==(const Bucket&, const Bucket&) = default;
  };

  Round bucket_width() const {
    return (options_.window + options_.buckets - 1) / options_.buckets;
  }

  bool active_ = false;
  StreamStatsOptions options_{};
  std::int64_t shard_ = 0;
  Round round_ = 0;  ///< completed rounds
  // cumulative counters
  std::int64_t injected_ = 0;
  std::int64_t fulfilled_ = 0;
  std::int64_t expired_ = 0;
  // windowed counters: ring of buckets, cur_ is the active (partial) bucket
  std::vector<Bucket> ring_;
  std::size_t cur_ = 0;
  // tardiness sketches: cumulative + two rotating window panes
  QuantileSketch cum_sketch_;
  QuantileSketch pane_cur_;
  QuantileSketch pane_prev_;
};

}  // namespace reqsched
