// Streaming observability: periodic runtime snapshots and their JSONL form.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace reqsched {

/// `optimum / fulfilled` with the harness's degenerate-run conventions
/// (1.0 when nothing was fulfillable, +inf when OPT found work the online
/// strategy did not).
double competitive_ratio(std::int64_t optimum, std::int64_t fulfilled);

/// One periodic observation of a running stream. Counter fields are
/// cumulative since the start of the stream; rate fields cover the whole
/// run so far (elapsed wall time since the first round).
struct StatsSnapshot {
  std::int64_t shard = 0;          ///< which stream (ShardedRunner)
  std::int64_t round = 0;          ///< round the snapshot was taken after
  std::int64_t injected = 0;
  std::int64_t fulfilled = 0;
  std::int64_t expired = 0;
  std::int64_t pending = 0;        ///< live (unresolved) requests right now
  std::int64_t peak_pending = 0;   ///< high-water mark of `pending`
  /// Exact offline optimum of the arrival prefix (-1 when ratio tracking
  /// is off).
  std::int64_t live_opt = -1;
  double live_ratio = 0.0;         ///< competitive_ratio(live_opt, fulfilled)
  double fulfilled_fraction = 0.0; ///< fulfilled / injected (0 if none)
  double rounds_per_sec = 0.0;
  double requests_per_sec = 0.0;   ///< injected / elapsed
  double elapsed_sec = 0.0;
  /// Admission fast path: requests booked without the matcher, and rounds
  /// punted to the matcher after a contended probe (both 0 when the fast
  /// path is inactive).
  std::int64_t fast_path_admitted = 0;
  std::int64_t fast_path_fallbacks = 0;
  /// Resident-set estimate: bytes held by the pool, schedule, OPT tracker,
  /// and engine scratch (capacities, not touched pages).
  std::int64_t resident_bytes = 0;
};

/// Serializes a snapshot as one JSON object per line (JSONL). Keys are the
/// field names above; `live_opt`/`live_ratio` are omitted when ratio
/// tracking is off (live_opt < 0). Infinite ratios are emitted as the
/// string "inf" (JSON has no Infinity literal).
std::string to_jsonl(const StatsSnapshot& snapshot);

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& snapshot);

/// Crash-safe JSONL appender: each line lands in the file through a single
/// O_APPEND write(2) of the complete line (newline included), so a reader —
/// or a post-crash resume — never sees a torn line, only whole records. A
/// buffered std::ofstream, by contrast, flushes on its own schedule and a
/// kill can leave half a JSON object at the tail.
///
/// Deliberately lock-free (no mutex, no REQSCHED_GUARDED_BY state): after
/// construction the only mutable member is the immutable-once-open fd, and
/// write_line's atomicity comes from the kernel's O_APPEND guarantee, not
/// from a lock. This is the one sanctioned way to share a sink across shard
/// threads without locking; tests/test_concurrency.cpp hammers it under
/// TSan to keep the claim honest.
class JsonlSink {
 public:
  /// Opens (creating or truncating) `path`. Throws ContractViolation when
  /// the file cannot be opened.
  explicit JsonlSink(const std::string& path);
  ~JsonlSink();

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Appends `line` plus a trailing newline as one write(2) call. Safe to
  /// call from multiple threads (O_APPEND writes do not interleave).
  void write_line(const std::string& line);

 private:
  int fd_ = -1;
};

}  // namespace reqsched
