#include "engine/windowed_opt.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace reqsched {

void WindowedPrefixOpt::reset(const ProblemConfig& config) {
  config.validate();
  config_ = config;
  lefts_.clear();
  left_free_.clear();
  slots_.clear();
  slot_free_.clear();
  slot_index_.clear();
  root_slots_.clear();
  stack_.clear();
  visited_.clear();
  bfs_.clear();
  stamp_ = 0;
  requests_seen_ = 0;
  retired_matched_ = 0;
  live_matched_ = 0;
  live_slot_count_ = 0;
  peak_live_slots_ = 0;
}

std::int32_t WindowedPrefixOpt::intern_slot(std::int64_t key) {
  const auto [it, inserted] = slot_index_.try_emplace(key, -1);
  if (inserted) {
    std::int32_t slot;
    if (!slot_free_.empty()) {
      slot = slot_free_.back();
      slot_free_.pop_back();
    } else {
      slot = static_cast<std::int32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[static_cast<std::size_t>(slot)] = SlotNode{key, -1, false, 0};
    it->second = slot;
    ++live_slot_count_;
    peak_live_slots_ = std::max(peak_live_slots_, live_slot_count_);
  }
  return it->second;
}

void WindowedPrefixOpt::free_slot(std::int32_t slot) {
  SlotNode& s = slots_[static_cast<std::size_t>(slot)];
  slot_index_.erase(s.key);
  s.key = -1;
  s.match = -1;
  slot_free_.push_back(slot);
  --live_slot_count_;
}

bool WindowedPrefixOpt::add_request(const Request& request) {
  REQSCHED_REQUIRE_MSG(request.arrival >= 0 &&
                           request.deadline >= request.arrival,
                       "malformed window on " << request);
  // Admission-boundary contract (k <= 8), not a per-round hot loop.
  for (const ResourceId alt : request.alts) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_REQUIRE(alt >= 0 && alt < config_.n);
  }

  ++requests_seen_;
  // Canonical append_slot_edges enumeration, on 64-bit keys: every capacity
  // unit of (t, alt) for feasible starts t, alternatives in list order.
  // occupancy > 1 runs are relaxed to a single-unit booking at any feasible
  // start — an upper bound on the occupancy-aware optimum.
  root_slots_.clear();
  const auto n = static_cast<std::int64_t>(config_.n);
  const auto b_max = static_cast<std::int64_t>(config_.max_capacity());
  for (Round t = request.arrival; t <= request.latest_start(); ++t) {
    for (const ResourceId alt : request.alts) {
      const std::int64_t base = (t * n + alt) * b_max;
      const std::int32_t cap = config_.capacity_of(alt);
      for (std::int32_t u = 0; u < cap; ++u) {
        root_slots_.push_back(intern_slot(base + u));
      }
    }
  }
  const bool grew = try_augment();
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
  return grew;
}

bool WindowedPrefixOpt::try_augment() {
  ++stamp_;
  visited_.clear();
  // Iterative Kuhn DFS, same structure as IncrementalMatching::try_augment:
  // free-slot lookahead before descending, `via_slot` records the matched
  // edge into each left so a found free slot commits by walking the stack.
  // The virtual root (left == -1) is the arriving request, whose adjacency
  // lives in root_slots_; it only gets a LeftNode if the search succeeds.
  stack_.clear();
  stack_.push_back({-1, 0, -1, false});
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const std::vector<std::int32_t>& nbrs =
        frame.left < 0 ? root_slots_
                       : lefts_[static_cast<std::size_t>(frame.left)].slots;
    if (!frame.scanned) {
      frame.scanned = true;
      for (const std::int32_t s : nbrs) {
        SlotNode& node = slots_[static_cast<std::size_t>(s)];
        if (node.dead || node.stamp == stamp_) continue;
        if (node.match < 0) {
          std::int32_t free_slot = s;
          for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
            std::int32_t left = it->left;
            if (left < 0) {
              // Materialize the arriving request as a stored (matched) left.
              if (!left_free_.empty()) {
                left = left_free_.back();
                left_free_.pop_back();
              } else {
                left = static_cast<std::int32_t>(lefts_.size());
                lefts_.emplace_back();
              }
              lefts_[static_cast<std::size_t>(left)].slots = root_slots_;
            }
            lefts_[static_cast<std::size_t>(left)].match = free_slot;
            slots_[static_cast<std::size_t>(free_slot)].match = left;
            free_slot = it->via_slot;
          }
          ++live_matched_;
          return true;
        }
      }
    }
    bool descended = false;
    while (frame.next_edge < nbrs.size()) {
      const std::int32_t s = nbrs[frame.next_edge++];
      SlotNode& node = slots_[static_cast<std::size_t>(s)];
      if (node.dead || node.stamp == stamp_) continue;
      node.stamp = stamp_;
      visited_.push_back(s);
      // The lookahead ruled out free slots in this adjacency, so `s` is
      // matched and we descend into its owner.
      stack_.push_back({node.match, 0, s, false});
      descended = true;
      break;
    }
    if (!descended) stack_.pop_back();
  }
#if REQSCHED_AUDIT_ENABLED
  // Certify the Hall witness before freezing it: every visited slot must be
  // matched (a free slot would have ended the search with success), and
  // every non-dead neighbor of each visited slot's owner must itself have
  // been visited — the exhausted search tree is closed under
  // right -> matched left -> adjacency, which is exactly the property that
  // makes retiring its pairs sound.
  for (const std::int32_t s : visited_) {
    const SlotNode& node = slots_[static_cast<std::size_t>(s)];
    REQSCHED_AUDIT_REQUIRE_MSG(
        !node.dead && node.match >= 0 &&
            static_cast<std::size_t>(node.match) < lefts_.size(),
        "Hall witness slot " << s << " (key " << node.key
                             << ") is not a live matched slot");
    for (const std::int32_t nb :
         lefts_[static_cast<std::size_t>(node.match)].slots) {
      const SlotNode& other = slots_[static_cast<std::size_t>(nb)];
      REQSCHED_AUDIT_REQUIRE_MSG(
          other.dead || other.stamp == stamp_,
          "Hall witness is not closed: slot " << nb << " (key " << other.key
                                              << ") escapes the search tree");
    }
  }
#endif
  // Failed search: the visited slots are a frozen Hall witness (all
  // matched, every neighbor of every left on the exhausted search tree is
  // inside the set) — no future augmenting path can enter it, so its
  // matched pairs are final. Retiring them NOW, not at the next window
  // prune, is what keeps overloaded (saturated) streams windowed: without
  // it the saturated region stays reachable from the live window and every
  // failed search rescans it. The lefts are recycled immediately; the dead
  // slots stay interned (skipped by every later search) until their round
  // leaves the window.
  for (const std::int32_t s : visited_) {
    SlotNode& node = slots_[static_cast<std::size_t>(s)];
    node.dead = true;
    const std::int32_t left = node.match;
    node.match = -1;
    ++retired_matched_;
    --live_matched_;
    LeftNode& l = lefts_[static_cast<std::size_t>(left)];
    l.slots.clear();  // keep capacity: the slab is an arena
    l.match = -1;
    left_free_.push_back(left);
  }
  return false;
}

void WindowedPrefixOpt::advance_to(Round now) {
  if (live_slot_count_ == 0) return;
  ++stamp_;
  // Closure of the round >= now slots under
  //   slot -> matched left -> all of that left's slots.
  bfs_.clear();
  const std::int64_t units = static_cast<std::int64_t>(config_.n) *
                             static_cast<std::int64_t>(config_.max_capacity());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    SlotNode& s = slots_[i];
    if (s.key >= 0 && !s.dead && s.key / units >= now) {
      s.stamp = stamp_;
      bfs_.push_back(static_cast<std::int32_t>(i));
    }
  }
  for (std::size_t head = 0; head < bfs_.size(); ++head) {
    const std::int32_t left = slots_[static_cast<std::size_t>(bfs_[head])].match;
    if (left < 0) continue;
    for (const std::int32_t s : lefts_[static_cast<std::size_t>(left)].slots) {
      SlotNode& node = slots_[static_cast<std::size_t>(s)];
      if (node.stamp == stamp_) continue;
      node.stamp = stamp_;
      // Dead slots are stamped (a closure left still references this slab
      // entry, so its storage must not be recycled under it) but never
      // expanded — their matched edge was severed when the witness froze.
      if (!node.dead) bfs_.push_back(s);
    }
  }
  // Freeze and recycle everything the closure missed. All of it has round
  // < now (round >= now slots seeded the closure), so nothing recycled here
  // can be re-interned by a future arrival.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    SlotNode& s = slots_[i];
    if (s.key < 0 || s.stamp == stamp_) continue;
    if (s.dead) {
      // Already counted when the Hall witness froze. The storage is only
      // recycled once (a) no surviving left references it — it is unstamped,
      // and every left the sweep keeps had all its slots stamped above — and
      // (b) its round has left the window, so no future arrival can
      // re-intern the consumed key as free.
      if (s.key / units < now) free_slot(static_cast<std::int32_t>(i));
      continue;
    }
    const std::int32_t left = s.match;
    if (left >= 0) {
      ++retired_matched_;
      --live_matched_;
      LeftNode& l = lefts_[static_cast<std::size_t>(left)];
      l.slots.clear();  // keep capacity: the slab is an arena
      l.match = -1;
      left_free_.push_back(left);
    }
    free_slot(static_cast<std::int32_t>(i));
  }
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

std::size_t WindowedPrefixOpt::audit_count_free(
    const std::vector<std::int32_t>& free_list, std::size_t slab_size) {
  // Free lists must be duplicate-free and in-range to partition the slab.
  std::vector<bool> seen(slab_size, false);
  for (const std::int32_t idx : free_list) {
    REQSCHED_AUDIT_REQUIRE(idx >= 0 &&
                           static_cast<std::size_t>(idx) < slab_size);
    REQSCHED_AUDIT_REQUIRE_MSG(!seen[static_cast<std::size_t>(idx)],
                               "free list holds slab index " << idx
                                                             << " twice");
    seen[static_cast<std::size_t>(idx)] = true;
  }
  return free_list.size();
}

void WindowedPrefixOpt::audit_check() const {
  // Interning map is exact: every entry resolves to a live slab slot that
  // holds its key, and every live slab slot is interned — so the map size
  // re-derives live_slot_count_.
  REQSCHED_AUDIT_REQUIRE_MSG(
      static_cast<std::int64_t>(slot_index_.size()) == live_slot_count_,
      "live_slot_count_ " << live_slot_count_ << " vs " << slot_index_.size()
                          << " interned keys");
  // Cold loops below: audit_check() only runs from mutators under
  // REQSCHED_AUDIT_ENABLED (or directly from tests).
  for (const auto& [key, slot] : slot_index_) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE(slot >= 0 &&
                           static_cast<std::size_t>(slot) < slots_.size());
    REQSCHED_AUDIT_REQUIRE_MSG(
        slots_[static_cast<std::size_t>(slot)].key == key,
        "slot_index_[" << key << "] points at slab slot " << slot
                       << " holding key "
                       << slots_[static_cast<std::size_t>(slot)].key);
  }

  // Matching validity, slot side: matched slots point at lefts that point
  // back AND lie inside that left's fixed adjacency; dead (frozen-witness)
  // slots are never matched; recycled slots carry no state.
  std::int64_t matched_slots = 0;
  std::int64_t live_slots = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const SlotNode& s = slots_[i];
    if (s.key < 0) {
      REQSCHED_AUDIT_REQUIRE_MSG(s.match < 0,
                                 "recycled slab slot " << i
                                                       << " is still matched");
      continue;
    }
    ++live_slots;
    REQSCHED_AUDIT_REQUIRE_MSG(
        slot_index_.count(s.key) != 0 &&
            slot_index_.at(s.key) == static_cast<std::int32_t>(i),
        "slab slot " << i << " holds key " << s.key
                     << " that the interning map does not own");
    if (s.dead) {
      REQSCHED_AUDIT_REQUIRE_MSG(
          s.match < 0, "dead slot " << i << " (key " << s.key
                                    << ") kept its matched edge");
      continue;
    }
    if (s.match < 0) continue;
    ++matched_slots;
    REQSCHED_AUDIT_REQUIRE(static_cast<std::size_t>(s.match) < lefts_.size());
    const LeftNode& l = lefts_[static_cast<std::size_t>(s.match)];
    REQSCHED_AUDIT_REQUIRE_MSG(
        l.match == static_cast<std::int32_t>(i),
        "slot " << i << " matched to left " << s.match
                << " whose match is slot " << l.match);
    REQSCHED_AUDIT_REQUIRE_MSG(
        std::find(l.slots.begin(), l.slots.end(),
                  static_cast<std::int32_t>(i)) != l.slots.end(),
        "matched slot " << i << " is outside left " << s.match
                        << "'s adjacency");
  }
  REQSCHED_AUDIT_REQUIRE_MSG(live_slots == live_slot_count_,
                             "live_slot_count_ " << live_slot_count_ << " vs "
                                                 << live_slots
                                                 << " live slab slots");
  REQSCHED_AUDIT_REQUIRE_MSG(matched_slots == live_matched_,
                             "live_matched_ " << live_matched_ << " vs "
                                              << matched_slots
                                              << " matched slots");
  REQSCHED_AUDIT_REQUIRE(peak_live_slots_ >= live_slot_count_);

  // Matching validity, left side: only successful augmentations store a
  // left, so every non-recycled left is matched, with a mutual pointer into
  // its own adjacency; the free list plus the matched lefts partition the
  // slab.
  std::int64_t matched_lefts = 0;
  for (std::size_t i = 0; i < lefts_.size(); ++i) {
    const LeftNode& l = lefts_[i];
    if (l.match < 0) continue;
    ++matched_lefts;
    REQSCHED_AUDIT_REQUIRE(static_cast<std::size_t>(l.match) < slots_.size());
    const SlotNode& s = slots_[static_cast<std::size_t>(l.match)];
    REQSCHED_AUDIT_REQUIRE_MSG(
        s.match == static_cast<std::int32_t>(i) && !s.dead && s.key >= 0,
        "left " << i << " matched to slot " << l.match
                << " that does not match it back");
  }
  REQSCHED_AUDIT_REQUIRE_MSG(matched_lefts == live_matched_,
                             "live_matched_ " << live_matched_ << " vs "
                                              << matched_lefts
                                              << " matched lefts");
  const std::size_t free_lefts = audit_count_free(left_free_, lefts_.size());
  REQSCHED_AUDIT_REQUIRE_MSG(
      static_cast<std::size_t>(matched_lefts) + free_lefts == lefts_.size(),
      "left slab leak: " << lefts_.size() << " slots, " << matched_lefts
                         << " matched + " << free_lefts << " free");
  for (const std::int32_t idx : left_free_) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE_MSG(
        lefts_[static_cast<std::size_t>(idx)].match < 0,
        "free-listed left " << idx << " is still matched");
  }
  const std::size_t free_slots = audit_count_free(slot_free_, slots_.size());
  REQSCHED_AUDIT_REQUIRE_MSG(
      static_cast<std::size_t>(live_slots) + free_slots == slots_.size(),
      "slot slab leak: " << slots_.size() << " slots, " << live_slots
                         << " live + " << free_slots << " free");
  for (const std::int32_t idx : slot_free_) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE_MSG(
        slots_[static_cast<std::size_t>(idx)].key < 0,
        "free-listed slot " << idx << " still holds a key");
  }

  // Counters: the retired total never shrinks below zero and the reported
  // optimum is their sum by construction.
  REQSCHED_AUDIT_REQUIRE(retired_matched_ >= 0 && live_matched_ >= 0);
  REQSCHED_AUDIT_REQUIRE(retired_matched_ + live_matched_ <= requests_seen_);
}

std::size_t WindowedPrefixOpt::approx_bytes() const {
  std::size_t bytes = slots_.capacity() * sizeof(SlotNode) +
                      slot_free_.capacity() * sizeof(std::int32_t) +
                      left_free_.capacity() * sizeof(std::int32_t) +
                      lefts_.capacity() * sizeof(LeftNode) +
                      slot_index_.size() *
                          (sizeof(std::int64_t) + sizeof(std::int32_t) +
                           2 * sizeof(void*)) +
                      root_slots_.capacity() * sizeof(std::int32_t) +
                      stack_.capacity() * sizeof(Frame) +
                      bfs_.capacity() * sizeof(std::int32_t);
  for (const LeftNode& l : lefts_) {
    bytes += l.slots.capacity() * sizeof(std::int32_t);
  }
  return bytes;
}

}  // namespace reqsched
