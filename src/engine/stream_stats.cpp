#include "engine/stream_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <utility>

namespace reqsched {

// ---------------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch(std::int32_t capacity) : capacity_(capacity) {
  REQSCHED_CHECK_MSG(capacity_ >= 8,
                     "sketch capacity must be >= 8, got " << capacity_);
}

std::size_t QuantileSketch::level_cap(std::size_t level) const {
  // Geometric decay keeps total memory O(capacity); the floor keeps deep
  // levels from thrashing (a 2-item level would compact on every other add).
  const std::size_t decayed =
      static_cast<std::size_t>(capacity_) >> std::min<std::size_t>(level, 20);
  return std::max<std::size_t>(decayed, 32);
}

void QuantileSketch::add(double value) {
  REQSCHED_CHECK_MSG(std::isfinite(value), "sketch values must be finite");
  if (levels_.empty()) {
    levels_.emplace_back();
    parities_.push_back(0);
  }
  levels_[0].push_back(value);
  ++count_;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].size() > level_cap(i)) compact_level(i);
  }
}

void QuantileSketch::compact_level(std::size_t level) {
  if (level + 1 == levels_.size()) {
    levels_.emplace_back();
    parities_.push_back(0);
  }
  std::vector<double>& buf = levels_[level];
  std::sort(buf.begin(), buf.end());
  // Keep every other element (each survivor doubles in weight at the next
  // level). The starting parity alternates per compaction so neither the
  // even nor the odd ranks are systematically favored — the classic
  // deterministic-KLL trick that bounds rank drift without randomness.
  const std::size_t start = parities_[level];
  parities_[level] ^= 1;
  for (std::size_t j = start; j < buf.size(); j += 2) {
    levels_[level + 1].push_back(buf[j]);
  }
  levels_[level].clear();
  exact_ = false;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  REQSCHED_CHECK_MSG(capacity_ == other.capacity_,
                     "merging sketches with different capacities ("
                         << capacity_ << " vs " << other.capacity_ << ")");
  while (levels_.size() < other.levels_.size()) {
    levels_.emplace_back();
    parities_.push_back(0);
  }
  for (std::size_t i = 0; i < other.levels_.size(); ++i) {
    levels_[i].insert(levels_[i].end(), other.levels_[i].begin(),
                      other.levels_[i].end());
  }
  count_ += other.count_;
  exact_ = exact_ && other.exact_;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].size() > level_cap(i)) compact_level(i);
  }
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Materialize the weighted multiset (frame-cadence cost, not per-event).
  std::vector<std::pair<double, std::int64_t>> items;
  std::int64_t total_weight = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const std::int64_t weight = std::int64_t{1} << i;
    for (double v : levels_[i]) {
      items.emplace_back(v, weight);
      total_weight += weight;
    }
  }
  if (items.empty()) return 0.0;
  std::sort(items.begin(), items.end());
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(total_weight))));
  std::int64_t seen = 0;
  for (const auto& [value, weight] : items) {
    seen += weight;
    if (seen >= target) return value;
  }
  return items.back().first;
}

void QuantileSketch::reset() {
  count_ = 0;
  exact_ = true;
  levels_.clear();
  parities_.clear();
}

std::size_t QuantileSketch::approx_bytes() const {
  std::size_t bytes = sizeof(*this) + parities_.capacity();
  for (const std::vector<double>& level : levels_) {
    bytes += level.capacity() * sizeof(double);
  }
  return bytes;
}

void QuantileSketch::export_state(std::vector<std::uint64_t>& out) const {
  out.push_back(static_cast<std::uint64_t>(capacity_));
  out.push_back(static_cast<std::uint64_t>(count_));
  out.push_back(exact_ ? 1 : 0);
  out.push_back(levels_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    out.push_back(parities_[i]);
    out.push_back(levels_[i].size());
    for (double v : levels_[i]) {
      out.push_back(std::bit_cast<std::uint64_t>(v));
    }
  }
}

void QuantileSketch::import_state(std::span<const std::uint64_t> words,
                                  std::size_t& cursor) {
  auto next = [&]() -> std::uint64_t {
    REQSCHED_CHECK_MSG(cursor < words.size(),
                       "truncated sketch state at word " << cursor);
    return words[cursor++];
  };
  const auto capacity = static_cast<std::int32_t>(next());
  REQSCHED_CHECK_MSG(capacity == capacity_,
                     "sketch state capacity mismatch: expected "
                         << capacity_ << ", got " << capacity);
  reset();
  count_ = static_cast<std::int64_t>(next());
  REQSCHED_CHECK_MSG(count_ >= 0, "negative sketch count");
  const std::uint64_t exact_word = next();
  REQSCHED_CHECK_MSG(exact_word <= 1, "corrupt sketch exact flag");
  exact_ = exact_word == 1;
  const std::uint64_t nlevels = next();
  REQSCHED_CHECK_MSG(nlevels <= 64, "implausible sketch level count");
  for (std::uint64_t i = 0; i < nlevels; ++i) {
    const std::uint64_t parity = next();
    REQSCHED_CHECK_MSG(parity <= 1, "corrupt sketch parity");
    const std::uint64_t size = next();
    REQSCHED_CHECK_MSG(size <= level_cap(i) + 1,
                       "sketch level " << i << " overflows its capacity");
    levels_.emplace_back();
    parities_.push_back(static_cast<std::uint8_t>(parity));
    levels_.back().reserve(size);
    for (std::uint64_t j = 0; j < size; ++j) {
      const double v = std::bit_cast<double>(next());
      REQSCHED_CHECK_MSG(std::isfinite(v), "non-finite sketch value");
      levels_.back().push_back(v);
    }
  }
}

// ---------------------------------------------------------------------------
// StatsFrame

std::string to_jsonl(const StatsFrame& f) {
  std::ostringstream os;
  os << "{\"frame\":1,\"shard\":" << f.shard << ",\"round\":" << f.round
     << ",\"window\":" << f.window << ",\"window_rounds\":" << f.window_rounds
     << ",\"injected\":" << f.injected << ",\"fulfilled\":" << f.fulfilled
     << ",\"expired\":" << f.expired << ",\"pending\":" << f.pending
     << ",\"fulfilled_fraction\":" << f.fulfilled_fraction
     << ",\"loss_rate\":" << f.loss_rate << ",\"w_injected\":" << f.w_injected
     << ",\"w_fulfilled\":" << f.w_fulfilled << ",\"w_expired\":" << f.w_expired
     << ",\"w_fulfilled_fraction\":" << f.w_fulfilled_fraction
     << ",\"w_loss_rate\":" << f.w_loss_rate
     << ",\"tardiness_p50\":" << f.tardiness_p50
     << ",\"tardiness_p90\":" << f.tardiness_p90
     << ",\"tardiness_p99\":" << f.tardiness_p99
     << ",\"cum_tardiness_p50\":" << f.cum_tardiness_p50
     << ",\"cum_tardiness_p99\":" << f.cum_tardiness_p99 << '}';
  return os.str();
}

// ---------------------------------------------------------------------------
// StreamStats

namespace {

double safe_fraction(std::int64_t numer, std::int64_t denom) {
  return denom == 0 ? 0.0
                    : static_cast<double>(numer) / static_cast<double>(denom);
}

}  // namespace

void StreamStats::reset(const StreamStatsOptions& options, std::int64_t shard) {
  REQSCHED_CHECK_MSG(options.window >= 1,
                     "stats window must be >= 1, got " << options.window);
  REQSCHED_CHECK_MSG(options.buckets >= 1 && options.buckets <= 4096,
                     "stats buckets must be in [1, 4096], got "
                         << options.buckets);
  options_ = options;
  shard_ = shard;
  active_ = true;
  round_ = 0;
  injected_ = fulfilled_ = expired_ = 0;
  ring_.assign(static_cast<std::size_t>(options_.buckets), Bucket{});
  cur_ = 0;
  cum_sketch_ = QuantileSketch(options_.sketch_capacity);
  pane_cur_ = QuantileSketch(options_.sketch_capacity);
  pane_prev_ = QuantileSketch(options_.sketch_capacity);
}

void StreamStats::on_inject(std::int64_t count) {
  injected_ += count;
  ring_[cur_].injected += count;
}

void StreamStats::on_fulfill(Round tardiness) {
  REQSCHED_CHECK_MSG(tardiness >= 0, "negative tardiness " << tardiness);
  ++fulfilled_;
  ++ring_[cur_].fulfilled;
  const auto t = static_cast<double>(tardiness);
  cum_sketch_.add(t);
  pane_cur_.add(t);
}

void StreamStats::on_expire() {
  ++expired_;
  ++ring_[cur_].expired;
}

void StreamStats::end_round() {
  ++round_;
  if (round_ % bucket_width() == 0) {
    cur_ = (cur_ + 1) % ring_.size();
    ring_[cur_] = Bucket{};
  }
  if (round_ % options_.window == 0) {
    // Two-pane rotation: the windowed sketch is prev+cur, covering the last
    // window..2*window rounds. Swap-then-reset reuses the buffers.
    std::swap(pane_prev_, pane_cur_);
    pane_cur_.reset();
  }
}

StatsFrame StreamStats::frame(std::int64_t pending) const {
  StatsFrame f;
  f.shard = shard_;
  f.round = round_;
  f.window = options_.window;
  const Round partial = round_ % bucket_width();
  f.window_rounds = std::min<std::int64_t>(
      round_,
      static_cast<std::int64_t>(ring_.size() - 1) * bucket_width() + partial);
  f.injected = injected_;
  f.fulfilled = fulfilled_;
  f.expired = expired_;
  f.pending = pending;
  f.fulfilled_fraction = safe_fraction(fulfilled_, injected_);
  f.loss_rate = safe_fraction(expired_, injected_);
  for (const Bucket& b : ring_) {
    f.w_injected += b.injected;
    f.w_fulfilled += b.fulfilled;
    f.w_expired += b.expired;
  }
  f.w_fulfilled_fraction = safe_fraction(f.w_fulfilled, f.w_injected);
  f.w_loss_rate = safe_fraction(f.w_expired, f.w_injected);
  QuantileSketch windowed = pane_prev_;
  windowed.merge(pane_cur_);
  f.tardiness_p50 = windowed.quantile(0.50);
  f.tardiness_p90 = windowed.quantile(0.90);
  f.tardiness_p99 = windowed.quantile(0.99);
  f.cum_tardiness_p50 = cum_sketch_.quantile(0.50);
  f.cum_tardiness_p99 = cum_sketch_.quantile(0.99);
  return f;
}

void StreamStats::merge(const StreamStats& other) {
  REQSCHED_CHECK_MSG(active_ && other.active_,
                     "merging inactive stream stats");
  REQSCHED_CHECK_MSG(options_ == other.options_,
                     "merging stream stats with different options");
  injected_ += other.injected_;
  fulfilled_ += other.fulfilled_;
  expired_ += other.expired_;
  round_ = std::max(round_, other.round_);
  // Align buckets by age: j rotations back on each side map to the same
  // window offset (shards rotate on their own round counters, which advance
  // in lockstep under ShardedRunner).
  const std::size_t n = ring_.size();
  for (std::size_t j = 0; j < n; ++j) {
    const Bucket& src = other.ring_[(other.cur_ + n - j) % n];
    Bucket& dst = ring_[(cur_ + n - j) % n];
    dst.injected += src.injected;
    dst.fulfilled += src.fulfilled;
    dst.expired += src.expired;
  }
  cum_sketch_.merge(other.cum_sketch_);
  pane_cur_.merge(other.pane_cur_);
  pane_prev_.merge(other.pane_prev_);
}

std::size_t StreamStats::approx_bytes() const {
  return sizeof(*this) + ring_.capacity() * sizeof(Bucket) +
         cum_sketch_.approx_bytes() + pane_cur_.approx_bytes() +
         pane_prev_.approx_bytes();
}

void StreamStats::export_state(std::vector<std::uint64_t>& out) const {
  out.push_back(static_cast<std::uint64_t>(shard_));
  out.push_back(static_cast<std::uint64_t>(round_));
  out.push_back(static_cast<std::uint64_t>(injected_));
  out.push_back(static_cast<std::uint64_t>(fulfilled_));
  out.push_back(static_cast<std::uint64_t>(expired_));
  out.push_back(cur_);
  out.push_back(ring_.size());
  for (const Bucket& b : ring_) {
    out.push_back(static_cast<std::uint64_t>(b.injected));
    out.push_back(static_cast<std::uint64_t>(b.fulfilled));
    out.push_back(static_cast<std::uint64_t>(b.expired));
  }
  cum_sketch_.export_state(out);
  pane_cur_.export_state(out);
  pane_prev_.export_state(out);
}

void StreamStats::import_state(std::span<const std::uint64_t> words) {
  REQSCHED_CHECK_MSG(active_,
                     "import_state requires reset() with options first");
  std::size_t cursor = 0;
  auto next = [&]() -> std::uint64_t {
    REQSCHED_CHECK_MSG(cursor < words.size(),
                       "truncated stream-stats state at word " << cursor);
    return words[cursor++];
  };
  shard_ = static_cast<std::int64_t>(next());
  round_ = static_cast<Round>(next());
  injected_ = static_cast<std::int64_t>(next());
  fulfilled_ = static_cast<std::int64_t>(next());
  expired_ = static_cast<std::int64_t>(next());
  REQSCHED_CHECK_MSG(round_ >= 0 && injected_ >= 0 && fulfilled_ >= 0 &&
                         expired_ >= 0,
                     "negative stream-stats counter");
  cur_ = next();
  const std::uint64_t nbuckets = next();
  REQSCHED_CHECK_MSG(nbuckets == ring_.size(),
                     "stream-stats bucket count mismatch: expected "
                         << ring_.size() << ", got " << nbuckets);
  REQSCHED_CHECK_MSG(cur_ < ring_.size(), "stream-stats cursor out of range");
  for (Bucket& b : ring_) {
    b.injected = static_cast<std::int64_t>(next());
    b.fulfilled = static_cast<std::int64_t>(next());
    b.expired = static_cast<std::int64_t>(next());
    REQSCHED_CHECK_MSG(b.injected >= 0 && b.fulfilled >= 0 && b.expired >= 0,
                       "negative stream-stats bucket counter");
  }
  cum_sketch_.import_state(words, cursor);
  pane_cur_.import_state(words, cursor);
  pane_prev_.import_state(words, cursor);
  REQSCHED_CHECK_MSG(cursor == words.size(),
                     "trailing stream-stats state words");
}

}  // namespace reqsched
