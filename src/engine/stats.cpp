#include "engine/stats.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace reqsched {

double competitive_ratio(std::int64_t optimum, std::int64_t fulfilled) {
  if (fulfilled == 0) {
    return optimum == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(optimum) / static_cast<double>(fulfilled);
}

namespace {

void append_number(std::ostringstream& os, const char* key, double value) {
  os << ",\"" << key << "\":";
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "\"inf\"";
  }
}

}  // namespace

std::string to_jsonl(const StatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"shard\":" << s.shard << ",\"round\":" << s.round
     << ",\"injected\":" << s.injected << ",\"fulfilled\":" << s.fulfilled
     << ",\"expired\":" << s.expired << ",\"pending\":" << s.pending
     << ",\"peak_pending\":" << s.peak_pending;
  if (s.live_opt >= 0) {
    os << ",\"live_opt\":" << s.live_opt;
    append_number(os, "live_ratio", s.live_ratio);
  }
  append_number(os, "fulfilled_fraction", s.fulfilled_fraction);
  append_number(os, "rounds_per_sec", s.rounds_per_sec);
  append_number(os, "requests_per_sec", s.requests_per_sec);
  append_number(os, "elapsed_sec", s.elapsed_sec);
  os << ",\"fast_path_admitted\":" << s.fast_path_admitted
     << ",\"fast_path_fallbacks\":" << s.fast_path_fallbacks
     << ",\"resident_bytes\":" << s.resident_bytes << '}';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& s) {
  os << "shard " << s.shard << " round " << s.round << ": " << s.injected
     << " injected, " << s.fulfilled << " fulfilled, " << s.pending
     << " pending";
  if (s.live_opt >= 0) os << ", live ratio " << s.live_ratio;
  return os << ", " << s.rounds_per_sec << " rounds/s, " << s.resident_bytes
            << " resident bytes";
}

}  // namespace reqsched
