#include "engine/stats.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace reqsched {

double competitive_ratio(std::int64_t optimum, std::int64_t fulfilled) {
  if (fulfilled == 0) {
    return optimum == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(optimum) / static_cast<double>(fulfilled);
}

namespace {

void append_number(std::ostringstream& os, const char* key, double value) {
  os << ",\"" << key << "\":";
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "\"inf\"";
  }
}

}  // namespace

std::string to_jsonl(const StatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"shard\":" << s.shard << ",\"round\":" << s.round
     << ",\"injected\":" << s.injected << ",\"fulfilled\":" << s.fulfilled
     << ",\"expired\":" << s.expired << ",\"pending\":" << s.pending
     << ",\"peak_pending\":" << s.peak_pending;
  if (s.live_opt >= 0) {
    os << ",\"live_opt\":" << s.live_opt;
    append_number(os, "live_ratio", s.live_ratio);
  }
  append_number(os, "fulfilled_fraction", s.fulfilled_fraction);
  append_number(os, "rounds_per_sec", s.rounds_per_sec);
  append_number(os, "requests_per_sec", s.requests_per_sec);
  append_number(os, "elapsed_sec", s.elapsed_sec);
  os << ",\"fast_path_admitted\":" << s.fast_path_admitted
     << ",\"fast_path_fallbacks\":" << s.fast_path_fallbacks
     << ",\"resident_bytes\":" << s.resident_bytes << '}';
  return os.str();
}

JsonlSink::JsonlSink(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  REQSCHED_CHECK_MSG(fd_ >= 0, "cannot open JSONL sink " << path << ": "
                                                         << std::strerror(errno));
}

JsonlSink::~JsonlSink() {
  if (fd_ >= 0) ::close(fd_);
}

void JsonlSink::write_line(const std::string& line) {
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf.push_back('\n');
  // One write(2) per record: with O_APPEND the kernel appends the whole
  // buffer atomically, so a crash between records can only lose records,
  // never tear one.
  std::size_t written = 0;
  while (written < buf.size()) {
    const ssize_t rc =
        ::write(fd_, buf.data() + written, buf.size() - written);
    REQSCHED_CHECK_MSG(rc >= 0, "JSONL sink write failed: "
                                    << std::strerror(errno));
    written += static_cast<std::size_t>(rc);
  }
}

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& s) {
  os << "shard " << s.shard << " round " << s.round << ": " << s.injected
     << " injected, " << s.fulfilled << " fulfilled, " << s.pending
     << " pending";
  if (s.live_opt >= 0) os << ", live ratio " << s.live_ratio;
  return os << ", " << s.rounds_per_sec << " rounds/s, " << s.resident_bytes
            << " resident bytes";
}

}  // namespace reqsched
