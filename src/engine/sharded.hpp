// ShardedRunner: many independent streams across the thread pool.
//
// A "shard" is one self-contained stream — its own workload (typically the
// same family re-seeded per shard), its own strategy instance, its own
// StreamingEngine. Shards never share mutable state, so the runner is
// embarrassingly parallel: parallel_for over the shard index, with one
// RequestPool/WindowedPrefixOpt arena pair per pool worker (the
// SolverScratch-per-worker idiom of run_sweep) so a worker that chews
// through many shards stops allocating. Per-shard results are therefore
// deterministic: independent of the thread count and of shard scheduling.
//
// Observability goes through one serialized JSONL sink: every engine
// snapshot (and a final snapshot per shard) is rendered to a line outside
// the lock, then appended either through the lock-free JsonlSink (one
// atomic O_APPEND write per line) or under an annotated Mutex for the
// ostream fallback — see docs/architecture.md, "Threading model & lock
// discipline".
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "core/workload.hpp"
#include "engine/stats.hpp"
#include "engine/streaming.hpp"
#include "util/thread_pool.hpp"

namespace reqsched {

/// Builds the workload for one shard. Shard indices are [0, shards).
using ShardWorkloadFactory =
    std::function<std::unique_ptr<IWorkload>(std::int64_t shard)>;
/// Builds the strategy instance for one shard.
using ShardStrategyFactory =
    std::function<std::unique_ptr<IStrategy>(std::int64_t shard)>;

struct ShardedRunOptions {
  std::int64_t shards = 1;
  /// Worker threads; 0 = hardware concurrency. Ignored when an external
  /// pool is passed to run_sharded.
  std::size_t threads = 0;
  /// Per-engine options template. `shard` and the snapshot sink are
  /// overwritten per shard; arenas are overwritten with the per-worker
  /// pair. Defaults to bounded-memory streaming.
  EngineOptions engine = streaming_options();
  /// Runaway guard per shard.
  std::int64_t max_rounds = 1'000'000;
  /// Serialized JSONL sink for periodic + final snapshots (nullptr = none).
  /// Stream writes are mutex-serialized but buffered by the stream — a crash
  /// can tear the last line. Prefer `jsonl_path` for crash-safe output.
  std::ostream* jsonl = nullptr;
  /// When non-empty, snapshots append to this file through a JsonlSink: each
  /// record is one atomic O_APPEND write of a complete line, so the file
  /// never holds a torn record even if the process dies mid-run. Takes
  /// precedence over `jsonl`.
  std::string jsonl_path;
  /// Rendered once per shard and written as that shard's first JSONL record
  /// (the run manifest: strategy, seeds, engine options, provenance). Only
  /// used when a JSONL sink is active.
  std::function<std::string(std::int64_t shard)> manifest_line;
  /// Bound into each shard's EngineOptions::checkpoint_sink (fired every
  /// `engine.checkpoint_every` rounds at the round boundary). The runner
  /// never sees checkpoint bytes — the caller binds the snapshot layer here,
  /// typically writing shard-<k>.ckpt via CheckpointManager::save_file's
  /// temp+rename (each shard gets its own path, so shards stay independent).
  std::function<void(const StreamingEngine& engine, std::int64_t shard)>
      checkpoint_sink;
};

struct ShardResult {
  std::int64_t shard = 0;
  Metrics metrics{};
  StatsSnapshot last_snapshot{};
  /// Copy of the shard's streaming-statistics accumulator at the end of the
  /// run (engine.track_stream_stats only; inactive otherwise). Carried as a
  /// value so the cross-shard merge happens after the engines are gone.
  StreamStats stream_stats{};
  /// Non-empty when the shard's run threw (the exception message); its
  /// metrics/snapshot are whatever had accumulated and must not be trusted.
  std::string error;

  bool ok() const { return error.empty(); }
};

struct ShardedResult {
  std::vector<ShardResult> shards;
  /// Sum over successful shards.
  Metrics total{};
  std::int64_t failed = 0;
  /// Max over successful shards of the per-shard peak pending count.
  std::int64_t peak_pending = 0;
  /// Cross-shard merge of the per-shard accumulators (bucket-by-age counter
  /// sums + sketch merges), labeled shard -1; inactive unless
  /// engine.track_stream_stats was on and at least one shard succeeded. When
  /// a JSONL sink is active its final frame is also appended as a shard -1
  /// record.
  StreamStats merged_stats{};

  bool all_ok() const { return failed == 0; }
};

/// Runs `options.shards` independent streams and aggregates. Uses `pool`
/// when given (shared with the caller, e.g. the sweep's), otherwise spins
/// up a private pool with `options.threads` workers.
ShardedResult run_sharded(const ShardedRunOptions& options,
                          const ShardWorkloadFactory& make_workload,
                          const ShardStrategyFactory& make_strategy,
                          ThreadPool* pool = nullptr);

}  // namespace reqsched
