// The streaming runtime: the simulator round loop, factored out so memory
// is bounded by the active deadline window instead of the run length.
//
// StreamingEngine owns the canonical round loop — expire, inject, strategy,
// execute — that `Simulator` used to implement directly. `Simulator` is now
// a thin facade over an engine with history retention on (the classic
// behaviour: full Trace, per-request status arrays, recorded fulfillment
// slots — bit-identical to the pre-engine implementation). Streaming runs
// turn retention off: requests live in a recycling RequestPool
// (engine/request_pool.hpp), the trace is not recorded, and the exact
// prefix optimum — when requested — is tracked by the closure-pruned
// WindowedPrefixOpt, so a multi-million-request stream runs in O(n·d +
// arrivals-per-round · d) resident state.
//
// Strategies and workloads are unchanged: they still see `Simulator&`. The
// facade forwards every query to the engine, and in streaming mode the
// queryable id range narrows to the active window (ids of requests that
// retired more than d rounds ago are recycled; querying them is a contract
// violation, which is exactly the "no O(history) state in strategies"
// discipline the paper's strategies already satisfy).
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "core/strategy.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"
#include "engine/request_pool.hpp"
#include "engine/stats.hpp"
#include "engine/stream_stats.hpp"
#include "engine/windowed_opt.hpp"
#include "matching/delta_window.hpp"

namespace reqsched {

class Simulator;
class StreamingEngine;

/// Sink invoked when a request leaves the system: its final record, the
/// terminal status, and the execution slot (kNoSlot for expiries). This is
/// the streaming replacement for post-run scans over the status arrays.
using RetireSink =
    std::function<void(const Request&, RequestStatus, SlotRef)>;

/// Result of the engine's batch-admission stage for the current round,
/// readable by the strategy during on_round.
enum class AdmissionOutcome : std::uint8_t {
  /// Fast path off, strategy did not opt in, or no arrivals this round —
  /// the strategy handles the batch itself.
  kInactive,
  /// Every arrival was uncontended: the bookable ones are already booked
  /// (exactly the matching Kuhn would have produced); the strategy must skip
  /// its own new-arrival matcher this round.
  kAdmitted,
  /// A contended arrival was detected: all fast-path bookings were unwound
  /// and the batch is untouched — the strategy runs its matcher as usual.
  kContended,
};

struct EngineOptions {
  /// Keep every request, its status, and its fulfillment slot for the whole
  /// run (legacy Simulator behaviour; required by online_matching() and
  /// fulfilled_slot()). Off = recycle retired requests after d rounds.
  bool retain_history = true;
  /// Record the realized arrival sequence as a Trace (required by
  /// trace()-consuming strategies/adversaries, e.g. scripted replays and
  /// the planned lower-bound instances).
  bool record_trace = true;
  /// Batched admission fast path: when the strategy opts in
  /// (IStrategy::wants_admission_fast_path) and the window problem is
  /// active, the engine books uncontended arrivals directly from the
  /// per-resource round masks — O(1) per request — and only punts contended
  /// batches to the strategy's matcher. Off forces the matcher-only path
  /// (the differential suites compare the two).
  bool admission_fast_path = true;
  /// Maintain the exact prefix optimum (WindowedPrefixOpt) and expose
  /// live_optimum()/live_ratio().
  bool track_live_opt = false;
  /// Rounds between closure prunes of the OPT tracker (any cadence is
  /// sound; pruning is what keeps its state windowed).
  Round opt_prune_every = 16;
  /// Emit a StatsSnapshot to `snapshot_sink` every this many rounds
  /// (0 = never).
  ///
  /// Sink thread discipline: one engine runs on one thread, so every sink
  /// below (snapshot/retire/frame/checkpoint) is invoked from that thread
  /// only. But ShardedRunner binds *the same callable* into many engines on
  /// many pool workers, so a sink that touches shared state must be
  /// thread-safe itself — either lock-free like JsonlSink's O_APPEND
  /// appends, per-shard like the checkpoint files, or locked through an
  /// annotated Mutex (util/mutex.hpp) like the ostream fallback writer in
  /// sharded.cpp. Never a bare std::mutex: the `thread-guards` lint rule
  /// and clang's -Wthread-safety analysis gate the discipline.
  Round snapshot_every = 0;
  /// Shard label stamped into snapshots (ShardedRunner sets it).
  std::int64_t shard = 0;
  std::function<void(const StatsSnapshot&)> snapshot_sink;
  RetireSink retire_sink;
  /// Streaming statistics (engine/stream_stats.hpp): O(1)-memory windowed
  /// counters and tardiness sketches fed by the round loop. Off by default —
  /// finite-trace runs keep the exact whole-trace Metrics as their only
  /// instrument; long-horizon stationary runs turn this on.
  bool track_stream_stats = false;
  StreamStatsOptions stream_stats;
  /// Emit a StatsFrame to `frame_sink` every this many rounds (0 = never;
  /// needs track_stream_stats). Frames carry no wall-clock fields, so a
  /// checkpoint/restore run emits byte-identical frames to an uninterrupted
  /// one.
  Round frame_every = 0;
  std::function<void(const StatsFrame&)> frame_sink;
  /// Invoke `checkpoint_sink` every this many rounds (0 = never). The engine
  /// fires it at the round boundary — after execute/advance, outside the
  /// strategy, with no admission batch open — the only point where the full
  /// engine state is serializable. The sink itself lives above the engine
  /// (src/snapshot owns the byte format; the CLI and ShardedRunner bind it).
  Round checkpoint_every = 0;
  std::function<void(const StreamingEngine&)> checkpoint_sink;
  /// Optional external arenas (must outlive the engine). The engine resets
  /// them on construction but reuses their capacity — a worker thread that
  /// runs many shards through the same arenas reaches a zero-allocation
  /// steady state, the SolverScratch-per-worker idiom of run_sweep.
  RequestPool* pool_arena = nullptr;
  WindowedPrefixOpt* opt_arena = nullptr;
  DeltaWindowProblem* window_arena = nullptr;
};

/// Convenience preset: bounded-memory streaming (no retention, no trace).
inline EngineOptions streaming_options() {
  EngineOptions options;
  options.retain_history = false;
  options.record_trace = false;
  return options;
}

class StreamingEngine {
 public:
  /// `workload`, `strategy`, and `facade` must outlive the engine. The
  /// facade is the `Simulator&` handed to the strategy and workload each
  /// round (strategies keep their published interface).
  StreamingEngine(IWorkload& workload, IStrategy& strategy,
                  EngineOptions options, Simulator& facade);

  /// Runs rounds until the workload is exhausted and all requests resolved,
  /// then asserts request conservation. `max_rounds` is a runaway guard
  /// (violated => ContractViolation).
  const Metrics& run(std::int64_t max_rounds = 1'000'000);

  /// Executes a single round; returns false when the run is complete.
  bool step();

  bool finished() const;

  // ---- read API ----

  const ProblemConfig& config() const { return config_; }
  Round now() const { return schedule_.window_begin(); }
  const EngineOptions& options() const { return options_; }

  const Trace& trace() const {
    REQSCHED_REQUIRE_MSG(options_.record_trace,
                         "trace recording is off for this run");
    return trace_;
  }

  const Request& request(RequestId id) const { return pool_->request(id); }
  RequestStatus status(RequestId id) const { return pool_->status(id); }
  bool is_pending(RequestId id) const {
    return status(id) == RequestStatus::kPending;
  }

  std::span<const RequestId> injected_now() const { return injected_now_; }
  std::span<const RequestId> alive() const { return alive_; }

  const Schedule& schedule() const { return schedule_; }
  bool is_scheduled(RequestId id) const { return schedule_.is_scheduled(id); }
  SlotRef slot_of(RequestId id) const { return schedule_.slot_of(id); }

  SlotRef fulfilled_slot(RequestId id) const {
    return pool_->fulfilled_slot(id);
  }

  /// The final online matching (retain mode only).
  std::vector<std::pair<RequestId, SlotRef>> online_matching() const;

  const Metrics& metrics() const { return metrics_; }
  const RequestPool& pool() const { return *pool_; }

  /// Exact OPT of the arrivals so far (track_live_opt only).
  std::int64_t live_optimum() const;
  /// competitive_ratio(live_optimum(), fulfilled so far).
  double live_ratio() const;
  const WindowedPrefixOpt& opt_tracker() const {
    REQSCHED_REQUIRE_MSG(options_.track_live_opt,
                         "live OPT tracking is off for this run");
    return *opt_;
  }

  /// True when the strategy asked for the delta-maintained window problem
  /// (IStrategy::wants_window_problem) and the engine is mirroring schedule
  /// edits into it.
  bool window_problem_active() const { return window_active_; }

  /// Outcome of this round's batch-admission stage (stable during on_round;
  /// strategies that opted into the fast path must skip their new-arrival
  /// matcher when it reports kAdmitted).
  AdmissionOutcome admission_outcome() const { return admission_outcome_; }

  /// Arrivals booked by the fast path this round (kAdmitted rounds only;
  /// valid during on_round).
  std::span<const RequestId> fast_path_booked() const { return fast_booked_; }

  /// Cumulative fast-path accounting: requests booked without the matcher,
  /// rounds fully admitted by the fast path, and rounds punted to the
  /// matcher after a contended probe.
  std::int64_t fast_path_admitted() const { return fast_admitted_; }
  std::int64_t fast_path_rounds() const { return fast_rounds_; }
  std::int64_t fast_path_fallbacks() const { return fast_fallbacks_; }

  /// The live window problem (window_problem_active() only). Strategies read
  /// it for problem construction; all mutation flows through the engine's
  /// assign/unassign/move so the mirror can never diverge.
  const DeltaWindowProblem& window_problem() const {
    REQSCHED_REQUIRE_MSG(window_active_,
                         "the strategy did not request a window problem");
    return *window_;
  }

  /// Builds a snapshot of the current state (also what the periodic
  /// snapshot_sink receives).
  StatsSnapshot snapshot() const;

  /// The streaming statistics accumulator (track_stream_stats only).
  const StreamStats& stream_stats() const {
    REQSCHED_REQUIRE_MSG(options_.track_stream_stats,
                         "stream-stats tracking is off for this run");
    return stream_stats_;
  }

  /// The current StatsFrame (track_stream_stats only; also what the
  /// periodic frame_sink receives).
  StatsFrame stats_frame() const {
    return stream_stats().frame(pool_->live_count());
  }

  /// Resident-set estimate across pool, schedule, OPT tracker, trace, and
  /// engine scratch.
  std::size_t approx_resident_bytes() const;

  /// Audit oracle: cross-structure agreement sweep — the alive set against
  /// the pool's live count and per-id statuses, every booked schedule slot
  /// against the alive set, and (when active) the delta-maintained window
  /// problem row-for-row and booking-for-booking against schedule state.
  /// O(n*d + alive). Throws ContractViolation on any disagreement. Runs
  /// after every round in REQSCHED_AUDIT builds; always compiled so tests
  /// can invoke it directly.
  void audit_check() const;

  // ---- write API (strategy only, during on_round) ----

  void assign(RequestId id, SlotRef slot);
  void unassign(RequestId id);
  void move(RequestId id, SlotRef slot);
  void note_reassignments(std::int64_t count);
  void record_wasted_execution(ResourceId resource);
  void record_communication(std::int64_t rounds, std::int64_t messages);

 private:
  friend struct AuditTestAccess;  ///< corruption hooks for tests/test_audit
  friend struct SnapshotAccess;   ///< checkpoint codec (src/snapshot)
  void expire_round_start();
  /// Stage 1 of the round's batched arrival handling: drains the workload's
  /// whole arrival batch into the pool/trace/OPT/window structures at once.
  void drain_arrivals();
  /// Stage 2, the admission splitter: probes the drained batch against the
  /// window's claim masks and either books every uncontended arrival
  /// (kAdmitted) or unwinds and leaves the batch to the matcher
  /// (kContended).
  void admit_batch();
  void execute();
  void retire_fulfilled(RequestId id, SlotRef slot);
  void retire_expired(RequestId id);

  ProblemConfig config_{};
  IWorkload& workload_;
  IStrategy& strategy_;
  EngineOptions options_;
  Simulator& facade_;

  RequestPool own_pool_;
  RequestPool* pool_ = nullptr;  ///< own_pool_ or options_.pool_arena
  Trace trace_;
  Schedule schedule_;
  WindowedPrefixOpt own_opt_;
  WindowedPrefixOpt* opt_ = nullptr;  ///< own_opt_ or options_.opt_arena
  DeltaWindowProblem own_window_;
  DeltaWindowProblem* window_ = nullptr;  ///< own_window_ or window_arena
  bool window_active_ = false;
  bool fast_path_active_ = false;
  /// Fast-path refinements declared by the strategy (see IStrategy):
  /// clamp admission probes to the current round, and/or only fast-admit
  /// rounds whose pre-batch backlog is fully booked.
  bool fast_current_round_only_ = false;
  bool fast_needs_empty_backlog_ = false;
  AdmissionOutcome admission_outcome_ = AdmissionOutcome::kInactive;
  std::vector<RequestId> fast_booked_;
  /// Claimed slot per fast_booked_ entry (same index), committed on
  /// kAdmitted only.
  std::vector<SlotRef> fast_slots_;
  std::int64_t fast_admitted_ = 0;
  std::int64_t fast_rounds_ = 0;
  std::int64_t fast_fallbacks_ = 0;
  std::vector<RequestId> alive_;
  std::vector<RequestId> injected_now_;
  std::vector<RequestSpec> spec_scratch_;  ///< per-round workload batch
  Metrics metrics_{};
  StreamStats stream_stats_;
  bool in_strategy_ = false;
  bool ran_any_round_ = false;
  std::optional<std::chrono::steady_clock::time_point> started_at_;
};

}  // namespace reqsched
