#include "engine/streaming.hpp"

#include <algorithm>
#include <unordered_set>

#include "engine/simulator.hpp"

namespace reqsched {

StreamingEngine::StreamingEngine(IWorkload& workload, IStrategy& strategy,
                                 EngineOptions options, Simulator& facade)
    : config_(workload.config()),
      workload_(workload),
      strategy_(strategy),
      options_(std::move(options)),
      facade_(facade),
      trace_(config_),
      schedule_(config_) {
  config_.validate();
  REQSCHED_REQUIRE_MSG(options_.opt_prune_every >= 1,
                       "OPT prune cadence must be at least one round");
  pool_ = options_.pool_arena != nullptr ? options_.pool_arena : &own_pool_;
  opt_ = options_.opt_arena != nullptr ? options_.opt_arena : &own_opt_;
  window_ =
      options_.window_arena != nullptr ? options_.window_arena : &own_window_;
  window_active_ = strategy_.wants_window_problem();
  REQSCHED_REQUIRE_MSG(
      !strategy_.wants_admission_fast_path() || window_active_,
      "wants_admission_fast_path requires wants_window_problem");
  fast_path_active_ = window_active_ && options_.admission_fast_path &&
                      strategy_.wants_admission_fast_path();
  fast_current_round_only_ = strategy_.admission_probe_current_round_only();
  fast_needs_empty_backlog_ = strategy_.admission_needs_empty_backlog();
  REQSCHED_REQUIRE_MSG(options_.frame_every == 0 || options_.track_stream_stats,
                       "frame emission requires track_stream_stats");
  if (options_.track_stream_stats) {
    stream_stats_.reset(options_.stream_stats, options_.shard);
  }
  pool_->reset(config_, options_.retain_history);
  if (options_.track_live_opt) opt_->reset(config_);
  if (window_active_) window_->reset(config_);
  workload_.reset();
  strategy_.reset(config_);
}

bool StreamingEngine::finished() const {
  return ran_any_round_ && alive_.empty() && workload_.exhausted(now());
}

const Metrics& StreamingEngine::run(std::int64_t max_rounds) {
  while (!finished()) {
    REQSCHED_CHECK_MSG(metrics_.rounds < max_rounds,
                       "simulation exceeded " << max_rounds << " rounds");
    step();
  }
  metrics_.check_conservation(pool_->live_count());
  return metrics_;
}

bool StreamingEngine::step() {
  if (finished()) return false;
  if (!started_at_) started_at_ = std::chrono::steady_clock::now();
  expire_round_start();
  // Only now is every request that arrived at rounds <= now - d provably
  // retired (a deadline of now - 1 expires in the sweep above), so this is
  // the earliest sound point to shrink the pool window.
  pool_->advance(now());
  drain_arrivals();
  admit_batch();

  in_strategy_ = true;
  strategy_.on_round(facade_);
  in_strategy_ = false;
  injected_now_.clear();
  fast_booked_.clear();
  fast_slots_.clear();

  execute();
  ++metrics_.rounds;
  ran_any_round_ = true;

  // Post-round housekeeping: now() has advanced past the executed row.
  if (options_.track_stream_stats) {
    stream_stats_.end_round();
    if (options_.frame_every > 0 && options_.frame_sink &&
        metrics_.rounds % options_.frame_every == 0) {
      options_.frame_sink(stream_stats_.frame(pool_->live_count()));
    }
  }
  if (options_.track_live_opt && metrics_.rounds % options_.opt_prune_every == 0) {
    opt_->advance_to(now());
  }
  if (options_.snapshot_every > 0 && options_.snapshot_sink &&
      metrics_.rounds % options_.snapshot_every == 0) {
    options_.snapshot_sink(snapshot());
  }
  // The round boundary is the only serializable point: no admission batch is
  // open, injected_now_/fast_booked_ are drained, and the strategy is not on
  // the stack — the checkpoint sink sees exactly the state the next step()
  // would start from.
  if (options_.checkpoint_every > 0 && options_.checkpoint_sink &&
      metrics_.rounds % options_.checkpoint_every == 0) {
    options_.checkpoint_sink(*this);
  }
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
  return true;
}

void StreamingEngine::audit_check() const {
  // Alive set vs. the pool: ids unique, inside the queryable window, still
  // pending, and exactly live_count() of them.
  std::unordered_set<RequestId> alive_set;
  alive_set.reserve(alive_.size());
  // Cold: audit_check() only runs once per round under
  // REQSCHED_AUDIT_ENABLED (or directly from tests).
  for (const RequestId id : alive_) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE_MSG(id >= pool_->window_base() &&
                                   id < pool_->next_id(),
                               "alive id r" << id
                                            << " is outside the pool window");
    REQSCHED_AUDIT_REQUIRE_MSG(alive_set.insert(id).second,
                               "alive set holds r" << id << " twice");
    REQSCHED_AUDIT_REQUIRE_MSG(pool_->status(id) == RequestStatus::kPending,
                               "alive r" << id << " is not pending");
  }
  REQSCHED_AUDIT_REQUIRE_MSG(
      static_cast<std::int64_t>(alive_.size()) == pool_->live_count(),
      "alive set size " << alive_.size() << " vs pool live count "
                        << pool_->live_count());

  // Request conservation, continuously (run() only asserts it at the end).
  REQSCHED_AUDIT_REQUIRE_MSG(
      metrics_.injected ==
          metrics_.fulfilled + metrics_.expired + pool_->live_count(),
      "conservation: " << metrics_.injected << " injected vs "
                       << metrics_.fulfilled << " fulfilled + "
                       << metrics_.expired << " expired + "
                       << pool_->live_count() << " pending");

  // Schedule vs. alive set: every request unit in the window belongs to a
  // pending alive request whose occupancy run covers that unit's round, and
  // the booked census (one per run start) matches.
  const Round t = now();
  std::int64_t booked = 0;
  for (Round round = t; round < t + config_.d; ++round) {
    for (ResourceId res = 0; res < config_.n; ++res) {
      const SlotRef slot{res, round};
      const std::int32_t cap = config_.capacity_of(res);
      for (std::int32_t u = 0; u < cap; ++u) {
        const RequestId id = schedule_.occupant_unit(slot, u);
        if (id == kNoRequest || id == kHeldUnit) continue;
        REQSCHED_AUDIT_REQUIRE_MSG(alive_set.count(id) != 0,
                                   "booked r" << id << " at " << slot
                                              << " is not in the alive set");
        const Request& r = pool_->request(id);
        REQSCHED_AUDIT_REQUIRE_MSG(schedule_.is_scheduled(id),
                                   "grid unit holds unscheduled r" << id);
        const SlotRef start = schedule_.slot_of(id);
        REQSCHED_AUDIT_REQUIRE_MSG(
            start.resource == res && start.round <= round &&
                round < start.round + r.occupancy,
            "schedule grid and slot_of disagree for r" << id << " at "
                                                       << slot);
        if (round == start.round) ++booked;
        REQSCHED_AUDIT_REQUIRE_MSG(r.allows_slot(start),
                                   r << " booked at disallowed " << start);
      }
    }
  }
  REQSCHED_AUDIT_REQUIRE_MSG(booked == schedule_.booked_count(),
                             "schedule booked_count " <<
                                 schedule_.booked_count() << " vs " << booked
                                                        << " run starts");

  // Window-problem mirror: row-for-row and booking-for-booking agreement
  // with the engine's own state.
  if (window_active_) {
    REQSCHED_AUDIT_REQUIRE_MSG(
        !window_->admission_batch_open(),
        "admission batch left open across the strategy/execute stages");
    REQSCHED_AUDIT_REQUIRE_MSG(
        admission_outcome_ == AdmissionOutcome::kAdmitted ||
            fast_booked_.empty(),
        "fast-path bookings survived a non-admitted round");
    REQSCHED_AUDIT_REQUIRE_MSG(window_->window_begin() == t,
                               "window problem is at round "
                                   << window_->window_begin()
                                   << ", engine at " << t);
    REQSCHED_AUDIT_REQUIRE_MSG(
        window_->row_count() == static_cast<std::int64_t>(alive_.size()),
        "window problem has " << window_->row_count() << " rows vs "
                              << alive_.size() << " alive requests");
    for (const RequestId id : alive_) {
      REQSCHED_AUDIT_REQUIRE_MSG(window_->has_row(id),
                                 "alive r" << id
                                           << " missing from window problem");
      const SlotRef mirrored = window_->booked_slot_of(id);
      const SlotRef actual =
          schedule_.is_scheduled(id) ? schedule_.slot_of(id) : kNoSlot;
      REQSCHED_AUDIT_REQUIRE_MSG(mirrored == actual,
                                 "window problem books r"
                                     << id << " at " << mirrored
                                     << ", schedule at " << actual);
    }
  }
}

void StreamingEngine::expire_round_start() {
  const Round t = now();
  auto out = alive_.begin();
  for (const RequestId id : alive_) {
    const Request& r = pool_->request(id);
    if (r.deadline < t) {
      REQSCHED_CHECK_MSG(!schedule_.is_scheduled(id),
                         r << " expired while still booked at "
                           << schedule_.slot_of(id));
      retire_expired(id);
    } else {
      *out++ = id;
    }
  }
  alive_.erase(out, alive_.end());
}

void StreamingEngine::drain_arrivals() {
  const Round t = now();
  // Generate into the engine-owned scratch batch: the workload appends specs
  // in place, so a steady-state stream allocates nothing per round.
  spec_scratch_.clear();
  workload_.generate(t, facade_, spec_scratch_);
  const std::span<const RequestSpec> specs = spec_scratch_;
  injected_now_.clear();
  if (specs.empty()) return;
  // The whole round's batch enters the pool in one call (per-batch audit
  // instead of per-request), then fans out to trace/OPT/window mirrors.
  pool_->admit_batch(t, specs, injected_now_);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RequestId id = injected_now_[i];
    if (options_.record_trace) {
      const RequestId trace_id = trace_.add(t, specs[i]);
      REQSCHED_CHECK(trace_id == id);
    }
    alive_.push_back(id);
    ++metrics_.injected;
    if (options_.track_live_opt) opt_->add_request(pool_->request(id));
    if (window_active_) window_->add_request(pool_->request(id));
  }
  if (options_.track_stream_stats) {
    stream_stats_.on_inject(static_cast<std::int64_t>(specs.size()));
  }
}

void StreamingEngine::admit_batch() {
  admission_outcome_ = AdmissionOutcome::kInactive;
  fast_booked_.clear();
  fast_slots_.clear();
  if (!fast_path_active_ || injected_now_.empty()) return;
  // Multi-round occupancy runs are not probe-able rows: the batch goes to
  // the strategy's own (greedy) placement path.
  for (const RequestId id : injected_now_) {
    if (pool_->request(id).occupancy != 1) {
      admission_outcome_ = AdmissionOutcome::kContended;
      ++fast_fallbacks_;
      return;
    }
  }
  // Strategies whose matcher treats arrivals jointly with the unscheduled
  // backlog (A_current, A_fix_balance) are only greedy-admissible on rounds
  // where the arrivals ARE the whole problem — every pre-existing row is
  // already booked.
  if (fast_needs_empty_backlog_ &&
      window_->unbooked_row_count() !=
          static_cast<std::int64_t>(injected_now_.size())) {
    admission_outcome_ = AdmissionOutcome::kContended;
    ++fast_fallbacks_;
    return;
  }
  // Current-round-only strategies (A_current) never book past round t, so
  // their probes are clamped to it.
  const Round probe_last =
      fast_current_round_only_ ? now() : window_->window_end() - 1;
  window_->begin_admission_batch();
  bool contended = false;
  for (const RequestId id : injected_now_) {
    const auto probe =
        window_->admission_probe(pool_->request(id), probe_last);
    if (probe.contended) {
      contended = true;
      break;
    }
    // An uncontended arrival with no free allowed slot has no Kuhn edges
    // either: it stays unmatched on both paths.
    if (!probe.slot.valid()) continue;
    // Claim, don't book: the window stays untouched until the whole batch
    // proves uncontended, so abandoning it below costs nothing to unwind.
    window_->claim_admission_slot(probe.slot);
    fast_booked_.push_back(id);
    fast_slots_.push_back(probe.slot);
  }
  window_->end_admission_batch();
  if (contended) {
    // Let the strategy's matcher handle the whole batch against the
    // pristine pre-batch window (claims evaporated with the batch).
    fast_booked_.clear();
    fast_slots_.clear();
    admission_outcome_ = AdmissionOutcome::kContended;
    ++fast_fallbacks_;
    return;
  }
  // Commit: every claim becomes a real booking, in injection order.
  for (std::size_t i = 0; i < fast_booked_.size(); ++i) {
    schedule_.assign(pool_->request(fast_booked_[i]), fast_slots_[i]);
    window_->book(fast_booked_[i], fast_slots_[i]);
  }
  admission_outcome_ = AdmissionOutcome::kAdmitted;
  // Metric parity with the matcher path: apply_matches would have called
  // assign() once per booked arrival.
  metrics_.assignments += static_cast<std::int64_t>(fast_booked_.size());
  fast_admitted_ += static_cast<std::int64_t>(fast_booked_.size());
  ++fast_rounds_;
}

void StreamingEngine::execute() {
  const Round t = now();
  std::int64_t fulfilled_now = 0;
  for (ResourceId i = 0; i < config_.n; ++i) {
    const SlotRef slot{i, t};
    const std::int32_t cap = config_.capacity_of(i);
    for (std::int32_t u = 0; u < cap; ++u) {
      // Every request unit in the executing row is a run *start*: a run
      // started earlier was fulfilled at its start round, which turned its
      // units here into holds.
      const RequestId id = schedule_.occupant_unit(slot, u);
      if (id == kNoRequest || id == kHeldUnit) continue;
      REQSCHED_CHECK(is_pending(id));
      schedule_.fulfill_release(id);
      if (window_active_) window_->retire_executed(id);
      retire_fulfilled(id, slot);
      ++fulfilled_now;
    }
  }
  if (fulfilled_now > 0) {
    // Mark-and-compact (same pattern as expire_round_start): one pass over
    // the backlog instead of an O(|alive|) erase per fulfilled request.
    auto out = alive_.begin();
    for (const RequestId id : alive_) {
      if (pool_->status(id) == RequestStatus::kPending) {
        *out++ = id;
      }
    }
    alive_.erase(out, alive_.end());
  }
  const auto leftover = schedule_.advance();
  REQSCHED_CHECK_MSG(leftover.empty(),
                     "schedule row survived execution unexpectedly");
  if (window_active_) window_->advance();
}

void StreamingEngine::retire_fulfilled(RequestId id, SlotRef slot) {
  // The window mirror was already retired by execute() via retire_executed
  // (a fulfilled row leaves *booked* — its occupancy tail must turn into
  // holds, which plain retire() forbids).
  if (options_.retire_sink) {
    options_.retire_sink(pool_->request(id), RequestStatus::kFulfilled, slot);
  }
  if (options_.track_stream_stats) {
    stream_stats_.on_fulfill(slot.round - pool_->request(id).arrival);
  }
  pool_->fulfill(id, slot);
  ++metrics_.fulfilled;
}

void StreamingEngine::retire_expired(RequestId id) {
  if (options_.retire_sink) {
    options_.retire_sink(pool_->request(id), RequestStatus::kExpired, kNoSlot);
  }
  if (window_active_) window_->retire(id);
  if (options_.track_stream_stats) stream_stats_.on_expire();
  pool_->expire(id);
  ++metrics_.expired;
}

std::vector<std::pair<RequestId, SlotRef>> StreamingEngine::online_matching()
    const {
  REQSCHED_REQUIRE_MSG(pool_->retain_history(),
                       "the full online matching needs retain_history; "
                       "streaming runs observe it through the retire sink");
  std::vector<std::pair<RequestId, SlotRef>> out;
  for (RequestId id = 0; id < pool_->next_id(); ++id) {
    const SlotRef slot = pool_->fulfilled_slot(id);
    if (slot.valid()) out.emplace_back(id, slot);
  }
  return out;
}

std::int64_t StreamingEngine::live_optimum() const {
  REQSCHED_REQUIRE_MSG(options_.track_live_opt,
                       "live OPT tracking is off for this run");
  return opt_->optimum();
}

double StreamingEngine::live_ratio() const {
  return competitive_ratio(live_optimum(), metrics_.fulfilled);
}

StatsSnapshot StreamingEngine::snapshot() const {
  StatsSnapshot s;
  s.shard = options_.shard;
  s.round = metrics_.rounds;
  s.injected = metrics_.injected;
  s.fulfilled = metrics_.fulfilled;
  s.expired = metrics_.expired;
  s.pending = pool_->live_count();
  s.peak_pending = pool_->peak_live();
  if (options_.track_live_opt) {
    s.live_opt = opt_->optimum();
    s.live_ratio = competitive_ratio(s.live_opt, s.fulfilled);
  }
  s.fast_path_admitted = fast_admitted_;
  s.fast_path_fallbacks = fast_fallbacks_;
  s.fulfilled_fraction =
      s.injected == 0
          ? 0.0
          : static_cast<double>(s.fulfilled) / static_cast<double>(s.injected);
  if (started_at_) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - *started_at_;
    s.elapsed_sec = elapsed.count();
    if (s.elapsed_sec > 0.0) {
      s.rounds_per_sec = static_cast<double>(s.round) / s.elapsed_sec;
      s.requests_per_sec = static_cast<double>(s.injected) / s.elapsed_sec;
    }
  }
  s.resident_bytes = static_cast<std::int64_t>(approx_resident_bytes());
  return s;
}

std::size_t StreamingEngine::approx_resident_bytes() const {
  // Capacities, not touched pages — a deliberate overestimate that moves
  // when the real footprint moves.
  std::size_t bytes = pool_->approx_bytes() +
                      alive_.capacity() * sizeof(RequestId) +
                      injected_now_.capacity() * sizeof(RequestId);
  bytes += static_cast<std::size_t>(config_.n) *
           static_cast<std::size_t>(config_.d) *
           static_cast<std::size_t>(config_.max_capacity()) *
           sizeof(RequestId);
  bytes += static_cast<std::size_t>(schedule_.booked_count()) *
           (sizeof(RequestId) + sizeof(SlotRef) + 2 * sizeof(void*));
  if (options_.track_live_opt) bytes += opt_->approx_bytes();
  if (window_active_) bytes += window_->approx_bytes();
  if (options_.track_stream_stats) bytes += stream_stats_.approx_bytes();
  if (options_.record_trace) {
    bytes += static_cast<std::size_t>(trace_.size()) * sizeof(Request);
  }
  return bytes;
}

void StreamingEngine::assign(RequestId id, SlotRef slot) {
  REQSCHED_REQUIRE_MSG(in_strategy_,
                       "schedule edits are only allowed during on_round");
  REQSCHED_REQUIRE_MSG(is_pending(id), "cannot book non-pending r" << id);
  schedule_.assign(pool_->request(id), slot);
  if (window_active_) window_->book(id, slot);
  ++metrics_.assignments;
}

void StreamingEngine::unassign(RequestId id) {
  REQSCHED_REQUIRE_MSG(in_strategy_,
                       "schedule edits are only allowed during on_round");
  schedule_.unassign(id);
  if (window_active_) window_->unbook(id);
  ++metrics_.unassignments;
}

void StreamingEngine::move(RequestId id, SlotRef slot) {
  REQSCHED_REQUIRE_MSG(in_strategy_,
                       "schedule edits are only allowed during on_round");
  schedule_.unassign(id);
  schedule_.assign(pool_->request(id), slot);
  if (window_active_) {
    window_->unbook(id);
    window_->book(id, slot);
  }
  ++metrics_.reassignments;
}

void StreamingEngine::note_reassignments(std::int64_t count) {
  REQSCHED_REQUIRE(in_strategy_ && count >= 0);
  metrics_.reassignments += count;
}

void StreamingEngine::record_wasted_execution(ResourceId resource) {
  REQSCHED_REQUIRE(in_strategy_);
  REQSCHED_REQUIRE(resource >= 0 && resource < config_.n);
  REQSCHED_REQUIRE_MSG(schedule_.is_free({resource, now()}),
                       "a wasted execution burns an idle slot");
  ++metrics_.wasted_executions;
}

void StreamingEngine::record_communication(std::int64_t rounds,
                                           std::int64_t messages) {
  metrics_.communication_rounds += rounds;
  metrics_.messages += messages;
}

}  // namespace reqsched
