// Slab request storage with free-list recycling and a compact window index.
//
// The streaming runtime keeps per-request state O(active deadline window)
// instead of O(run length): a request lives in a slab slot from admission
// until it retires (fulfilled or expired), then the slot returns to a free
// list. Public `RequestId`s stay globally unique and monotone — they are
// remapped to slab slots through a power-of-two ring indexed by `id & mask`,
// valid for ids in `[window_base(), next_id())`. Because every request must
// resolve within d rounds of its arrival and arrivals are monotone, the ring
// span is bounded by the number of admissions in the last d rounds, not by
// the run length.
//
// Retired ids still inside the ring keep a tombstone carrying their final
// status (strategies such as independent-copy EDF query the status of a
// twin that retired earlier in the window); ids older than the window are
// recycled entirely and querying them is a contract violation.
//
// `retain_history = true` switches to the legacy dense layout (slot == id,
// nothing is ever recycled, fulfilled slots are kept) — the classic
// `Simulator` behaviour, byte-compatible with the pre-engine arrays.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace reqsched {

class RequestPool {
 public:
  RequestPool() = default;

  /// Re-arms the pool for a new run, keeping allocated capacity (arena
  /// reuse across shards).
  void reset(const ProblemConfig& config, bool retain_history);

  /// Admits a request arriving at `arrival` (same validation contract as
  /// Trace::add); returns its globally unique id (== admission count so
  /// far). Arrivals must be non-decreasing.
  RequestId admit(Round arrival, const RequestSpec& spec);

  /// Admits a whole round's arrival batch at once, appending the assigned
  /// ids to `out` in spec order. Identical per-request semantics to admit()
  /// called in a loop, but the audit sweep (REQSCHED_AUDIT builds) runs once
  /// per batch instead of once per request — the engine's batched round loop
  /// uses this for its drain stage.
  void admit_batch(Round arrival, std::span<const RequestSpec> specs,
                   std::vector<RequestId>& out);

  /// Retires a live request as fulfilled at `slot` / expired; in window
  /// mode its slab slot returns to the free list immediately.
  void fulfill(RequestId id, SlotRef slot);
  void expire(RequestId id);

  /// Window mode: forgets ring entries of requests that arrived at rounds
  /// <= now - d (all provably retired by round `now`). No-op when
  /// retaining history.
  void advance(Round now);

  /// Live requests only in window mode; any admitted id in retain mode.
  const Request& request(RequestId id) const;

  /// Any id >= window_base() (live, or retired-with-tombstone).
  RequestStatus status(RequestId id) const;

  /// Retain mode only: where a fulfilled request executed (kNoSlot
  /// otherwise).
  SlotRef fulfilled_slot(RequestId id) const;

  bool retain_history() const { return retain_; }
  const ProblemConfig& config() const { return config_; }

  /// Total requests admitted (the next id to be assigned).
  RequestId next_id() const { return next_; }
  /// Smallest id the pool still answers for.
  RequestId window_base() const { return base_; }

  std::int64_t live_count() const { return live_; }
  std::int64_t peak_live() const { return peak_live_; }
  /// Largest number of admissions in any single round so far — peak_live()
  /// is always <= max_admitted_per_round() * d (the window bound).
  std::int64_t max_admitted_per_round() const { return max_per_round_; }

  /// Slab slots allocated (bounds resident Request storage).
  std::int64_t slab_capacity() const {
    return static_cast<std::int64_t>(slab_.size());
  }
  std::size_t approx_bytes() const;

  /// Audit oracle: full slab / free-list / ring-tombstone consistency sweep
  /// (every slab slot accounted for exactly once, ring entries resolve to
  /// slabs holding the right request id, live counters re-derived, round
  /// marks monotone). O(window + slab). Throws ContractViolation on any
  /// disagreement. Runs after every mutation in REQSCHED_AUDIT builds;
  /// always compiled so tests can invoke it directly.
  void audit_check() const;

 private:
  friend struct AuditTestAccess;  ///< corruption hooks for tests/test_audit
  friend struct SnapshotAccess;   ///< checkpoint codec (src/snapshot)
  static constexpr std::int32_t kFulfilledTomb = -2;
  static constexpr std::int32_t kExpiredTomb = -3;

  std::int32_t ring_at(RequestId id) const {
    return ring_[static_cast<std::size_t>(id) & (ring_.size() - 1)];
  }
  std::int32_t& ring_at(RequestId id) {
    return ring_[static_cast<std::size_t>(id) & (ring_.size() - 1)];
  }
  /// Slab slot of a LIVE id (REQUIREs liveness).
  std::int32_t live_slot(RequestId id) const;
  /// admit() minus the per-call audit sweep (shared with admit_batch).
  RequestId admit_one(Round arrival, const RequestSpec& spec);
  void grow_ring();
  void retire(RequestId id, std::int32_t tombstone);

  ProblemConfig config_{};
  bool retain_ = true;

  std::vector<Request> slab_;
  std::vector<std::int32_t> free_;  ///< window mode: recycled slab slots

  // Retain mode parallel arrays (indexed by id).
  std::vector<RequestStatus> status_;
  std::vector<SlotRef> fulfilled_slot_;

  // Window mode ring: ring_[id & mask] for id in [base_, next_).
  std::vector<std::int32_t> ring_;
  RequestId base_ = 0;
  RequestId next_ = 0;
  /// (arrival round, first id admitted at it), one entry per distinct
  /// arrival round still inside the ring — at most d + 1 entries deep.
  std::deque<std::pair<Round, RequestId>> round_marks_;

  Round last_arrival_ = -1;
  std::int64_t live_ = 0;
  std::int64_t peak_live_ = 0;
  std::int64_t cur_round_count_ = 0;
  std::int64_t max_per_round_ = 0;
};

}  // namespace reqsched
