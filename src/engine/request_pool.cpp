#include "engine/request_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace reqsched {

namespace {
constexpr std::size_t kMinRingSize = 64;  // power of two
}  // namespace

void RequestPool::reset(const ProblemConfig& config, bool retain_history) {
  config.validate();
  config_ = config;
  retain_ = retain_history;
  slab_.clear();
  free_.clear();
  status_.clear();
  fulfilled_slot_.clear();
  ring_.clear();
  base_ = 0;
  next_ = 0;
  round_marks_.clear();
  last_arrival_ = -1;
  live_ = 0;
  peak_live_ = 0;
  cur_round_count_ = 0;
  max_per_round_ = 0;
}

RequestId RequestPool::admit(Round arrival, const RequestSpec& spec) {
  const RequestId id = admit_one(arrival, spec);
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
  return id;
}

void RequestPool::admit_batch(Round arrival,
                              std::span<const RequestSpec> specs,
                              std::vector<RequestId>& out) {
  out.clear();
  out.reserve(specs.size());
  for (const RequestSpec& spec : specs) {
    out.push_back(admit_one(arrival, spec));
  }
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

RequestId RequestPool::admit_one(Round arrival, const RequestSpec& spec) {
  // Same validation contract as Trace::add — the pool is the authoritative
  // admission point when no trace is recorded.
  REQSCHED_REQUIRE_MSG(arrival >= 0, "arrival rounds start at 0");
  REQSCHED_REQUIRE_MSG(arrival >= last_arrival_,
                       "requests must be admitted in arrival order");
  REQSCHED_REQUIRE_MSG(!spec.alts.empty(),
                       "a request needs at least one alternative");
  // Admission-boundary contract (k <= 8), not a per-round hot loop.
  for (std::int32_t i = 0; i < spec.alts.size(); ++i) {  // reqsched-lint: allow(hot-loop-guard)
    const ResourceId alt = spec.alts[i];
    REQSCHED_REQUIRE_MSG(alt >= 0 && alt < config_.n,
                         "alternative out of range: S" << alt);
    for (std::int32_t j = 0; j < i; ++j) {  // reqsched-lint: allow(hot-loop-guard)
      REQSCHED_REQUIRE_MSG(spec.alts[j] != alt,
                           "alternatives must be pairwise distinct resources");
    }
  }
  const std::int32_t window = spec.window > 0 ? spec.window : config_.d;
  REQSCHED_REQUIRE_MSG(window <= config_.d,
                       "per-request window may not exceed the instance d");
  REQSCHED_REQUIRE_MSG(spec.occupancy >= 1 && spec.occupancy <= window,
                       "occupancy must fit inside the request window: occ="
                           << spec.occupancy << " window=" << window);

  const RequestId id = next_++;
  if (arrival != last_arrival_) {
    last_arrival_ = arrival;
    cur_round_count_ = 0;
    if (!retain_) round_marks_.emplace_back(arrival, id);
  }
  ++cur_round_count_;
  max_per_round_ = std::max(max_per_round_, cur_round_count_);

  Request r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = arrival + window - 1;
  r.alts = spec.alts;
  r.occupancy = spec.occupancy;

  if (retain_) {
    slab_.push_back(r);
    status_.push_back(RequestStatus::kPending);
    fulfilled_slot_.push_back(kNoSlot);
  } else {
    std::int32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slab_[static_cast<std::size_t>(slot)] = r;
    } else {
      slot = static_cast<std::int32_t>(slab_.size());
      slab_.push_back(r);
    }
    if (static_cast<std::size_t>(next_ - base_) > ring_.size()) grow_ring();
    ring_at(id) = slot;
  }
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return id;
}

std::int32_t RequestPool::live_slot(RequestId id) const {
  REQSCHED_REQUIRE_MSG(id >= base_ && id < next_,
                       "r" << id << " is outside the pool window ["
                           << base_ << ", " << next_ << ")");
  const std::int32_t slot = ring_at(id);
  REQSCHED_REQUIRE_MSG(slot >= 0, "r" << id << " already retired");
  return slot;
}

void RequestPool::fulfill(RequestId id, SlotRef slot) {
  REQSCHED_REQUIRE(slot.valid());
  if (retain_) {
    REQSCHED_REQUIRE(id >= 0 && id < next_);
    REQSCHED_REQUIRE_MSG(
        status_[static_cast<std::size_t>(id)] == RequestStatus::kPending,
        "cannot fulfill non-pending r" << id);
    status_[static_cast<std::size_t>(id)] = RequestStatus::kFulfilled;
    fulfilled_slot_[static_cast<std::size_t>(id)] = slot;
  } else {
    retire(id, kFulfilledTomb);
  }
  --live_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void RequestPool::expire(RequestId id) {
  if (retain_) {
    REQSCHED_REQUIRE(id >= 0 && id < next_);
    REQSCHED_REQUIRE_MSG(
        status_[static_cast<std::size_t>(id)] == RequestStatus::kPending,
        "cannot expire non-pending r" << id);
    status_[static_cast<std::size_t>(id)] = RequestStatus::kExpired;
  } else {
    retire(id, kExpiredTomb);
  }
  --live_;
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

void RequestPool::retire(RequestId id, std::int32_t tombstone) {
  const std::int32_t slot = live_slot(id);
  free_.push_back(slot);
  ring_at(id) = tombstone;
}

void RequestPool::advance(Round now) {
  if (retain_) return;
  while (!round_marks_.empty() &&
         round_marks_.front().first <= now - config_.d) {
    round_marks_.pop_front();
    const RequestId new_base =
        round_marks_.empty() ? next_ : round_marks_.front().second;
#ifdef REQSCHED_DEBUG_CHECKS
    for (RequestId id = base_; id < new_base; ++id) {
      // Every forgotten id must have retired: its deadline was at most
      // arrival + d - 1 <= now - 1, so expire_round_start covered it.
      REQSCHED_REQUIRE_MSG(ring_at(id) < 0,
                           "r" << id << " left the window while live");
    }
#endif
    base_ = new_base;
  }
#if REQSCHED_AUDIT_ENABLED
  audit_check();
#endif
}

const Request& RequestPool::request(RequestId id) const {
  if (retain_) {
    REQSCHED_REQUIRE(id >= 0 && id < next_);
    return slab_[static_cast<std::size_t>(id)];
  }
  return slab_[static_cast<std::size_t>(live_slot(id))];
}

RequestStatus RequestPool::status(RequestId id) const {
  if (retain_) {
    REQSCHED_REQUIRE(id >= 0 && id < next_);
    return status_[static_cast<std::size_t>(id)];
  }
  REQSCHED_REQUIRE_MSG(id >= base_ && id < next_,
                       "status of r" << id << " queried outside the window ["
                                     << base_ << ", " << next_ << ")");
  const std::int32_t slot = ring_at(id);
  if (slot >= 0) return RequestStatus::kPending;
  return slot == kFulfilledTomb ? RequestStatus::kFulfilled
                                : RequestStatus::kExpired;
}

SlotRef RequestPool::fulfilled_slot(RequestId id) const {
  REQSCHED_REQUIRE_MSG(retain_,
                       "fulfilled slots are only kept in retain mode");
  REQSCHED_REQUIRE(id >= 0 && id < next_);
  return fulfilled_slot_[static_cast<std::size_t>(id)];
}

void RequestPool::grow_ring() {
  const std::size_t need = static_cast<std::size_t>(next_ - base_);
  std::size_t size = std::max(kMinRingSize, ring_.size() * 2);
  while (size < need) size *= 2;
  std::vector<std::int32_t> old = std::move(ring_);
  const std::size_t old_mask = old.size() - 1;
  ring_.assign(size, kExpiredTomb);
  if (!old.empty()) {
    // Re-home every id still in the window (the id being admitted is placed
    // by the caller after the growth).
    for (RequestId id = base_; id < next_ - 1; ++id) {
      ring_at(id) = old[static_cast<std::size_t>(id) & old_mask];
    }
  }
}

void RequestPool::audit_check() const {
  if (retain_) {
    // Retain mode: dense parallel arrays, nothing recycled.
    const auto count = static_cast<std::size_t>(next_);
    REQSCHED_AUDIT_REQUIRE(slab_.size() == count);
    REQSCHED_AUDIT_REQUIRE(status_.size() == count);
    REQSCHED_AUDIT_REQUIRE(fulfilled_slot_.size() == count);
    REQSCHED_AUDIT_REQUIRE(base_ == 0 && free_.empty());
    std::int64_t pending = 0;
    for (std::size_t i = 0; i < count; ++i) {
      REQSCHED_AUDIT_REQUIRE_MSG(
          slab_[i].id == static_cast<RequestId>(i),
          "retain-mode slab slot " << i << " holds " << slab_[i]);
      if (status_[i] == RequestStatus::kPending) ++pending;
      REQSCHED_AUDIT_REQUIRE_MSG(
          fulfilled_slot_[i].valid() ==
              (status_[i] == RequestStatus::kFulfilled),
          "fulfilled slot recorded for non-fulfilled r" << i);
    }
    REQSCHED_AUDIT_REQUIRE_MSG(pending == live_,
                               pending << " pending requests vs live count "
                                       << live_);
    return;
  }

  // Window mode: every slab slot is referenced exactly once — either by the
  // ring entry of a live id or by the free list.
  REQSCHED_AUDIT_REQUIRE(base_ >= 0 && base_ <= next_);
  if (next_ > base_) {
    REQSCHED_AUDIT_REQUIRE_MSG(
        !ring_.empty() && (ring_.size() & (ring_.size() - 1)) == 0 &&
            static_cast<std::size_t>(next_ - base_) <= ring_.size(),
        "ring of size " << ring_.size() << " cannot hold the id window ["
                        << base_ << ", " << next_ << ")");
  }
  std::vector<char> referenced(slab_.size(), 0);
  std::int64_t live = 0;
  for (RequestId id = base_; id < next_; ++id) {
    const std::int32_t slot = ring_at(id);
    if (slot < 0) {
      REQSCHED_AUDIT_REQUIRE_MSG(slot == kFulfilledTomb || slot == kExpiredTomb,
                                 "r" << id << " has unknown tombstone "
                                     << slot);
      continue;
    }
    ++live;
    REQSCHED_AUDIT_REQUIRE_MSG(
        static_cast<std::size_t>(slot) < slab_.size(),
        "ring entry for r" << id << " points past the slab");
    REQSCHED_AUDIT_REQUIRE_MSG(
        !referenced[static_cast<std::size_t>(slot)],
        "slab slot " << slot << " referenced by two live ids");
    referenced[static_cast<std::size_t>(slot)] = 1;
    REQSCHED_AUDIT_REQUIRE_MSG(
        slab_[static_cast<std::size_t>(slot)].id == id,
        "slab slot " << slot << " holds "
                     << slab_[static_cast<std::size_t>(slot)]
                     << " but the ring maps it to r" << id);
  }
  REQSCHED_AUDIT_REQUIRE_MSG(live == live_,
                             live << " live ring entries vs live count "
                                  << live_);
  for (const std::int32_t slot : free_) {
    REQSCHED_AUDIT_REQUIRE_MSG(
        slot >= 0 && static_cast<std::size_t>(slot) < slab_.size(),
        "free-list entry " << slot << " out of slab range");
    REQSCHED_AUDIT_REQUIRE_MSG(
        !referenced[static_cast<std::size_t>(slot)],
        "slab slot " << slot << " is both live and on the free list");
    referenced[static_cast<std::size_t>(slot)] = 1;
  }
  REQSCHED_AUDIT_REQUIRE_MSG(
      live + static_cast<std::int64_t>(free_.size()) ==
          static_cast<std::int64_t>(slab_.size()),
      "slab leak: " << slab_.size() << " slots, " << live << " live + "
                    << free_.size() << " free");

  // Round marks: strictly increasing in round and id, covering [base_,
  // next_) — the window-advance bookkeeping.
  // Cold: audit_check() only runs from mutators under REQSCHED_AUDIT_ENABLED
  // (or directly from tests), never inline on the hot path.
  for (std::size_t i = 0; i + 1 < round_marks_.size(); ++i) {  // reqsched-lint: allow(hot-loop-guard)
    REQSCHED_AUDIT_REQUIRE(round_marks_[i].first < round_marks_[i + 1].first);
    REQSCHED_AUDIT_REQUIRE(round_marks_[i].second < round_marks_[i + 1].second);
  }
  if (!round_marks_.empty()) {
    REQSCHED_AUDIT_REQUIRE_MSG(
        round_marks_.front().second >= base_ &&
            round_marks_.back().second < next_,
        "round marks stretch outside the id window");
  }
}

std::size_t RequestPool::approx_bytes() const {
  return slab_.capacity() * sizeof(Request) +
         free_.capacity() * sizeof(std::int32_t) +
         status_.capacity() * sizeof(RequestStatus) +
         fulfilled_slot_.capacity() * sizeof(SlotRef) +
         ring_.capacity() * sizeof(std::int32_t) +
         round_marks_.size() * sizeof(round_marks_.front());
}

}  // namespace reqsched
