#include "engine/sharded.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <ostream>

#include "engine/simulator.hpp"
#include "util/mutex.hpp"

namespace reqsched {

namespace {

/// One arena pair per pool worker (plus one for the calling thread when it
/// executes tasks itself, e.g. a zero-worker pool).
struct WorkerArena {
  RequestPool pool;
  WindowedPrefixOpt opt;
  DeltaWindowProblem window;
};

/// Mutex-serialized line appender over a caller-owned std::ostream — the
/// fallback sink when no crash-safe jsonl_path is configured. The stream
/// pointee is REQSCHED_PT_GUARDED_BY the writer's mutex, so "every shard
/// thread writes the shared stream only under the lock" is a compile-time
/// fact on clang, not a convention buried in a lambda.
class SerializedStreamWriter {
 public:
  explicit SerializedStreamWriter(std::ostream* os) : os_(os) {}

  void write_line(const std::string& line) REQSCHED_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    *os_ << line << '\n';
  }

 private:
  Mutex mutex_;
  std::ostream* const os_ REQSCHED_PT_GUARDED_BY(mutex_);
};

}  // namespace

ShardedResult run_sharded(const ShardedRunOptions& options,
                          const ShardWorkloadFactory& make_workload,
                          const ShardStrategyFactory& make_strategy,
                          ThreadPool* pool) {
  REQSCHED_REQUIRE_MSG(options.shards >= 1, "need at least one shard");
  REQSCHED_REQUIRE(make_workload != nullptr && make_strategy != nullptr);

  std::optional<ThreadPool> own_pool;
  if (pool == nullptr) own_pool.emplace(options.threads);
  ThreadPool& workers = pool != nullptr ? *pool : *own_pool;

  std::vector<WorkerArena> arenas(workers.thread_count() + 1);
  // jsonl_path wins: the sink's single-write(2)-per-line appends are atomic,
  // so a killed run leaves only whole records behind for resume tooling.
  std::optional<JsonlSink> jsonl_sink;
  if (!options.jsonl_path.empty()) jsonl_sink.emplace(options.jsonl_path);
  SerializedStreamWriter stream_writer(options.jsonl);
  const bool jsonl_active =
      jsonl_sink.has_value() || options.jsonl != nullptr;
  const auto emit_line = [&](const std::string& line) {
    if (jsonl_sink) {
      jsonl_sink->write_line(line);  // one atomic append, no lock needed
      return;
    }
    stream_writer.write_line(line);
  };

  ShardedResult result;
  result.shards.resize(static_cast<std::size_t>(options.shards));

  // The per-shard result slots need no lock: the vector is sized before the
  // fan-out, each task writes only result.shards[index] (its own slot), and
  // parallel_for's wait_idle() is the synchronization point before the
  // coordinating thread reads any slot. The cross-shard Metrics/StreamStats
  // accumulation below runs strictly after that join, single-threaded.
  parallel_for(workers, static_cast<std::size_t>(options.shards),
               [&](std::size_t index) {
    const std::size_t worker = ThreadPool::current_worker_index();
    WorkerArena& arena =
        arenas[worker == ThreadPool::kNotAWorker ? workers.thread_count()
                                                 : worker];
    const auto shard = static_cast<std::int64_t>(index);
    ShardResult& out = result.shards[index];
    out.shard = shard;
    try {
      const auto workload = make_workload(shard);
      const auto strategy = make_strategy(shard);
      REQSCHED_REQUIRE_MSG(workload != nullptr && strategy != nullptr,
                           "shard factories must not return null");

      EngineOptions engine_options = options.engine;
      engine_options.shard = shard;
      engine_options.pool_arena = &arena.pool;
      engine_options.opt_arena = &arena.opt;
      engine_options.window_arena = &arena.window;
      if (jsonl_active) {
        engine_options.snapshot_sink = [&](const StatsSnapshot& snapshot) {
          emit_line(to_jsonl(snapshot));  // render outside any lock
        };
        if (engine_options.track_stream_stats &&
            engine_options.frame_every > 0) {
          engine_options.frame_sink = [&](const StatsFrame& frame) {
            emit_line(to_jsonl(frame));
          };
        }
      }
      if (options.checkpoint_sink) {
        engine_options.checkpoint_sink =
            [&, shard](const StreamingEngine& engine) {
              options.checkpoint_sink(engine, shard);
            };
      }
      if (jsonl_active && options.manifest_line) {
        emit_line(options.manifest_line(shard));
      }

      Simulator sim(*workload, *strategy, engine_options);
      out.metrics = sim.run(options.max_rounds);
      out.last_snapshot = sim.engine().snapshot();
      if (engine_options.track_stream_stats) {
        out.stream_stats = sim.engine().stream_stats();
      }
      if (jsonl_active) emit_line(to_jsonl(out.last_snapshot));
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  });

  for (const ShardResult& shard : result.shards) {
    if (!shard.ok()) {
      ++result.failed;
      continue;
    }
    result.total.rounds += shard.metrics.rounds;
    result.total.injected += shard.metrics.injected;
    result.total.fulfilled += shard.metrics.fulfilled;
    result.total.expired += shard.metrics.expired;
    result.total.wasted_executions += shard.metrics.wasted_executions;
    result.total.assignments += shard.metrics.assignments;
    result.total.unassignments += shard.metrics.unassignments;
    result.total.reassignments += shard.metrics.reassignments;
    result.total.communication_rounds += shard.metrics.communication_rounds;
    result.total.messages += shard.metrics.messages;
    result.peak_pending =
        std::max(result.peak_pending, shard.last_snapshot.peak_pending);
    // Cross-shard statistics merge, sequentially in shard order (the merge
    // is order-sensitive only past the sketches' exact regime, and a fixed
    // order keeps even that deterministic run-to-run).
    if (shard.stream_stats.active()) {
      if (!result.merged_stats.active()) {
        result.merged_stats = shard.stream_stats;
      } else {
        result.merged_stats.merge(shard.stream_stats);
      }
    }
  }
  if (result.merged_stats.active()) {
    result.merged_stats.set_shard(-1);
    if (jsonl_active) {
      const std::int64_t pending =
          result.total.injected - result.total.fulfilled - result.total.expired;
      emit_line(to_jsonl(result.merged_stats.frame(pending)));
    }
  }
  return result;
}

}  // namespace reqsched
