// Round-driven simulator: the data server working in synchronized rounds.
//
// Per round t it (1) expires requests whose deadline has passed, (2) injects
// the adversary's new requests, (3) runs the online strategy, and (4) executes
// the current row of the schedule (each resource fulfills its booked request).
//
// Since the streaming engine refactor the Simulator is a thin facade over
// StreamingEngine (engine/streaming.hpp): the default options retain full
// history — the realized sequence is recorded as a Trace so the offline
// optimum can be computed after the run, statuses and fulfillment slots are
// kept for every request — which is bit-identical to the classic behaviour.
// Pass streaming_options() (or any EngineOptions) to run with memory bounded
// by the active deadline window instead.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "core/strategy.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"
#include "engine/streaming.hpp"

namespace reqsched {

class Simulator {
 public:
  /// Both `workload` and `strategy` must outlive the simulator.
  Simulator(IWorkload& workload, IStrategy& strategy)
      : Simulator(workload, strategy, EngineOptions{}) {}

  Simulator(IWorkload& workload, IStrategy& strategy, EngineOptions options)
      : engine_(workload, strategy, std::move(options), *this) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs rounds until the workload is exhausted and all requests resolved.
  /// `max_rounds` is a runaway guard (violated => ContractViolation).
  const Metrics& run(std::int64_t max_rounds = 1'000'000) {
    return engine_.run(max_rounds);
  }

  /// Executes a single round; returns false when the run is complete.
  bool step() { return engine_.step(); }

  bool finished() const { return engine_.finished(); }

  /// The underlying streaming runtime (pool stats, live OPT, snapshots).
  StreamingEngine& engine() { return engine_; }
  const StreamingEngine& engine() const { return engine_; }

  // ---- read API (strategies, adversaries, analysis) ----

  const ProblemConfig& config() const { return engine_.config(); }
  Round now() const { return engine_.now(); }

  const Trace& trace() const { return engine_.trace(); }
  const Request& request(RequestId id) const { return engine_.request(id); }

  RequestStatus status(RequestId id) const { return engine_.status(id); }
  bool is_pending(RequestId id) const { return engine_.is_pending(id); }

  /// Requests injected in the current round (valid during on_round).
  std::span<const RequestId> injected_now() const {
    return engine_.injected_now();
  }

  /// Outcome of this round's batch-admission stage: strategies that opted
  /// into the fast path (wants_admission_fast_path) must skip their own
  /// new-arrival matcher when this reports kAdmitted — the batch is already
  /// booked exactly as their matcher would have.
  AdmissionOutcome admission_outcome() const {
    return engine_.admission_outcome();
  }

  /// All pending (alive, unfulfilled) requests, oldest first.
  std::span<const RequestId> alive() const { return engine_.alive(); }

  const Schedule& schedule() const { return engine_.schedule(); }

  bool is_scheduled(RequestId id) const { return engine_.is_scheduled(id); }
  SlotRef slot_of(RequestId id) const { return engine_.slot_of(id); }

  /// Where a fulfilled request was executed (kNoSlot otherwise).
  SlotRef fulfilled_slot(RequestId id) const {
    return engine_.fulfilled_slot(id);
  }

  /// The final online matching: (request, execution slot) pairs.
  std::vector<std::pair<RequestId, SlotRef>> online_matching() const {
    return engine_.online_matching();
  }

  const Metrics& metrics() const { return engine_.metrics(); }

  // ---- write API (strategy only, during on_round) ----

  /// Books a pending request into a free window slot it allows.
  void assign(RequestId id, SlotRef slot) { engine_.assign(id, slot); }

  /// Removes a booking.
  void unassign(RequestId id) { engine_.unassign(id); }

  /// Moves a booking (unassign + assign, counted as one reassignment).
  void move(RequestId id, SlotRef slot) { engine_.move(id, slot); }

  /// Adds to the reassignment counter (used by strategies that rebook via
  /// two-phase unassign/assign instead of move()).
  void note_reassignments(std::int64_t count) {
    engine_.note_reassignments(count);
  }

  /// Records that `resource` burns the current round serving an
  /// already-fulfilled duplicate copy (independent-copy EDF only).
  void record_wasted_execution(ResourceId resource) {
    engine_.record_wasted_execution(resource);
  }

  /// Adds communication-round / message accounting (local strategies).
  void record_communication(std::int64_t rounds, std::int64_t messages) {
    engine_.record_communication(rounds, messages);
  }

 private:
  StreamingEngine engine_;
};

}  // namespace reqsched
