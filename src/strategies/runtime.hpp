// StrategyRuntime: the paper's strategy rules as policies over the engine's
// delta-maintained window problem.
//
// Every strategy used to own a private rebuild loop: scan the schedule for
// free slots, build a fresh graph, solve, apply. The runtime replaces those
// loops with policy methods over the persistent DeltaWindowProblem that the
// engine mirrors its round loop into (arrivals append rows, retirement
// removes them, schedule edits flip free bits, the round boundary shifts
// columns). A strategy becomes reset() + a couple of policy calls:
//
//   A_fix         = match_new_into_window + extend_with_stragglers
//   A_current     = match_current_round
//   A_fix_balance = balance_free_window
//   A_eager       = rematch_window(eager_levels = true)
//   A_balance     = rematch_window(eager_levels = false)
//   EDF           = edf_single / edf_two_choice
//   local         = earliest_free_slot during message acceptance
//
// Each policy is bit-identical to the legacy per-round-rebuild code it
// replaces (the differential suite in tests/test_strategy_runtime.cpp pins
// this): the Kuhn family runs directly in ring-slot space with the exact
// kuhn_ordered / greedy_maximal traversal order, the balance family feeds
// solve_lex_matching an edge-for-edge identical problem, and the apply /
// rebook steps replicate the legacy booking order. What changes is the cost:
// O(candidates x window) per round with zero steady-state allocations,
// instead of O(n x d) schedule scans plus fresh graphs.
//
// The runtime only reads the window problem; every mutation goes through the
// simulator so the engine's mirror stays authoritative.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "matching/lex_matcher.hpp"

namespace reqsched {

class Simulator;
class DeltaWindowProblem;

class StrategyRuntime {
 public:
  /// Drops per-run state, reusing capacity. Call from IStrategy::reset.
  void reset(const ProblemConfig& config);

  // ---- A_fix ----

  /// Maximum matching (Kuhn, injection order) of this round's arrivals into
  /// the free window slots, booked through the simulator. No-op when the
  /// engine's admission fast path already admitted the batch
  /// (sim.admission_outcome() == kAdmitted): the greedy bookings it made are
  /// provably this matching.
  void match_new_into_window(Simulator& sim);

  /// Greedy-maximal extension: each older unscheduled request takes its
  /// earliest free allowed slot, in backlog order.
  void extend_with_stragglers(Simulator& sim);

  // ---- A_current ----

  /// Maximum matching of all alive requests onto the current round's free
  /// slots only.
  void match_current_round(Simulator& sim);

  // ---- A_fix_balance ----

  /// Pure lexicographic placement of all unscheduled alive requests into the
  /// free window (level j = round t + j).
  void balance_free_window(Simulator& sim);

  // ---- A_eager / A_balance ----

  /// Cardinality-first lexicographic rematch of the full window; previously
  /// scheduled requests are required to stay matched (they may move).
  void rematch_window(Simulator& sim, bool eager_levels);

  // ---- EDF baselines ----

  void edf_single(Simulator& sim);
  void edf_two_choice(Simulator& sim, bool cancel_fulfilled_copies);

  // ---- local strategies ----

  /// Earliest free slot of `resource` in [from, to] — the resource-side
  /// acceptance probe, answered from the window's free bitmasks.
  SlotRef earliest_free_slot(Simulator& sim, ResourceId resource, Round from,
                             Round to) const;

  // ---- checkpoint hooks ----

  /// Appends the runtime's cross-round state as raw 64-bit words: the
  /// per-resource EDF copy queues (everything else is per-round scratch).
  /// Word layout per resource: queue length, then (request, deadline) pairs.
  /// The snapshot layer owns framing and byte format.
  void export_state(std::vector<std::uint64_t>& out) const;

  /// Restores state captured by export_state() on a freshly reset() runtime
  /// of the same configuration; rejects malformed word lists.
  void import_state(std::span<const std::uint64_t> state);

 private:
  const DeltaWindowProblem& window(Simulator& sim) const;
  /// Splits multi-round occupancy runs out of `lefts_` (the matchers take
  /// unit-occupancy rows only) and books each unbooked run greedily at its
  /// earliest feasible start <= `last_start`, alternatives in list order —
  /// the reusable-resource greedy. A no-op on unit-occupancy traffic, so
  /// the paper model never takes this path.
  void split_and_place_runs(Simulator& sim, Round last_start);
  /// Books every matched left of `lefts_`/`slots_` in left order.
  void apply_matches(Simulator& sim);
  /// Fills `lefts_` with the alive-but-unbooked backlog, oldest first,
  /// optionally excluding this round's arrivals.
  void collect_unscheduled(Simulator& sim, bool skip_injected);
  /// Fills lex_ levels for `rights_` and solves.
  LexMatchResult solve_lex(Simulator& sim, bool eager_levels,
                           bool cardinality_first);

  struct EdfCopy {
    RequestId request;
    Round deadline;
  };

  ProblemConfig config_{};
  std::vector<RequestId> lefts_;
  std::vector<RequestId> runs_;  ///< occupancy > 1 rows split from lefts_
  std::vector<SlotRef> rights_;
  std::vector<SlotRef> slots_;  ///< max_match output, parallel to lefts_
  LexMatchProblem lex_;         ///< graph + levels reused across rounds
  std::vector<std::size_t> to_assign_;
  std::vector<RequestId> edf_best_;
  std::vector<std::deque<EdfCopy>> edf_queues_;
};

}  // namespace reqsched
