// Randomized members of the strategy classes (an extension the paper's
// related-work section points at via [KVV90]'s RANKING).
//
// Every lower-bound construction in Section 2 steers a DETERMINISTIC
// implementation through its tie-breaking. Randomizing the ties keeps the
// strategy inside its class (the matchings are still maximum / rule-
// conforming — the proposal checker verifies this in tests) but breaks
// oblivious constructions: the adversary can no longer predict which
// maximum matching the algorithm picks. Against the ADAPTIVE adversary of
// Theorem 2.6 randomization does not help, which bench_randomized shows.
#pragma once

#include "engine/simulator.hpp"
#include "core/strategy.hpp"
#include "util/prng.hpp"

namespace reqsched {

/// A_current with a uniformly random request processing order each round
/// (instead of serve-oldest-first).
class RandomizedCurrent final : public IStrategy {
 public:
  explicit RandomizedCurrent(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  std::string name() const override { return "A_current_randomized"; }
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    append_prng_words(rng_, out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    restore_prng_words(rng_, state);
  }

 private:
  std::uint64_t seed_;
  Prng rng_;
};

/// A_fix with randomly permuted request order and slot preferences in the
/// new-request matching step.
class RandomizedFix final : public IStrategy {
 public:
  explicit RandomizedFix(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  std::string name() const override { return "A_fix_randomized"; }
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    append_prng_words(rng_, out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    restore_prng_words(rng_, state);
  }

 private:
  std::uint64_t seed_;
  Prng rng_;
};

}  // namespace reqsched
