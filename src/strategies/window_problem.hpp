// Shared plumbing: turn the simulator's per-round view G_t into bipartite
// matching problems over (candidate requests) x (candidate slots), and apply
// solved matchings back to the schedule.
#pragma once

#include <span>
#include <vector>

#include "engine/simulator.hpp"
#include "matching/bipartite.hpp"
#include "matching/lex_matcher.hpp"

namespace reqsched {

/// Which slots of the window become right-hand vertices.
enum class SlotScope {
  kFreeWindow,    ///< free slots in [t, t+d)
  kCurrentRound,  ///< free slots of round t only
  kFullWindow,    ///< every slot in [t, t+d), booked or not
};

/// A per-round matching problem with id mappings back to the simulator.
struct RoundProblem {
  std::vector<RequestId> lefts;
  std::vector<SlotRef> rights;
  BipartiteGraph graph{0, 0};

  std::int32_t right_index_of(SlotRef slot) const;
};

/// Builds the problem. Rights are ordered (round asc, resource asc); each
/// left's adjacency follows the same order, so augmenting algorithms prefer
/// early rounds, then low resource indices — the library's deterministic
/// default tie-break.
RoundProblem build_round_problem(const Simulator& sim,
                                 std::span<const RequestId> lefts,
                                 SlotScope scope);

/// Books every matched left into its slot (slots must be free).
void apply_assignments(Simulator& sim, const RoundProblem& problem,
                       const std::vector<std::int32_t>& left_to_right);

/// Lifts a RoundProblem into a lexicographic problem. `eager_levels` = true
/// collapses levels to {round t, later} (A_eager); otherwise level j is round
/// t+j (A_fix_balance / A_balance).
LexMatchProblem to_lex_problem(const Simulator& sim,
                               const RoundProblem& problem, bool eager_levels,
                               bool cardinality_first);

/// The alive-but-unbooked requests, oldest first.
std::vector<RequestId> unscheduled_alive(const Simulator& sim);

/// The alive-and-unbooked requests that did NOT arrive this round.
std::vector<RequestId> older_unscheduled(const Simulator& sim);

/// Rebooks the schedule to match `target` (full final booking map for all
/// lefts; -1 entries end up unbooked). Previously booked lefts whose slot
/// changes are counted as reassignments. Two-phase (unassign, then assign)
/// so cyclic slot swaps cannot conflict.
void rebook(Simulator& sim, const RoundProblem& problem,
            const std::vector<std::int32_t>& target);

}  // namespace reqsched
