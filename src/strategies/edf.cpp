#include "strategies/edf.hpp"

#include <algorithm>
#include <tuple>

namespace reqsched {

void EdfSingle::on_round(Simulator& sim) {
  const Round t = sim.now();
  // Earliest deadline first, ties by injection order; each resource serves
  // one request in the current round. No future slots are ever booked, so
  // the alive list is exactly the per-resource queues.
  std::vector<RequestId> best(static_cast<std::size_t>(sim.config().n),
                              kNoRequest);
  for (const RequestId id : sim.alive()) {
    const Request& r = sim.request(id);
    REQSCHED_CHECK_MSG(r.alternative_count() == 1,
                       "EdfSingle requires single-alternative requests");
    RequestId& slot_best = best[static_cast<std::size_t>(r.first)];
    if (slot_best == kNoRequest ||
        sim.request(slot_best).deadline > r.deadline) {
      slot_best = id;
    }
  }
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    const RequestId id = best[static_cast<std::size_t>(i)];
    if (id != kNoRequest) sim.assign(id, SlotRef{i, t});
  }
}

void EdfTwoChoice::reset(const ProblemConfig& config) {
  queues_.assign(static_cast<std::size_t>(config.n), {});
}

void EdfTwoChoice::on_round(Simulator& sim) {
  const Round t = sim.now();

  // Enqueue one copy per alternative of each newly injected request.
  for (const RequestId id : sim.injected_now()) {
    const Request& r = sim.request(id);
    REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                       "EdfTwoChoice requires two-alternative requests");
    for (const ResourceId res : {r.first, r.second}) {
      auto& queue = queues_[static_cast<std::size_t>(res)];
      const Copy copy{id, r.deadline};
      const auto pos = std::lower_bound(
          queue.begin(), queue.end(), copy, [](const Copy& a, const Copy& b) {
            return std::tie(a.deadline, a.request) <
                   std::tie(b.deadline, b.request);
          });
      queue.insert(pos, copy);
    }
  }

  for (ResourceId i = 0; i < sim.config().n; ++i) {
    auto& queue = queues_[static_cast<std::size_t>(i)];
    // Drop expired copies (they sort to the front); optionally drop copies
    // whose request was already fulfilled in an earlier round.
    while (!queue.empty() &&
           (queue.front().deadline < t ||
            (cancel_fulfilled_copies_ &&
             sim.status(queue.front().request) == RequestStatus::kFulfilled))) {
      queue.pop_front();
    }
    if (queue.empty()) continue;

    const Copy copy = queue.front();
    if (sim.status(copy.request) == RequestStatus::kFulfilled ||
        sim.is_scheduled(copy.request)) {
      // The sibling copy ran in an earlier round, or the other resource
      // booked the request this very round: this resource redundantly
      // serves the same data item — a round burned without gain.
      sim.record_wasted_execution(i);
    } else {
      sim.assign(copy.request, SlotRef{i, t});
    }
    queue.pop_front();
  }
}

}  // namespace reqsched
