#include "strategies/runtime.hpp"

#include <algorithm>
#include <tuple>

#include "engine/simulator.hpp"
#include "matching/delta_window.hpp"

namespace reqsched {

void StrategyRuntime::reset(const ProblemConfig& config) {
  config.validate();
  config_ = config;
  lefts_.clear();
  runs_.clear();
  rights_.clear();
  slots_.clear();
  to_assign_.clear();
  edf_best_.clear();
  edf_queues_.assign(static_cast<std::size_t>(config.n), {});
}

const DeltaWindowProblem& StrategyRuntime::window(Simulator& sim) const {
  return sim.engine().window_problem();
}

void StrategyRuntime::export_state(std::vector<std::uint64_t>& out) const {
  for (const auto& queue : edf_queues_) {
    out.push_back(queue.size());
    for (const EdfCopy& copy : queue) {
      out.push_back(static_cast<std::uint64_t>(copy.request));
      out.push_back(static_cast<std::uint64_t>(copy.deadline));
    }
  }
}

void StrategyRuntime::import_state(std::span<const std::uint64_t> state) {
  std::size_t pos = 0;
  for (auto& queue : edf_queues_) {
    REQSCHED_REQUIRE_MSG(pos < state.size(),
                         "StrategyRuntime::import_state: truncated state");
    const std::uint64_t len = state[pos++];
    REQSCHED_REQUIRE_MSG((state.size() - pos) / 2 >= len,
                         "StrategyRuntime::import_state: truncated state");
    queue.clear();
    for (std::uint64_t i = 0; i < len; ++i) {
      const auto request = static_cast<RequestId>(state[pos]);
      const auto deadline = static_cast<Round>(state[pos + 1]);
      REQSCHED_REQUIRE(request >= 0);
      queue.push_back(EdfCopy{request, deadline});
      pos += 2;
    }
  }
  REQSCHED_REQUIRE_MSG(pos == state.size(),
                       "StrategyRuntime::import_state: trailing state words");
}

void StrategyRuntime::split_and_place_runs(Simulator& sim, Round last_start) {
  runs_.clear();
  std::size_t out = 0;
  for (const RequestId id : lefts_) {
    if (sim.request(id).occupancy > 1) {
      runs_.push_back(id);
    } else {
      lefts_[out++] = id;
    }
  }
  if (runs_.empty()) return;
  lefts_.resize(out);
  const DeltaWindowProblem& w = window(sim);
  for (const RequestId id : runs_) {
    if (sim.is_scheduled(id)) continue;  // booked runs stay put
    const SlotRef slot = w.first_free_allowed(sim.request(id), last_start);
    if (slot.valid()) sim.assign(id, slot);
  }
}

void StrategyRuntime::apply_matches(Simulator& sim) {
  for (std::size_t l = 0; l < lefts_.size(); ++l) {
    if (slots_[l].valid()) sim.assign(lefts_[l], slots_[l]);
  }
}

void StrategyRuntime::collect_unscheduled(Simulator& sim, bool skip_injected) {
  const auto injected = sim.injected_now();
  // Pool ids are monotone and never recycled, so "injected this round" is
  // exactly the ids at or past the round's first admission — an O(1) test
  // instead of a scan of the injected span per alive request.
  const RequestId injected_floor =
      skip_injected && !injected.empty() ? injected.front() : kNoRequest;
  lefts_.clear();
  for (const RequestId id : sim.alive()) {
    if (sim.is_scheduled(id)) continue;
    if (injected_floor != kNoRequest && id >= injected_floor) continue;
    lefts_.push_back(id);
  }
}

void StrategyRuntime::match_new_into_window(Simulator& sim) {
  // The engine's admission fast path (strategies opt in via
  // wants_admission_fast_path) may have already booked the whole batch: an
  // admitted outcome certifies every arrival was uncontended, so the greedy
  // bookings are exactly the Kuhn matching computed below. Contended or
  // inactive rounds fall through to the matcher against the pristine window.
  if (sim.admission_outcome() == AdmissionOutcome::kAdmitted) return;
  const auto injected = sim.injected_now();
  lefts_.assign(injected.begin(), injected.end());
  split_and_place_runs(sim, sim.now() + config_.d);
  window(sim).max_match(lefts_, WindowScope::kFreeWindow, slots_);
  apply_matches(sim);
}

void StrategyRuntime::extend_with_stragglers(Simulator& sim) {
  collect_unscheduled(sim, /*skip_injected=*/true);
  const DeltaWindowProblem& w = window(sim);
  // Booking immediately makes each straggler's pick visible to the next
  // probe — the same consumption greedy_maximal models via right_matched.
  // Probe via the pool's O(1) request lookup; the row-table overload would
  // pay a hash probe per straggler.
  for (const RequestId id : lefts_) {
    const SlotRef slot = w.first_free_allowed(sim.request(id));
    if (slot.valid()) sim.assign(id, slot);
  }
}

void StrategyRuntime::match_current_round(Simulator& sim) {
  // kAdmitted certifies the backlog was empty and every arrival uncontended
  // under the engine's current-round probe clamp, so the fast path's greedy
  // bookings are exactly this Kuhn matching (A_current opts in with
  // admission_probe_current_round_only + admission_needs_empty_backlog).
  if (sim.admission_outcome() == AdmissionOutcome::kAdmitted) return;
  const auto alive = sim.alive();
  lefts_.assign(alive.begin(), alive.end());
  split_and_place_runs(sim, sim.now());
  window(sim).max_match(lefts_, WindowScope::kCurrentRound, slots_);
  apply_matches(sim);
}

LexMatchResult StrategyRuntime::solve_lex(Simulator& sim, bool eager_levels,
                                          bool cardinality_first) {
  const Round t = sim.now();
  lex_.level_count = eager_levels ? 2 : config_.d;
  lex_.cardinality_first = cardinality_first;
  lex_.level_of_right.resize(rights_.size());
  for (std::size_t r = 0; r < rights_.size(); ++r) {
    const Round offset = rights_[r].round - t;
    lex_.level_of_right[r] = eager_levels
                                 ? (offset == 0 ? 0 : 1)
                                 : static_cast<std::int32_t>(offset);
  }
  return solve_lex_matching(lex_);
}

void StrategyRuntime::balance_free_window(Simulator& sim) {
  // kAdmitted certifies the backlog was empty and every arrival uncontended:
  // each greedy booking is its row's lex-optimal placement, jointly the lex
  // optimum (A_fix_balance opts in with admission_needs_empty_backlog).
  if (sim.admission_outcome() == AdmissionOutcome::kAdmitted) return;
  collect_unscheduled(sim, /*skip_injected=*/false);
  split_and_place_runs(sim, sim.now() + config_.d);
  window(sim).build_problem(lefts_, WindowScope::kFreeWindow, rights_,
                            lex_.graph);
  lex_.required_lefts.clear();
  const LexMatchResult result = solve_lex(sim, /*eager_levels=*/false,
                                          /*cardinality_first=*/false);
  slots_.assign(lefts_.size(), kNoSlot);
  for (std::size_t l = 0; l < lefts_.size(); ++l) {
    const std::int32_t r = result.left_to_right[l];
    if (r >= 0) slots_[l] = rights_[static_cast<std::size_t>(r)];
  }
  apply_matches(sim);
}

void StrategyRuntime::rematch_window(Simulator& sim, bool eager_levels) {
  const auto alive = sim.alive();
  lefts_.assign(alive.begin(), alive.end());
  // Runs never re-match: booked ones keep their units (build_problem locks
  // them out of the full-window rights), unbooked ones place greedily.
  split_and_place_runs(sim, sim.now() + config_.d);
  window(sim).build_problem(lefts_, WindowScope::kFullWindow, rights_,
                            lex_.graph);
  lex_.required_lefts.clear();
  for (std::size_t l = 0; l < lefts_.size(); ++l) {
    if (sim.is_scheduled(lefts_[l])) {
      lex_.required_lefts.push_back(static_cast<std::int32_t>(l));
    }
  }
  const LexMatchResult result =
      solve_lex(sim, eager_levels, /*cardinality_first=*/true);

  // Rebook to the target map: two-phase (unassign, then assign) so cyclic
  // slot swaps cannot conflict; a booked left whose slot changes counts as
  // one reassignment.
  to_assign_.clear();
  std::int64_t reassigned = 0;
  for (std::size_t l = 0; l < lefts_.size(); ++l) {
    const RequestId id = lefts_[l];
    const SlotRef old_slot = sim.slot_of(id);
    const std::int32_t r = result.left_to_right[l];
    const SlotRef new_slot =
        r >= 0 ? rights_[static_cast<std::size_t>(r)] : kNoSlot;
    if (old_slot == new_slot) continue;
    if (old_slot.valid()) {
      sim.unassign(id);
      if (new_slot.valid()) ++reassigned;
    }
    if (new_slot.valid()) to_assign_.push_back(l);
  }
  for (const std::size_t l : to_assign_) {
    sim.assign(lefts_[l],
               rights_[static_cast<std::size_t>(result.left_to_right[l])]);
  }
  sim.note_reassignments(reassigned);
}

void StrategyRuntime::edf_single(Simulator& sim) {
  const Round t = sim.now();
  // Earliest deadline first, ties by injection order; each resource serves
  // one request in the current round. No future slots are ever booked, so
  // the alive list is exactly the per-resource queues.
  edf_best_.assign(static_cast<std::size_t>(config_.n), kNoRequest);
  for (const RequestId id : sim.alive()) {
    const Request& r = sim.request(id);
    REQSCHED_CHECK_MSG(r.alternative_count() == 1,
                       "EdfSingle requires single-alternative requests");
    REQSCHED_CHECK_MSG(r.occupancy == 1,
                       "EdfSingle requires unit-occupancy requests");
    RequestId& best = edf_best_[static_cast<std::size_t>(r.first())];
    if (best == kNoRequest || sim.request(best).deadline > r.deadline) {
      best = id;
    }
  }
  for (ResourceId i = 0; i < config_.n; ++i) {
    const RequestId id = edf_best_[static_cast<std::size_t>(i)];
    if (id != kNoRequest) sim.assign(id, SlotRef{i, t});
  }
}

void StrategyRuntime::edf_two_choice(Simulator& sim,
                                     bool cancel_fulfilled_copies) {
  const Round t = sim.now();

  // Enqueue one copy per alternative of each newly injected request.
  for (const RequestId id : sim.injected_now()) {
    const Request& r = sim.request(id);
    REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                       "EdfTwoChoice requires two-alternative requests");
    REQSCHED_CHECK_MSG(r.occupancy == 1,
                       "EdfTwoChoice requires unit-occupancy requests");
    for (const ResourceId res : r.alts) {
      auto& queue = edf_queues_[static_cast<std::size_t>(res)];
      const EdfCopy copy{id, r.deadline};
      const auto pos = std::lower_bound(
          queue.begin(), queue.end(), copy,
          [](const EdfCopy& a, const EdfCopy& b) {
            return std::tie(a.deadline, a.request) <
                   std::tie(b.deadline, b.request);
          });
      queue.insert(pos, copy);
    }
  }

  for (ResourceId i = 0; i < config_.n; ++i) {
    auto& queue = edf_queues_[static_cast<std::size_t>(i)];
    // Drop expired copies (they sort to the front); optionally drop copies
    // whose request was already fulfilled in an earlier round.
    while (!queue.empty() &&
           (queue.front().deadline < t ||
            (cancel_fulfilled_copies &&
             sim.status(queue.front().request) == RequestStatus::kFulfilled))) {
      queue.pop_front();
    }
    if (queue.empty()) continue;

    const EdfCopy copy = queue.front();
    if (sim.status(copy.request) == RequestStatus::kFulfilled ||
        sim.is_scheduled(copy.request)) {
      // The sibling copy ran in an earlier round, or the other resource
      // booked the request this very round: this resource redundantly
      // serves the same data item — a round burned without gain.
      sim.record_wasted_execution(i);
    } else {
      sim.assign(copy.request, SlotRef{i, t});
    }
    queue.pop_front();
  }
}

SlotRef StrategyRuntime::earliest_free_slot(Simulator& sim,
                                            ResourceId resource, Round from,
                                            Round to) const {
  return window(sim).earliest_free_slot(resource, from, to);
}

}  // namespace reqsched
