// Earliest Deadline First strategies (Observations 3.1 and 3.2).
//
// EdfSingle: each resource independently serves, every round, the pending
// request naming it (as only alternative) with the earliest deadline.
// 1-competitive when every request has exactly one alternative.
//
// EdfTwoChoice: the paper's analysis treats the two copies of a request as
// fully independent per-resource EDF queues: a copy stays queued even after
// its sibling was served, and a resource serving such a copy gains nothing.
// That independent-copy semantics is what makes EDF exactly 2-competitive
// with two alternatives. `cancel_fulfilled_copies` switches to the obvious
// engineering fix (drop sibling copies between rounds) — still 2-competitive
// in the worst case (same-round double service remains possible), but far
// better on benign workloads; used by the ablation bench.
//
// Both are StrategyRuntime policies (the runtime owns the per-resource
// queues and scratch). They never book beyond the current round, so they do
// not ask for the engine's window problem.
#pragma once

#include "engine/simulator.hpp"
#include "core/strategy.hpp"
#include "strategies/runtime.hpp"

namespace reqsched {

class EdfSingle final : public IStrategy {
 public:
  std::string name() const override { return "EDF_single"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override { runtime_.edf_single(sim); }

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    runtime_.export_state(out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    runtime_.import_state(state);
  }

 private:
  StrategyRuntime runtime_;
};

class EdfTwoChoice final : public IStrategy {
 public:
  explicit EdfTwoChoice(bool cancel_fulfilled_copies = false)
      : cancel_fulfilled_copies_(cancel_fulfilled_copies) {}

  std::string name() const override {
    return cancel_fulfilled_copies_ ? "EDF_two_choice_cancel"
                                    : "EDF_two_choice";
  }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override {
    runtime_.edf_two_choice(sim, cancel_fulfilled_copies_);
  }

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    runtime_.export_state(out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    runtime_.import_state(state);
  }

 private:
  bool cancel_fulfilled_copies_;
  StrategyRuntime runtime_;
};

}  // namespace reqsched
