// Earliest Deadline First strategies (Observations 3.1 and 3.2).
//
// EdfSingle: each resource independently serves, every round, the pending
// request naming it (as only alternative) with the earliest deadline.
// 1-competitive when every request has exactly one alternative.
//
// EdfTwoChoice: the paper's analysis treats the two copies of a request as
// fully independent per-resource EDF queues: a copy stays queued even after
// its sibling was served, and a resource serving such a copy gains nothing.
// That independent-copy semantics is what makes EDF exactly 2-competitive
// with two alternatives. `cancel_fulfilled_copies` switches to the obvious
// engineering fix (drop sibling copies between rounds) — still 2-competitive
// in the worst case (same-round double service remains possible), but far
// better on benign workloads; used by the ablation bench.
#pragma once

#include <cstdint>
#include <deque>

#include "core/simulator.hpp"
#include "core/strategy.hpp"

namespace reqsched {

class EdfSingle final : public IStrategy {
 public:
  std::string name() const override { return "EDF_single"; }
  void on_round(Simulator& sim) override;
};

class EdfTwoChoice final : public IStrategy {
 public:
  explicit EdfTwoChoice(bool cancel_fulfilled_copies = false)
      : cancel_fulfilled_copies_(cancel_fulfilled_copies) {}

  std::string name() const override {
    return cancel_fulfilled_copies_ ? "EDF_two_choice_cancel"
                                    : "EDF_two_choice";
  }
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;

 private:
  struct Copy {
    RequestId request;
    Round deadline;
  };

  bool cancel_fulfilled_copies_;
  /// Per-resource copy queues; kept sorted by (deadline, request id).
  std::vector<std::deque<Copy>> queues_;
};

}  // namespace reqsched
