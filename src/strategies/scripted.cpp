#include "strategies/scripted.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "matching/lex_matcher.hpp"
#include "strategies/global.hpp"
#include "strategies/window_problem.hpp"

namespace reqsched {

std::unique_ptr<IStrategy> make_reference_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFix: return std::make_unique<AFix>();
    case StrategyKind::kCurrent: return std::make_unique<ACurrent>();
    case StrategyKind::kFixBalance: return std::make_unique<AFixBalance>();
    case StrategyKind::kEager: return std::make_unique<AEager>();
    case StrategyKind::kBalance: return std::make_unique<ABalance>();
  }
  REQSCHED_CHECK(false);
  return nullptr;
}

namespace {

struct ProposalView {
  std::unordered_map<RequestId, SlotRef> slot_of;
  std::unordered_set<SlotRef> used_slots;
};

/// Validity shared by all strategy kinds; fills the lookup view.
ProposalCheck basic_validity(const Simulator& sim, const Proposal& proposal,
                             ProposalView& view) {
  const Schedule& schedule = sim.schedule();
  for (const auto& [id, slot] : proposal) {
    std::ostringstream why;
    if (id < 0 || id >= sim.trace().size()) {
      why << "unknown request r" << id;
      return {false, why.str()};
    }
    const Request& r = sim.request(id);
    if (!sim.is_pending(id)) {
      why << r << " is not pending";
      return {false, why.str()};
    }
    if (!slot.valid() || !schedule.in_window(slot.round) ||
        slot.resource < 0 || slot.resource >= sim.config().n) {
      why << "slot outside window: " << slot;
      return {false, why.str()};
    }
    if (!r.allows_slot(slot)) {
      why << r << " does not allow " << slot;
      return {false, why.str()};
    }
    if (!view.slot_of.emplace(id, slot).second) {
      why << "duplicate booking for r" << id;
      return {false, why.str()};
    }
    if (!view.used_slots.insert(slot).second) {
      why << "slot double-booked: " << slot;
      return {false, why.str()};
    }
  }
  return {true, {}};
}

/// Bookings currently held in the schedule, as (request, slot) pairs.
std::vector<std::pair<RequestId, SlotRef>> current_bookings(
    const Simulator& sim) {
  std::vector<std::pair<RequestId, SlotRef>> out;
  for (const RequestId id : sim.alive()) {
    const SlotRef slot = sim.slot_of(id);
    if (slot.valid()) out.emplace_back(id, slot);
  }
  return out;
}

/// Checks that the final booking map leaves no pending request that could
/// still be booked into an unused window slot (maximality of the matching).
ProposalCheck check_maximality(const Simulator& sim, const ProposalView& view) {
  const Round t = sim.now();
  const Round last = sim.schedule().window_end() - 1;
  for (const RequestId id : sim.alive()) {
    if (view.slot_of.count(id)) continue;
    const Request& r = sim.request(id);
    const Round hi = std::min(r.deadline, last);
    for (Round round = std::max(r.arrival, t); round <= hi; ++round) {
      for (const ResourceId res : r.alts) {
        if (!view.used_slots.count(SlotRef{res, round})) {
          std::ostringstream why;
          why << "not maximal: " << r << " could use " << SlotRef{res, round};
          return {false, why.str()};
        }
      }
    }
  }
  return {true, {}};
}

/// Per-level counts of a booking map (level = round - now).
std::vector<std::int64_t> profile_of(const Simulator& sim,
                                     const ProposalView& view) {
  std::vector<std::int64_t> profile(static_cast<std::size_t>(sim.config().d),
                                    0);
  for (const SlotRef& slot : view.used_slots) {
    ++profile[static_cast<std::size_t>(slot.round - sim.now())];
  }
  return profile;
}

ProposalCheck check_fix_family(const Simulator& sim, const Proposal& proposal,
                               const ProposalView& view, bool balance_rule) {
  // Rule 1: every existing booking is kept, in its exact slot.
  for (const auto& [id, slot] : current_bookings(sim)) {
    const auto it = view.slot_of.find(id);
    if (it == view.slot_of.end() || it->second != slot) {
      std::ostringstream why;
      why << "A_fix rule: r" << id << " must stay at " << slot;
      return {false, why.str()};
    }
  }
  (void)proposal;

  if (!balance_rule) {
    // Rule 2 of A_fix: the number of scheduled *new* requests is maximum.
    const auto injected = sim.injected_now();
    const RoundProblem reference = build_round_problem(
        sim, {injected.begin(), injected.end()}, SlotScope::kFreeWindow);
    const std::int64_t optimum = hopcroft_karp(reference.graph).size();
    std::int64_t scheduled_new = 0;
    for (const RequestId id : injected) {
      if (view.slot_of.count(id)) ++scheduled_new;
    }
    if (scheduled_new != optimum) {
      std::ostringstream why;
      why << "A_fix rule: schedules " << scheduled_new << " new requests, "
          << optimum << " possible";
      return {false, why.str()};
    }
    return check_maximality(sim, view);
  }

  // A_fix_balance: the lexicographic profile over the *free* slots must be
  // optimal (existing bookings contribute equal constants on both sides, so
  // we compare full-window profiles against solver profile + constants).
  const auto lefts = unscheduled_alive(sim);
  const RoundProblem reference =
      build_round_problem(sim, lefts, SlotScope::kFreeWindow);
  const LexMatchProblem lex = to_lex_problem(
      sim, reference, /*eager_levels=*/false, /*cardinality_first=*/false);
  const LexMatchResult best = solve_lex_matching(lex);

  std::vector<std::int64_t> target(static_cast<std::size_t>(sim.config().d));
  for (std::int32_t j = 0; j < sim.config().d; ++j) {
    target[static_cast<std::size_t>(j)] =
        best.level_counts[static_cast<std::size_t>(j)] +
        sim.schedule().booked_in_round(sim.now() + j);
  }
  const auto actual = profile_of(sim, view);
  if (compare_profiles(actual, target) != 0) {
    std::ostringstream why;
    why << "A_fix_balance rule: profile is not lexicographically optimal";
    return {false, why.str()};
  }
  return {true, {}};
}

ProposalCheck check_current(const Simulator& sim, const ProposalView& view) {
  for (const SlotRef& slot : view.used_slots) {
    if (slot.round != sim.now()) {
      std::ostringstream why;
      why << "A_current rule: booking beyond the current round: " << slot;
      return {false, why.str()};
    }
  }
  const auto alive = sim.alive();
  const RoundProblem reference = build_round_problem(
      sim, {alive.begin(), alive.end()}, SlotScope::kCurrentRound);
  const std::int64_t optimum = hopcroft_karp(reference.graph).size();
  if (static_cast<std::int64_t>(view.slot_of.size()) != optimum) {
    std::ostringstream why;
    why << "A_current rule: " << view.slot_of.size() << " booked, maximum is "
        << optimum;
    return {false, why.str()};
  }
  return {true, {}};
}

ProposalCheck check_rematch_family(const Simulator& sim,
                                   const ProposalView& view,
                                   bool full_profile) {
  // Previously scheduled requests must remain scheduled (slots may differ).
  for (const auto& [id, slot] : current_bookings(sim)) {
    (void)slot;
    if (!view.slot_of.count(id)) {
      std::ostringstream why;
      why << "rule: previously scheduled r" << id << " dropped";
      return {false, why.str()};
    }
  }
  const auto alive = sim.alive();
  const RoundProblem reference = build_round_problem(
      sim, {alive.begin(), alive.end()}, SlotScope::kFullWindow);
  LexMatchProblem lex = to_lex_problem(sim, reference,
                                       /*eager_levels=*/!full_profile,
                                       /*cardinality_first=*/true);
  for (std::size_t l = 0; l < reference.lefts.size(); ++l) {
    if (sim.is_scheduled(reference.lefts[l])) {
      lex.required_lefts.push_back(static_cast<std::int32_t>(l));
    }
  }
  const LexMatchResult best = solve_lex_matching(lex);

  if (static_cast<std::int64_t>(view.slot_of.size()) != best.cardinality) {
    std::ostringstream why;
    why << "rule: matching has " << view.slot_of.size() << " requests, "
        << "maximum is " << best.cardinality;
    return {false, why.str()};
  }
  const auto actual = profile_of(sim, view);
  if (!full_profile) {
    // A_eager: only the current-round count must be optimal.
    if (actual[0] != best.level_counts[0]) {
      std::ostringstream why;
      why << "A_eager rule: " << actual[0] << " executions now, "
          << best.level_counts[0] << " possible";
      return {false, why.str()};
    }
    return {true, {}};
  }
  if (compare_profiles(actual, best.level_counts) != 0) {
    std::ostringstream why;
    why << "A_balance rule: profile is not lexicographically optimal";
    return {false, why.str()};
  }
  return {true, {}};
}

}  // namespace

ProposalCheck check_proposal(StrategyKind kind, const Simulator& sim,
                             const Proposal& proposal) {
  ProposalView view;
  if (auto basic = basic_validity(sim, proposal, view); !basic.ok) {
    return basic;
  }
  switch (kind) {
    case StrategyKind::kFix:
      return check_fix_family(sim, proposal, view, /*balance_rule=*/false);
    case StrategyKind::kFixBalance:
      return check_fix_family(sim, proposal, view, /*balance_rule=*/true);
    case StrategyKind::kCurrent:
      return check_current(sim, view);
    case StrategyKind::kEager:
      return check_rematch_family(sim, view, /*full_profile=*/false);
    case StrategyKind::kBalance:
      return check_rematch_family(sim, view, /*full_profile=*/true);
  }
  return {false, "unknown strategy kind"};
}

ScriptedStrategy::ScriptedStrategy(StrategyKind kind, IProposalSource& source)
    : kind_(kind), source_(source),
      fallback_(make_reference_strategy(kind)) {}

std::string ScriptedStrategy::name() const {
  return std::string(to_string(kind_)) + "_scripted";
}

void ScriptedStrategy::reset(const ProblemConfig& config) {
  fallback_->reset(config);
  violations_ = 0;
  violation_log_.clear();
}

void ScriptedStrategy::on_round(Simulator& sim) {
  const auto proposal = source_.propose(sim);
  if (proposal) {
    const ProposalCheck check = check_proposal(kind_, sim, *proposal);
    if (check.ok) {
      // Adopt: rebook the window to exactly the proposed map.
      std::unordered_map<RequestId, SlotRef> target(proposal->begin(),
                                                    proposal->end());
      std::int64_t reassigned = 0;
      for (const RequestId id : sim.alive()) {
        const SlotRef old_slot = sim.slot_of(id);
        const auto it = target.find(id);
        const SlotRef new_slot = it == target.end() ? kNoSlot : it->second;
        if (old_slot == new_slot) {
          if (it != target.end()) target.erase(it);
          continue;
        }
        if (old_slot.valid()) {
          sim.unassign(id);
          if (new_slot.valid()) ++reassigned;
        }
      }
      for (const RequestId id : sim.alive()) {
        const auto it = target.find(id);
        if (it != target.end() && sim.slot_of(id) != it->second) {
          sim.assign(id, it->second);
        }
      }
      sim.note_reassignments(reassigned);
      return;
    }
    ++violations_;
    std::ostringstream entry;
    entry << "round " << sim.now() << ": " << check.reason;
    violation_log_.push_back(entry.str());
  }
  fallback_->on_round(sim);
}

}  // namespace reqsched
