// Observation 3.2, general form: with c alternatives per request, the
// independent-copy EDF strategy is c-competitive, and exactly c-competitive
// in the worst case.
//
// The core model fixes two alternatives (the paper's focus), so the
// c-alternative extension lives in its own self-contained mini-model: a
// multi-alternative trace, the per-resource independent-copy EDF simulation,
// and the exact offline optimum on the request x slot graph.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "matching/bipartite.hpp"
#include "util/prng.hpp"

namespace reqsched {

struct MultiRequest {
  Round arrival = 0;
  Round deadline = 0;  ///< inclusive last usable round
  std::vector<ResourceId> alternatives;
};

/// A request sequence in the c-alternative model.
class MultiTrace {
 public:
  MultiTrace(std::int32_t n, std::int32_t d);

  std::int32_t n() const { return n_; }
  std::int32_t d() const { return d_; }

  /// Alternatives must be distinct and in range; arrivals non-decreasing.
  void add(Round arrival, std::vector<ResourceId> alternatives);

  const std::vector<MultiRequest>& requests() const { return requests_; }
  Round last_useful_round() const { return last_useful_; }

 private:
  std::int32_t n_;
  std::int32_t d_;
  std::vector<MultiRequest> requests_;
  Round last_useful_ = 0;
};

struct MultiEdfResult {
  std::int64_t fulfilled = 0;          ///< distinct requests served
  std::int64_t wasted_executions = 0;  ///< duplicate-copy service rounds
};

/// Runs independent-copy EDF: every request enqueues one copy per
/// alternative; each round every resource serves its earliest-deadline
/// unexpired copy (ties towards earlier injection). A copy whose request was
/// already served elsewhere burns the round without gain.
MultiEdfResult run_multi_edf(const MultiTrace& trace);

/// Exact offline optimum (maximum matching of requests to time slots).
std::int64_t multi_offline_optimum(const MultiTrace& trace);

/// The c-competitiveness tightness instance: per interval, c identical
/// groups of d requests over the same c resources; EDF serves the first
/// group on all c resources while the other c-1 groups starve.
MultiTrace make_multi_edf_tight_instance(std::int32_t c, std::int32_t d,
                                         std::int32_t intervals);

/// Random c-alternative workload (for the ratio <= c property sweep).
MultiTrace make_multi_random_instance(std::int32_t n, std::int32_t d,
                                      std::int32_t c, double load,
                                      Round horizon, std::uint64_t seed);

}  // namespace reqsched
