#include "strategies/window_problem.hpp"

#include <algorithm>

namespace reqsched {

std::int32_t RoundProblem::right_index_of(SlotRef slot) const {
  const auto it = std::find(rights.begin(), rights.end(), slot);
  return it == rights.end() ? -1
                            : static_cast<std::int32_t>(it - rights.begin());
}

RoundProblem build_round_problem(const Simulator& sim,
                                 std::span<const RequestId> lefts,
                                 SlotScope scope) {
  const Schedule& schedule = sim.schedule();
  const Round t = sim.now();
  const Round window_last =
      scope == SlotScope::kCurrentRound ? t : schedule.window_end() - 1;

  RoundProblem problem;
  problem.lefts.assign(lefts.begin(), lefts.end());

  // Rights ordered (round asc, resource asc).
  std::vector<std::int32_t> right_of_slot;  // dense (round-t)*n+resource map
  const std::int32_t n = sim.config().n;
  right_of_slot.assign(
      static_cast<std::size_t>((window_last - t + 1) * static_cast<Round>(n)),
      -1);
  const auto dense = [&](SlotRef slot) {
    return static_cast<std::size_t>((slot.round - t) * static_cast<Round>(n) +
                                    slot.resource);
  };
  for (Round round = t; round <= window_last; ++round) {
    for (ResourceId i = 0; i < n; ++i) {
      const SlotRef slot{i, round};
      if (scope != SlotScope::kFullWindow && !schedule.is_free(slot)) continue;
      right_of_slot[dense(slot)] =
          static_cast<std::int32_t>(problem.rights.size());
      problem.rights.push_back(slot);
    }
  }

  problem.graph = BipartiteGraph(static_cast<std::int32_t>(problem.lefts.size()),
                                 static_cast<std::int32_t>(problem.rights.size()));
  for (std::size_t l = 0; l < problem.lefts.size(); ++l) {
    const Request& r = sim.request(problem.lefts[l]);
    const Round lo = std::max(r.arrival, t);
    const Round hi = std::min(r.deadline, window_last);
    for (Round round = lo; round <= hi; ++round) {
      for (const ResourceId res : r.alts) {
        const std::int32_t right = right_of_slot[dense({res, round})];
        if (right >= 0) {
          problem.graph.add_edge(static_cast<std::int32_t>(l), right);
        }
      }
    }
  }
  problem.graph.finalize();
  return problem;
}

void apply_assignments(Simulator& sim, const RoundProblem& problem,
                       const std::vector<std::int32_t>& left_to_right) {
  REQSCHED_REQUIRE(left_to_right.size() == problem.lefts.size());
  for (std::size_t l = 0; l < problem.lefts.size(); ++l) {
    const std::int32_t r = left_to_right[l];
    if (r < 0) continue;
    sim.assign(problem.lefts[l], problem.rights[static_cast<std::size_t>(r)]);
  }
}

LexMatchProblem to_lex_problem(const Simulator& sim,
                               const RoundProblem& problem, bool eager_levels,
                               bool cardinality_first) {
  LexMatchProblem lex;
  // The round problem's CSR graph is the lex problem's graph verbatim — a
  // flat-array copy, not a per-left deep copy.
  lex.graph = problem.graph;
  lex.level_count = eager_levels ? 2 : sim.config().d;
  lex.cardinality_first = cardinality_first;
  lex.level_of_right.resize(static_cast<std::size_t>(lex.right_count()));
  const Round t = sim.now();
  for (std::size_t r = 0; r < problem.rights.size(); ++r) {
    const Round offset = problem.rights[r].round - t;
    lex.level_of_right[r] = eager_levels
                                ? (offset == 0 ? 0 : 1)
                                : static_cast<std::int32_t>(offset);
  }
  return lex;
}

std::vector<RequestId> unscheduled_alive(const Simulator& sim) {
  std::vector<RequestId> out;
  for (const RequestId id : sim.alive()) {
    if (!sim.is_scheduled(id)) out.push_back(id);
  }
  return out;
}

std::vector<RequestId> older_unscheduled(const Simulator& sim) {
  const auto injected = sim.injected_now();
  std::vector<RequestId> out;
  for (const RequestId id : sim.alive()) {
    if (sim.is_scheduled(id)) continue;
    if (std::find(injected.begin(), injected.end(), id) != injected.end()) {
      continue;
    }
    out.push_back(id);
  }
  return out;
}

void rebook(Simulator& sim, const RoundProblem& problem,
            const std::vector<std::int32_t>& target) {
  REQSCHED_REQUIRE(target.size() == problem.lefts.size());
  std::vector<std::size_t> to_assign;
  std::int64_t reassigned = 0;
  for (std::size_t l = 0; l < problem.lefts.size(); ++l) {
    const RequestId id = problem.lefts[l];
    const SlotRef old_slot = sim.slot_of(id);
    const SlotRef new_slot =
        target[l] >= 0 ? problem.rights[static_cast<std::size_t>(target[l])]
                       : kNoSlot;
    if (old_slot == new_slot) continue;
    if (old_slot.valid()) {
      sim.unassign(id);
      if (new_slot.valid()) ++reassigned;
    }
    if (new_slot.valid()) to_assign.push_back(l);
  }
  for (const std::size_t l : to_assign) {
    sim.assign(problem.lefts[l],
               problem.rights[static_cast<std::size_t>(target[l])]);
  }
  sim.note_reassignments(reassigned);
}

}  // namespace reqsched
