// Adversarial tie-breaking, machine-checked.
//
// Every lower-bound theorem in the paper argues about *some* implementation
// of a strategy class: "A_fix can be implemented in a way that ...". The
// adversary therefore gets to choose among the matchings the class permits.
// ScriptedStrategy realizes that choice honestly: the adversary proposes a
// complete booking map each round, and check_proposal() verifies — against
// independently computed optima — that the proposal satisfies the class's
// defining rules. A conforming proposal is adopted verbatim; anything else
// falls back to the reference implementation and is counted as a violation
// (tests assert zero violations on every theorem instance).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategy.hpp"

namespace reqsched {

enum class StrategyKind { kFix, kCurrent, kFixBalance, kEager, kBalance };

const char* to_string(StrategyKind kind);

/// Complete set of bookings the window should hold after this round's step:
/// (request, slot) pairs. Bookings of pending requests absent from the
/// proposal are released (which the fix-family checkers reject).
using Proposal = std::vector<std::pair<RequestId, SlotRef>>;

class IProposalSource {
 public:
  virtual ~IProposalSource() = default;
  /// Called during on_round; std::nullopt defers to the fallback strategy.
  virtual std::optional<Proposal> propose(const Simulator& sim) = 0;
};

struct ProposalCheck {
  bool ok = false;
  std::string reason;
};

/// Verifies that `proposal` is a matching the strategy class `kind` could
/// have produced in the current round of `sim`.
ProposalCheck check_proposal(StrategyKind kind, const Simulator& sim,
                             const Proposal& proposal);

/// The library's deterministic representative of a strategy class.
std::unique_ptr<IStrategy> make_reference_strategy(StrategyKind kind);

class ScriptedStrategy final : public IStrategy {
 public:
  ScriptedStrategy(StrategyKind kind, IProposalSource& source);

  std::string name() const override;
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;
  /// The fallback is a reference strategy; when a proposal is rejected it
  /// runs verbatim, so the engine must maintain whatever it consumes.
  bool wants_window_problem() const override {
    return fallback_->wants_window_problem();
  }

  std::int64_t violations() const { return violations_; }
  const std::vector<std::string>& violation_log() const {
    return violation_log_;
  }

 private:
  StrategyKind kind_;
  IProposalSource& source_;
  std::unique_ptr<IStrategy> fallback_;
  std::int64_t violations_ = 0;
  std::vector<std::string> violation_log_;
};

}  // namespace reqsched
