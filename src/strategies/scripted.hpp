// Adversarial tie-breaking, machine-checked.
//
// Every lower-bound theorem in the paper argues about *some* implementation
// of a strategy class: "A_fix can be implemented in a way that ...". The
// adversary therefore gets to choose among the matchings the class permits.
// ScriptedStrategy realizes that choice honestly: the adversary proposes a
// complete booking map each round, and check_proposal() verifies — against
// independently computed optima — that the proposal satisfies the class's
// defining rules. A conforming proposal is adopted verbatim; anything else
// falls back to the reference implementation and is counted as a violation
// (tests assert zero violations on every theorem instance).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/proposal.hpp"
#include "core/strategy.hpp"
#include "engine/simulator.hpp"

namespace reqsched {

struct ProposalCheck {
  bool ok = false;
  std::string reason;
};

/// Verifies that `proposal` is a matching the strategy class `kind` could
/// have produced in the current round of `sim`.
ProposalCheck check_proposal(StrategyKind kind, const Simulator& sim,
                             const Proposal& proposal);

/// The library's deterministic representative of a strategy class.
std::unique_ptr<IStrategy> make_reference_strategy(StrategyKind kind);

class ScriptedStrategy final : public IStrategy {
 public:
  ScriptedStrategy(StrategyKind kind, IProposalSource& source);

  std::string name() const override;
  void reset(const ProblemConfig& config) override;
  void on_round(Simulator& sim) override;
  /// The fallback is a reference strategy; when a proposal is rejected it
  /// runs verbatim, so the engine must maintain whatever it consumes.
  bool wants_window_problem() const override {
    return fallback_->wants_window_problem();
  }
  /// Deliberately NOT forwarded: scripted rounds propose complete booking
  /// maps against an untouched batch, so engine pre-booking would wreck the
  /// adversary's proposals (IStrategy::wants_admission_fast_path contract).

  std::int64_t violations() const { return violations_; }
  const std::vector<std::string>& violation_log() const {
    return violation_log_;
  }

 private:
  StrategyKind kind_;
  IProposalSource& source_;
  std::unique_ptr<IStrategy> fallback_;
  std::int64_t violations_ = 0;
  std::vector<std::string> violation_log_;
};

}  // namespace reqsched
