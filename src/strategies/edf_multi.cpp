#include "strategies/edf_multi.hpp"

#include <algorithm>
#include <set>
#include <tuple>

namespace reqsched {

MultiTrace::MultiTrace(std::int32_t n, std::int32_t d) : n_(n), d_(d) {
  REQSCHED_REQUIRE(n >= 1 && d >= 1);
}

void MultiTrace::add(Round arrival, std::vector<ResourceId> alternatives) {
  REQSCHED_REQUIRE(arrival >= 0);
  REQSCHED_REQUIRE_MSG(
      requests_.empty() || arrival >= requests_.back().arrival,
      "arrivals must be non-decreasing");
  REQSCHED_REQUIRE_MSG(!alternatives.empty(), "need at least one alternative");
  std::set<ResourceId> seen;
  for (const ResourceId r : alternatives) {
    REQSCHED_REQUIRE_MSG(r >= 0 && r < n_, "alternative out of range");
    REQSCHED_REQUIRE_MSG(seen.insert(r).second,
                         "alternatives must be distinct");
  }
  MultiRequest request;
  request.arrival = arrival;
  request.deadline = arrival + d_ - 1;
  request.alternatives = std::move(alternatives);
  last_useful_ = std::max(last_useful_, request.deadline);
  requests_.push_back(std::move(request));
}

MultiEdfResult run_multi_edf(const MultiTrace& trace) {
  struct Copy {
    Round deadline;
    std::size_t request;
  };
  // Per-resource copy queues sorted by (deadline, injection order).
  std::vector<std::vector<Copy>> queues(static_cast<std::size_t>(trace.n()));
  std::vector<char> fulfilled(trace.requests().size(), 0);
  MultiEdfResult result;

  std::size_t next = 0;
  for (Round t = 0; t <= trace.last_useful_round(); ++t) {
    while (next < trace.requests().size() &&
           trace.requests()[next].arrival == t) {
      const MultiRequest& r = trace.requests()[next];
      for (const ResourceId res : r.alternatives) {
        queues[static_cast<std::size_t>(res)].push_back(
            Copy{r.deadline, next});
      }
      ++next;
    }
    for (auto& queue : queues) {
      // Earliest deadline first; stable by injection order.
      const auto best = std::min_element(
          queue.begin(), queue.end(), [&](const Copy& a, const Copy& b) {
            return std::tie(a.deadline, a.request) <
                   std::tie(b.deadline, b.request);
          });
      // Drop expired copies lazily while searching for a live one.
      auto it = best;
      while (it != queue.end() && it->deadline < t) {
        queue.erase(it);
        it = std::min_element(queue.begin(), queue.end(),
                              [&](const Copy& a, const Copy& b) {
                                return std::tie(a.deadline, a.request) <
                                       std::tie(b.deadline, b.request);
                              });
      }
      if (it == queue.end()) continue;
      const Copy copy = *it;
      queue.erase(it);
      if (fulfilled[copy.request]) {
        ++result.wasted_executions;
      } else {
        fulfilled[copy.request] = 1;
        ++result.fulfilled;
      }
    }
  }
  return result;
}

std::int64_t multi_offline_optimum(const MultiTrace& trace) {
  if (trace.requests().empty()) return 0;
  const Round horizon = trace.last_useful_round();
  const std::int32_t n = trace.n();
  BipartiteGraph g(static_cast<std::int32_t>(trace.requests().size()),
                   static_cast<std::int32_t>((horizon + 1) * n));
  for (std::size_t i = 0; i < trace.requests().size(); ++i) {
    const MultiRequest& r = trace.requests()[i];
    for (Round t = r.arrival; t <= r.deadline; ++t) {
      for (const ResourceId res : r.alternatives) {
        g.add_edge(static_cast<std::int32_t>(i),
                   static_cast<std::int32_t>(t * n + res));
      }
    }
  }
  g.finalize();
  return hopcroft_karp(g).size();
}

MultiTrace make_multi_edf_tight_instance(std::int32_t c, std::int32_t d,
                                         std::int32_t intervals) {
  REQSCHED_REQUIRE(c >= 1 && d >= 1 && intervals >= 1);
  MultiTrace trace(c, d);
  std::vector<ResourceId> alts(static_cast<std::size_t>(c));
  for (std::int32_t i = 0; i < c; ++i) alts[static_cast<std::size_t>(i)] = i;
  for (std::int32_t k = 0; k < intervals; ++k) {
    const Round start = static_cast<Round>(k) * d;
    // c groups of d identical requests: OPT serves all cd (one group per
    // resource); EDF's copies serve group 0 everywhere, c times each.
    for (std::int32_t group = 0; group < c; ++group) {
      for (std::int32_t j = 0; j < d; ++j) {
        trace.add(start, alts);
      }
    }
  }
  return trace;
}

MultiTrace make_multi_random_instance(std::int32_t n, std::int32_t d,
                                      std::int32_t c, double load,
                                      Round horizon, std::uint64_t seed) {
  REQSCHED_REQUIRE(c >= 1 && c <= n);
  MultiTrace trace(n, d);
  Prng rng(seed);
  std::vector<ResourceId> pool(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (Round t = 0; t < horizon; ++t) {
    std::int32_t count = 0;
    for (std::int32_t trial = 0; trial < 2 * n; ++trial) {
      if (rng.next_bool(load / 2.0)) ++count;
    }
    for (std::int32_t i = 0; i < count; ++i) {
      rng.shuffle(pool);
      trace.add(t, std::vector<ResourceId>(
                       pool.begin(), pool.begin() + c));
    }
  }
  return trace;
}

}  // namespace reqsched
