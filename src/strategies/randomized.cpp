#include "strategies/randomized.hpp"

#include <numeric>

#include "strategies/window_problem.hpp"

namespace reqsched {

void RandomizedCurrent::reset(const ProblemConfig& config) {
  (void)config;
  rng_.reseed(seed_);
}

void RandomizedCurrent::on_round(Simulator& sim) {
  const auto alive = sim.alive();
  const RoundProblem problem = build_round_problem(
      sim, {alive.begin(), alive.end()}, SlotScope::kCurrentRound);
  std::vector<std::int32_t> order(problem.lefts.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);
  const Matching m = kuhn_ordered(problem.graph, order);
  apply_assignments(sim, problem, m.left_to_right);
}

void RandomizedFix::reset(const ProblemConfig& config) {
  (void)config;
  rng_.reseed(seed_);
}

void RandomizedFix::on_round(Simulator& sim) {
  // Step 1: maximum matching of the new requests, in random order. The
  // matching is still maximum, so this is a legal A_fix implementation.
  {
    const auto injected = sim.injected_now();
    const RoundProblem problem = build_round_problem(
        sim, {injected.begin(), injected.end()}, SlotScope::kFreeWindow);
    std::vector<std::int32_t> order(problem.lefts.size());
    std::iota(order.begin(), order.end(), 0);
    rng_.shuffle(order);
    const Matching m = kuhn_ordered(problem.graph, order);
    apply_assignments(sim, problem, m.left_to_right);
  }
  // Step 2: maximal extension with the stragglers (random order too).
  {
    auto older = older_unscheduled(sim);
    if (older.empty()) return;
    rng_.shuffle(older);
    const RoundProblem problem =
        build_round_problem(sim, older, SlotScope::kFreeWindow);
    const Matching m = greedy_maximal(problem.graph);
    apply_assignments(sim, problem, m.left_to_right);
  }
}

}  // namespace reqsched
