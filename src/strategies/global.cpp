#include "strategies/global.hpp"

namespace reqsched {

void AFix::on_round(Simulator& sim) {
  // Step 1: a maximum matching of the newly injected requests into the free
  // window slots (rule 2 of A_fix: as many new requests as possible).
  runtime_.match_new_into_window(sim);
  // Step 2: extend to a maximal matching with older unscheduled requests
  // (rule 1 keeps existing bookings untouched; we never unassign).
  runtime_.extend_with_stragglers(sim);
}

void ACurrent::on_round(Simulator& sim) {
  // Nothing is ever booked beyond the current round, so every alive request
  // is unscheduled here. Kuhn in injection order implements the adversarial
  // "serve the oldest groups first" preference used by Theorem 2.2; any
  // processing order yields a legal A_current (the matching is maximum).
  runtime_.match_current_round(sim);
}

void AFixBalance::on_round(Simulator& sim) {
  // All unscheduled alive requests (new and stragglers) compete for the free
  // slots; the pure lexicographic profile over rounds t..t+d-1 is maximized,
  // which in particular yields a maximal matching. Existing bookings are
  // frozen; their per-round counts are constants and cancel out of the
  // lexicographic comparison.
  runtime_.balance_free_window(sim);
}

void AEager::on_round(Simulator& sim) {
  runtime_.rematch_window(sim, /*eager_levels=*/true);
}

void ABalance::on_round(Simulator& sim) {
  runtime_.rematch_window(sim, /*eager_levels=*/false);
}

}  // namespace reqsched
