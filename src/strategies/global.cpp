#include "strategies/global.hpp"

#include "matching/lex_matcher.hpp"
#include "strategies/window_problem.hpp"

namespace reqsched {

void AFix::on_round(Simulator& sim) {
  // Step 1: a maximum matching of the newly injected requests into the free
  // window slots (rule 2 of A_fix: as many new requests as possible).
  {
    const auto injected = sim.injected_now();
    const RoundProblem problem = build_round_problem(
        sim, {injected.begin(), injected.end()}, SlotScope::kFreeWindow);
    const Matching m = kuhn_ordered(problem.graph);
    apply_assignments(sim, problem, m.left_to_right);
  }
  // Step 2: extend to a maximal matching with older unscheduled requests
  // (rule 1 keeps existing bookings untouched; we never unassign).
  {
    const auto older = older_unscheduled(sim);
    if (!older.empty()) {
      const RoundProblem problem =
          build_round_problem(sim, older, SlotScope::kFreeWindow);
      const Matching m = greedy_maximal(problem.graph);
      apply_assignments(sim, problem, m.left_to_right);
    }
  }
}

void ACurrent::on_round(Simulator& sim) {
  // Nothing is ever booked beyond the current round, so every alive request
  // is unscheduled here. Kuhn in injection order implements the adversarial
  // "serve the oldest groups first" preference used by Theorem 2.2; any
  // processing order yields a legal A_current (the matching is maximum).
  const auto alive = sim.alive();
  const RoundProblem problem = build_round_problem(
      sim, {alive.begin(), alive.end()}, SlotScope::kCurrentRound);
  const Matching m = kuhn_ordered(problem.graph);
  apply_assignments(sim, problem, m.left_to_right);
}

void AFixBalance::on_round(Simulator& sim) {
  // All unscheduled alive requests (new and stragglers) compete for the free
  // slots; the pure lexicographic profile over rounds t..t+d-1 is maximized,
  // which in particular yields a maximal matching. Existing bookings are
  // frozen; their per-round counts are constants and cancel out of the
  // lexicographic comparison.
  const auto lefts = unscheduled_alive(sim);
  const RoundProblem problem =
      build_round_problem(sim, lefts, SlotScope::kFreeWindow);
  LexMatchProblem lex = to_lex_problem(sim, problem, /*eager_levels=*/false,
                                       /*cardinality_first=*/false);
  const LexMatchResult result = solve_lex_matching(lex);
  apply_assignments(sim, problem, result.left_to_right);
}

namespace {
void rematch_full_window(Simulator& sim, bool eager_levels) {
  const auto alive = sim.alive();
  const RoundProblem problem = build_round_problem(
      sim, {alive.begin(), alive.end()}, SlotScope::kFullWindow);
  LexMatchProblem lex =
      to_lex_problem(sim, problem, eager_levels, /*cardinality_first=*/true);
  for (std::size_t l = 0; l < problem.lefts.size(); ++l) {
    if (sim.is_scheduled(problem.lefts[l])) {
      lex.required_lefts.push_back(static_cast<std::int32_t>(l));
    }
  }
  const LexMatchResult result = solve_lex_matching(lex);
  rebook(sim, problem, result.left_to_right);
}
}  // namespace

void AEager::on_round(Simulator& sim) {
  rematch_full_window(sim, /*eager_levels=*/true);
}

void ABalance::on_round(Simulator& sim) {
  rematch_full_window(sim, /*eager_levels=*/false);
}

}  // namespace reqsched
