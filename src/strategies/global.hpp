// The five global strategy classes of Section 1.3.
//
//   A_fix         — schedule new requests via a maximum matching into free
//                   slots, extend maximally with older stragglers, never
//                   reschedule. Competitive ratio exactly 2 - 1/d.
//   A_current     — every round, a maximum matching of all alive requests
//                   onto the n slots of the current round only. Upper bound
//                   2 - 1/d; lower bound e/(e-1) as d grows.
//   A_fix_balance — like A_fix, but new requests are placed to maximize
//                   F = sum_j X_{t+j}(n+1)^{d-j} (lexicographic earliest/
//                   balanced placement). Upper bound max(4/3, 2-2/d, 2-3/(d+2)).
//   A_eager       — full maximum matching over G_t, previously scheduled
//                   requests stay scheduled (may move), current-round
//                   executions maximized. Upper bound (3d-2)/(2d-1).
//   A_balance     — like A_eager but with the full lexicographic profile
//                   maximized. Upper bound max(4/3, 6(d-1)/(4d-3)).
//
// Each class admits many implementations (ties are unconstrained); these are
// the library's deterministic representatives, expressed as StrategyRuntime
// policies over the engine's delta-maintained window problem (they all
// return wants_window_problem() = true). Adversarial tie-breaking for the
// lower-bound constructions is provided by ScriptedStrategy.
#pragma once

#include "engine/simulator.hpp"
#include "core/strategy.hpp"
#include "strategies/runtime.hpp"

namespace reqsched {

class AFix final : public IStrategy {
 public:
  std::string name() const override { return "A_fix"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }
  /// A_fix handles arrivals exactly as match_new_into_window (and never
  /// reschedules), so the engine's batch-admission fast path is sound for it.
  bool wants_admission_fast_path() const override { return true; }
  /// No cross-round state beyond the runtime's (unused here) scratch, so a
  /// freshly reset() instance resumes bit-identically.
  bool resumable() const override { return true; }

 private:
  StrategyRuntime runtime_;
};

class ACurrent final : public IStrategy {
 public:
  std::string name() const override { return "A_current"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }
  /// With an empty backlog, A_current's matching problem is exactly "the
  /// arrivals onto round t's free units, injection order" — the fast path's
  /// greedy bookings under a current-round probe clamp. The engine enforces
  /// both refinements below per round and punts otherwise.
  bool wants_admission_fast_path() const override { return true; }
  bool admission_probe_current_round_only() const override { return true; }
  bool admission_needs_empty_backlog() const override { return true; }
  /// No cross-round state beyond the runtime's (unused here) scratch, so a
  /// freshly reset() instance resumes bit-identically.
  bool resumable() const override { return true; }

 private:
  StrategyRuntime runtime_;
};

class AFixBalance final : public IStrategy {
 public:
  std::string name() const override { return "A_fix_balance"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }
  /// With an empty backlog the lexicographic placement decomposes: every
  /// uncontended arrival's lex-optimal slot IS its earliest allowed free
  /// slot (net of the batch's claims), so the fast path's greedy bookings
  /// realize the lex optimum. The engine enforces the empty-backlog
  /// refinement per round and punts otherwise.
  bool wants_admission_fast_path() const override { return true; }
  bool admission_needs_empty_backlog() const override { return true; }
  /// No cross-round state beyond the runtime's (unused here) scratch, so a
  /// freshly reset() instance resumes bit-identically.
  bool resumable() const override { return true; }

 private:
  StrategyRuntime runtime_;
};

class AEager final : public IStrategy {
 public:
  std::string name() const override { return "A_eager"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }
  /// No cross-round state beyond the runtime's (unused here) scratch, so a
  /// freshly reset() instance resumes bit-identically.
  bool resumable() const override { return true; }

 private:
  StrategyRuntime runtime_;
};

class ABalance final : public IStrategy {
 public:
  std::string name() const override { return "A_balance"; }
  void reset(const ProblemConfig& config) override { runtime_.reset(config); }
  void on_round(Simulator& sim) override;
  bool wants_window_problem() const override { return true; }
  /// No cross-round state beyond the runtime's (unused here) scratch, so a
  /// freshly reset() instance resumes bit-identically.
  bool resumable() const override { return true; }

 private:
  StrategyRuntime runtime_;
};

}  // namespace reqsched
