#include "adversary/theorems.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <sstream>

#include "adversary/blocks.hpp"

namespace reqsched {

TheoremInstance make_lb_fix(std::int32_t d, std::int32_t phases) {
  REQSCHED_REQUIRE(d >= 2 && phases >= 1);
  // Resources: S1..S4 = 0..3. S2, S3 (= 1, 2) carry the blocks.
  std::vector<PlannedRequest> script;
  const std::array<ResourceId, 2> inner{1, 2};
  append_block(script, 0, inner, d);
  for (std::int32_t i = 1; i <= phases; ++i) {
    const Round p = static_cast<Round>(i) * d - 1;
    // R1 -> (S1, S2), steered onto S2; R2 -> (S3, S4), steered onto S3.
    append_group(script, p, d - 1, 0, 1, 1, p + 1);
    append_group(script, p, d - 1, 2, 3, 2, p + 1);
    // One round later: a block(2, d) on (S2, S3). Only the last window slot
    // of each resource is still free; 2d - 2 block requests must fail.
    append_group(script, p + 1, 1, 1, 2, 1, p + d);
    append_group(script, p + 1, d - 1, 1, 2, kNoResource, 0);
    append_group(script, p + 1, 1, 2, 1, 2, p + d);
    append_group(script, p + 1, d - 1, 2, 1, kNoResource, 0);
  }
  TheoremInstance instance;
  std::ostringstream name;
  name << "lb_fix(d=" << d << ",phases=" << phases << ")";
  instance.workload = std::make_unique<PlannedInstance>(
      name.str(), ProblemConfig{4, d}, std::move(script));
  instance.target = StrategyKind::kFix;
  instance.bound = Fraction(4 * d - 2, 2 * d);  // == 2 - 1/d
  instance.theorem = "2.1";
  return instance;
}

std::int32_t lb_current_min_deadline(std::int32_t ell) {
  REQSCHED_REQUIRE(ell >= 2);
  std::int64_t l = 1;
  for (std::int32_t k = 2; k < ell; ++k) l = std::lcm<std::int64_t>(l, k);
  REQSCHED_REQUIRE_MSG(l <= 100000, "ell too large for a practical deadline");
  return static_cast<std::int32_t>(l);
}

double lb_current_predicted_fulfilled_fraction(std::int32_t ell) {
  // Serve groups oldest-first; group i (1-based) runs on ell-i+1 resources
  // and thus costs d/(ell-i+1) rounds of the phase's budget of d rounds.
  double budget = 1.0;
  double fulfilled_groups = 0.0;
  for (std::int32_t i = 1; i <= ell; ++i) {
    const double width = static_cast<double>(ell - i + 1);
    const double cost = 1.0 / width;
    if (cost <= budget) {
      budget -= cost;
      fulfilled_groups += 1.0;
    } else {
      fulfilled_groups += budget * width;
      budget = 0.0;
      break;
    }
  }
  return fulfilled_groups / static_cast<double>(ell);
}

TheoremInstance make_lb_current(std::int32_t ell, std::int32_t phases,
                                std::int32_t d) {
  REQSCHED_REQUIRE(ell >= 2 && phases >= 1);
  const std::int32_t min_d = lb_current_min_deadline(ell);
  if (d == 0) d = min_d;
  REQSCHED_REQUIRE_MSG(d % min_d == 0,
                       "d must be a multiple of lcm(1..ell-1) = " << min_d);

  std::vector<PlannedRequest> script;
  for (std::int32_t k = 0; k < phases; ++k) {
    const Round start = static_cast<Round>(k) * d;
    for (std::int32_t i = 1; i <= ell; ++i) {
      // Group i: first alternatives evenly over S_1..S_{ell-i}, second
      // alternative S_{ell-i+1}; group ell repeats group ell-1.
      const std::int32_t spread = i < ell ? ell - i : 1;
      const ResourceId second = i < ell ? static_cast<ResourceId>(ell - i)
                                        : static_cast<ResourceId>(1);
      for (std::int32_t j = 0; j < d; ++j) {
        PlannedRequest pr;
        pr.arrival = start;
        pr.spec.alts = {static_cast<ResourceId>(j % spread), second};
        script.push_back(pr);
      }
    }
  }
  TheoremInstance instance;
  std::ostringstream name;
  name << "lb_current(ell=" << ell << ",d=" << d << ",phases=" << phases
       << ")";
  instance.workload = std::make_unique<PlannedInstance>(
      name.str(), ProblemConfig{ell, d}, std::move(script),
      /*with_plan=*/false);
  instance.target = StrategyKind::kCurrent;
  instance.bound = Fraction(0);  // limit bound e/(e-1); see asymptote helpers
  instance.theorem = "2.2";
  return instance;
}

TheoremInstance make_lb_fix_balance(std::int32_t d, std::int32_t phases) {
  REQSCHED_REQUIRE(d >= 2 && d % 2 == 0 && phases >= 1);
  // Three resource pairs used round-robin; 6 resources total.
  const std::array<std::array<ResourceId, 2>, 3> pair{{{0, 1}, {2, 3}, {4, 5}}};
  std::vector<PlannedRequest> script;
  append_block(script, 0, pair[0], d);
  for (std::int32_t k = 1; k <= phases; ++k) {
    const Round p =
        d / 2 + static_cast<Round>(k - 1) * (d / 2 + 1);
    const auto& blocked = pair[static_cast<std::size_t>((k - 1) % 3)];
    const auto& fresh = pair[static_cast<std::size_t>(k % 3)];
    // R1 and R2: the balance rule itself sends them to the fresh pair.
    append_group(script, p, d / 2, blocked[0], fresh[0], kNoResource, 0);
    append_group(script, p, d / 2, blocked[1], fresh[1], kNoResource, 0);
    // One round later the block lands exactly on the fresh pair.
    append_block(script, p + 1, fresh, d);
  }
  TheoremInstance instance;
  std::ostringstream name;
  name << "lb_fix_balance(d=" << d << ",phases=" << phases << ")";
  instance.workload = std::make_unique<PlannedInstance>(
      name.str(), ProblemConfig{6, d}, std::move(script),
      /*with_plan=*/false);
  instance.target = StrategyKind::kFixBalance;
  instance.bound = Fraction(3 * d, 2 * d + 2);
  instance.theorem = "2.3";
  return instance;
}

TheoremInstance make_lb_eager(std::int32_t d, std::int32_t phases,
                              StrategyKind target) {
  REQSCHED_REQUIRE(d >= 2 && d % 2 == 0 && phases >= 1);
  REQSCHED_REQUIRE_MSG(
      target == StrategyKind::kEager || d == 2,
      "the Theorem 2.4 instance applies to other strategies only at d = 2");
  // S1..S4 = 0..3; odd phases block (S2, S3) = (1, 2), even ones (S1, S4).
  std::vector<PlannedRequest> script;
  const std::array<ResourceId, 2> outer{0, 3};
  const std::array<ResourceId, 2> inner{1, 2};
  append_block(script, 0, outer, d);
  for (std::int32_t i = 1; i <= phases; ++i) {
    const Round s = d / 2 + static_cast<Round>(i - 1) * d;
    const bool odd = (i % 2) == 1;
    const auto& hot = odd ? inner : outer;    // R3 + block pair
    const auto& cold = odd ? outer : inner;   // busy at phase start
    // R1 -> (cold[0], hot[0]) steered onto hot[0] early; R2 symmetric.
    append_group(script, s, d / 2, cold[0], hot[0], hot[0], s);
    append_group(script, s, d / 2, cold[1], hot[1], hot[1], s);
    // R3 -> (hot[0], hot[1]); fills both hot resources' middle rounds.
    append_group(script, s, d / 2, hot[0], hot[1], hot[0], s + d / 2);
    append_group(script, s, d / 2, hot[0], hot[1], hot[1], s + d / 2);
    // Block(2, d) on the hot pair, d/2 rounds later: only the last d/2
    // rounds of each hot resource are free; d block requests must fail.
    append_group(script, s + d / 2, d / 2, hot[0], hot[1], hot[0], s + d);
    append_group(script, s + d / 2, d / 2, hot[0], hot[1], kNoResource, 0);
    append_group(script, s + d / 2, d / 2, hot[1], hot[0], hot[1], s + d);
    append_group(script, s + d / 2, d / 2, hot[1], hot[0], kNoResource, 0);
  }
  TheoremInstance instance;
  std::ostringstream name;
  name << "lb_eager(d=" << d << ",phases=" << phases << ",target="
       << to_string(target) << ")";
  instance.workload = std::make_unique<PlannedInstance>(
      name.str(), ProblemConfig{4, d}, std::move(script),
      /*with_plan=*/true,
      target == StrategyKind::kCurrent ? ProposalScope::kCurrentRoundOnly
                                       : ProposalScope::kFullWindow);
  instance.target = target;
  instance.bound = Fraction(4, 3);
  instance.theorem = "2.4";
  return instance;
}

TheoremInstance make_lb_balance(std::int32_t x, std::int32_t groups,
                                std::int32_t intervals) {
  REQSCHED_REQUIRE(x >= 1 && groups >= 1 && intervals >= 1);
  const std::int32_t d = 3 * x - 1;
  const std::int32_t n = 3 * groups + 2;
  const ResourceId sp = static_cast<ResourceId>(3 * groups);       // S'
  const ResourceId spp = static_cast<ResourceId>(3 * groups + 1);  // S''

  std::vector<PlannedRequest> script;
  // Round 0: block(2, d) pins S' and S''; one block(1, d) per group pins
  // the group's first resource.
  const std::array<ResourceId, 2> anchors{sp, spp};
  append_block(script, 0, anchors, d);
  for (std::int32_t g = 0; g < groups; ++g) {
    const ResourceId a = static_cast<ResourceId>(3 * g);
    append_group(script, 0, d, sp, a, a, 0);
  }

  for (std::int32_t m = 0; m < intervals; ++m) {
    const Round t1 = static_cast<Round>(2 * m + 1) * x;  // Phase 1
    const Round t2 = static_cast<Round>(2 * m + 2) * x;  // Phase 2
    for (std::int32_t g = 0; g < groups; ++g) {
      const ResourceId blocked =
          static_cast<ResourceId>(3 * g + (m % 3));          // "S1" role
      const ResourceId work =
          static_cast<ResourceId>(3 * g + ((m + 1) % 3));    // "S2" role
      // Phase 1: R1 -> (blocked, work), R2 -> (work, S'); both served by
      // `work`, R1 first (rounds t1..t1+x-1), then R2.
      append_group(script, t1, x, blocked, work, work, t1);
      append_group(script, t1, x, work, sp, work, t1 + x);
      // Phase 2: block(1, d) at `work`; only 2x-1 of its 3x-1 requests fit
      // (rounds t2+x .. t2+3x-2), x must fail.
      append_group(script, t2, 2 * x - 1, sp, work, work, t2 + x);
      append_group(script, t2, x, sp, work, kNoResource, 0);
    }
    // Phase 2, once per interval: 4x requests keep S' and S'' blocked for
    // the next 2x rounds (cover [ (2m+3)x-1, (2m+5)x-2 ]).
    const Round cover = static_cast<Round>(2 * m + 3) * x - 1;
    append_group(script, t2, 2 * x, sp, spp, sp, cover);
    append_group(script, t2, 2 * x, sp, spp, spp, cover);
  }

  // Per-group emission interleaves t1 and t2 arrivals; restore arrival
  // order (stable, so same-round injection order is preserved).
  std::stable_sort(script.begin(), script.end(),
                   [](const PlannedRequest& a, const PlannedRequest& b) {
                     return a.arrival < b.arrival;
                   });

  TheoremInstance instance;
  std::ostringstream name;
  name << "lb_balance(d=" << d << ",groups=" << groups << ",intervals="
       << intervals << ")";
  instance.workload = std::make_unique<PlannedInstance>(
      name.str(), ProblemConfig{n, d}, std::move(script));
  instance.target = StrategyKind::kBalance;
  instance.bound = Fraction(5 * d + 2, 4 * d + 1);
  instance.theorem = "2.5";
  return instance;
}

std::unique_ptr<PlannedInstance> make_lb_local_fix(std::int32_t d,
                                                   std::int32_t intervals) {
  REQSCHED_REQUIRE(d >= 1 && intervals >= 1);
  // S1..S4 = 0..3. First alternatives route R1 to S1, R2 to S3 and the 2d
  // requests of R3 to S1 as well; the LDF tie-break (earlier injection wins)
  // lets R1 and R2 through, so R3 fails on both attempts.
  std::vector<PlannedRequest> script;
  for (std::int32_t k = 0; k < intervals; ++k) {
    const Round start = static_cast<Round>(k) * d;
    append_group(script, start, d, 0, 1, kNoResource, 0);      // R1
    append_group(script, start, d, 2, 3, kNoResource, 0);      // R2
    append_group(script, start, 2 * d, 0, 2, kNoResource, 0);  // R3
  }
  std::ostringstream name;
  name << "lb_local_fix(d=" << d << ",intervals=" << intervals << ")";
  return std::make_unique<PlannedInstance>(name.str(), ProblemConfig{4, d},
                                           std::move(script),
                                           /*with_plan=*/false);
}

std::unique_ptr<PlannedInstance> make_lb_edf(std::int32_t d,
                                             std::int32_t intervals) {
  REQSCHED_REQUIRE(d >= 1 && intervals >= 1);
  // Two groups of d identical requests on (S1, S2); the independent-copy
  // EDF serves the first group on both resources (ties by injection order)
  // and starves the second.
  std::vector<PlannedRequest> script;
  for (std::int32_t k = 0; k < intervals; ++k) {
    const Round start = static_cast<Round>(k) * d;
    append_group(script, start, d, 0, 1, kNoResource, 0);
    append_group(script, start, d, 0, 1, kNoResource, 0);
  }
  std::ostringstream name;
  name << "lb_edf(d=" << d << ",intervals=" << intervals << ")";
  return std::make_unique<PlannedInstance>(name.str(), ProblemConfig{2, d},
                                           std::move(script),
                                           /*with_plan=*/false);
}

}  // namespace reqsched
