#include "adversary/openloop.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <utility>

#include "adversary/sampling.hpp"

namespace reqsched {

namespace {

/// Expected fraction of rounds spent burning: renewal cycle of 1/p idle
/// rounds followed by `duration` burning rounds.
double flash_fraction(double probability, Round duration) {
  if (probability <= 0.0) return 0.0;
  const double pd = probability * static_cast<double>(duration);
  return pd / (1.0 + pd);
}

}  // namespace

OpenLoopWorkload::OpenLoopWorkload(OpenLoopOptions options, std::string family)
    : options_(options),
      family_(std::move(family)),
      sampler_(static_cast<std::size_t>(std::max(options.n, 1)),
               options.zipf_exponent > 0.0 ? options.zipf_exponent : 1.0),
      rng_(options.seed) {
  options_.problem_config().validate();
  REQSCHED_REQUIRE_MSG(options_.rho >= 0.0, "rho must be non-negative");
  REQSCHED_REQUIRE(options_.horizon >= 1);
  const std::int32_t k = options_.k;
  REQSCHED_REQUIRE_MSG(k >= 1 && k <= kMaxAlternatives,
                       "alternatives per request outside [1, "
                           << kMaxAlternatives << "]: " << k);
  REQSCHED_REQUIRE_MSG(k <= options_.n, k << " distinct alternatives need at "
                                             "least "
                                          << k << " resources");
  REQSCHED_REQUIRE_MSG(options_.max_occupancy >= 1 &&
                           options_.max_occupancy <= options_.d,
                       "max_occupancy must lie in [1, d]");
  REQSCHED_REQUIRE_MSG(
      options_.diurnal_amplitude >= 0.0 && options_.diurnal_amplitude <= 1.0,
      "diurnal amplitude must lie in [0, 1] (negative rates otherwise)");
  REQSCHED_REQUIRE(options_.diurnal_period >= 2);
  REQSCHED_REQUIRE_MSG(
      options_.mmpp_high_mult >= 1.0,
      "mmpp_high_mult must be >= 1 (the high state is the bursty one)");
  if (options_.mmpp_high_mult > 1.0) {
    REQSCHED_REQUIRE(options_.mmpp_p_enter > 0.0 &&
                     options_.mmpp_p_enter <= 1.0 &&
                     options_.mmpp_p_exit > 0.0 && options_.mmpp_p_exit <= 1.0);
  }
  REQSCHED_REQUIRE(options_.flash_probability >= 0.0 &&
                   options_.flash_probability <= 1.0);
  if (options_.flash_probability > 0.0) {
    REQSCHED_REQUIRE(options_.flash_mult >= 1.0 &&
                     options_.flash_duration >= 1);
  }
  REQSCHED_REQUIRE(options_.zipf_exponent >= 0.0);

  // Normalize every modulation so the long-run mean rate is rho * n * b:
  // E[mmpp] from the chain's stationary split, E[diurnal] = 1 exactly (the
  // sine averages out), E[flash] from the renewal fraction.
  double norm = 1.0;
  if (options_.mmpp_high_mult > 1.0) {
    const double f_high = options_.mmpp_p_enter /
                          (options_.mmpp_p_enter + options_.mmpp_p_exit);
    norm *= 1.0 + f_high * (options_.mmpp_high_mult - 1.0);
  }
  norm *= 1.0 + flash_fraction(options_.flash_probability,
                               options_.flash_duration) *
                    (options_.flash_mult - 1.0);
  norm_ = norm;
  base_rate_ = options_.rho * static_cast<double>(options_.n) *
               static_cast<double>(options_.b) / norm_;
}

std::string OpenLoopWorkload::name() const {
  std::ostringstream os;
  os << family_ << "(n=" << options_.n << ",d=" << options_.d
     << ",rho=" << options_.rho << ",seed=" << options_.seed;
  if (options_.k != 2) os << ",k=" << options_.k;
  if (options_.b != 1) os << ",b=" << options_.b;
  if (options_.max_occupancy != 1) os << ",occ<=" << options_.max_occupancy;
  if (options_.mmpp_high_mult > 1.0) {
    os << ",mmpp=" << options_.mmpp_high_mult << "@" << options_.mmpp_p_enter
       << "/" << options_.mmpp_p_exit;
  }
  if (options_.diurnal_amplitude > 0.0) {
    os << ",diurnal=" << options_.diurnal_amplitude << "@"
       << options_.diurnal_period;
  }
  if (options_.flash_probability > 0.0) {
    os << ",flash=" << options_.flash_mult << "@" << options_.flash_probability
       << "x" << options_.flash_duration;
  }
  if (options_.zipf_exponent > 0.0) {
    os << ",zipf=" << options_.zipf_exponent;
    if (options_.zipf_drift_every > 0) {
      os << "~" << options_.zipf_drift_every;
    }
  }
  os << ")";
  return os.str();
}

ProblemConfig OpenLoopWorkload::config() const {
  return options_.problem_config();
}

double OpenLoopWorkload::modulation(Round t) const {
  double m = 1.0;
  if (options_.mmpp_high_mult > 1.0 && mmpp_high_) {
    m *= options_.mmpp_high_mult;
  }
  if (options_.diurnal_amplitude > 0.0) {
    m *= 1.0 + options_.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                            static_cast<double>(options_.diurnal_period));
  }
  if (flash_remaining_ > 0) m *= options_.flash_mult;
  return m;
}

void OpenLoopWorkload::generate(Round t, const Simulator& sim,
                                std::vector<RequestSpec>& out) {
  (void)sim;
  if (t >= options_.horizon) return;
  // Draw order is pinned (see class comment): MMPP transition, flash
  // ignition, Poisson count, then per-arrival draws.
  if (options_.mmpp_high_mult > 1.0) {
    if (mmpp_high_) {
      if (rng_.next_bool(options_.mmpp_p_exit)) mmpp_high_ = false;
    } else {
      if (rng_.next_bool(options_.mmpp_p_enter)) mmpp_high_ = true;
    }
  }
  if (options_.flash_probability > 0.0 && flash_remaining_ == 0 &&
      rng_.next_bool(options_.flash_probability)) {
    flash_remaining_ = options_.flash_duration;
    flash_base_ = static_cast<std::int32_t>(
        rng_.next_below(static_cast<std::uint64_t>(options_.n)));
  }
  const bool burning = flash_remaining_ > 0;

  const std::int64_t count =
      sampling::poisson(rng_, base_rate_ * modulation(t));
  const std::int32_t k = options_.k;
  const std::int32_t hot = std::clamp(options_.flash_hot_set, k, options_.n);
  const std::int32_t drift =
      options_.zipf_drift_every > 0
          ? static_cast<std::int32_t>((t / options_.zipf_drift_every) %
                                      options_.n)
          : 0;
  for (std::int64_t i = 0; i < count; ++i) {
    RequestSpec spec;
    if (burning) {
      // Flash arrivals pile onto a contiguous hot set of `hot` resources.
      while (spec.alts.size() < k) {
        const auto r = static_cast<ResourceId>(
            (static_cast<std::uint64_t>(flash_base_) +
             rng_.next_below(static_cast<std::uint64_t>(hot))) %
            static_cast<std::uint64_t>(options_.n));
        if (!spec.alts.contains(r)) spec.alts.push_back(r);
      }
    } else if (options_.zipf_exponent > 0.0) {
      while (spec.alts.size() < k) {
        const auto r = static_cast<ResourceId>(
            (sampler_.sample(rng_) + static_cast<std::size_t>(drift)) %
            static_cast<std::size_t>(options_.n));
        if (!spec.alts.contains(r)) spec.alts.push_back(r);
      }
    } else if (k == 2) {
      sampling::draw_distinct_pair(rng_, options_.n, spec.alts);
    } else {
      sampling::draw_uniform_alts(rng_, options_.n, k, spec.alts);
    }
    sampling::roll_window_and_occupancy(rng_, options_.min_window, options_.d,
                                        options_.max_occupancy, spec);
    out.push_back(spec);
  }
  if (burning) --flash_remaining_;
}

bool OpenLoopWorkload::exhausted(Round t) const {
  return t >= options_.horizon;
}

void OpenLoopWorkload::reset() {
  rng_.reseed(options_.seed);
  mmpp_high_ = false;
  flash_remaining_ = 0;
  flash_base_ = 0;
}

void OpenLoopWorkload::export_state(std::vector<std::uint64_t>& out) const {
  append_prng_words(rng_, out);
  out.push_back(mmpp_high_ ? 1 : 0);
  out.push_back(static_cast<std::uint64_t>(flash_remaining_));
  out.push_back(static_cast<std::uint64_t>(flash_base_));
}

void OpenLoopWorkload::import_state(std::span<const std::uint64_t> state) {
  REQSCHED_CHECK_MSG(state.size() == 7,
                     "open-loop workload state must be 7 words, got "
                         << state.size());
  restore_prng_words(rng_, state.first(4));
  REQSCHED_CHECK_MSG(state[4] <= 1, "corrupt mmpp state flag");
  mmpp_high_ = state[4] == 1;
  const auto remaining = static_cast<Round>(state[5]);
  REQSCHED_CHECK_MSG(remaining >= 0 && remaining <= options_.flash_duration,
                     "flash countdown out of range");
  flash_remaining_ = remaining;
  const auto base = static_cast<std::int32_t>(state[6]);
  REQSCHED_CHECK_MSG(base >= 0 && base < options_.n,
                     "flash hot-set base out of range");
  flash_base_ = base;
}

}  // namespace reqsched
