// The paper's block(a, d) building bricks (Section 2).
//
// block(a, d): a*d requests injected in one round; group i (of d requests)
// names resources ring[i] and ring[(i+1) mod a]. The block is dense: it can
// only be fulfilled by filling all d slots of all a resources, so it pins
// those resources down for d rounds.
#pragma once

#include <span>
#include <vector>

#include "adversary/planned.hpp"

namespace reqsched {

/// Appends a block(a, d) at `arrival` over `ring` (a >= 2 resources), with
/// the canonical intended schedule: group i fills ring[i]'s rounds
/// [arrival, arrival + d - 1].
void append_block(std::vector<PlannedRequest>& script, Round arrival,
                  std::span<const ResourceId> ring, std::int32_t d);

/// Appends the paper's block(1, d): d requests naming `anchor` (a resource
/// that is permanently blocked elsewhere) and `target`; intended to fill
/// `target`'s rounds [arrival, arrival + d - 1]. `planned_fail_tail` > 0
/// marks that many trailing requests as planned online failures and gives
/// them no intended slot.
void append_half_block(std::vector<PlannedRequest>& script, Round arrival,
                       ResourceId anchor, ResourceId target, std::int32_t d,
                       std::int32_t planned_fail_tail = 0);

/// Appends `count` identical requests (first, second); request j gets
/// intended slot (intended_resource, intended_from + j), or kNoSlot when
/// intended_resource == kNoResource.
void append_group(std::vector<PlannedRequest>& script, Round arrival,
                  std::int32_t count, ResourceId first, ResourceId second,
                  ResourceId intended_resource, Round intended_from);

}  // namespace reqsched
