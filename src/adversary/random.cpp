#include "adversary/random.hpp"

#include <algorithm>
#include <sstream>

#include "adversary/sampling.hpp"

namespace reqsched {

namespace {
// The draw primitives live in adversary/sampling.hpp, shared with the
// open-loop stationary generators; the aliases keep this file's call sites
// and draw sequences exactly as they were (seeds replay bit-identically).
using sampling::binomial;
using sampling::draw_uniform_alts;

/// Applies the heterogeneous-deadline and occupancy options to a freshly
/// drawn spec (draw order: window, then occupancy — pinned so seeds replay).
void roll_window_and_occupancy(Prng& rng, const RandomWorkloadOptions& options,
                               RequestSpec& spec) {
  sampling::roll_window_and_occupancy(rng, options.min_window, options.d,
                                      options.max_occupancy, spec);
}

void validate_options(const RandomWorkloadOptions& options) {
  options.problem_config().validate();
  REQSCHED_REQUIRE(options.load >= 0 && options.horizon >= 1);
  const std::int32_t k = options.alternatives();
  REQSCHED_REQUIRE_MSG(k >= 1 && k <= kMaxAlternatives,
                       "alternatives per request outside [1, "
                           << kMaxAlternatives << "]: " << k);
  REQSCHED_REQUIRE_MSG(k <= options.n,
                       k << " distinct alternatives need at least "
                         << k << " resources");
  REQSCHED_REQUIRE_MSG(options.max_occupancy >= 1 &&
                           options.max_occupancy <= options.d,
                       "max_occupancy must lie in [1, d]");
}

/// Shared name suffix for the generalized-model knobs (empty in the paper
/// model, so historical labels are unchanged).
std::string knob_suffix(const RandomWorkloadOptions& options) {
  std::ostringstream os;
  if (options.k >= 1) os << ",k=" << options.k;
  if (options.b != 1) os << ",b=" << options.b;
  if (options.max_occupancy != 1) os << ",occ<=" << options.max_occupancy;
  return os.str();
}
}  // namespace

// ---------------------------------------------------------------- Uniform

UniformWorkload::UniformWorkload(RandomWorkloadOptions options)
    : options_(options), rng_(options.seed) {
  validate_options(options_);
  REQSCHED_REQUIRE_MSG(options_.n >= 2 || options_.alternatives() == 1,
                       "multi-choice needs at least two resources");
}

std::string UniformWorkload::name() const {
  std::ostringstream os;
  os << "uniform(n=" << options_.n << ",d=" << options_.d
     << ",load=" << options_.load << ",seed=" << options_.seed
     << knob_suffix(options_) << ")";
  return os.str();
}

ProblemConfig UniformWorkload::config() const {
  return options_.problem_config();
}

void UniformWorkload::generate(Round t, const Simulator& sim,
                               std::vector<RequestSpec>& out) {
  (void)sim;
  if (t >= options_.horizon) return;
  // 4n trials at p = load/4: mean load*n per round, headroom up to 4x
  // overload before the binomial saturates.
  const std::int32_t count = binomial(rng_, 4 * options_.n,
                                      options_.load / 4.0);
  for (std::int32_t i = 0; i < count; ++i) {
    RequestSpec spec;
    draw_uniform_alts(rng_, options_.n, options_.alternatives(), spec.alts);
    roll_window_and_occupancy(rng_, options_, spec);
    out.push_back(spec);
  }
}

bool UniformWorkload::exhausted(Round t) const {
  return t >= options_.horizon;
}

void UniformWorkload::reset() { rng_.reseed(options_.seed); }

// ------------------------------------------------------------------- Zipf

ZipfWorkload::ZipfWorkload(RandomWorkloadOptions options, double exponent)
    : options_(options),
      exponent_(exponent),
      sampler_(static_cast<std::size_t>(options.n), exponent),
      rng_(options.seed) {
  validate_options(options_);
  REQSCHED_REQUIRE(options_.n >= 2);
}

std::string ZipfWorkload::name() const {
  std::ostringstream os;
  os << "zipf(n=" << options_.n << ",d=" << options_.d << ",s=" << exponent_
     << ",load=" << options_.load << ",seed=" << options_.seed
     << knob_suffix(options_) << ")";
  return os.str();
}

ProblemConfig ZipfWorkload::config() const { return options_.problem_config(); }

void ZipfWorkload::generate(Round t, const Simulator& sim,
                            std::vector<RequestSpec>& out) {
  (void)sim;
  if (t >= options_.horizon) return;
  const std::int32_t count = binomial(rng_, 4 * options_.n,
                                      options_.load / 4.0);
  const std::int32_t k = options_.alternatives();
  for (std::int32_t i = 0; i < count; ++i) {
    RequestSpec spec;
    while (spec.alts.size() < k) {
      const auto r = static_cast<ResourceId>(sampler_.sample(rng_));
      if (!spec.alts.contains(r)) spec.alts.push_back(r);
    }
    roll_window_and_occupancy(rng_, options_, spec);
    out.push_back(spec);
  }
}

bool ZipfWorkload::exhausted(Round t) const { return t >= options_.horizon; }

void ZipfWorkload::reset() { rng_.reseed(options_.seed); }

// ----------------------------------------------------------------- Bursty

BurstyWorkload::BurstyWorkload(RandomWorkloadOptions options,
                               double burst_probability,
                               std::int32_t burst_size)
    : options_(options),
      burst_probability_(burst_probability),
      burst_size_(burst_size),
      rng_(options.seed) {
  validate_options(options_);
  REQSCHED_REQUIRE(options_.n >= 2 && burst_size >= 1);
}

std::string BurstyWorkload::name() const {
  std::ostringstream os;
  os << "bursty(n=" << options_.n << ",d=" << options_.d
     << ",p=" << burst_probability_ << ",B=" << burst_size_
     << ",seed=" << options_.seed << knob_suffix(options_) << ")";
  return os.str();
}

ProblemConfig BurstyWorkload::config() const {
  return options_.problem_config();
}

void BurstyWorkload::generate(Round t, const Simulator& sim,
                              std::vector<RequestSpec>& out) {
  (void)sim;
  if (t >= options_.horizon) return;
  const std::int32_t k = std::max(options_.alternatives(), 2);
  // Background trickle at a quarter of the configured load.
  const std::int32_t trickle = binomial(rng_, 2 * options_.n,
                                        options_.load / 8.0);
  for (std::int32_t i = 0; i < trickle; ++i) {
    RequestSpec spec;
    draw_uniform_alts(rng_, options_.n, k, spec.alts);
    roll_window_and_occupancy(rng_, options_, spec);
    out.push_back(spec);
  }
  // Occasionally a hot title: burst_size requests all naming the same
  // replica set.
  if (rng_.next_bool(burst_probability_)) {
    RequestSpec hot;
    draw_uniform_alts(rng_, options_.n, k, hot.alts);
    roll_window_and_occupancy(rng_, options_, hot);
    for (std::int32_t i = 0; i < burst_size_; ++i) {
      out.push_back(hot);
    }
  }
}

bool BurstyWorkload::exhausted(Round t) const { return t >= options_.horizon; }

void BurstyWorkload::reset() { rng_.reseed(options_.seed); }

// ------------------------------------------------------------- BlockStorm

BlockStormWorkload::BlockStormWorkload(RandomWorkloadOptions options,
                                       double block_probability,
                                       std::int32_t max_block_width)
    : options_(options),
      block_probability_(block_probability),
      max_block_width_(max_block_width),
      rng_(options.seed) {
  validate_options(options_);
  REQSCHED_REQUIRE(max_block_width >= 2 && max_block_width <= options_.n);
}

std::string BlockStormWorkload::name() const {
  std::ostringstream os;
  os << "blockstorm(n=" << options_.n << ",d=" << options_.d
     << ",p=" << block_probability_ << ",a<=" << max_block_width_
     << ",seed=" << options_.seed << knob_suffix(options_) << ")";
  return os.str();
}

ProblemConfig BlockStormWorkload::config() const {
  return options_.problem_config();
}

void BlockStormWorkload::generate(Round t, const Simulator& sim,
                                  std::vector<RequestSpec>& out) {
  (void)sim;
  if (t >= options_.horizon) return;
  if (!rng_.next_bool(block_probability_)) return;

  // block(a, d) on a random subset of a resources.
  const std::int32_t a = static_cast<std::int32_t>(
      2 + rng_.next_below(static_cast<std::uint64_t>(max_block_width_ - 1)));
  ring_.resize(static_cast<std::size_t>(options_.n));
  for (std::int32_t i = 0; i < options_.n; ++i) {
    ring_[static_cast<std::size_t>(i)] = i;
  }
  rng_.shuffle(ring_);
  ring_.resize(static_cast<std::size_t>(a));
  const std::int32_t k = std::min(std::max(options_.alternatives(), 2), a);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    for (std::int32_t j = 0; j < options_.d; ++j) {
      RequestSpec spec;
      for (std::int32_t step = 0; step < k; ++step) {
        spec.alts.push_back(
            ring_[(i + static_cast<std::size_t>(step)) % ring_.size()]);
      }
      roll_window_and_occupancy(rng_, options_, spec);
      out.push_back(spec);
    }
  }
}

bool BlockStormWorkload::exhausted(Round t) const {
  return t >= options_.horizon;
}

void BlockStormWorkload::reset() { rng_.reseed(options_.seed); }

}  // namespace reqsched
