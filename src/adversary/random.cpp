#include "adversary/random.hpp"

#include <algorithm>
#include <sstream>

namespace reqsched {

namespace {
/// Binomial(trials, p) by direct simulation — trials is small (O(n)).
std::int32_t binomial(Prng& rng, std::int32_t trials, double p) {
  std::int32_t hits = 0;
  for (std::int32_t i = 0; i < trials; ++i) {
    if (rng.next_bool(p)) ++hits;
  }
  return hits;
}

/// Two distinct uniform resources.
RequestSpec uniform_pair(Prng& rng, std::int32_t n, bool two_choice) {
  RequestSpec spec;
  spec.first = static_cast<ResourceId>(rng.next_below(
      static_cast<std::uint64_t>(n)));
  if (two_choice) {
    spec.second = static_cast<ResourceId>(rng.next_below(
        static_cast<std::uint64_t>(n - 1)));
    if (spec.second >= spec.first) ++spec.second;
  }
  return spec;
}

/// Applies the heterogeneous-deadline option to a freshly drawn spec.
void roll_window(Prng& rng, const RandomWorkloadOptions& options,
                 RequestSpec& spec) {
  if (options.min_window > 0) {
    spec.window = static_cast<std::int32_t>(
        rng.next_in(options.min_window, options.d));
  }
}
}  // namespace

// ---------------------------------------------------------------- Uniform

UniformWorkload::UniformWorkload(RandomWorkloadOptions options)
    : options_(options), rng_(options.seed) {
  ProblemConfig{options_.n, options_.d}.validate();
  REQSCHED_REQUIRE(options_.load >= 0 && options_.horizon >= 1);
  REQSCHED_REQUIRE_MSG(options_.n >= 2 || !options_.two_choice,
                       "two-choice needs at least two resources");
}

std::string UniformWorkload::name() const {
  std::ostringstream os;
  os << "uniform(n=" << options_.n << ",d=" << options_.d
     << ",load=" << options_.load << ",seed=" << options_.seed << ")";
  return os.str();
}

ProblemConfig UniformWorkload::config() const {
  return ProblemConfig{options_.n, options_.d};
}

std::vector<RequestSpec> UniformWorkload::generate(Round t,
                                                   const Simulator& sim) {
  (void)sim;
  std::vector<RequestSpec> out;
  if (t >= options_.horizon) return out;
  // 4n trials at p = load/4: mean load*n per round, headroom up to 4x
  // overload before the binomial saturates.
  const std::int32_t count = binomial(rng_, 4 * options_.n,
                                      options_.load / 4.0);
  for (std::int32_t i = 0; i < count; ++i) {
    RequestSpec spec = uniform_pair(rng_, options_.n, options_.two_choice);
    roll_window(rng_, options_, spec);
    out.push_back(spec);
  }
  return out;
}

bool UniformWorkload::exhausted(Round t) const {
  return t >= options_.horizon;
}

void UniformWorkload::reset() { rng_.reseed(options_.seed); }

// ------------------------------------------------------------------- Zipf

ZipfWorkload::ZipfWorkload(RandomWorkloadOptions options, double exponent)
    : options_(options),
      exponent_(exponent),
      sampler_(static_cast<std::size_t>(options.n), exponent),
      rng_(options.seed) {
  ProblemConfig{options_.n, options_.d}.validate();
  REQSCHED_REQUIRE(options_.n >= 2);
}

std::string ZipfWorkload::name() const {
  std::ostringstream os;
  os << "zipf(n=" << options_.n << ",d=" << options_.d << ",s=" << exponent_
     << ",load=" << options_.load << ",seed=" << options_.seed << ")";
  return os.str();
}

ProblemConfig ZipfWorkload::config() const {
  return ProblemConfig{options_.n, options_.d};
}

std::vector<RequestSpec> ZipfWorkload::generate(Round t,
                                                const Simulator& sim) {
  (void)sim;
  std::vector<RequestSpec> out;
  if (t >= options_.horizon) return out;
  const std::int32_t count = binomial(rng_, 4 * options_.n,
                                      options_.load / 4.0);
  for (std::int32_t i = 0; i < count; ++i) {
    RequestSpec spec;
    spec.first = static_cast<ResourceId>(sampler_.sample(rng_));
    do {
      spec.second = static_cast<ResourceId>(sampler_.sample(rng_));
    } while (spec.second == spec.first);
    roll_window(rng_, options_, spec);
    out.push_back(spec);
  }
  return out;
}

bool ZipfWorkload::exhausted(Round t) const { return t >= options_.horizon; }

void ZipfWorkload::reset() { rng_.reseed(options_.seed); }

// ----------------------------------------------------------------- Bursty

BurstyWorkload::BurstyWorkload(RandomWorkloadOptions options,
                               double burst_probability,
                               std::int32_t burst_size)
    : options_(options),
      burst_probability_(burst_probability),
      burst_size_(burst_size),
      rng_(options.seed) {
  ProblemConfig{options_.n, options_.d}.validate();
  REQSCHED_REQUIRE(options_.n >= 2 && burst_size >= 1);
}

std::string BurstyWorkload::name() const {
  std::ostringstream os;
  os << "bursty(n=" << options_.n << ",d=" << options_.d
     << ",p=" << burst_probability_ << ",B=" << burst_size_
     << ",seed=" << options_.seed << ")";
  return os.str();
}

ProblemConfig BurstyWorkload::config() const {
  return ProblemConfig{options_.n, options_.d};
}

std::vector<RequestSpec> BurstyWorkload::generate(Round t,
                                                  const Simulator& sim) {
  (void)sim;
  std::vector<RequestSpec> out;
  if (t >= options_.horizon) return out;
  // Background trickle at a quarter of the configured load.
  const std::int32_t trickle = binomial(rng_, 2 * options_.n,
                                        options_.load / 8.0);
  for (std::int32_t i = 0; i < trickle; ++i) {
    out.push_back(uniform_pair(rng_, options_.n, /*two_choice=*/true));
  }
  // Occasionally a hot title: burst_size requests all naming the same two
  // replicas.
  if (rng_.next_bool(burst_probability_)) {
    const RequestSpec hot = uniform_pair(rng_, options_.n, true);
    for (std::int32_t i = 0; i < burst_size_; ++i) {
      out.push_back(hot);
    }
  }
  return out;
}

bool BurstyWorkload::exhausted(Round t) const { return t >= options_.horizon; }

void BurstyWorkload::reset() { rng_.reseed(options_.seed); }

// ------------------------------------------------------------- BlockStorm

BlockStormWorkload::BlockStormWorkload(RandomWorkloadOptions options,
                                       double block_probability,
                                       std::int32_t max_block_width)
    : options_(options),
      block_probability_(block_probability),
      max_block_width_(max_block_width),
      rng_(options.seed) {
  ProblemConfig{options_.n, options_.d}.validate();
  REQSCHED_REQUIRE(max_block_width >= 2 && max_block_width <= options_.n);
}

std::string BlockStormWorkload::name() const {
  std::ostringstream os;
  os << "blockstorm(n=" << options_.n << ",d=" << options_.d
     << ",p=" << block_probability_ << ",a<=" << max_block_width_
     << ",seed=" << options_.seed << ")";
  return os.str();
}

ProblemConfig BlockStormWorkload::config() const {
  return ProblemConfig{options_.n, options_.d};
}

std::vector<RequestSpec> BlockStormWorkload::generate(Round t,
                                                      const Simulator& sim) {
  (void)sim;
  std::vector<RequestSpec> out;
  if (t >= options_.horizon) return out;
  if (!rng_.next_bool(block_probability_)) return out;

  // block(a, d) on a random subset of a resources.
  const std::int32_t a = static_cast<std::int32_t>(
      2 + rng_.next_below(static_cast<std::uint64_t>(max_block_width_ - 1)));
  std::vector<ResourceId> ring(static_cast<std::size_t>(options_.n));
  for (std::int32_t i = 0; i < options_.n; ++i) {
    ring[static_cast<std::size_t>(i)] = i;
  }
  rng_.shuffle(ring);
  ring.resize(static_cast<std::size_t>(a));
  for (std::size_t i = 0; i < ring.size(); ++i) {
    for (std::int32_t j = 0; j < options_.d; ++j) {
      RequestSpec spec;
      spec.first = ring[i];
      spec.second = ring[(i + 1) % ring.size()];
      out.push_back(spec);
    }
  }
  return out;
}

bool BlockStormWorkload::exhausted(Round t) const {
  return t >= options_.horizon;
}

void BlockStormWorkload::reset() { rng_.reseed(options_.seed); }

}  // namespace reqsched
