// Open-loop stationary arrival processes with load factor rho as the knob.
//
// The finite-trace generators (adversary/random.hpp) answer "what does the
// strategy do on this sequence"; the stationary question — "what loss rate
// does the system settle into under sustained load" — needs an *open-loop*
// process that keeps injecting at a controlled long-run rate for as many
// rounds as the run asks for. "Balanced routing of random calls"
// (Luczak–McDiarmid, PAPERS.md) analyzes exactly this regime: arrivals are
// Poisson, each accepted call holds a server for a while, and the object of
// study is the stationary loss rate as a function of the load factor.
//
// One composable generator covers the suite: a Poisson base rate of
// rho * n * b expected arrivals per round, optionally modulated by an MMPP
// on/off rate process, a diurnal sine, and flash crowds, with alternatives
// drawn uniformly or from a Zipf hot-spot distribution whose hot set drifts
// over time. Every modulation is normalized in the constructor so the
// *long-run mean* stays rho * n * b — rho keeps its meaning (fraction of
// total service capacity demanded per round) no matter which knobs are on.
//
// The process is resumable through the PR 8 snapshot hooks: its mutable
// state is the PRNG plus three small modulation words, so a 10^8-request
// stationary run checkpoints and restores bit-identically.
#pragma once

#include <string>

#include "core/workload.hpp"
#include "util/prng.hpp"

namespace reqsched {

struct OpenLoopOptions {
  std::int32_t n = 64;
  std::int32_t d = 8;
  /// Load factor: long-run expected arrivals per round as a fraction of the
  /// per-round service capacity n * b. rho < 1 is sub-critical, rho = 1
  /// critical, rho > 1 overloaded (loss rate bounded away from zero).
  double rho = 0.9;
  /// Rounds with injections. There is no "infinite" sentinel — pass the
  /// length of the run (the soak uses ~3e6 rounds for its 10^8 requests);
  /// exhausted(t) is t >= horizon, as for every other workload.
  Round horizon = 1'000'000;
  std::uint64_t seed = 1;
  /// Generalized-model knobs, as in RandomWorkloadOptions.
  std::int32_t k = 2;
  std::int32_t b = 1;
  std::int32_t min_window = 0;
  std::int32_t max_occupancy = 1;

  // --- MMPP (Markov-modulated Poisson process) burst regime ---
  /// Rate multiplier while the hidden state is "high"; 1.0 disables the
  /// modulation entirely (no per-round transition draw).
  double mmpp_high_mult = 1.0;
  double mmpp_p_enter = 0.05;  ///< P(low -> high) per round
  double mmpp_p_exit = 0.2;    ///< P(high -> low) per round

  // --- diurnal cycle ---
  /// Amplitude of 1 + a * sin(2*pi*t / period); 0 disables. Must stay in
  /// [0, 1] so the instantaneous rate is never negative.
  double diurnal_amplitude = 0.0;
  Round diurnal_period = 1 << 16;

  // --- flash crowds ---
  /// Per-round probability of a flash crowd igniting (when none is
  /// burning); 0 disables.
  double flash_probability = 0.0;
  double flash_mult = 8.0;     ///< rate multiplier while burning
  Round flash_duration = 32;   ///< rounds a flash burns
  /// During a flash, arrivals draw their alternatives from a contiguous hot
  /// set of this many resources (clamped to [k, n]).
  std::int32_t flash_hot_set = 4;

  // --- drifting Zipf hot spots ---
  /// Popularity skew for alternative choice; 0 draws alternatives
  /// uniformly.
  double zipf_exponent = 0.0;
  /// The Zipf ranking rotates one resource every this many rounds, so the
  /// hot spot drifts across the fleet; 0 pins it. The rotation is a pure
  /// function of the round number — no extra mutable state.
  Round zipf_drift_every = 0;

  ProblemConfig problem_config() const {
    ProblemConfig config;
    config.n = n;
    config.d = d;
    config.b = b;
    return config;
  }
};

/// The composable open-loop process. Per round it draws, in pinned order:
/// (1) the MMPP transition (iff enabled), (2) the flash ignition or decay
/// bookkeeping (iff enabled; ignition also draws the hot-set base), (3) the
/// Poisson arrival count at the modulated rate, (4) per arrival: the
/// alternatives, then window/occupancy knobs. The pinned order is what
/// makes export_state/import_state resume the stream bit-identically.
class OpenLoopWorkload final : public IWorkload {
 public:
  explicit OpenLoopWorkload(OpenLoopOptions options,
                            std::string family = "poisson");

  std::string name() const override;
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override;
  void import_state(std::span<const std::uint64_t> state) override;

  const OpenLoopOptions& options() const { return options_; }
  /// Long-run expected arrivals per round (= rho * n * b; the modulations
  /// are normalized away). Exposed so tests can pin the calibration.
  double mean_rate() const { return base_rate_ * norm_; }

 private:
  double modulation(Round t) const;

  OpenLoopOptions options_;
  std::string family_;
  /// rho * n * b / norm_: the Poisson rate is base_rate_ * modulation(t),
  /// and E[modulation] = norm_, so the long-run mean is rho * n * b.
  double base_rate_ = 0.0;
  double norm_ = 1.0;
  ZipfSampler sampler_;  ///< immutable CDF — rebuilt by construction
  Prng rng_;
  // mutable modulation state (exported alongside the PRNG words)
  bool mmpp_high_ = false;
  Round flash_remaining_ = 0;
  std::int32_t flash_base_ = 0;
};

}  // namespace reqsched
