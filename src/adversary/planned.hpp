// Planned adversarial instances.
//
// Each lower-bound proof in Section 2 builds an explicit request sequence
// together with an intended (bad-but-rule-conforming) online schedule.
// PlannedInstance carries both: the injection script (IWorkload) and the
// intended bookings, offered each round as a proposal (IProposalSource) that
// the scripted strategy checker (src/strategies/scripted.hpp) verifies
// against the strategy class's rules. A request planned to fail carries
// kNoSlot. The handoff goes through core/proposal.hpp so this layer never
// includes strategy headers (and vice versa).
#pragma once

#include <string>
#include <vector>

#include "core/proposal.hpp"
#include "core/workload.hpp"

namespace reqsched {

struct PlannedRequest {
  Round arrival = 0;
  RequestSpec spec;
  /// Where the intended online schedule executes this request;
  /// kNoSlot = the adversary intends this request to fail online.
  SlotRef intended = kNoSlot;
};

/// Which intended bookings a proposal may contain.
enum class ProposalScope {
  kFullWindow,        ///< all intended slots at rounds >= now
  kCurrentRoundOnly,  ///< only intended slots at round == now (A_current)
};

class PlannedInstance final : public IWorkload, public IProposalSource {
 public:
  /// `with_plan` = false turns the instance into a plain workload whose
  /// propose() defers to the reference strategy (used where the paper's
  /// construction works against the deterministic reference directly).
  PlannedInstance(std::string name, ProblemConfig config,
                  std::vector<PlannedRequest> script, bool with_plan = true,
                  ProposalScope scope = ProposalScope::kFullWindow);

  // IWorkload
  std::string name() const override { return name_; }
  ProblemConfig config() const override { return config_; }
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override { cursor_ = 0; }

  // IProposalSource
  std::optional<Proposal> propose(const Simulator& sim) override;

  const std::vector<PlannedRequest>& script() const { return script_; }

  /// Number of requests the intended schedule fulfills (valid `intended`).
  std::int64_t planned_online() const;

 private:
  std::string name_;
  ProblemConfig config_;
  std::vector<PlannedRequest> script_;
  bool with_plan_;
  ProposalScope scope_;
  std::size_t cursor_ = 0;
};

}  // namespace reqsched
