// Randomized workload generators.
//
// The paper argues for adversarial analysis precisely because real request
// streams (video-on-demand, OLTP) can be highly correlated; these generators
// span that spectrum: i.i.d. uniform two-choice traffic, Zipf hot spots,
// bursty correlated demand, and random dense blocks. They drive the
// upper-bound property tests and the stochastic comparison bench (F-C).
#pragma once

#include <string>

#include "core/workload.hpp"
#include "util/prng.hpp"

namespace reqsched {

struct RandomWorkloadOptions {
  std::int32_t n = 8;
  std::int32_t d = 4;
  /// Expected requests per round, as a fraction of n (1.0 = critically
  /// loaded on average).
  double load = 1.0;
  Round horizon = 256;  ///< rounds with injections
  std::uint64_t seed = 1;
  /// When true every request has two alternatives; otherwise one (EDF-1).
  bool two_choice = true;
  /// Heterogeneous deadlines: when > 0, each request's window is drawn
  /// uniformly from [min_window, d] (the paper notes the EDF observations
  /// extend to different deadlines). 0 = every request gets the full d.
  std::int32_t min_window = 0;
};

/// Each round injects Binomial(2n, load/2) requests choosing their
/// alternatives uniformly (distinct).
class UniformWorkload final : public IWorkload {
 public:
  explicit UniformWorkload(RandomWorkloadOptions options);

  std::string name() const override;
  ProblemConfig config() const override;
  std::vector<RequestSpec> generate(Round t, const Simulator& sim) override;
  bool exhausted(Round t) const override;
  void reset() override;

 private:
  RandomWorkloadOptions options_;
  Prng rng_;
};

/// Alternatives drawn from a Zipf(s) popularity distribution over the
/// resources — a hot-spot workload.
class ZipfWorkload final : public IWorkload {
 public:
  ZipfWorkload(RandomWorkloadOptions options, double exponent);

  std::string name() const override;
  ProblemConfig config() const override;
  std::vector<RequestSpec> generate(Round t, const Simulator& sim) override;
  bool exhausted(Round t) const override;
  void reset() override;

 private:
  RandomWorkloadOptions options_;
  double exponent_;
  ZipfSampler sampler_;
  Prng rng_;
};

/// Video-on-demand style: a light background trickle with occasional
/// correlated bursts — `burst_size` requests all naming alternatives from a
/// two-resource hot set (a newly released title's two replicas).
class BurstyWorkload final : public IWorkload {
 public:
  BurstyWorkload(RandomWorkloadOptions options, double burst_probability,
                 std::int32_t burst_size);

  std::string name() const override;
  ProblemConfig config() const override;
  std::vector<RequestSpec> generate(Round t, const Simulator& sim) override;
  bool exhausted(Round t) const override;
  void reset() override;

 private:
  RandomWorkloadOptions options_;
  double burst_probability_;
  std::int32_t burst_size_;
  Prng rng_;
};

/// Random dense block(a, d) structures at random resource subsets — the
/// adversary's favourite brick, thrown stochastically.
class BlockStormWorkload final : public IWorkload {
 public:
  BlockStormWorkload(RandomWorkloadOptions options, double block_probability,
                     std::int32_t max_block_width);

  std::string name() const override;
  ProblemConfig config() const override;
  std::vector<RequestSpec> generate(Round t, const Simulator& sim) override;
  bool exhausted(Round t) const override;
  void reset() override;

 private:
  RandomWorkloadOptions options_;
  double block_probability_;
  std::int32_t max_block_width_;
  Prng rng_;
};

}  // namespace reqsched
