// Randomized workload generators.
//
// The paper argues for adversarial analysis precisely because real request
// streams (video-on-demand, OLTP) can be highly correlated; these generators
// span that spectrum: i.i.d. uniform two-choice traffic, Zipf hot spots,
// bursty correlated demand, and random dense blocks. They drive the
// upper-bound property tests and the stochastic comparison bench (F-C).
//
// All generators carry the generalized-model knobs: `k` alternatives per
// request (Park's (k,d)-choice), a uniform per-(resource, round) capacity
// `b` (Albers–Schubert b-matching), and `max_occupancy` for reusable-slot
// requests (Baek–Wang). Defaults reproduce the paper's two-choice,
// unit-capacity, unit-occupancy model.
#pragma once

#include <string>

#include "core/workload.hpp"
#include "util/prng.hpp"

namespace reqsched {

struct RandomWorkloadOptions {
  std::int32_t n = 8;
  std::int32_t d = 4;
  /// Expected requests per round, as a fraction of n (1.0 = critically
  /// loaded on average).
  double load = 1.0;
  Round horizon = 256;  ///< rounds with injections
  std::uint64_t seed = 1;
  /// When true every request has two alternatives; otherwise one (EDF-1).
  bool two_choice = true;
  /// Heterogeneous deadlines: when > 0, each request's window is drawn
  /// uniformly from [min_window, d] (the paper notes the EDF observations
  /// extend to different deadlines). 0 = every request gets the full d.
  std::int32_t min_window = 0;
  /// Alternatives per request: 0 = paper default (two_choice ? 2 : 1);
  /// k >= 1 draws k distinct resources per request.
  std::int32_t k = 0;
  /// Uniform per-(resource, round) capacity of the generated instance.
  std::int32_t b = 1;
  /// When > 1, each request's occupancy is drawn uniformly from
  /// [1, max_occupancy], clamped to its window.
  std::int32_t max_occupancy = 1;

  /// Resolved alternatives-per-request.
  std::int32_t alternatives() const {
    return k >= 1 ? k : (two_choice ? 2 : 1);
  }

  ProblemConfig problem_config() const {
    ProblemConfig config;
    config.n = n;
    config.d = d;
    config.b = b;
    return config;
  }
};

/// Each round injects Binomial(4n, load/4) requests choosing their
/// alternatives uniformly (distinct).
class UniformWorkload final : public IWorkload {
 public:
  explicit UniformWorkload(RandomWorkloadOptions options);

  std::string name() const override;
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    append_prng_words(rng_, out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    restore_prng_words(rng_, state);
  }

 private:
  RandomWorkloadOptions options_;
  Prng rng_;
};

/// Alternatives drawn from a Zipf(s) popularity distribution over the
/// resources — a hot-spot workload.
class ZipfWorkload final : public IWorkload {
 public:
  ZipfWorkload(RandomWorkloadOptions options, double exponent);

  std::string name() const override;
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    append_prng_words(rng_, out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    restore_prng_words(rng_, state);
  }

 private:
  RandomWorkloadOptions options_;
  double exponent_;
  ZipfSampler sampler_;  ///< immutable CDF — rebuilt by construction
  Prng rng_;
};

/// Video-on-demand style: a light background trickle with occasional
/// correlated bursts — `burst_size` requests all naming alternatives from a
/// hot replica set (a newly released title's replicas).
class BurstyWorkload final : public IWorkload {
 public:
  BurstyWorkload(RandomWorkloadOptions options, double burst_probability,
                 std::int32_t burst_size);

  std::string name() const override;
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    append_prng_words(rng_, out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    restore_prng_words(rng_, state);
  }

 private:
  RandomWorkloadOptions options_;
  double burst_probability_;
  std::int32_t burst_size_;
  Prng rng_;
};

/// Random dense block(a, d) structures at random resource subsets — the
/// adversary's favourite brick, thrown stochastically. With k > 2 each
/// request names k consecutive members of the block's resource ring.
class BlockStormWorkload final : public IWorkload {
 public:
  BlockStormWorkload(RandomWorkloadOptions options, double block_probability,
                     std::int32_t max_block_width);

  std::string name() const override;
  ProblemConfig config() const override;
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override;

  bool resumable() const override { return true; }
  void export_state(std::vector<std::uint64_t>& out) const override {
    append_prng_words(rng_, out);
  }
  void import_state(std::span<const std::uint64_t> state) override {
    restore_prng_words(rng_, state);
  }

 private:
  RandomWorkloadOptions options_;
  double block_probability_;
  std::int32_t max_block_width_;
  Prng rng_;
  std::vector<ResourceId> ring_;  ///< per-round scratch, reused
};

}  // namespace reqsched
