#include "adversary/planned.hpp"

#include <algorithm>

#include "engine/simulator.hpp"

namespace reqsched {

PlannedInstance::PlannedInstance(std::string name, ProblemConfig config,
                                 std::vector<PlannedRequest> script,
                                 bool with_plan, ProposalScope scope)
    : name_(std::move(name)),
      config_(config),
      script_(std::move(script)),
      with_plan_(with_plan),
      scope_(scope) {
  config_.validate();
  REQSCHED_REQUIRE_MSG(
      std::is_sorted(script_.begin(), script_.end(),
                     [](const PlannedRequest& a, const PlannedRequest& b) {
                       return a.arrival < b.arrival;
                     }),
      "planned script must be sorted by arrival round");
  for (const PlannedRequest& pr : script_) {
    if (!pr.intended.valid()) continue;
    const std::int32_t window = pr.spec.window > 0 ? pr.spec.window : config_.d;
    REQSCHED_REQUIRE_MSG(
        pr.intended.round >= pr.arrival &&
            pr.intended.round <= pr.arrival + window - 1 &&
            pr.spec.alts.contains(pr.intended.resource),
        "intended slot " << pr.intended << " violates the request's own"
                         << " constraints (arrival " << pr.arrival << ")");
  }
}

void PlannedInstance::generate(Round t, const Simulator& sim,
                               std::vector<RequestSpec>& out) {
  // Script index == RequestId: this instance must be the simulator's only
  // request source and is consumed in order.
  REQSCHED_CHECK_MSG(static_cast<std::size_t>(sim.trace().size()) == cursor_,
                     "planned instance must be the only workload");
  while (cursor_ < script_.size() && script_[cursor_].arrival == t) {
    out.push_back(script_[cursor_].spec);
    ++cursor_;
  }
}

bool PlannedInstance::exhausted(Round t) const {
  (void)t;
  return cursor_ >= script_.size();
}

std::optional<Proposal> PlannedInstance::propose(const Simulator& sim) {
  if (!with_plan_) return std::nullopt;
  Proposal proposal;
  for (const RequestId id : sim.alive()) {
    const PlannedRequest& pr = script_[static_cast<std::size_t>(id)];
    if (!pr.intended.valid()) continue;
    const bool in_scope = scope_ == ProposalScope::kFullWindow
                              ? pr.intended.round >= sim.now()
                              : pr.intended.round == sim.now();
    if (in_scope) proposal.emplace_back(id, pr.intended);
  }
  return proposal;
}

std::int64_t PlannedInstance::planned_online() const {
  return static_cast<std::int64_t>(
      std::count_if(script_.begin(), script_.end(),
                    [](const PlannedRequest& pr) {
                      return pr.intended.valid();
                    }));
}

}  // namespace reqsched
