// The lower-bound constructions of Section 2 (Theorems 2.1–2.5) and the
// tightness instances of Section 3 (Theorem 3.7, Observation 3.2), as
// reusable workload builders. Theorem 2.6's adaptive adversary lives in
// adversary/universal.hpp.
//
// Each builder returns the request script together with the strategy class
// it attacks and the proven asymptotic lower bound (as an exact fraction).
// Instances whose plan steers tie-breaking carry intended schedules that the
// scripted-strategy checker validates every round.
#pragma once

#include <memory>

#include "adversary/planned.hpp"
#include "core/strategy.hpp"
#include "util/fraction.hpp"

namespace reqsched {

struct TheoremInstance {
  std::unique_ptr<PlannedInstance> workload;
  StrategyKind target = StrategyKind::kFix;
  Fraction bound;       ///< proven lower bound on the competitive ratio
  std::string theorem;  ///< e.g. "2.1"
};

/// Theorem 2.1: A_fix loses 2 - 1/d on 4 resources. Requires d >= 2.
TheoremInstance make_lb_fix(std::int32_t d, std::int32_t phases);

/// Theorem 2.2: A_current tends to e/(e-1) on ell resources. `d` must be a
/// positive multiple of lcm(1..ell-1); pass 0 for the smallest valid d.
/// The returned bound is the exact finite-(ell, d) value ell*d / fulfilled
/// predicted by the harmonic argument; the e/(e-1) limit is approached as
/// ell grows. No plan: the reference A_current (serve-oldest-first) realizes
/// the construction by itself.
TheoremInstance make_lb_current(std::int32_t ell, std::int32_t phases,
                                std::int32_t d = 0);

/// Theorem 2.3: A_fix_balance loses 3d/(2d+2) on 6 resources. Requires even
/// d >= 2. No plan: the balance rule itself forces the bad placement.
TheoremInstance make_lb_fix_balance(std::int32_t d, std::int32_t phases);

/// Theorem 2.4: the overlapping-phase instance that costs A_eager 4/3 for
/// every even d >= 2, and also A_current / A_fix_balance / A_balance at
/// d = 2. `target` selects which strategy class the plan is checked against.
TheoremInstance make_lb_eager(std::int32_t d, std::int32_t phases,
                              StrategyKind target = StrategyKind::kEager);

/// Theorem 2.5: A_balance loses (5d+2)/(4d+1) with d = 3x-1, on 3*groups+2
/// resources, in the limit of many groups.
TheoremInstance make_lb_balance(std::int32_t x, std::int32_t groups,
                                std::int32_t intervals);

/// Theorem 3.7: A_local_fix loses exactly 2 on 4 resources (plain workload;
/// the first-alternative routing and LDF tie-breaks do the steering).
std::unique_ptr<PlannedInstance> make_lb_local_fix(std::int32_t d,
                                                   std::int32_t intervals);

/// Observation 3.2 tightness: independent-copy EDF loses exactly 2.
std::unique_ptr<PlannedInstance> make_lb_edf(std::int32_t d,
                                             std::int32_t intervals);

/// Smallest valid deadline for make_lb_current: lcm(1..ell-1).
std::int32_t lb_current_min_deadline(std::int32_t ell);

/// The harmonic prediction for Theorem 2.2: the fraction of requests the
/// adversarial A_current fulfills per phase (-> (e-1)/e as ell -> infinity).
double lb_current_predicted_fulfilled_fraction(std::int32_t ell);

}  // namespace reqsched
