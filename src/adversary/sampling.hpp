// Shared sampling primitives for workload generation.
//
// Every generator pays its RNG cost inside the engine's round loop, so these
// helpers are built around one rule: O(arrivals) work per round, never
// O(trials) or O(n). That is what keeps bench_stream's untracked-throughput
// gate measuring the engine instead of the generator (ROADMAP item 1). The
// finite-trace generators (adversary/random.cpp) and the open-loop
// stationary processes (adversary/openloop.cpp) draw from the same set so
// their streams stay comparable draw-for-draw.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/request.hpp"
#include "util/prng.hpp"

namespace reqsched::sampling {

/// Binomial(trials, p) by CDF inversion: one uniform draw and O(result)
/// arithmetic via the pmf recurrence, instead of one Bernoulli draw per
/// trial.
inline std::int32_t binomial(Prng& rng, std::int32_t trials, double p) {
  if (trials <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return trials;
  double u = rng.next_double();
  const double odds = p / (1.0 - p);
  double pmf = std::pow(1.0 - p, trials);
  std::int32_t k = 0;
  while (u > pmf && k < trials) {
    u -= pmf;
    pmf *= odds * static_cast<double>(trials - k) / static_cast<double>(k + 1);
    ++k;
  }
  return k;
}

/// Poisson(lambda) by the same CDF-inversion recurrence. exp(-lambda)
/// underflows for large rates, so rates above `kPoissonChunk` are split by
/// additivity — Poisson(a+b) = Poisson(a) + Poisson(b) — into chunks whose
/// pmf stays well inside double range. Cost: O(lambda) arithmetic and
/// O(lambda / kPoissonChunk) uniform draws per call.
inline constexpr double kPoissonChunk = 16.0;

inline std::int64_t poisson(Prng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  std::int64_t total = 0;
  while (lambda > kPoissonChunk) {
    lambda -= kPoissonChunk;
    double u = rng.next_double();
    double pmf = std::exp(-kPoissonChunk);
    std::int64_t k = 0;
    // Hard stop far out in the tail (P ~ 1e-40 at 8x the chunk mean) so a
    // pathological u cannot spin.
    while (u > pmf && k < 128) {
      u -= pmf;
      pmf *= kPoissonChunk / static_cast<double>(k + 1);
      ++k;
    }
    total += k;
  }
  double u = rng.next_double();
  double pmf = std::exp(-lambda);
  std::int64_t k = 0;
  while (u > pmf && k < 128) {
    u -= pmf;
    pmf *= lambda / static_cast<double>(k + 1);
    ++k;
  }
  return total + k;
}

/// Draws `count` distinct uniform resources into `alts` by rejection
/// (count <= kMaxAlternatives, so the containment check is a short scan).
inline void draw_uniform_alts(Prng& rng, std::int32_t n, std::int32_t count,
                              AltList& alts) {
  while (alts.size() < count) {
    const auto r = static_cast<ResourceId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (!alts.contains(r)) alts.push_back(r);
  }
}

/// Two distinct uniform resources from a single 64-bit draw: the high half
/// picks the first, the low half picks a nonzero offset. One RNG call where
/// rejection sampling needs two-plus — the cheap path for the k = 2 paper
/// model in high-rate open-loop streams. Requires n >= 2; the per-half
/// modulo bias is <= 2^-32 and irrelevant for workload generation.
inline void draw_distinct_pair(Prng& rng, std::int32_t n, AltList& alts) {
  const std::uint64_t word = rng.next();
  const auto un = static_cast<std::uint64_t>(n);
  const auto first =
      static_cast<ResourceId>((word >> 32) % un);
  const auto offset = static_cast<ResourceId>(
      1 + (word & 0xffffffffULL) % (un - 1));
  alts.push_back(first);
  alts.push_back(static_cast<ResourceId>(
      (static_cast<std::uint64_t>(first) + static_cast<std::uint64_t>(offset)) %
      un));
}

/// Applies heterogeneous-deadline and occupancy knobs to a freshly drawn
/// spec (draw order: window, then occupancy — pinned so seeds replay).
inline void roll_window_and_occupancy(Prng& rng, std::int32_t min_window,
                                      std::int32_t d,
                                      std::int32_t max_occupancy,
                                      RequestSpec& spec) {
  if (min_window > 0) {
    spec.window = static_cast<std::int32_t>(rng.next_in(min_window, d));
  }
  if (max_occupancy > 1) {
    const std::int32_t window = spec.window > 0 ? spec.window : d;
    const auto occupancy =
        static_cast<std::int32_t>(rng.next_in(1, max_occupancy));
    spec.occupancy = std::min(occupancy, window);
  }
}

}  // namespace reqsched::sampling
