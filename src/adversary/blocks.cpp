#include "adversary/blocks.hpp"

namespace reqsched {

void append_block(std::vector<PlannedRequest>& script, Round arrival,
                  std::span<const ResourceId> ring, std::int32_t d) {
  REQSCHED_REQUIRE(ring.size() >= 2);
  const auto a = static_cast<std::int32_t>(ring.size());
  for (std::int32_t i = 0; i < a; ++i) {
    for (std::int32_t j = 0; j < d; ++j) {
      PlannedRequest pr;
      pr.arrival = arrival;
      pr.spec.alts = {ring[static_cast<std::size_t>(i)], ring[static_cast<std::size_t>((i + 1) % a)]};
      pr.intended = SlotRef{ring[static_cast<std::size_t>(i)], arrival + j};
      script.push_back(pr);
    }
  }
}

void append_half_block(std::vector<PlannedRequest>& script, Round arrival,
                       ResourceId anchor, ResourceId target, std::int32_t d,
                       std::int32_t planned_fail_tail) {
  REQSCHED_REQUIRE(planned_fail_tail >= 0 && planned_fail_tail <= d);
  for (std::int32_t j = 0; j < d; ++j) {
    PlannedRequest pr;
    pr.arrival = arrival;
    pr.spec.alts = {anchor, target};
    if (j < d - planned_fail_tail) {
      pr.intended = SlotRef{target, arrival + j};
    }
    script.push_back(pr);
  }
}

void append_group(std::vector<PlannedRequest>& script, Round arrival,
                  std::int32_t count, ResourceId first, ResourceId second,
                  ResourceId intended_resource, Round intended_from) {
  for (std::int32_t j = 0; j < count; ++j) {
    PlannedRequest pr;
    pr.arrival = arrival;
    pr.spec.alts = {first, second};
    if (intended_resource != kNoResource) {
      pr.intended = SlotRef{intended_resource, intended_from + j};
    }
    script.push_back(pr);
  }
}

}  // namespace reqsched
