// Theorem 2.6: the adaptive adversary that forces a competitive ratio of at
// least 45/41 on EVERY deterministic online algorithm, using 10 resources
// and d divisible by 3.
//
// Five resource pairs. Three ("the trio") start blocked by a block(6, d);
// each interval the adversary injects three colored request groups whose
// first alternatives spread over the free duo and whose second alternatives
// point at one trio pair per color. At the interval's end it OBSERVES the
// online algorithm, picks the color with the most unfulfilled requests, and
// walls that color's pair (plus the duo) behind the next block(6, d). The
// walled color's stragglers — at least ceil(8d/9) of them in the worst case
// — expire. Roles rotate and the game repeats.
//
// For 3 | d this is exactly the proof's construction (bound 45/41); for
// other d the paper's closing remark applies: Phase 1 shrinks to floor(d/3)
// rounds with 4*floor(d/3) requests per colored group and the guaranteed
// bound weakens to 12/11 for every d.
#pragma once

#include <array>
#include <vector>

#include "core/workload.hpp"
#include "util/fraction.hpp"

namespace reqsched {

class UniversalAdversary final : public IWorkload {
 public:
  /// Requires d >= 3. The proven bound is 45/41 when 3 | d, else 12/11.
  UniversalAdversary(std::int32_t d, std::int32_t intervals);

  std::string name() const override;
  ProblemConfig config() const override { return ProblemConfig{10, d_}; }
  void generate(Round t, const Simulator& sim,
                std::vector<RequestSpec>& out) override;
  bool exhausted(Round t) const override;
  void reset() override;

  /// The proven universal lower bound: 45/41 when 3 | d, else 12/11.
  static Fraction bound(std::int32_t d = 3) {
    return d % 3 == 0 ? Fraction(45, 41) : Fraction(12, 11);
  }

  /// Colors the adversary chose to wall, one entry per completed interval
  /// (for tests/diagnostics).
  const std::vector<std::int32_t>& walled_colors() const { return walled_; }

 private:
  std::array<ResourceId, 2> pair(std::int32_t p) const {
    return {static_cast<ResourceId>(2 * p),
            static_cast<ResourceId>(2 * p + 1)};
  }

  std::int32_t d_;
  std::int32_t intervals_;
  /// Pair roles: role_[0..2] = trio (blocked / colored targets),
  /// role_[3..4] = duo (free, colored first alternatives).
  std::array<std::int32_t, 5> role_{};
  /// Request-id ranges [begin, end) of the current interval's color groups.
  std::array<std::pair<RequestId, RequestId>, 3> color_ids_{};
  std::int32_t current_interval_ = 0;
  bool done_ = false;
  std::vector<std::int32_t> walled_;
};

}  // namespace reqsched
