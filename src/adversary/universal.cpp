#include "adversary/universal.hpp"

#include <algorithm>
#include <sstream>

#include "engine/simulator.hpp"

namespace reqsched {

UniversalAdversary::UniversalAdversary(std::int32_t d, std::int32_t intervals)
    : d_(d), intervals_(intervals) {
  REQSCHED_REQUIRE_MSG(d >= 3, "Theorem 2.6 needs d >= 3");
  REQSCHED_REQUIRE(intervals >= 1);
  reset();
}

std::string UniversalAdversary::name() const {
  std::ostringstream os;
  os << "lb_universal(d=" << d_ << ",intervals=" << intervals_ << ")";
  return os.str();
}

void UniversalAdversary::reset() {
  role_ = {0, 1, 2, 3, 4};
  current_interval_ = 0;
  done_ = false;
  walled_.clear();
}

bool UniversalAdversary::exhausted(Round t) const {
  (void)t;
  return done_;
}

void UniversalAdversary::generate(Round t, const Simulator& sim,
                                  std::vector<RequestSpec>& out) {
  const auto ring_block = [&](const std::vector<ResourceId>& ring) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      for (std::int32_t j = 0; j < d_; ++j) {
        RequestSpec spec;
        spec.alts = {ring[i], ring[(i + 1) % ring.size()]};
        out.push_back(spec);
      }
    }
  };

  if (t == 0) {
    // Initial block(6, d) over the trio.
    std::vector<ResourceId> ring;
    for (std::int32_t p = 0; p < 3; ++p) {
      for (const ResourceId r : pair(role_[static_cast<std::size_t>(p)])) {
        ring.push_back(r);
      }
    }
    ring_block(ring);
    return;
  }

  const Round interval_start = static_cast<Round>(current_interval_) * d_;
  const std::int32_t phase1 = d_ / 3;  // Phase 1 length (exact when 3 | d)

  if (t == interval_start + (d_ - phase1) && current_interval_ < intervals_) {
    // Phase 1: 3 * 4p colored requests. First alternatives rotate over the
    // duo's four resources; second alternatives over the color's pair.
    RequestId next_id = sim.trace().size();
    std::array<ResourceId, 4> duo_res{};
    for (std::int32_t p = 0; p < 2; ++p) {
      const auto pr = pair(role_[static_cast<std::size_t>(3 + p)]);
      duo_res[static_cast<std::size_t>(2 * p)] = pr[0];
      duo_res[static_cast<std::size_t>(2 * p + 1)] = pr[1];
    }
    for (std::int32_t color = 0; color < 3; ++color) {
      const auto target = pair(role_[static_cast<std::size_t>(color)]);
      const std::int32_t count = 4 * phase1;
      color_ids_[static_cast<std::size_t>(color)] = {next_id,
                                                     next_id + count};
      next_id += count;
      for (std::int32_t j = 0; j < count; ++j) {
        RequestSpec spec;
        spec.alts = {duo_res[static_cast<std::size_t>(j % 4)], target[static_cast<std::size_t>(j % 2)]};
        out.push_back(spec);
      }
    }
    return;
  }

  if (t == interval_start + d_ && current_interval_ < intervals_) {
    // Phase 2: observe, pick the color with the most unfulfilled requests,
    // wall it together with the duo behind a block(6, d).
    std::int32_t worst_color = 0;
    std::int64_t worst_unfulfilled = -1;
    for (std::int32_t color = 0; color < 3; ++color) {
      std::int64_t unfulfilled = 0;
      const auto [begin, end] = color_ids_[static_cast<std::size_t>(color)];
      for (RequestId id = begin; id < end; ++id) {
        if (sim.status(id) != RequestStatus::kFulfilled) ++unfulfilled;
      }
      if (unfulfilled > worst_unfulfilled) {
        worst_unfulfilled = unfulfilled;
        worst_color = color;
      }
    }
    walled_.push_back(worst_color);

    std::vector<ResourceId> ring;
    for (const ResourceId r :
         pair(role_[static_cast<std::size_t>(worst_color)])) {
      ring.push_back(r);
    }
    for (std::int32_t p = 3; p < 5; ++p) {
      for (const ResourceId r : pair(role_[static_cast<std::size_t>(p)])) {
        ring.push_back(r);
      }
    }
    ring_block(ring);

    // Rotate roles: new trio = duo + walled pair; new duo = survivors.
    std::array<std::int32_t, 5> next{};
    next[0] = role_[static_cast<std::size_t>(3)];
    next[1] = role_[static_cast<std::size_t>(4)];
    next[2] = role_[static_cast<std::size_t>(worst_color)];
    std::int32_t out_idx = 3;
    for (std::int32_t color = 0; color < 3; ++color) {
      if (color != worst_color) {
        next[static_cast<std::size_t>(out_idx++)] =
            role_[static_cast<std::size_t>(color)];
      }
    }
    role_ = next;

    ++current_interval_;
    if (current_interval_ >= intervals_) done_ = true;
  }
}

}  // namespace reqsched
