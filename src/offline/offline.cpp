#include "offline/offline.hpp"

namespace reqsched {

void solve_offline(const Trace& trace, SolverScratch& scratch,
                   OfflineResult& out) {
  out.optimum = 0;
  out.certificate = 0;
  out.assignment.assign(static_cast<std::size_t>(trace.size()), kNoSlot);
  if (trace.empty()) return;

  scratch.slots.rebuild(trace);
  const BipartiteGraph& g = scratch.slots.graph();
  hopcroft_karp(g, scratch.matching, scratch.match);
  out.optimum = scratch.matching.size();

  koenig_cover(g, scratch.matching, scratch.cover, scratch.match);
  out.certificate = scratch.cover.size();
  REQSCHED_CHECK_MSG(out.certificate == out.optimum,
                     "König certificate mismatch: cover "
                         << out.certificate << " vs matching "
                         << out.optimum);
  REQSCHED_CHECK(covers_all_edges(g, scratch.cover, scratch.match));

  for (RequestId id = 0; id < trace.size(); ++id) {
    const std::int32_t r =
        scratch.matching.left_to_right[static_cast<std::size_t>(id)];
    if (r >= 0) {
      out.assignment[static_cast<std::size_t>(id)] = scratch.slots.slot_at(r);
    }
  }
}

OfflineResult solve_offline(const Trace& trace, SolverScratch& scratch) {
  OfflineResult result;
  solve_offline(trace, scratch, result);
  return result;
}

OfflineResult solve_offline(const Trace& trace) {
  SolverScratch scratch;
  return solve_offline(trace, scratch);
}

std::int64_t offline_optimum(const Trace& trace) {
  return solve_offline(trace).optimum;
}

}  // namespace reqsched
