#include "offline/offline.hpp"

namespace reqsched {

namespace {
BipartiteGraph build_graph(const Trace& trace, Round horizon) {
  const std::int32_t n = trace.config().n;
  const auto slots =
      static_cast<std::int32_t>((horizon + 1) * static_cast<Round>(n));
  BipartiteGraph g(static_cast<std::int32_t>(trace.size()), slots);
  for (const Request& r : trace.requests()) {
    for (Round t = r.arrival; t <= r.deadline; ++t) {
      g.add_edge(static_cast<std::int32_t>(r.id),
                 static_cast<std::int32_t>(t * n + r.first));
      if (r.second != kNoResource) {
        g.add_edge(static_cast<std::int32_t>(r.id),
                   static_cast<std::int32_t>(t * n + r.second));
      }
    }
  }
  return g;
}
}  // namespace

OfflineGraph::OfflineGraph(const Trace& trace)
    : trace_(trace),
      horizon_(trace.empty() ? 0 : trace.last_useful_round()),
      graph_(build_graph(trace, horizon_)) {}

std::int32_t OfflineGraph::slot_index(SlotRef slot) const {
  REQSCHED_REQUIRE(slot.valid() && slot.round <= horizon_ &&
                   slot.resource < trace_.config().n);
  return static_cast<std::int32_t>(slot.round * trace_.config().n +
                                   slot.resource);
}

SlotRef OfflineGraph::slot_at(std::int32_t index) const {
  REQSCHED_REQUIRE(index >= 0 && index < slot_count());
  const std::int32_t n = trace_.config().n;
  return SlotRef{index % n, static_cast<Round>(index / n)};
}

OfflineResult solve_offline(const Trace& trace) {
  OfflineResult result;
  result.assignment.assign(static_cast<std::size_t>(trace.size()), kNoSlot);
  if (trace.empty()) return result;

  const OfflineGraph og(trace);
  const Matching matching = hopcroft_karp(og.graph());
  result.optimum = matching.size();

  const VertexCover cover = koenig_cover(og.graph(), matching);
  result.certificate = cover.size();
  REQSCHED_CHECK_MSG(result.certificate == result.optimum,
                     "König certificate mismatch: cover "
                         << result.certificate << " vs matching "
                         << result.optimum);
  REQSCHED_CHECK(covers_all_edges(og.graph(), cover));

  for (RequestId id = 0; id < trace.size(); ++id) {
    const std::int32_t r =
        matching.left_to_right[static_cast<std::size_t>(id)];
    if (r >= 0) {
      result.assignment[static_cast<std::size_t>(id)] = og.slot_at(r);
    }
  }
  return result;
}

std::int64_t offline_optimum(const Trace& trace) {
  return solve_offline(trace).optimum;
}

}  // namespace reqsched
