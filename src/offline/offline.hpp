// Offline optimum: the adversary's benchmark.
//
// Given the realized trace, build the full bipartite graph G = (R u S, E) of
// requests x time slots (each request is adjacent to the <= 2d slots of its
// two alternatives inside its deadline window) and compute a maximum
// cardinality matching. Its size is perf_OPT(sigma); a König vertex cover of
// equal size certifies optimality.
//
// The graph itself is the shared SlotGraph (src/matching/slot_graph.hpp);
// this module adds the certified solve on top.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"
#include "core/types.hpp"
#include "matching/slot_graph.hpp"

namespace reqsched {

/// Historical name for the shared request x slot graph.
using OfflineGraph = SlotGraph;

struct OfflineResult {
  /// Maximum number of requests an offline scheduler can fulfill.
  std::int64_t optimum = 0;
  /// Per-request execution slot in the optimal schedule (kNoSlot = dropped).
  std::vector<SlotRef> assignment;
  /// König certificate size; always equals `optimum`.
  std::int64_t certificate = 0;
};

/// Solves the offline problem exactly (Hopcroft–Karp + König certificate).
OfflineResult solve_offline(const Trace& trace);

/// Scratch-reusing variant: rebuilds `scratch.slots` for `trace` and leaves
/// the optimum matching in `scratch.matching`, so callers (e.g. the
/// augmenting-path analysis) can reuse both without a second solve.
OfflineResult solve_offline(const Trace& trace, SolverScratch& scratch);

/// Hot-path variant: fills `out` in place, reusing its assignment storage.
/// With a warm `scratch` and a reused `out` this allocates nothing.
void solve_offline(const Trace& trace, SolverScratch& scratch,
                   OfflineResult& out);

/// Convenience: the optimum value only.
std::int64_t offline_optimum(const Trace& trace);

}  // namespace reqsched
