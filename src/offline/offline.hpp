// Offline optimum: the adversary's benchmark.
//
// Given the realized trace, build the full bipartite graph G = (R u S, E) of
// requests x time slots (each request is adjacent to the <= 2d slots of its
// two alternatives inside its deadline window) and compute a maximum
// cardinality matching. Its size is perf_OPT(sigma); a König vertex cover of
// equal size certifies optimality.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"
#include "core/types.hpp"
#include "matching/bipartite.hpp"

namespace reqsched {

/// The full request x slot graph of a trace, with slot index mapping.
/// Lefts are RequestIds; rights are slots (resource, round) for rounds
/// [0, horizon].
class OfflineGraph {
 public:
  explicit OfflineGraph(const Trace& trace);

  const BipartiteGraph& graph() const { return graph_; }
  const Trace& trace() const { return trace_; }

  Round horizon() const { return horizon_; }
  std::int32_t slot_count() const { return graph_.right_count(); }

  std::int32_t slot_index(SlotRef slot) const;
  SlotRef slot_at(std::int32_t index) const;

 private:
  const Trace& trace_;
  Round horizon_;
  BipartiteGraph graph_;
};

struct OfflineResult {
  /// Maximum number of requests an offline scheduler can fulfill.
  std::int64_t optimum = 0;
  /// Per-request execution slot in the optimal schedule (kNoSlot = dropped).
  std::vector<SlotRef> assignment;
  /// König certificate size; always equals `optimum`.
  std::int64_t certificate = 0;
};

/// Solves the offline problem exactly (Hopcroft–Karp + König certificate).
OfflineResult solve_offline(const Trace& trace);

/// Convenience: the optimum value only.
std::int64_t offline_optimum(const Trace& trace);

}  // namespace reqsched
