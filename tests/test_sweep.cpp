// Tests for the parallel sweep driver.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "adversary/random.hpp"
#include "analysis/sweep.hpp"

namespace reqsched {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.strategies = {"A_fix", "A_balance"};
  spec.ns = {3, 5};
  spec.ds = {2, 3};
  spec.seeds = {1, 2};
  spec.make_workload = [](std::int32_t n, std::int32_t d,
                          std::uint64_t seed) -> std::unique_ptr<IWorkload> {
    return std::make_unique<UniformWorkload>(RandomWorkloadOptions{
        .n = n, .d = d, .load = 1.5, .horizon = 20, .seed = seed,
        .two_choice = true});
  };
  return spec;
}

TEST(Sweep, CoversTheWholeGridInOrder) {
  const auto points = run_sweep(small_spec());
  ASSERT_EQ(points.size(), 2u * 2u * 2u * 2u);
  EXPECT_EQ(points.front().strategy, "A_fix");
  EXPECT_EQ(points.back().strategy, "A_balance");
  for (const SweepPoint& p : points) {
    EXPECT_FALSE(p.failed) << p.error;
    EXPECT_GT(p.result.metrics.injected, 0);
    EXPECT_GE(p.result.ratio, 1.0 - 1e-12);
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepSpec serial = small_spec();
  serial.threads = 1;
  SweepSpec parallel = small_spec();
  parallel.threads = 4;
  const auto a = run_sweep(serial);
  const auto b = run_sweep(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].strategy, b[i].strategy);
    EXPECT_EQ(a[i].result.metrics.fulfilled, b[i].result.metrics.fulfilled);
    EXPECT_EQ(a[i].result.optimum, b[i].result.optimum);
  }
}

TEST(Sweep, CsvHasOneRowPerPoint) {
  const auto points = run_sweep(small_spec());
  std::ostringstream os;
  write_sweep_csv(os, points);
  const std::string csv = os.str();
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, points.size() + 1);  // + header
  EXPECT_NE(csv.find("strategy,n,d,seed"), std::string::npos);
}

TEST(Sweep, SummaryAggregates) {
  const auto points = run_sweep(small_spec());
  const SweepSummary summary = summarize_sweep(points);
  EXPECT_EQ(summary.points, static_cast<std::int64_t>(points.size()));
  EXPECT_EQ(summary.failures, 0);
  EXPECT_GE(summary.max_ratio, summary.mean_ratio - 1e-12);
  EXPECT_GE(summary.mean_ratio, 1.0 - 1e-12);
}

TEST(Sweep, CapturesFailuresInsteadOfThrowing) {
  SweepSpec spec = small_spec();
  spec.strategies = {"EDF_single"};  // two-choice workload -> contract fails
  const auto points = run_sweep(spec);
  for (const SweepPoint& p : points) {
    EXPECT_TRUE(p.failed);
    EXPECT_NE(p.error.find("single-alternative"), std::string::npos);
  }
  const SweepSummary summary = summarize_sweep(points);
  EXPECT_EQ(summary.failures, summary.points);
  // An all-failure sweep must be unmistakable: NaN ratios + the flag, never
  // a fake "perfectly competitive" 1.0.
  EXPECT_TRUE(summary.all_failed());
  EXPECT_TRUE(std::isnan(summary.mean_ratio));
  EXPECT_TRUE(std::isnan(summary.max_ratio));
}

/// Explodes mid-run with an exception that is NOT a ContractViolation — the
/// kind that used to escape into the thread pool and kill the process.
class ThrowingWorkload final : public IWorkload {
 public:
  ThrowingWorkload(std::int32_t n, std::int32_t d) : config_{n, d} {}

  std::string name() const override { return "throwing"; }
  ProblemConfig config() const override { return config_; }
  void generate(Round t, const Simulator&,
                std::vector<RequestSpec>& out) override {
    if (t >= 2) throw std::runtime_error("deliberate mid-run failure");
    out.push_back(RequestSpec{0, 1, 0});
  }
  bool exhausted(Round t) const override { return t > 4; }

 private:
  ProblemConfig config_;
};

TEST(Sweep, NonContractExceptionsAreContainedPerPoint) {
  SweepSpec spec;
  spec.strategies = {"A_fix", "A_balance"};
  spec.ns = {2};
  spec.ds = {2};
  spec.seeds = {1, 2};
  spec.make_workload = [](std::int32_t n, std::int32_t d,
                          std::uint64_t) -> std::unique_ptr<IWorkload> {
    return std::make_unique<ThrowingWorkload>(n, d);
  };
  const auto points = run_sweep(spec);  // must not terminate the process
  ASSERT_EQ(points.size(), 4u);
  for (const SweepPoint& p : points) {
    EXPECT_TRUE(p.failed);
    EXPECT_NE(p.error.find("deliberate mid-run failure"), std::string::npos);
  }
  const SweepSummary summary = summarize_sweep(points);
  EXPECT_TRUE(summary.all_failed());
  EXPECT_TRUE(std::isnan(summary.max_ratio));
}

TEST(Sweep, MixedFailureSweepStillAggregatesSuccesses) {
  SweepSpec spec = small_spec();
  spec.strategies = {"A_fix", "EDF_single"};  // second column always fails
  const auto points = run_sweep(spec);
  const SweepSummary summary = summarize_sweep(points);
  EXPECT_EQ(summary.failures * 2, summary.points);
  EXPECT_FALSE(summary.all_failed());
  EXPECT_FALSE(std::isnan(summary.mean_ratio));
  EXPECT_GE(summary.max_ratio, 1.0 - 1e-12);
}

}  // namespace
}  // namespace reqsched
