// Tests for the augmenting-path analyzer and the experiment harness.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/random.hpp"
#include "analysis/augmenting.hpp"
#include "analysis/bounds.hpp"
#include "analysis/harness.hpp"
#include "strategies/scripted.hpp"
#include "analysis/registry.hpp"

namespace reqsched {
namespace {

TEST(Augmenting, EmptyOnlineMatchingYieldsOrderOnePaths) {
  Trace trace(ProblemConfig{1, 1});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  const PathStats stats = analyze_augmenting_paths(trace, {});
  EXPECT_EQ(stats.augmenting_paths, 1);
  EXPECT_EQ(stats.min_order, 1);
  EXPECT_EQ(stats.deficiency, 1);
  ASSERT_GE(stats.order_histogram.size(), 2u);
  EXPECT_EQ(stats.order_histogram[1], 1);
}

TEST(Augmenting, PerfectOnlineMatchingHasNoPaths) {
  Trace trace(ProblemConfig{2, 1});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(0, RequestSpec{0, 1, 0});
  const PathStats stats = analyze_augmenting_paths(
      trace, {{0, SlotRef{0, 0}}, {1, SlotRef{1, 0}}});
  EXPECT_EQ(stats.augmenting_paths, 0);
  EXPECT_EQ(stats.min_order, 0);
  EXPECT_EQ(stats.deficiency, 0);
}

TEST(Augmenting, OrderTwoPathDetected) {
  // r0 served suboptimally so that r1 fails: r0 -> (S0) only slot; r1 can
  // use S0 or S1. Online: r0@S1-slot... construct: n=2, d=1.
  // r0 alts (0,1), r1 alts (0, n/a->single 0). Online serves r0 at S0,
  // leaving r1 unserved; OPT serves r0 at S1 and r1 at S0.
  Trace trace(ProblemConfig{2, 1});
  trace.add(0, RequestSpec{0, 1, 0});          // r0, flexible
  trace.add(0, RequestSpec{0, kNoResource, 0});  // r1, rigid
  const PathStats stats =
      analyze_augmenting_paths(trace, {{0, SlotRef{0, 0}}});
  EXPECT_EQ(stats.augmenting_paths, 1);
  EXPECT_EQ(stats.min_order, 2);
  EXPECT_EQ(stats.deficiency, 1);
}

TEST(Augmenting, DeficiencyEqualsOptMinusOnline) {
  UniformWorkload workload({.n = 5, .d = 3, .load = 1.8, .horizon = 50,
                            .seed = 3, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  const RunResult result = run_experiment(workload, *strategy);
  EXPECT_EQ(result.paths.deficiency,
            result.optimum - result.metrics.fulfilled);
  EXPECT_EQ(result.paths.augmenting_paths, result.paths.deficiency);
}

TEST(Harness, SlopeRatioCancelsAdditiveConstants) {
  RunResult short_run;
  short_run.optimum = 110;  // 10 startup + 25/phase * 4
  short_run.metrics.fulfilled = 90;  // 10 startup + 20/phase * 4
  RunResult long_run;
  long_run.optimum = 210;  // 10 + 25 * 8
  long_run.metrics.fulfilled = 170;  // 10 + 20 * 8
  EXPECT_DOUBLE_EQ(pairwise_slope_ratio(short_run, long_run), 1.25);
}

TEST(Harness, RatioHandlesDegenerateRuns) {
  Trace empty(ProblemConfig{2, 2});
  TraceWorkload workload(empty);
  auto strategy = make_strategy("A_fix");
  const RunResult result = run_experiment(workload, *strategy);
  EXPECT_DOUBLE_EQ(result.ratio, 1.0);
  EXPECT_EQ(result.optimum, 0);
}

TEST(Harness, MaxRoundsGuardPropagates) {
  UniformWorkload workload({.n = 2, .d = 2, .load = 1.0, .horizon = 50,
                            .seed = 1, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  EXPECT_THROW(run_experiment(workload, *strategy, {.max_rounds = 3}),
               ContractViolation);
}

TEST(Harness, SlopeRatioFlagsDegenerateRunsInsteadOfAborting) {
  RunResult a;
  a.optimum = 10;
  a.metrics.fulfilled = 10;
  RunResult b = a;  // no progress between runs: undefined slope
  EXPECT_TRUE(std::isnan(pairwise_slope_ratio(a, b)));
  b.optimum = 12;  // OPT progressed, the algorithm did not: unboundedly bad
  EXPECT_TRUE(std::isinf(pairwise_slope_ratio(a, b)));
  EXPECT_GT(pairwise_slope_ratio(a, b), 0.0);
}

TEST(Harness, ViolationsSurfaceFromScriptedStrategies) {
  // A scripted strategy with a nonsense proposal source must report its
  // violations through RunResult.
  class BadSource final : public IProposalSource {
   public:
    std::optional<Proposal> propose(const Simulator& sim) override {
      if (sim.injected_now().empty()) return std::nullopt;
      return Proposal{{sim.injected_now()[0], SlotRef{0, sim.now() + 99}}};
    }
  } source;
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});
  TraceWorkload workload(trace);
  ScriptedStrategy strategy(StrategyKind::kFix, source);
  const RunResult result = run_experiment(workload, strategy);
  EXPECT_GE(result.violations, 1);
  EXPECT_EQ(result.metrics.fulfilled, 1);  // fallback still scheduled it
}

TEST(Bounds, Table1FormulasAtKeyPoints) {
  EXPECT_EQ(ub_fix(2), Fraction(3, 2));
  EXPECT_EQ(ub_fix_balance(2), Fraction(4, 3));
  EXPECT_EQ(ub_fix_balance(3), Fraction(7, 5));
  EXPECT_EQ(ub_fix_balance(4), Fraction(3, 2));
  EXPECT_EQ(ub_fix_balance(10), Fraction(9, 5));  // 2 - 2/d
  EXPECT_EQ(ub_eager(2), Fraction(4, 3));
  EXPECT_EQ(ub_balance(2), Fraction(4, 3));
  EXPECT_EQ(ub_balance(5), Fraction(24, 17));
  EXPECT_EQ(lb_fix_balance(2), Fraction(4, 3));
  EXPECT_EQ(lb_fix_balance(8), Fraction(24, 18));  // 3d/(2d+2), reduced 4/3
  EXPECT_EQ(lb_balance(5), Fraction(27, 21));
  EXPECT_EQ(lb_universal(), Fraction(45, 41));
  EXPECT_NEAR(lb_current_limit(), 1.5819767, 1e-6);
  // Upper bounds dominate lower bounds wherever both are defined.
  for (const std::int32_t d : {2, 4, 8, 16, 32}) {
    EXPECT_GE(ub_fix(d), lb_fix(d));
    EXPECT_GE(ub_fix_balance(d), lb_fix_balance(d));
    EXPECT_GE(ub_eager(d).to_double(), lb_eager().to_double() - 1e-12);
  }
  for (const std::int32_t d : {2, 5, 8, 11}) {
    EXPECT_GE(ub_balance(d), lb_balance(d));
  }
}

}  // namespace
}  // namespace reqsched
