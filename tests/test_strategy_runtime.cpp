// Differential suite for the incremental StrategyRuntime (PR 4).
//
// The strategies were rewritten from rebuild-per-round (build_round_problem
// on every on_round) to delta-maintained window problems. The legacy code
// path is frozen in strategies/window_problem.hpp, and this file keeps
// verbatim copies of the pre-runtime strategy bodies on that path. Every
// runtime strategy must be BIT-identical to its frozen twin — metrics,
// online matching, and the per-round prefix-optimum series — on the five
// lower-bound instances and 200 random traces.
//
// The second half fuzzes DeltaWindowProblem standalone: a random event
// stream (arrivals, bookings, unbookings, retirements, round advances) is
// applied to one instance while a naive model tracks ground truth; after
// every event the instance must agree with the model, with a freshly built
// instance (the event log replayed into a new object), and with the legacy
// matchers run on the graph it builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/prefix.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "local/router.hpp"
#include "matching/delta_window.hpp"
#include "matching/lex_matcher.hpp"
#include "strategies/window_problem.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

// ===========================================================================
// Frozen legacy strategies: the exact pre-runtime bodies, on the retained
// rebuild-per-round helpers. Do not "improve" these — they are the reference
// the incremental runtime is diffed against.

namespace legacy {

class AFix final : public IStrategy {
 public:
  std::string name() const override { return "legacy_A_fix"; }
  void on_round(Simulator& sim) override {
    {
      const auto injected = sim.injected_now();
      const RoundProblem problem = build_round_problem(
          sim, {injected.begin(), injected.end()}, SlotScope::kFreeWindow);
      const Matching m = kuhn_ordered(problem.graph);
      apply_assignments(sim, problem, m.left_to_right);
    }
    {
      const auto older = older_unscheduled(sim);
      if (!older.empty()) {
        const RoundProblem problem =
            build_round_problem(sim, older, SlotScope::kFreeWindow);
        const Matching m = greedy_maximal(problem.graph);
        apply_assignments(sim, problem, m.left_to_right);
      }
    }
  }
};

class ACurrent final : public IStrategy {
 public:
  std::string name() const override { return "legacy_A_current"; }
  void on_round(Simulator& sim) override {
    const auto alive = sim.alive();
    const RoundProblem problem = build_round_problem(
        sim, {alive.begin(), alive.end()}, SlotScope::kCurrentRound);
    const Matching m = kuhn_ordered(problem.graph);
    apply_assignments(sim, problem, m.left_to_right);
  }
};

class AFixBalance final : public IStrategy {
 public:
  std::string name() const override { return "legacy_A_fix_balance"; }
  void on_round(Simulator& sim) override {
    const auto lefts = unscheduled_alive(sim);
    const RoundProblem problem =
        build_round_problem(sim, lefts, SlotScope::kFreeWindow);
    LexMatchProblem lex = to_lex_problem(sim, problem, /*eager_levels=*/false,
                                         /*cardinality_first=*/false);
    const LexMatchResult result = solve_lex_matching(lex);
    apply_assignments(sim, problem, result.left_to_right);
  }
};

void rematch_full_window(Simulator& sim, bool eager_levels) {
  const auto alive = sim.alive();
  const RoundProblem problem = build_round_problem(
      sim, {alive.begin(), alive.end()}, SlotScope::kFullWindow);
  LexMatchProblem lex =
      to_lex_problem(sim, problem, eager_levels, /*cardinality_first=*/true);
  for (std::size_t l = 0; l < problem.lefts.size(); ++l) {
    if (sim.is_scheduled(problem.lefts[l])) {
      lex.required_lefts.push_back(static_cast<std::int32_t>(l));
    }
  }
  const LexMatchResult result = solve_lex_matching(lex);
  rebook(sim, problem, result.left_to_right);
}

class AEager final : public IStrategy {
 public:
  std::string name() const override { return "legacy_A_eager"; }
  void on_round(Simulator& sim) override {
    rematch_full_window(sim, /*eager_levels=*/true);
  }
};

class ABalance final : public IStrategy {
 public:
  std::string name() const override { return "legacy_A_balance"; }
  void on_round(Simulator& sim) override {
    rematch_full_window(sim, /*eager_levels=*/false);
  }
};

class EdfSingle final : public IStrategy {
 public:
  std::string name() const override { return "legacy_EDF_single"; }
  void on_round(Simulator& sim) override {
    const Round t = sim.now();
    std::vector<RequestId> best(static_cast<std::size_t>(sim.config().n),
                                kNoRequest);
    for (const RequestId id : sim.alive()) {
      const Request& r = sim.request(id);
      REQSCHED_CHECK_MSG(r.alternative_count() == 1,
                         "EdfSingle requires single-alternative requests");
      RequestId& slot_best = best[static_cast<std::size_t>(r.first())];
      if (slot_best == kNoRequest ||
          sim.request(slot_best).deadline > r.deadline) {
        slot_best = id;
      }
    }
    for (ResourceId i = 0; i < sim.config().n; ++i) {
      const RequestId id = best[static_cast<std::size_t>(i)];
      if (id != kNoRequest) sim.assign(id, SlotRef{i, t});
    }
  }
};

class EdfTwoChoice final : public IStrategy {
 public:
  explicit EdfTwoChoice(bool cancel_fulfilled_copies)
      : cancel_fulfilled_copies_(cancel_fulfilled_copies) {}

  std::string name() const override { return "legacy_EDF_two_choice"; }
  void reset(const ProblemConfig& config) override {
    queues_.assign(static_cast<std::size_t>(config.n), {});
  }

  void on_round(Simulator& sim) override {
    const Round t = sim.now();
    for (const RequestId id : sim.injected_now()) {
      const Request& r = sim.request(id);
      REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                         "EdfTwoChoice requires two-alternative requests");
      for (const ResourceId res : r.alts) {
        auto& queue = queues_[static_cast<std::size_t>(res)];
        const Copy copy{id, r.deadline};
        const auto pos = std::lower_bound(
            queue.begin(), queue.end(), copy,
            [](const Copy& a, const Copy& b) {
              return std::tie(a.deadline, a.request) <
                     std::tie(b.deadline, b.request);
            });
        queue.insert(pos, copy);
      }
    }
    for (ResourceId i = 0; i < sim.config().n; ++i) {
      auto& queue = queues_[static_cast<std::size_t>(i)];
      while (!queue.empty() &&
             (queue.front().deadline < t ||
              (cancel_fulfilled_copies_ &&
               sim.status(queue.front().request) ==
                   RequestStatus::kFulfilled))) {
        queue.pop_front();
      }
      if (queue.empty()) continue;
      const Copy copy = queue.front();
      if (sim.status(copy.request) == RequestStatus::kFulfilled ||
          sim.is_scheduled(copy.request)) {
        sim.record_wasted_execution(i);
      } else {
        sim.assign(copy.request, SlotRef{i, t});
      }
      queue.pop_front();
    }
  }

 private:
  struct Copy {
    RequestId request;
    Round deadline;
  };
  bool cancel_fulfilled_copies_;
  std::vector<std::deque<Copy>> queues_;
};

/// Resource-side maximal acceptance shared by the two local strategies,
/// probing the schedule directly (the pre-runtime slot query path).
std::vector<Message> accept_maximal(Simulator& sim, const Delivery& delivery) {
  std::vector<Message> rejected(delivery.failed);
  for (ResourceId i = 0; i < sim.config().n; ++i) {
    for (const Message& m : delivery.delivered[static_cast<std::size_t>(i)]) {
      const Request& r = sim.request(m.sender);
      const SlotRef slot =
          sim.schedule().earliest_free_slot(i, sim.now(), r.deadline);
      if (slot.valid()) {
        sim.assign(m.sender, slot);
      } else {
        rejected.push_back(m);
      }
    }
  }
  return rejected;
}

class ALocalFix final : public IStrategy {
 public:
  std::string name() const override { return "legacy_A_local_fix"; }
  void on_round(Simulator& sim) override {
    std::vector<Message> first_wave;
    for (const RequestId id : sim.injected_now()) {
      const Request& r = sim.request(id);
      REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                         "local strategies require two alternatives");
      first_wave.push_back(Message{id, r.first(), r.deadline, false, 0});
    }
    if (first_wave.empty()) return;
    sim.record_communication(1, static_cast<std::int64_t>(first_wave.size()));
    const std::vector<Message> failed_first = accept_maximal(
        sim, route_messages(sim.config(), std::move(first_wave)));
    std::vector<Message> second_wave;
    for (const Message& m : failed_first) {
      const Request& r = sim.request(m.sender);
      second_wave.push_back(Message{m.sender, r.second(), r.deadline, false, 0});
    }
    if (second_wave.empty()) return;
    sim.record_communication(1, static_cast<std::int64_t>(second_wave.size()));
    accept_maximal(sim, route_messages(sim.config(), std::move(second_wave)));
  }
};

std::vector<RequestId> unscheduled_pending(const Simulator& sim) {
  std::vector<RequestId> out;
  for (const RequestId id : sim.alive()) {
    if (!sim.is_scheduled(id)) out.push_back(id);
  }
  return out;
}

class ALocalEager final : public IStrategy {
 public:
  explicit ALocalEager(bool merged_phase23)
      : merged_phase23_(merged_phase23) {}

  std::string name() const override { return "legacy_A_local_eager"; }

  void on_round(Simulator& sim) override {
    const Round t = sim.now();
    std::int64_t comm_rounds = 0;
    std::int64_t messages = 0;
    {
      std::vector<Message> wave;
      for (const RequestId id : unscheduled_pending(sim)) {
        const Request& r = sim.request(id);
        REQSCHED_CHECK_MSG(r.alternative_count() == 2,
                           "local strategies require two alternatives");
        wave.push_back(Message{id, r.first(), r.deadline, false, 0});
      }
      if (!wave.empty()) {
        ++comm_rounds;
        messages += static_cast<std::int64_t>(wave.size());
        const auto failed = accept_maximal(
            sim, route_messages(sim.config(), std::move(wave), 0));
        std::vector<Message> retry;
        for (const Message& m : failed) {
          const Request& r = sim.request(m.sender);
          retry.push_back(Message{m.sender, r.second(), r.deadline, false, 0});
        }
        if (!retry.empty()) {
          ++comm_rounds;
          messages += static_cast<std::int64_t>(retry.size());
          accept_maximal(sim,
                         route_messages(sim.config(), std::move(retry), 0));
        }
      }
    }
    {
      std::vector<Message> offers;
      for (const RequestId id : sim.alive()) {
        const SlotRef slot = sim.slot_of(id);
        if (!slot.valid() || slot.round <= t) continue;
        const Request& r = sim.request(id);
        offers.push_back(Message{id, r.other_alternative(slot.resource),
                                 r.deadline, false, 0});
      }
      if (!offers.empty()) {
        comm_rounds += 2;
        messages += static_cast<std::int64_t>(offers.size());
        const Delivery delivery =
            route_messages(sim.config(), std::move(offers), 0);
        for (ResourceId i = 0; i < sim.config().n; ++i) {
          if (!sim.schedule().is_free({i, t})) continue;
          const auto& inbox = delivery.delivered[static_cast<std::size_t>(i)];
          for (const Message& m : inbox) {
            const SlotRef cur = sim.slot_of(m.sender);
            if (cur.valid() && cur.round > t) {
              sim.move(m.sender, SlotRef{i, t});
              ++messages;
              break;
            }
          }
        }
      }
    }
    const std::int64_t phase2_rounds = comm_rounds;
    const std::int64_t iter1 = rivalry_iteration(sim, 0, messages);
    const std::int64_t iter2 = rivalry_iteration(sim, 1, messages);
    comm_rounds += iter1 + iter2 - ((iter1 > 0 && iter2 > 0) ? 1 : 0);
    if (merged_phase23_ && phase2_rounds > 2 && iter1 > 0) {
      --comm_rounds;
    }
    const std::int64_t budget = merged_phase23_ ? 8 : 9;
    REQSCHED_CHECK_MSG(comm_rounds <= budget,
                       "A_local_eager exceeded " << budget
                                                 << " communication rounds: "
                                                 << comm_rounds);
    sim.record_communication(comm_rounds, messages);
  }

 private:
  std::int64_t rivalry_iteration(Simulator& sim, int alt,
                                 std::int64_t& messages) {
    const Round t = sim.now();
    std::vector<Message> wave;
    for (const RequestId id : unscheduled_pending(sim)) {
      const Request& r = sim.request(id);
      const ResourceId target = alt == 0 ? r.first() : r.second();
      wave.push_back(Message{id, target, r.deadline, false, 0});
    }
    if (wave.empty()) return 0;
    std::int64_t rounds = 1;
    messages += static_cast<std::int64_t>(wave.size());
    const std::int32_t capacity =
        merged_phase23_ && alt == 0 ? std::max(1, 2 * sim.config().d - 2) : 0;
    const Delivery delivery =
        route_messages(sim.config(), std::move(wave), capacity);

    struct ExchangePlan {
      RequestId rival;
      RequestId displaced;
      ResourceId home;
      ResourceId new_home;
    };
    std::vector<ExchangePlan> plans;
    for (ResourceId i = 0; i < sim.config().n; ++i) {
      const auto& inbox = delivery.delivered[static_cast<std::size_t>(i)];
      if (inbox.empty()) continue;
      const RequestId occupant = sim.schedule().request_at({i, t});
      if (occupant == kNoRequest) {
        for (const Message& m : inbox) {
          if (sim.is_scheduled(m.sender)) continue;
          const Request& r = sim.request(m.sender);
          const SlotRef slot =
              sim.schedule().earliest_free_slot(i, t, r.deadline);
          if (slot.valid()) sim.assign(m.sender, slot);
        }
        continue;
      }
      for (const Message& m : inbox) {
        if (sim.is_scheduled(m.sender)) continue;
        plans.push_back(ExchangePlan{
            m.sender, occupant, i,
            sim.request(occupant).other_alternative(i)});
        break;
      }
    }
    if (plans.empty()) return rounds;

    std::vector<Message> rehome;
    for (std::size_t p = 0; p < plans.size(); ++p) {
      rehome.push_back(Message{plans[p].rival, plans[p].new_home,
                               sim.request(plans[p].displaced).deadline, false,
                               static_cast<std::int32_t>(p)});
    }
    ++rounds;
    messages += static_cast<std::int64_t>(rehome.size());
    const Delivery rehomed =
        route_messages(sim.config(), std::move(rehome), 0);

    bool any_exchange = false;
    for (ResourceId i = 0; i < sim.config().n; ++i) {
      for (const Message& m : rehomed.delivered[static_cast<std::size_t>(i)]) {
        const ExchangePlan& plan = plans[static_cast<std::size_t>(m.payload)];
        const Request& displaced = sim.request(plan.displaced);
        if (sim.slot_of(plan.displaced) != SlotRef{plan.home, t}) continue;
        if (sim.is_scheduled(plan.rival)) continue;
        const SlotRef landing =
            sim.schedule().earliest_free_slot(i, t, displaced.deadline);
        if (!landing.valid()) continue;
        sim.move(plan.displaced, landing);
        sim.assign(plan.rival, SlotRef{plan.home, t});
        any_exchange = true;
        ++messages;
      }
    }
    if (any_exchange) ++rounds;
    return rounds;
  }

  bool merged_phase23_;
};

}  // namespace legacy

std::unique_ptr<IStrategy> make_legacy(const std::string& name) {
  if (name == "A_fix") return std::make_unique<legacy::AFix>();
  if (name == "A_current") return std::make_unique<legacy::ACurrent>();
  if (name == "A_fix_balance") return std::make_unique<legacy::AFixBalance>();
  if (name == "A_eager") return std::make_unique<legacy::AEager>();
  if (name == "A_balance") return std::make_unique<legacy::ABalance>();
  if (name == "A_local_fix") return std::make_unique<legacy::ALocalFix>();
  if (name == "A_local_eager") {
    return std::make_unique<legacy::ALocalEager>(false);
  }
  if (name == "A_local_eager_merged") {
    return std::make_unique<legacy::ALocalEager>(true);
  }
  if (name == "EDF_single") return std::make_unique<legacy::EdfSingle>();
  if (name == "EDF_two_choice") {
    return std::make_unique<legacy::EdfTwoChoice>(false);
  }
  if (name == "EDF_two_choice_cancel") {
    return std::make_unique<legacy::EdfTwoChoice>(true);
  }
  REQSCHED_CHECK_MSG(false, "no frozen legacy twin for " << name);
  return nullptr;
}

// ===========================================================================
// Differential harness: one run each, captured through the prefix probe.

struct RunCapture {
  Metrics metrics;
  std::vector<std::pair<RequestId, SlotRef>> matching;
  std::vector<RoundSample> series;
};

RunCapture run_captured(IWorkload& workload, IStrategy& strategy) {
  PrefixOptimumProbe probe(strategy);
  Simulator sim(workload, probe);
  RunCapture out;
  out.metrics = sim.run();
  out.matching = sim.online_matching();
  std::sort(out.matching.begin(), out.matching.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.series = probe.take_samples();
  return out;
}

void expect_identical(const RunCapture& incremental, const RunCapture& frozen,
                      const std::string& label) {
  EXPECT_TRUE(incremental.metrics == frozen.metrics)
      << label << ": metrics diverged — incremental " << incremental.metrics
      << " vs frozen " << frozen.metrics;
  ASSERT_EQ(incremental.matching.size(), frozen.matching.size()) << label;
  for (std::size_t i = 0; i < frozen.matching.size(); ++i) {
    EXPECT_EQ(incremental.matching[i].first, frozen.matching[i].first)
        << label;
    EXPECT_EQ(incremental.matching[i].second, frozen.matching[i].second)
        << label << ": r" << frozen.matching[i].first
        << " executed in a different slot";
  }
  ASSERT_EQ(incremental.series.size(), frozen.series.size()) << label;
  for (std::size_t i = 0; i < frozen.series.size(); ++i) {
    const RoundSample& a = incremental.series[i];
    const RoundSample& b = frozen.series[i];
    EXPECT_EQ(a.round, b.round) << label;
    EXPECT_EQ(a.injected, b.injected) << label;
    EXPECT_EQ(a.executed, b.executed) << label << " round " << b.round;
    EXPECT_EQ(a.pending, b.pending) << label << " round " << b.round;
    EXPECT_EQ(a.booked, b.booked) << label << " round " << b.round;
    EXPECT_EQ(a.idle, b.idle) << label << " round " << b.round;
    EXPECT_EQ(a.tightest_slack, b.tightest_slack) << label;
    EXPECT_EQ(a.prefix_opt, b.prefix_opt) << label << " round " << b.round;
    EXPECT_EQ(a.prefix_fulfilled, b.prefix_fulfilled)
        << label << " round " << b.round;
    if (!(std::isnan(a.prefix_ratio) && std::isnan(b.prefix_ratio))) {
      EXPECT_EQ(a.prefix_ratio, b.prefix_ratio)
          << label << " round " << b.round;
    }
  }
}

/// Runs the registry (incremental) strategy and its frozen twin on two fresh
/// instances of the same workload and requires bit-identity.
template <typename MakeWorkload>
void expect_runtime_matches_legacy(const std::string& name,
                                   const MakeWorkload& make_workload) {
  auto incremental_workload = make_workload();
  auto frozen_workload = make_workload();
  const auto incremental_strategy = make_strategy(name);
  const auto frozen_strategy = make_legacy(name);
  const RunCapture incremental =
      run_captured(*incremental_workload, *incremental_strategy);
  const RunCapture frozen = run_captured(*frozen_workload, *frozen_strategy);
  expect_identical(incremental, frozen, name);
}

TEST(RuntimeDifferential, LowerBoundInstancesAreBitIdentical) {
  // Each theorem instance against the strategy class it attacks: the traces
  // where tie-breaking is adversarially steered, i.e. where any drift in
  // traversal order would surface immediately.
  const std::vector<std::pair<std::string,
                              std::function<TheoremInstance()>>> cases = {
      {"A_fix", [] { return make_lb_fix(4, 3); }},
      {"A_current", [] { return make_lb_current(3, 3); }},
      {"A_fix_balance", [] { return make_lb_fix_balance(4, 3); }},
      {"A_eager", [] { return make_lb_eager(4, 3); }},
      {"A_balance", [] { return make_lb_balance(2, 2, 3); }},
  };
  for (const auto& [name, make] : cases) {
    expect_runtime_matches_legacy(name, [&make] {
      return std::move(make().workload);
    });
  }
}

TEST(RuntimeDifferential, TwoHundredRandomTracesAreBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const RandomWorkloadOptions options{
        .n = static_cast<std::int32_t>(2 + seed % 4),
        .d = static_cast<std::int32_t>(1 + seed % 3),
        .load = 0.5 + 0.1 * static_cast<double>(seed % 14),
        .horizon = static_cast<Round>(8 + seed % 9),
        .seed = seed,
        .two_choice = seed % 3 != 0};
    std::vector<std::string> names = {"A_fix", "A_current", "A_fix_balance",
                                      "A_eager", "A_balance"};
    if (options.two_choice) {
      names.insert(names.end(),
                   {"A_local_fix", "A_local_eager", "A_local_eager_merged",
                    "EDF_two_choice", "EDF_two_choice_cancel"});
    } else {
      names.push_back("EDF_single");
    }
    for (const std::string& name : names) {
      expect_runtime_matches_legacy(name, [&options] {
        return std::make_unique<UniformWorkload>(options);
      });
      if (::testing::Test::HasFailure()) {
        FAIL() << "first divergence: " << name << " on seed " << seed;
      }
    }
  }
}

// ===========================================================================
// DeltaWindowProblem event fuzz: instance vs naive model vs fresh replay.

struct Event {
  enum class Kind { kAdd, kRetire, kBook, kUnbook, kAdvance };
  Kind kind;
  Request request;  // kAdd
  RequestId id = kNoRequest;
  SlotRef slot = kNoSlot;
};

void apply_event(DeltaWindowProblem& p, const Event& e) {
  switch (e.kind) {
    case Event::Kind::kAdd: p.add_request(e.request); break;
    case Event::Kind::kRetire: p.retire(e.id); break;
    case Event::Kind::kBook: p.book(e.id, e.slot); break;
    case Event::Kind::kUnbook: p.unbook(e.id); break;
    case Event::Kind::kAdvance: p.advance(); break;
  }
}

struct Model {
  std::map<RequestId, Request> rows;
  std::map<RequestId, SlotRef> booked;
  std::map<std::pair<Round, ResourceId>, RequestId> occupant;

  bool is_free(SlotRef s) const {
    return occupant.count({s.round, s.resource}) == 0;
  }
};

/// The canonical per-left slot enumeration: rounds ascending clamped to the
/// window, then {first, second}; optionally filtered to free slots.
std::vector<SlotRef> naive_allowed(const Model& model, const Request& r,
                                   Round t, std::int32_t d, bool only_free) {
  std::vector<SlotRef> out;
  const Round lo = std::max(r.arrival, t);
  const Round hi = std::min(r.deadline, t + d - 1);
  for (Round round = lo; round <= hi; ++round) {
    for (const ResourceId res : r.alts) {
      const SlotRef slot{res, round};
      if (only_free && !model.is_free(slot)) continue;
      out.push_back(slot);
    }
  }
  return out;
}

std::vector<SlotRef> naive_rights(const Model& model, Round t, std::int32_t n,
                                  std::int32_t d, WindowScope scope) {
  std::vector<SlotRef> out;
  const Round last = scope == WindowScope::kCurrentRound ? t : t + d - 1;
  for (Round round = t; round <= last; ++round) {
    for (ResourceId res = 0; res < n; ++res) {
      const SlotRef slot{res, round};
      if (scope != WindowScope::kFullWindow && !model.is_free(slot)) continue;
      out.push_back(slot);
    }
  }
  return out;
}

void expect_graphs_equal(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.left_count(), b.left_count());
  ASSERT_EQ(a.right_count(), b.right_count());
  for (std::int32_t l = 0; l < a.left_count(); ++l) {
    const auto na = a.neighbors(l);
    const auto nb = b.neighbors(l);
    ASSERT_EQ(na.size(), nb.size()) << "left " << l;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "left " << l << " edge " << i;
    }
  }
}

/// The full agreement check: `p` (delta-maintained) vs `fresh` (the event
/// log replayed into a new instance) vs the naive model, plus the legacy
/// matchers run on the graph `p` builds.
void expect_consistent(const DeltaWindowProblem& p,
                       const DeltaWindowProblem& fresh, const Model& model,
                       Round t, const ProblemConfig& config) {
  const std::int32_t n = config.n;
  const std::int32_t d = config.d;
  ASSERT_EQ(p.window_begin(), t);
  ASSERT_EQ(fresh.window_begin(), t);
  ASSERT_EQ(p.row_count(), static_cast<std::int64_t>(model.rows.size()));
  ASSERT_EQ(fresh.row_count(), p.row_count());

  for (Round round = t; round < t + d; ++round) {
    for (ResourceId res = 0; res < n; ++res) {
      const SlotRef slot{res, round};
      const auto it = model.occupant.find({round, res});
      const RequestId expected =
          it == model.occupant.end() ? kNoRequest : it->second;
      ASSERT_EQ(p.is_free(slot), expected == kNoRequest) << slot;
      ASSERT_EQ(p.request_at(slot), expected) << slot;
      ASSERT_EQ(fresh.is_free(slot), expected == kNoRequest) << slot;
      ASSERT_EQ(fresh.request_at(slot), expected) << slot;
    }
  }

  std::vector<RequestId> all_rows;
  std::vector<RequestId> unbooked;
  for (const auto& [id, r] : model.rows) {
    all_rows.push_back(id);
    ASSERT_TRUE(p.has_row(id));
    const Request& row = p.row(id);
    EXPECT_EQ(row.id, r.id);
    EXPECT_EQ(row.arrival, r.arrival);
    EXPECT_EQ(row.deadline, r.deadline);
    EXPECT_EQ(row.alts, r.alts);
    const auto booked = model.booked.find(id);
    const SlotRef expected =
        booked == model.booked.end() ? kNoSlot : booked->second;
    ASSERT_EQ(p.booked_slot_of(id), expected) << "r" << id;
    ASSERT_EQ(fresh.booked_slot_of(id), expected) << "r" << id;
    if (expected == kNoSlot) unbooked.push_back(id);

    // first_free_allowed is one greedy-maximal step; cross-check the scan.
    const auto free_slots = naive_allowed(model, r, t, d, /*only_free=*/true);
    const SlotRef first = free_slots.empty() ? kNoSlot : free_slots.front();
    ASSERT_EQ(p.first_free_allowed(id), first) << "r" << id;

    // earliest_free_slot, same contract as Schedule::earliest_free_slot.
    for (const ResourceId res : r.alts) {
      SlotRef naive = kNoSlot;
      for (Round round = t; round <= std::min(r.deadline, t + d - 1);
           ++round) {
        if (model.is_free({res, round})) {
          naive = SlotRef{res, round};
          break;
        }
      }
      ASSERT_EQ(p.earliest_free_slot(res, t, r.deadline), naive)
          << "r" << id << " resource " << res;
    }
  }

  std::vector<SlotRef> rights_p;
  std::vector<SlotRef> rights_f;
  BipartiteGraph graph_p;
  BipartiteGraph graph_f;
  for (const WindowScope scope :
       {WindowScope::kFreeWindow, WindowScope::kCurrentRound,
        WindowScope::kFullWindow}) {
    p.collect_rights(scope, rights_p);
    fresh.collect_rights(scope, rights_f);
    const auto expected = naive_rights(model, t, n, d, scope);
    ASSERT_EQ(rights_p, expected);
    ASSERT_EQ(rights_f, expected);

    // Graphs: booked lefts participate only in the full-window problem (the
    // rematch strategies); the free-scope problems take unscheduled lefts.
    const auto& lefts =
        scope == WindowScope::kFullWindow ? all_rows : unbooked;
    p.build_problem(lefts, scope, rights_p, graph_p);
    fresh.build_problem(lefts, scope, rights_f, graph_f);
    expect_graphs_equal(graph_p, graph_f);
    for (std::size_t l = 0; l < lefts.size(); ++l) {
      const Request& r = model.rows.at(lefts[l]);
      const auto allowed = naive_allowed(model, r, t, d,
                                         scope != WindowScope::kFullWindow);
      const auto neighbors = graph_p.neighbors(static_cast<std::int32_t>(l));
      std::vector<SlotRef> expected_slots;
      for (const SlotRef s : allowed) {
        if (scope == WindowScope::kCurrentRound && s.round != t) continue;
        expected_slots.push_back(s);
      }
      ASSERT_EQ(neighbors.size(), expected_slots.size()) << "left " << l;
      for (std::size_t e = 0; e < neighbors.size(); ++e) {
        ASSERT_EQ(rights_p[static_cast<std::size_t>(neighbors[e])],
                  expected_slots[e])
            << "left " << l << " edge " << e;
      }
    }

    // max_match must equal kuhn_ordered on the very graph it shortcuts.
    if (scope == WindowScope::kFullWindow) continue;
    std::vector<SlotRef> match_p;
    std::vector<SlotRef> match_f;
    p.max_match(unbooked, scope, match_p);
    fresh.max_match(unbooked, scope, match_f);
    ASSERT_EQ(match_p.size(), unbooked.size());
    ASSERT_EQ(match_p, match_f);
    if (lefts.empty()) continue;
    const Matching reference = kuhn_ordered(graph_p);
    for (std::size_t l = 0; l < unbooked.size(); ++l) {
      const std::int32_t right = reference.left_to_right[l];
      const SlotRef expected_slot =
          right < 0 ? kNoSlot : rights_p[static_cast<std::size_t>(right)];
      ASSERT_EQ(match_p[l], expected_slot)
          << "max_match diverged from kuhn_ordered for left " << l;
    }
  }
}

void fuzz_trial(std::int32_t n, std::int32_t d, std::uint64_t seed,
                int events) {
  const ProblemConfig config{n, d};
  Prng rng(seed);
  DeltaWindowProblem p;
  p.reset(config);
  Model model;
  std::vector<Event> log;
  Round t = 0;
  RequestId next_id = 0;

  const auto emit = [&](Event e) {
    apply_event(p, e);
    log.push_back(std::move(e));
  };

  const auto do_advance = [&] {
    // Mimic the engine's end of round: execute (unbook + retire) everything
    // booked at round t, expire unscheduled rows whose deadline passed.
    std::vector<RequestId> executed;
    for (const auto& [id, slot] : model.booked) {
      if (slot.round == t) executed.push_back(id);
    }
    for (const RequestId id : executed) {
      emit(Event{Event::Kind::kUnbook, {}, id, kNoSlot});
      model.occupant.erase({t, model.booked.at(id).resource});
      model.booked.erase(id);
      emit(Event{Event::Kind::kRetire, {}, id, kNoSlot});
      model.rows.erase(id);
    }
    std::vector<RequestId> expired;
    for (const auto& [id, r] : model.rows) {
      if (r.deadline <= t && model.booked.count(id) == 0) expired.push_back(id);
    }
    for (const RequestId id : expired) {
      emit(Event{Event::Kind::kRetire, {}, id, kNoSlot});
      model.rows.erase(id);
    }
    emit(Event{Event::Kind::kAdvance, {}, kNoRequest, kNoSlot});
    ++t;
  };

  for (int step = 0; step < events; ++step) {
    const auto roll = rng.next_below(100);
    if (roll < 35) {  // arrival
      Request r;
      r.id = next_id++;
      r.arrival = t;
      r.deadline = t + static_cast<Round>(rng.next_below(
                           static_cast<std::uint64_t>(d)));
      const auto first = static_cast<ResourceId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      ResourceId second = kNoResource;
      if (n > 1 && rng.next_below(5) != 0) {
        second = static_cast<ResourceId>(rng.next_below(
            static_cast<std::uint64_t>(n - 1)));
        if (second >= first) ++second;
      }
      r.alts = AltList(first, second);
      emit(Event{Event::Kind::kAdd, r, r.id, kNoSlot});
      model.rows.emplace(r.id, r);
    } else if (roll < 60) {  // book a random free allowed slot
      std::vector<RequestId> unbooked;
      for (const auto& [id, r] : model.rows) {
        if (model.booked.count(id) == 0) unbooked.push_back(id);
      }
      if (unbooked.empty()) continue;
      const RequestId id =
          unbooked[rng.next_below(unbooked.size())];
      const auto free_slots =
          naive_allowed(model, model.rows.at(id), t, d, /*only_free=*/true);
      if (free_slots.empty()) continue;
      const SlotRef slot = free_slots[rng.next_below(free_slots.size())];
      emit(Event{Event::Kind::kBook, {}, id, slot});
      model.booked[id] = slot;
      model.occupant[{slot.round, slot.resource}] = id;
    } else if (roll < 70) {  // unbook (a strategy rebooking elsewhere)
      if (model.booked.empty()) continue;
      auto it = model.booked.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(model.booked.size())));
      const RequestId id = it->first;
      model.occupant.erase({it->second.round, it->second.resource});
      model.booked.erase(it);
      emit(Event{Event::Kind::kUnbook, {}, id, kNoSlot});
    } else if (roll < 80) {  // retire an unbooked row mid-round
      std::vector<RequestId> unbooked;
      for (const auto& [id, r] : model.rows) {
        if (model.booked.count(id) == 0) unbooked.push_back(id);
      }
      if (unbooked.empty()) continue;
      const RequestId id = unbooked[rng.next_below(unbooked.size())];
      emit(Event{Event::Kind::kRetire, {}, id, kNoSlot});
      model.rows.erase(id);
    } else {  // round boundary
      do_advance();
    }

    // The freshly built instance: the whole history replayed from scratch.
    DeltaWindowProblem fresh;
    fresh.reset(config);
    for (const Event& e : log) apply_event(fresh, e);
    expect_consistent(p, fresh, model, t, config);
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence after event " << log.size() << " (n=" << n
             << ", d=" << d << ", seed=" << seed << ")";
    }
  }

  // Drain: advancing past every deadline must leave the problem empty.
  for (std::int32_t i = 0; i < d; ++i) do_advance();
  EXPECT_EQ(p.row_count(), 0);
  EXPECT_TRUE(model.rows.empty());
}

TEST(DeltaWindowFuzz, AgreesWithModelAndFreshRebuildAfterEveryEvent) {
  fuzz_trial(/*n=*/3, /*d=*/3, /*seed=*/101, /*events=*/320);
  fuzz_trial(/*n=*/2, /*d=*/2, /*seed=*/202, /*events=*/320);
  fuzz_trial(/*n=*/5, /*d=*/4, /*seed=*/303, /*events=*/320);
}

TEST(DeltaWindowFuzz, MultiWordFreeMasksStayExact) {
  // n = 70 crosses the 64-bit word boundary of the per-column free masks:
  // popcount ranks, countr_zero iteration, and the tail mask all get hit.
  fuzz_trial(/*n=*/70, /*d=*/2, /*seed=*/404, /*events=*/160);
}

TEST(DeltaWindowContracts, RejectsOutOfContractEvents) {
  const ProblemConfig config{2, 2};
  DeltaWindowProblem p;
  p.reset(config);
  Request r;
  r.id = 0;
  r.arrival = 0;
  r.deadline = 1;
  r.alts = AltList(0, 1);
  p.add_request(r);

  Request late = r;
  late.id = 1;
  late.arrival = 1;  // not the current round
  EXPECT_THROW(p.add_request(late), ContractViolation);
  Request far = r;
  far.id = 2;
  far.deadline = 2;  // beyond the window
  EXPECT_THROW(p.add_request(far), ContractViolation);
  EXPECT_THROW(p.add_request(r), ContractViolation);  // duplicate row

  EXPECT_THROW(p.book(0, SlotRef{0, 2}), ContractViolation);  // out of window
  p.book(0, SlotRef{0, 0});
  EXPECT_THROW(p.retire(0), ContractViolation);  // booked rows can't retire
  EXPECT_THROW(p.advance(), ContractViolation);  // current column not free
  p.unbook(0);
  p.retire(0);
  p.advance();
  EXPECT_EQ(p.window_begin(), 1);
}

}  // namespace
}  // namespace reqsched
