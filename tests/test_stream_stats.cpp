// The streaming-statistics layer, pinned against ground truth:
//  * QuantileSketch is *exact* below capacity (nearest-rank equality with a
//    sorted copy), bounded-rank-error above it, and mergeable — exactly
//    associative in the exact regime, bounded-error across any sharding;
//  * the windowed counters equal a naive sliding-window recount;
//  * on finite traces (the paper's lower-bound instances + random
//    workloads) the streaming layer with window >= horizon reproduces the
//    exact whole-trace Metrics and the exact tardiness quantiles collected
//    through the retire sink — streaming loses nothing it claims to keep;
//  * export/import and the full checkpoint cycle preserve every frame.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "engine/stream_stats.hpp"
#include "snapshot/checkpoint.hpp"
#include "strategies/scripted.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

double exact_nearest_rank(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * n)));
  return values[static_cast<std::size_t>(rank - 1)];
}

/// Fraction of `values` at or below `estimate` — the empirical rank the
/// sketch's answer lands on, for rank-error bounds.
double empirical_rank(const std::vector<double>& values, double estimate) {
  std::int64_t at_or_below = 0;
  for (const double v : values) {
    if (v <= estimate) ++at_or_below;
  }
  return static_cast<double>(at_or_below) /
         static_cast<double>(values.size());
}

TEST(QuantileSketch, ExactBelowCapacity) {
  QuantileSketch sketch(256);
  std::vector<double> values;
  Prng rng(42);
  for (int i = 0; i < 256; ++i) {
    const double v = static_cast<double>(rng.next_below(1000));
    sketch.add(v);
    values.push_back(v);
  }
  EXPECT_TRUE(sketch.exact());
  EXPECT_EQ(sketch.count(), 256);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.quantile(q), exact_nearest_rank(values, q))
        << "q=" << q;
  }
}

TEST(QuantileSketch, EmptyAndSingle) {
  QuantileSketch sketch(64);
  EXPECT_TRUE(sketch.empty());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  sketch.add(7.0);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.quantile(q), 7.0);
  }
}

TEST(QuantileSketch, BoundedRankErrorAboveCapacity) {
  QuantileSketch sketch(256);
  std::vector<double> values;
  Prng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.next_double();
    sketch.add(v);
    values.push_back(v);
  }
  EXPECT_FALSE(sketch.exact());
  // Deterministic inputs, deterministic compaction: this bound either holds
  // forever or fails forever — it pins the sketch's accuracy contract.
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double rank = empirical_rank(values, sketch.quantile(q));
    EXPECT_NEAR(rank, q, 0.05) << "q=" << q;
  }
}

TEST(QuantileSketch, MemoryStaysBounded) {
  QuantileSketch sketch(128);
  const std::size_t before = sketch.approx_bytes();
  Prng rng(3);
  for (int i = 0; i < 200'000; ++i) sketch.add(rng.next_double());
  // O(capacity) with a log-level tail, never O(count).
  EXPECT_LE(sketch.approx_bytes(), 64u * before + (16u << 10));
}

TEST(QuantileSketch, MergeIsExactAndAssociativeInExactRegime) {
  Prng rng(9);
  std::vector<double> all;
  std::vector<QuantileSketch> parts(4, QuantileSketch(1024));
  for (int i = 0; i < 800; ++i) {  // 800 < 1024: merged stays exact
    const double v = static_cast<double>(rng.next_below(500));
    all.push_back(v);
    parts[static_cast<std::size_t>(i % 4)].add(v);
  }

  // left fold: ((p0 + p1) + p2) + p3
  QuantileSketch left(1024);
  for (const auto& p : parts) left.merge(p);
  // balanced tree: (p0 + p1) + (p2 + p3)
  QuantileSketch ab = parts[0];
  ab.merge(parts[1]);
  QuantileSketch cd = parts[2];
  cd.merge(parts[3]);
  ab.merge(cd);

  EXPECT_TRUE(left.exact());
  EXPECT_TRUE(ab.exact());
  EXPECT_EQ(left.count(), 800);
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    const double want = exact_nearest_rank(all, q);
    EXPECT_DOUBLE_EQ(left.quantile(q), want) << "q=" << q;
    EXPECT_DOUBLE_EQ(ab.quantile(q), want) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeErrorBoundedAcrossShardings) {
  // The cross-shard property the ShardedRunner merge relies on: however the
  // stream is partitioned, the merged sketch answers within the rank-error
  // tolerance of the pooled data.
  Prng rng(17);
  std::vector<double> all;
  for (int i = 0; i < 50'000; ++i) {
    all.push_back(static_cast<double>(rng.next_below(10'000)));
  }
  for (const int shards : {2, 4, 8, 16}) {
    std::vector<QuantileSketch> parts(static_cast<std::size_t>(shards),
                                      QuantileSketch(512));
    for (std::size_t i = 0; i < all.size(); ++i) {
      parts[i % static_cast<std::size_t>(shards)].add(all[i]);
    }
    QuantileSketch merged = parts[0];
    for (std::size_t s = 1; s < parts.size(); ++s) merged.merge(parts[s]);
    EXPECT_EQ(merged.count(), static_cast<std::int64_t>(all.size()));
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
      const double rank = empirical_rank(all, merged.quantile(q));
      EXPECT_NEAR(rank, q, 0.06) << "shards=" << shards << " q=" << q;
    }
  }
}

TEST(QuantileSketch, ExportImportRoundTrip) {
  QuantileSketch sketch(64);
  Prng rng(5);
  for (int i = 0; i < 3'000; ++i) sketch.add(rng.next_double() * 100.0);

  std::vector<std::uint64_t> words;
  sketch.export_state(words);
  QuantileSketch restored(64);
  std::size_t cursor = 0;
  restored.import_state(words, cursor);
  EXPECT_EQ(cursor, words.size());
  EXPECT_EQ(restored, sketch);

  // and the two evolve identically afterwards
  sketch.add(3.5);
  restored.add(3.5);
  EXPECT_EQ(restored, sketch);
}

// ---------------------------------------------------------------------------
// Windowed counters vs a naive recount
// ---------------------------------------------------------------------------

struct RoundEvents {
  std::int64_t injected = 0;
  std::int64_t fulfilled = 0;
  std::int64_t expired = 0;
};

TEST(StreamStats, WindowedCountersMatchNaiveRecount) {
  StreamStatsOptions options;
  options.window = 64;
  options.buckets = 8;
  StreamStats stats;
  stats.reset(options, 0);

  Prng rng(23);
  std::vector<RoundEvents> history;
  for (int t = 0; t < 500; ++t) {
    RoundEvents ev;
    ev.injected = static_cast<std::int64_t>(rng.next_below(5));
    ev.fulfilled = static_cast<std::int64_t>(rng.next_below(4));
    ev.expired = static_cast<std::int64_t>(rng.next_below(2));
    stats.on_inject(ev.injected);
    for (std::int64_t i = 0; i < ev.fulfilled; ++i) {
      stats.on_fulfill(static_cast<Round>(rng.next_below(8)));
    }
    for (std::int64_t i = 0; i < ev.expired; ++i) stats.on_expire();
    stats.end_round();
    history.push_back(ev);

    const StatsFrame frame = stats.frame(0);
    // The ring covers exactly the last `window_rounds` rounds (bucket-
    // aligned), so the recount over that span must match word-for-word.
    ASSERT_GE(frame.window_rounds, 1);
    ASSERT_LE(frame.window_rounds, options.window);
    RoundEvents naive;
    for (std::int64_t back = 0; back < frame.window_rounds; ++back) {
      const auto& h = history[history.size() - 1 -
                              static_cast<std::size_t>(back)];
      naive.injected += h.injected;
      naive.fulfilled += h.fulfilled;
      naive.expired += h.expired;
    }
    EXPECT_EQ(frame.w_injected, naive.injected) << "t=" << t;
    EXPECT_EQ(frame.w_fulfilled, naive.fulfilled) << "t=" << t;
    EXPECT_EQ(frame.w_expired, naive.expired) << "t=" << t;
  }
}

TEST(StreamStats, MergeSumsCountersAndSketches) {
  StreamStatsOptions options;
  options.window = 32;
  options.buckets = 4;
  StreamStats a;
  StreamStats b;
  a.reset(options, 0);
  b.reset(options, 1);
  for (int t = 0; t < 40; ++t) {
    a.on_inject(2);
    a.on_fulfill(1);
    a.on_expire();
    a.end_round();
    b.on_inject(3);
    b.on_fulfill(5);
    b.end_round();
  }
  StreamStats merged = a;
  merged.merge(b);
  const StatsFrame fa = a.frame(0);
  const StatsFrame fb = b.frame(0);
  const StatsFrame fm = merged.frame(0);
  EXPECT_EQ(fm.injected, fa.injected + fb.injected);
  EXPECT_EQ(fm.fulfilled, fa.fulfilled + fb.fulfilled);
  EXPECT_EQ(fm.expired, fa.expired + fb.expired);
  EXPECT_EQ(fm.w_injected, fa.w_injected + fb.w_injected);
  EXPECT_EQ(fm.w_fulfilled, fa.w_fulfilled + fb.w_fulfilled);
  EXPECT_EQ(fm.w_expired, fa.w_expired + fb.w_expired);
  // Tardiness 1 on shard a (40 samples), 5 on shard b (40): exact sketch,
  // so the merged median sits on the boundary and p99 is shard b's value.
  EXPECT_DOUBLE_EQ(fm.cum_tardiness_p50, 1.0);
  EXPECT_DOUBLE_EQ(fm.cum_tardiness_p99, 5.0);
}

TEST(StreamStats, FrameJsonlIsTaggedAndDeterministic) {
  StreamStatsOptions options;
  options.window = 16;
  options.buckets = 4;
  StreamStats stats;
  stats.reset(options, 3);
  stats.on_inject(4);
  stats.on_fulfill(2);
  stats.end_round();
  const std::string line = to_jsonl(stats.frame(1));
  EXPECT_NE(line.find("\"frame\":1"), std::string::npos);
  EXPECT_NE(line.find("\"shard\":3"), std::string::npos);
  EXPECT_EQ(line, to_jsonl(stats.frame(1)));
}

// ---------------------------------------------------------------------------
// Differential: streaming layer vs exact whole-trace accounting
// ---------------------------------------------------------------------------

/// Runs `workload` under `strategy` with the streaming layer configured to
/// cover the whole finite trace (window >= horizon, sketch in its exact
/// regime), and checks every streamed figure against the exact ground truth:
/// Metrics for the counters, the retire-sink wait list for the quantiles.
void expect_stream_matches_exact(IWorkload& workload, IStrategy& strategy) {
  EngineOptions options = streaming_options();
  // The scripted theorem plans consult the recorded trace; exact-on-finite
  // is the point of this suite, so the retained extras cost nothing.
  options.record_trace = true;
  options.retain_history = true;
  options.track_stream_stats = true;
  options.stream_stats.window = 1 << 20;
  options.stream_stats.sketch_capacity = 1 << 16;
  std::vector<double> waits;
  options.retire_sink = [&](const Request& request, RequestStatus status,
                            SlotRef slot) {
    if (status == RequestStatus::kFulfilled) {
      waits.push_back(static_cast<double>(slot.round - request.arrival));
    }
  };
  Simulator sim(workload, strategy, std::move(options));
  const Metrics& metrics = sim.run();

  const StatsFrame frame = sim.engine().stats_frame();
  EXPECT_EQ(frame.injected, metrics.injected);
  EXPECT_EQ(frame.fulfilled, metrics.fulfilled);
  EXPECT_EQ(frame.expired, metrics.expired);
  EXPECT_DOUBLE_EQ(frame.fulfilled_fraction, metrics.fulfilled_fraction());
  // window >= horizon: the sliding window *is* the whole trace.
  EXPECT_EQ(frame.w_injected, metrics.injected);
  EXPECT_EQ(frame.w_fulfilled, metrics.fulfilled);
  EXPECT_EQ(frame.w_expired, metrics.expired);
  ASSERT_EQ(static_cast<std::int64_t>(waits.size()), metrics.fulfilled);
  EXPECT_DOUBLE_EQ(frame.cum_tardiness_p50, exact_nearest_rank(waits, 0.50));
  EXPECT_DOUBLE_EQ(frame.cum_tardiness_p99, exact_nearest_rank(waits, 0.99));
  EXPECT_DOUBLE_EQ(frame.tardiness_p50, exact_nearest_rank(waits, 0.50));
  EXPECT_DOUBLE_EQ(frame.tardiness_p90, exact_nearest_rank(waits, 0.90));
  EXPECT_DOUBLE_EQ(frame.tardiness_p99, exact_nearest_rank(waits, 0.99));
}

TEST(StreamStatsDifferential, LowerBoundInstances) {
  // The paper's five lower-bound constructions — adversarial finite traces
  // with nontrivial expiry patterns — streamed and pinned exactly.
  {
    TheoremInstance inst = make_lb_fix(3, 6);
    ScriptedStrategy strategy(inst.target, *inst.workload);
    expect_stream_matches_exact(*inst.workload, strategy);
  }
  {
    TheoremInstance inst = make_lb_fix_balance(2, 6);
    ScriptedStrategy strategy(inst.target, *inst.workload);
    expect_stream_matches_exact(*inst.workload, strategy);
  }
  {
    TheoremInstance inst = make_lb_eager(2, 6);
    ScriptedStrategy strategy(inst.target, *inst.workload);
    expect_stream_matches_exact(*inst.workload, strategy);
  }
  {
    TheoremInstance inst = make_lb_balance(2, 3, 6);
    ScriptedStrategy strategy(inst.target, *inst.workload);
    expect_stream_matches_exact(*inst.workload, strategy);
  }
  {
    TheoremInstance inst = make_lb_current(3, 5);
    auto strategy = make_strategy("A_current");
    expect_stream_matches_exact(*inst.workload, *strategy);
  }
}

TEST(StreamStatsDifferential, RandomFiniteTraces) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    UniformWorkload workload({.n = 8, .d = 4, .load = 1.8, .horizon = 300,
                              .seed = seed, .two_choice = true});
    auto strategy = make_strategy("A_balance");
    expect_stream_matches_exact(workload, *strategy);
  }
  for (const std::uint64_t seed : {9u, 10u}) {
    ZipfWorkload workload({.n = 10, .d = 5, .load = 1.4, .horizon = 250,
                           .seed = seed, .two_choice = true},
                          1.2);
    auto strategy = make_strategy("A_fix");
    expect_stream_matches_exact(workload, *strategy);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint round trip with the statistics layer on
// ---------------------------------------------------------------------------

TEST(StreamStatsCheckpoint, RoundTripPreservesFramesAndDigest) {
  const RandomWorkloadOptions opts{.n = 6, .d = 3, .load = 1.8,
                                   .horizon = 400, .seed = 13,
                                   .two_choice = true};
  const Round frame_every = 64;
  const auto engine_opts = [&](std::vector<std::string>* frames) {
    EngineOptions eo = streaming_options();
    eo.track_stream_stats = true;
    eo.stream_stats.window = 128;
    eo.stream_stats.buckets = 8;
    eo.frame_every = frame_every;
    if (frames != nullptr) {
      eo.frame_sink = [frames](const StatsFrame& frame) {
        frames->push_back(to_jsonl(frame));
      };
    }
    return eo;
  };

  std::vector<std::string> ref_frames;
  UniformWorkload ref_workload(opts);
  auto ref_strategy = make_strategy("A_balance");
  Simulator ref(ref_workload, *ref_strategy, engine_opts(&ref_frames));
  ref.run(4 * opts.horizon + 16);

  UniformWorkload cut_workload(opts);
  auto cut_strategy = make_strategy("A_balance");
  Simulator cut(cut_workload, *cut_strategy, engine_opts(nullptr));
  while (cut.metrics().rounds < 200 && cut.step()) {
  }
  CheckpointManifest manifest;
  manifest.strategy_name = "A_balance";
  manifest.workload_family = "uniform";
  manifest.workload = opts;
  const std::vector<std::uint8_t> bytes =
      CheckpointManager::encode(cut.engine(), manifest);

  std::vector<std::string> res_frames;
  UniformWorkload res_workload(opts);
  auto res_strategy = make_strategy("A_balance");
  Simulator res(res_workload, *res_strategy, engine_opts(&res_frames));
  CheckpointManager::restore(bytes, res.engine());
  EXPECT_EQ(state_digest(res.engine()), state_digest(cut.engine()));
  res.run(4 * opts.horizon + 16);

  EXPECT_EQ(res.metrics(), ref.metrics());
  EXPECT_EQ(state_digest(res.engine()), state_digest(ref.engine()));
  // Every frame emitted after the cut is byte-identical to the frame the
  // uninterrupted run emitted at the same round.
  ASSERT_LE(res_frames.size(), ref_frames.size());
  const std::size_t skip = ref_frames.size() - res_frames.size();
  for (std::size_t i = 0; i < res_frames.size(); ++i) {
    EXPECT_EQ(res_frames[i], ref_frames[skip + i]) << "frame " << i;
  }
}

TEST(StreamStatsCheckpoint, RestoreRejectsOptionMismatch) {
  const RandomWorkloadOptions opts{.n = 4, .d = 2, .load = 1.5,
                                   .horizon = 60, .seed = 3,
                                   .two_choice = true};
  UniformWorkload workload(opts);
  auto strategy = make_strategy("A_fix");
  EngineOptions eo = streaming_options();
  eo.track_stream_stats = true;
  Simulator sim(workload, *strategy, std::move(eo));
  while (sim.metrics().rounds < 30 && sim.step()) {
  }
  CheckpointManifest manifest;
  manifest.strategy_name = "A_fix";
  manifest.workload_family = "uniform";
  manifest.workload = opts;
  const auto bytes = CheckpointManager::encode(sim.engine(), manifest);

  // A restore target without the statistics layer must be refused.
  UniformWorkload plain_workload(opts);
  auto plain_strategy = make_strategy("A_fix");
  Simulator plain(plain_workload, *plain_strategy, streaming_options());
  EXPECT_THROW(CheckpointManager::restore(bytes, plain.engine()),
               ContractViolation);

  // So must one whose window disagrees with the checkpointed options.
  UniformWorkload other_workload(opts);
  auto other_strategy = make_strategy("A_fix");
  EngineOptions other = streaming_options();
  other.track_stream_stats = true;
  other.stream_stats.window = 999;
  Simulator mismatched(other_workload, *other_strategy, std::move(other));
  EXPECT_THROW(CheckpointManager::restore(bytes, mismatched.engine()),
               ContractViolation);
}

}  // namespace
}  // namespace reqsched
