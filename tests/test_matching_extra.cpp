// Additional matching-substrate coverage: pathological graph shapes, seeded
// augmentation, flow edge cases, and randomized trace round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "matching/bipartite.hpp"
#include "matching/maxflow.hpp"
#include "matching/mincost_flow.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

TEST(HopcroftKarp, CompleteBipartiteIsPerfect) {
  for (const std::int32_t size : {1, 2, 5, 9}) {
    BipartiteGraph g(size, size);
    for (std::int32_t l = 0; l < size; ++l) {
      for (std::int32_t r = 0; r < size; ++r) g.add_edge(l, r);
    }
    g.finalize();
    EXPECT_EQ(hopcroft_karp(g).size(), size);
  }
}

TEST(HopcroftKarp, StarGraphMatchesOne) {
  BipartiteGraph g(5, 1);
  for (std::int32_t l = 0; l < 5; ++l) g.add_edge(l, 0);
  g.finalize();
  EXPECT_EQ(hopcroft_karp(g).size(), 1);
  const auto cover = koenig_cover(g, hopcroft_karp(g));
  EXPECT_EQ(cover.size(), 1);
  EXPECT_TRUE(covers_all_edges(g, cover));
}

TEST(HopcroftKarp, DisjointPerfectMatchingChain) {
  // A "chain" where greedy can go wrong but augmentation recovers:
  // l0-{r0}, l1-{r0,r1}, l2-{r1,r2}, ... perfect matching exists.
  const std::int32_t size = 8;
  BipartiteGraph g(size, size);
  g.add_edge(0, 0);
  for (std::int32_t l = 1; l < size; ++l) {
    g.add_edge(l, l - 1);
    g.add_edge(l, l);
  }
  g.finalize();
  EXPECT_EQ(hopcroft_karp(g).size(), size);
  // Kuhn processed in REVERSE order must still find the perfect matching.
  std::vector<std::int32_t> reverse_order;
  for (std::int32_t l = size - 1; l >= 0; --l) reverse_order.push_back(l);
  EXPECT_EQ(kuhn_ordered(g, reverse_order).size(), size);
}

TEST(KuhnOrdered, EmptyGraphAndIsolatedVertices) {
  BipartiteGraph g(3, 3);
  const Matching m = kuhn_ordered(g);
  EXPECT_EQ(m.size(), 0);
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(BipartiteGraph, DuplicateEdgesRejectedInDebugBuilds) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 0);  // duplicate
  g.add_edge(1, 0);
  g.add_edge(1, 1);
#ifdef REQSCHED_DEBUG_CHECKS
  // Debug builds (and the sanitized CI pass) reject duplicates outright —
  // they would skew augmenting-path order histograms.
  EXPECT_THROW(g.finalize(), ContractViolation);
#else
  // Release builds skip the O(E) scan; the algorithms tolerate duplicates.
  g.finalize();
  EXPECT_EQ(kuhn_ordered(g).size(), 2);
#endif
}

TEST(MatchingOps, MatchUnmatchRoundTrip) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 1);
  g.finalize();
  Matching m = Matching::empty(g);
  m.match(0, 1);
  EXPECT_TRUE(m.left_matched(0));
  EXPECT_TRUE(m.right_matched(1));
  m.unmatch_left(0);
  EXPECT_FALSE(m.left_matched(0));
  EXPECT_FALSE(m.right_matched(1));
  EXPECT_THROW(m.unmatch_left(0), ContractViolation);
  m.match(0, 1);
  EXPECT_THROW(m.match(0, 1), ContractViolation);
}

TEST(ValidateMatching, CatchesCorruption) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  g.finalize();
  Matching m = Matching::empty(g);
  m.left_to_right[0] = 0;  // not mutual
  EXPECT_THROW(validate_matching(g, m), ContractViolation);
  m.right_to_left[0] = 0;
  EXPECT_NO_THROW(validate_matching(g, m));
  m.left_to_right[1] = 0;  // not an edge / double use
  m.right_to_left[0] = 1;
  EXPECT_THROW(validate_matching(g, m), ContractViolation);
}

TEST(MaxFlow, ZeroCapacityEdgesCarryNothing) {
  MaxFlow flow(3);
  const auto e = flow.add_edge(0, 1, 0);
  flow.add_edge(1, 2, 5);
  EXPECT_EQ(flow.solve(0, 2), 0);
  EXPECT_EQ(flow.flow_on(e), 0);
}

TEST(MaxFlow, ParallelEdgesAccumulate) {
  MaxFlow flow(2);
  flow.add_edge(0, 1, 2);
  flow.add_edge(0, 1, 3);
  EXPECT_EQ(flow.solve(0, 1), 5);
}

TEST(MaxFlow, DisconnectedSinkIsZero) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 7);
  flow.add_edge(2, 3, 7);
  EXPECT_EQ(flow.solve(0, 3), 0);
}

TEST(MinCostMaxFlow, ZeroFlowHasZeroCost) {
  MinCostMaxFlow flow(3);
  flow.add_edge(0, 1, 0, -100);
  const auto [value, cost] = flow.solve(0, 1);
  EXPECT_EQ(value, 0);
  EXPECT_EQ(cost, 0);
}

TEST(MinCostMaxFlow, SplitsFlowAcrossCosts) {
  // Demand 3 from source; capacities 2 (cost 1) and 2 (cost 5): min cost
  // max flow sends 2 cheap + 1 expensive.
  MinCostMaxFlow flow(3);
  flow.add_edge(0, 1, 3, 0);
  flow.add_edge(1, 2, 2, 1);
  flow.add_edge(1, 2, 2, 5);
  const auto [value, cost] = flow.solve(0, 2);
  EXPECT_EQ(value, 3);
  EXPECT_EQ(cost, 2 * 1 + 1 * 5);
}

TEST(TraceIo, RandomRoundTripFuzz) {
  Prng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::int32_t>(2 + rng.next_below(6));
    const auto d = static_cast<std::int32_t>(1 + rng.next_below(5));
    Trace trace(ProblemConfig{n, d});
    Round arrival = 0;
    const auto count = rng.next_below(30);
    for (std::uint64_t i = 0; i < count; ++i) {
      arrival += static_cast<Round>(rng.next_below(3));
      RequestSpec spec;
      const auto first = static_cast<ResourceId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      ResourceId second = kNoResource;
      if (n > 1 && rng.next_bool(0.8)) {
        second = static_cast<ResourceId>(
            rng.next_below(static_cast<std::uint64_t>(n - 1)));
        if (second >= first) ++second;
      }
      spec.alts = AltList(first, second);
      spec.window =
          static_cast<std::int32_t>(1 + rng.next_below(
                                            static_cast<std::uint64_t>(d)));
      trace.add(arrival, spec);
    }
    std::stringstream buffer;
    trace.save(buffer);
    const Trace loaded = Trace::load(buffer);
    ASSERT_EQ(loaded.size(), trace.size());
    for (RequestId id = 0; id < trace.size(); ++id) {
      EXPECT_EQ(loaded.request(id).arrival, trace.request(id).arrival);
      EXPECT_EQ(loaded.request(id).deadline, trace.request(id).deadline);
      EXPECT_EQ(loaded.request(id).alts, trace.request(id).alts);
    }
  }
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream garbage("not-a-trace 1 2 3");
  EXPECT_THROW(Trace::load(garbage), ContractViolation);
  std::stringstream truncated("reqsched-trace 2 2 5\n0 0 1 1\n");
  EXPECT_THROW(Trace::load(truncated), ContractViolation);
}

}  // namespace
}  // namespace reqsched
