// Tests for the ASCII timeline renderer and heterogeneous-deadline support.
#include <gtest/gtest.h>

#include <set>

#include "adversary/random.hpp"
#include "analysis/harness.hpp"
#include "analysis/registry.hpp"
#include "analysis/timeline.hpp"
#include "strategies/edf.hpp"

namespace reqsched {
namespace {

TEST(Timeline, RendersExecutionsAtTheRightCells) {
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});  // r0
  trace.add(0, RequestSpec{0, 1, 0});  // r1
  const std::string grid = render_timeline(
      trace, {{0, SlotRef{0, 0}}, {1, SlotRef{1, 1}}});
  // Resource rows show the request glyphs at their execution rounds.
  EXPECT_NE(grid.find("S0    0."), std::string::npos) << grid;
  EXPECT_NE(grid.find("S1    .1"), std::string::npos) << grid;
}

TEST(Timeline, RespectsRange) {
  Trace trace(ProblemConfig{1, 4});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  TimelineOptions options;
  options.from = 1;
  options.to = 2;
  const std::string grid =
      render_timeline(trace, {{0, SlotRef{0, 0}}}, options);
  // Execution at round 0 lies outside the window -> both cells idle.
  EXPECT_NE(grid.find("S0    .."), std::string::npos) << grid;
  EXPECT_THROW(
      ([&] {
        TimelineOptions bad;
        bad.from = 5;
        bad.to = 2;
        render_timeline(trace, {}, bad);
      }()),
      ContractViolation);
}

TEST(Timeline, HashModeHidesIds) {
  Trace trace(ProblemConfig{1, 1});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  TimelineOptions options;
  options.show_ids = false;
  const std::string grid =
      render_timeline(trace, {{0, SlotRef{0, 0}}}, options);
  EXPECT_NE(grid.find('#'), std::string::npos);
}

// ---- heterogeneous deadlines (the paper's "different deadlines" remark) --

TEST(HeterogeneousDeadlines, WorkloadsProduceMixedWindows) {
  UniformWorkload workload({.n = 4, .d = 6, .load = 1.5, .horizon = 60,
                            .seed = 5, .two_choice = true, .min_window = 1});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  std::set<Round> windows;
  for (const Request& r : sim.trace().requests()) {
    windows.insert(r.deadline - r.arrival + 1);
  }
  EXPECT_GT(windows.size(), 2u);
  for (const Round w : windows) {
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 6);
  }
}

TEST(HeterogeneousDeadlines, EdfSingleStillEqualsOpt) {
  // Observation 3.1's remark: EDF stays 1-competitive with different
  // deadlines.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    UniformWorkload workload({.n = 4, .d = 5, .load = 1.7, .horizon = 60,
                              .seed = seed, .two_choice = false,
                              .min_window = 1});
    EdfSingle strategy;
    const RunResult result = run_experiment(workload, strategy);
    EXPECT_EQ(result.optimum, result.metrics.fulfilled) << "seed " << seed;
  }
}

TEST(HeterogeneousDeadlines, EdfTwoChoiceStaysWithinTwo) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    UniformWorkload workload({.n = 5, .d = 5, .load = 1.8, .horizon = 60,
                              .seed = seed, .two_choice = true,
                              .min_window = 1});
    EdfTwoChoice strategy(false);
    const RunResult result = run_experiment(workload, strategy);
    EXPECT_LE(result.ratio, 2.0 + 1e-12) << "seed " << seed;
  }
}

TEST(HeterogeneousDeadlines, AllStrategiesRunValidSchedules) {
  for (const std::string& name : all_strategy_names()) {
    if (name == "EDF_single") continue;
    UniformWorkload workload({.n = 5, .d = 4, .load = 1.6, .horizon = 40,
                              .seed = 11, .two_choice = true,
                              .min_window = 2});
    auto strategy = make_strategy(name);
    const RunResult result = run_experiment(workload, *strategy);
    EXPECT_GE(result.ratio, 1.0 - 1e-12) << name;
    // Every execution respects the request's own (shorter) window — the
    // harness' offline check plus schedule contracts enforce it; reaching
    // here without a ContractViolation is the assertion.
  }
}

}  // namespace
}  // namespace reqsched
