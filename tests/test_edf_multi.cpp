// Tests for the c-alternative EDF extension of Observation 3.2.
#include <gtest/gtest.h>

#include "strategies/edf_multi.hpp"

namespace reqsched {
namespace {

TEST(MultiTrace, ValidatesInput) {
  MultiTrace trace(4, 3);
  trace.add(0, {0, 1, 2});
  EXPECT_EQ(trace.requests().back().deadline, 2);
  EXPECT_THROW(trace.add(0, {}), ContractViolation);
  EXPECT_THROW(trace.add(0, {0, 0}), ContractViolation);
  EXPECT_THROW(trace.add(0, {7}), ContractViolation);
  trace.add(2, {3});
  EXPECT_THROW(trace.add(1, {0}), ContractViolation);  // monotone arrivals
  EXPECT_EQ(trace.last_useful_round(), 4);
}

TEST(MultiEdf, SingleAlternativeEqualsOpt) {
  // c = 1 degenerates to EDF-1, which is 1-competitive (Observation 3.1).
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const MultiTrace trace = make_multi_random_instance(6, 4, 1, 1.8, 50, seed);
    const MultiEdfResult edf = run_multi_edf(trace);
    EXPECT_EQ(edf.fulfilled, multi_offline_optimum(trace)) << "seed " << seed;
    EXPECT_EQ(edf.wasted_executions, 0);
  }
}

class MultiEdfTightness : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(MultiEdfTightness, RatioIsExactlyC) {
  const std::int32_t c = GetParam();
  const MultiTrace trace = make_multi_edf_tight_instance(c, 4, 5);
  const MultiEdfResult edf = run_multi_edf(trace);
  const std::int64_t opt = multi_offline_optimum(trace);
  EXPECT_EQ(opt, c * edf.fulfilled);
  EXPECT_EQ(edf.wasted_executions, (c - 1) * edf.fulfilled);
}

INSTANTIATE_TEST_SUITE_P(Choices, MultiEdfTightness,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class MultiEdfBound
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::uint64_t>> {
};

TEST_P(MultiEdfBound, NeverExceedsC) {
  const auto [c, seed] = GetParam();
  const MultiTrace trace = make_multi_random_instance(8, 3, c, 2.0, 60, seed);
  const MultiEdfResult edf = run_multi_edf(trace);
  const std::int64_t opt = multi_offline_optimum(trace);
  ASSERT_GT(edf.fulfilled, 0);
  EXPECT_LE(opt, c * edf.fulfilled);
  EXPECT_GE(opt, edf.fulfilled);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiEdfBound,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(7u, 8u, 9u)));

TEST(MultiEdf, EmptyTrace) {
  MultiTrace trace(2, 2);
  EXPECT_EQ(run_multi_edf(trace).fulfilled, 0);
  EXPECT_EQ(multi_offline_optimum(trace), 0);
}

TEST(MultiEdf, ServesUrgentCopiesFirst) {
  // Two requests on one resource: the later-deadline one arrives first but
  // the urgent one is served first.
  MultiTrace trace(1, 3);
  trace.add(0, {0});  // deadline 2
  trace.add(0, {0});  // deadline 2 — same; order by id
  const MultiEdfResult edf = run_multi_edf(trace);
  EXPECT_EQ(edf.fulfilled, 2);
}

}  // namespace
}  // namespace reqsched
