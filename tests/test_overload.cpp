// Tests for the overload (Theorem 3.4 proof machinery) analyzer.
#include <gtest/gtest.h>

#include "adversary/theorems.hpp"
#include "analysis/overload.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"

namespace reqsched {
namespace {

TEST(Overload, NoFailuresMeansNoOverload) {
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});
  const OverloadStats stats =
      analyze_overload(trace, {{0, SlotRef{0, 0}}});
  EXPECT_EQ(stats.failed_requests, 0);
  EXPECT_EQ(stats.overloaded_rounds, 0);
  EXPECT_TRUE(stats.groups.empty());
  EXPECT_TRUE(stats.intervals.empty());
  EXPECT_EQ(stats.normal_executions, 1);
  EXPECT_EQ(stats.overloaded_executions, 0);
}

TEST(Overload, ClosureFollowsScheduledAlternatives) {
  // Round 0, d = 1, three resources. r0 fails with alternatives (0, 1);
  // r1 is executed at resource 1 and has alternatives (1, 2): the closure
  // must pull resource 2 into the overloaded set.
  Trace trace(ProblemConfig{3, 1});
  trace.add(0, RequestSpec{0, 1, 0});  // r0, fails
  trace.add(0, RequestSpec{1, 2, 0});  // r1, executed at 1
  trace.add(0, RequestSpec{2, 0, 0});  // r2, executed at 2 -> overloaded too
  const OverloadStats stats = analyze_overload(
      trace, {{1, SlotRef{1, 0}}, {2, SlotRef{2, 0}}});
  EXPECT_EQ(stats.failed_requests, 1);
  EXPECT_EQ(stats.overloaded_rounds, 1);
  EXPECT_EQ(stats.groups.size(), 3u);  // closure reached all three
  EXPECT_EQ(stats.overloaded_executions, 2);
  EXPECT_EQ(stats.normal_executions, 0);
}

TEST(Overload, ClosureStopsAtUnrelatedResources) {
  // Same as above, but r1 executes OUTSIDE the initial set: no closure step.
  Trace trace(ProblemConfig{4, 1});
  trace.add(0, RequestSpec{0, 1, 0});  // r0 fails -> set {0, 1}
  trace.add(0, RequestSpec{2, 3, 0});  // r1 executed at 2; not in set
  const OverloadStats stats =
      analyze_overload(trace, {{1, SlotRef{2, 0}}});
  EXPECT_EQ(stats.groups.size(), 2u);
  EXPECT_EQ(stats.overloaded_executions, 0);
  EXPECT_EQ(stats.normal_executions, 1);
}

TEST(Overload, ConsecutiveGroupsMergeIntoIntervals) {
  // Failures at rounds 0 and 2 with d = 3 on the same pair: group spans
  // [0,2] and [2,4] overlap -> one interval [0,4] per resource.
  Trace trace(ProblemConfig{2, 3});
  // Saturate both resources so the extra request fails.
  for (int round = 0; round <= 2; round += 2) {
    for (int k = 0; k < 7; ++k) {
      trace.add(round, RequestSpec{0, 1, 1});  // window 1: round-only
    }
  }
  // Executions: fill both resources in rounds 0 and 2; 5 fail each wave.
  std::vector<std::pair<RequestId, SlotRef>> executions = {
      {0, SlotRef{0, 0}}, {1, SlotRef{1, 0}},
      {7, SlotRef{0, 2}}, {8, SlotRef{1, 2}}};
  const OverloadStats stats = analyze_overload(trace, executions);
  EXPECT_EQ(stats.failed_requests, 10);
  EXPECT_EQ(stats.overloaded_rounds, 2);
  EXPECT_EQ(stats.groups.size(), 4u);     // 2 rounds x 2 resources
  ASSERT_EQ(stats.intervals.size(), 2u);  // merged per resource
  for (const OverloadedInterval& interval : stats.intervals) {
    EXPECT_EQ(interval.from, 0);
    EXPECT_EQ(interval.to, 4);
    EXPECT_EQ(interval.length(), 5);
  }
}

TEST(Overload, AFixChargingBoundHoldsOnItsAdversary) {
  // Theorem 3.3's bookkeeping: at most d-1 failures per d overloaded
  // executions, i.e. failures/overloaded-execution <= (d-1)/d... the proof
  // charges more carefully, but (d-1)/1-per-execution is a hard ceiling
  // on the construction; check the measured quotient is sane and finite.
  for (const std::int32_t d : {4, 8}) {
    TheoremInstance instance = make_lb_fix(d, 6);
    auto strategy = make_strategy("A_fix");
    Simulator sim(*instance.workload, *strategy);
    sim.run();
    const OverloadStats stats =
        analyze_overload(sim.trace(), sim.online_matching());
    EXPECT_GT(stats.failed_requests, 0);
    EXPECT_GT(stats.overloaded_executions, 0);
    EXPECT_LE(stats.failures_per_overloaded_execution,
              static_cast<double>(d - 1));
    // Failures only spawn groups whose resources actually host executions.
    EXPECT_FALSE(stats.groups.empty());
    EXPECT_FALSE(stats.intervals.empty());
  }
}

TEST(Overload, EmptyTrace) {
  Trace trace(ProblemConfig{2, 2});
  const OverloadStats stats = analyze_overload(trace, {});
  EXPECT_EQ(stats.failed_requests, 0);
}

}  // namespace
}  // namespace reqsched
