// Checkpoint/restore tests: the bit-identity contract (a restored engine
// continues exactly the run the checkpoint interrupted — same Metrics, same
// state digest — across every workload family, strategy, and model axis),
// crash-resume through periodic checkpoints, and the corruption guarantee
// (a damaged file throws before the target engine is touched).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/registry.hpp"
#include "core/workload.hpp"
#include "engine/simulator.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/codec.hpp"

namespace reqsched {
namespace {

using WorkloadFactory = std::function<std::unique_ptr<IWorkload>()>;

/// One checkpointable run, reconstructible from scratch any number of times
/// (fresh workload/strategy instances with identical parameters each time —
/// the same contract `reqsched_cli --resume` rebuilds from a manifest).
struct Scenario {
  WorkloadFactory workload;
  std::string strategy = "A_balance";
  std::uint64_t strategy_seed = 1;
  EngineOptions options = streaming_options();
};

struct RunResult {
  Metrics metrics{};
  std::uint64_t digest = 0;
};

RunResult run_uninterrupted(const Scenario& s) {
  const auto workload = s.workload();
  const auto strategy = make_strategy(s.strategy, s.strategy_seed);
  Simulator sim(*workload, *strategy, s.options);
  sim.run();
  return {sim.metrics(), state_digest(sim.engine())};
}

std::vector<std::uint8_t> checkpoint_at(const Scenario& s, Round cut) {
  const auto workload = s.workload();
  const auto strategy = make_strategy(s.strategy, s.strategy_seed);
  Simulator sim(*workload, *strategy, s.options);
  while (sim.metrics().rounds < cut && sim.step()) {
  }
  CheckpointManifest manifest;
  manifest.strategy_name = s.strategy;
  manifest.strategy_seed = s.strategy_seed;
  manifest.workload_family = workload->name();
  return CheckpointManager::encode(sim.engine(), std::move(manifest));
}

RunResult resume_and_finish(const Scenario& s,
                            std::span<const std::uint8_t> bytes) {
  const auto workload = s.workload();
  const auto strategy = make_strategy(s.strategy, s.strategy_seed);
  Simulator sim(*workload, *strategy, s.options);
  CheckpointManager::restore(bytes, sim.engine());
  sim.run();
  return {sim.metrics(), state_digest(sim.engine())};
}

/// The core gate: checkpoint at `cut` rounds, restore into a fresh engine,
/// continue, and demand the exact final state of the uninterrupted run.
void expect_roundtrip(const Scenario& s, Round cut, const std::string& label) {
  const RunResult reference = run_uninterrupted(s);
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, cut);
  const RunResult resumed = resume_and_finish(s, bytes);
  EXPECT_TRUE(resumed.metrics == reference.metrics)
      << label << ": resumed metrics diverged (cut at " << cut << ")";
  EXPECT_EQ(resumed.digest, reference.digest)
      << label << ": resumed state digest diverged (cut at " << cut << ")";
}

Scenario uniform_scenario(RandomWorkloadOptions opts,
                          const std::string& strategy,
                          std::uint64_t seed = 1) {
  Scenario s;
  s.workload = [opts] { return std::make_unique<UniformWorkload>(opts); };
  s.strategy = strategy;
  s.strategy_seed = seed;
  return s;
}

// ---------------------------------------------------------------------------
// Round-trip bit-identity: lower-bound instances

// The Section 2 constructions, replayed from recorded traces (the planned
// instances themselves steer via scripted proposals, which are not
// resumable — the realized arrival sequence is, exactly like any recorded
// production trace).
TEST(CheckpointRoundTrip, LowerBoundInstances) {
  struct Case {
    TheoremInstance instance;
    const char* strategy;
  };
  std::vector<Case> cases;
  cases.push_back({make_lb_fix(4, 3), "A_fix"});
  cases.push_back({make_lb_current(3, 3), "A_current"});
  cases.push_back({make_lb_fix_balance(4, 3), "A_fix_balance"});
  cases.push_back({make_lb_eager(4, 3), "A_eager"});
  cases.push_back({make_lb_balance(2, 2, 3), "A_balance"});

  for (const Case& c : cases) {
    // Realize the arrival sequence once (any strategy; arrivals are
    // scripted, not adaptive).
    Trace trace(c.instance.workload->config());
    {
      auto strategy = make_strategy(c.strategy);
      Simulator sim(*c.instance.workload, *strategy);  // retains + records
      sim.run();
      trace = sim.trace();
    }
    Scenario s;
    s.workload = [&trace] { return std::make_unique<TraceWorkload>(trace); };
    s.strategy = c.strategy;
    const Round total = run_uninterrupted(s).metrics.rounds;
    ASSERT_GT(total, 1) << c.instance.theorem;
    expect_roundtrip(s, total / 2, "theorem " + c.instance.theorem);
  }
}

// ---------------------------------------------------------------------------
// Round-trip bit-identity: randomized sweep

// 200+ random streams over all four generator families, cutting at varying
// points, cycling every resumable strategy (deterministic globals, EDF
// baselines, the PRNG-carrying randomized strategies).
TEST(CheckpointRoundTrip, RandomTracesAcrossFamiliesAndStrategies) {
  const char* kStrategies[] = {
      "A_fix",        "A_current",           "A_fix_balance",
      "A_eager",      "A_balance",           "EDF_single",
      "EDF_two_choice", "EDF_two_choice_cancel", "A_current_randomized",
      "A_fix_randomized",
  };
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    RandomWorkloadOptions opts;
    opts.n = 2 + static_cast<std::int32_t>(seed % 4);
    opts.d = 1 + static_cast<std::int32_t>(seed % 3);
    opts.load = 0.5 + 0.1 * static_cast<double>(seed % 14);
    opts.horizon = 8 + static_cast<Round>(seed % 9);
    opts.seed = seed;
    opts.two_choice = seed % 3 != 0;

    Scenario s;
    s.strategy = kStrategies[seed % std::size(kStrategies)];
    s.strategy_seed = 1 + seed;
    // The EDF baselines pin the alternative count (single-choice vs
    // two-choice); align the generator with the strategy under test.
    // Bursty/blockstorm always emit >= 2 alternatives, so the single-choice
    // baseline sticks to the uniform/zipf families.
    auto family = seed % 4;
    if (s.strategy == std::string("EDF_single")) {
      opts.two_choice = false;
      family = seed % 2;
    } else if (s.strategy.rfind("EDF_two_choice", 0) == 0) {
      opts.two_choice = true;
    }
    s.workload = [opts, family]() -> std::unique_ptr<IWorkload> {
      switch (family) {
        case 0: return std::make_unique<UniformWorkload>(opts);
        case 1: return std::make_unique<ZipfWorkload>(opts, 1.2);
        case 2: return std::make_unique<BurstyWorkload>(opts, 0.3, 2 * opts.n);
        default:
          return std::make_unique<BlockStormWorkload>(opts, 0.5,
                                                      std::min(opts.n, 4));
      }
    };

    const Round total = run_uninterrupted(s).metrics.rounds;
    const Round cut = 1 + static_cast<Round>(seed) % std::max<Round>(total, 1);
    expect_roundtrip(s, cut, "seed " + std::to_string(seed) + " strategy " +
                                 s.strategy);
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

// The generalized model: k-ary choice, capacitated resources, multi-round
// occupancy — the capacity overlays and occupancy holds must survive the
// snapshot boundary too.
TEST(CheckpointRoundTrip, FullModelKChoiceCapacitatedOccupancy) {
  const auto names = strategies_supporting(/*k_choice=*/true,
                                           /*capacitated=*/true,
                                           /*occupancy=*/true);
  ASSERT_FALSE(names.empty());
  int cases = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    RandomWorkloadOptions opts;
    opts.n = 4 + static_cast<std::int32_t>(seed % 5);
    opts.d = 4 + static_cast<std::int32_t>(seed % 4);
    opts.load = 1.0 + 0.2 * static_cast<double>(seed % 6);
    opts.horizon = 30 + static_cast<Round>(seed % 21);
    opts.seed = 1000 + seed;
    opts.two_choice = true;
    opts.k = 2 + static_cast<std::int32_t>(seed % 3);     // up to 4-choice
    opts.b = 1 + static_cast<std::int32_t>(seed % 2);     // capacity up to 2
    opts.max_occupancy = 1 + static_cast<std::int32_t>(seed % 2);

    Scenario s = uniform_scenario(opts, names[seed % names.size()]);
    const Round total = run_uninterrupted(s).metrics.rounds;
    ASSERT_GT(total, 2);
    expect_roundtrip(s, total / 2,
                     "full-model seed " + std::to_string(seed) + " strategy " +
                         s.strategy);
    ++cases;
  }
  EXPECT_EQ(cases, 24);
}

// Live-OPT tracking on: the closure-pruned WindowedPrefixOpt (matching,
// Hall witnesses, dead marks) must restore to the same exact optimum.
TEST(CheckpointRoundTrip, WithLiveOptTracking) {
  Scenario s = uniform_scenario({.n = 6, .d = 4, .load = 1.7, .horizon = 120,
                                 .seed = 7, .two_choice = true},
                                "A_fix");
  s.options.track_live_opt = true;
  s.options.opt_prune_every = 8;
  expect_roundtrip(s, 60, "live-OPT tracking");
}

// Legacy full-history options (retain + trace recording): the recorded
// trace and retained statuses travel in the checkpoint.
TEST(CheckpointRoundTrip, WithRetainedHistoryAndTrace) {
  Scenario s = uniform_scenario({.n = 5, .d = 3, .load = 1.4, .horizon = 80,
                                 .seed = 9, .two_choice = true},
                                "A_balance");
  s.options = EngineOptions{};  // retain_history + record_trace
  expect_roundtrip(s, 40, "retain+trace");
}

// The 1M-request soak: the bench gate's workload, checkpointed mid-stream.
TEST(CheckpointRoundTrip, MillionRequestSoak) {
  Scenario s = uniform_scenario({.n = 8, .d = 3, .load = 2.0,
                                 .horizon = 70'000, .seed = 11,
                                 .two_choice = true},
                                "A_balance");
  const RunResult reference = run_uninterrupted(s);
  ASSERT_GE(reference.metrics.injected, 1'000'000);
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 35'000);
  const RunResult resumed = resume_and_finish(s, bytes);
  EXPECT_TRUE(resumed.metrics == reference.metrics);
  EXPECT_EQ(resumed.digest, reference.digest);
}

// ---------------------------------------------------------------------------
// Crash-resume fuzz

// Periodic checkpointing through EngineOptions::checkpoint_sink, a "crash"
// (abandoning the run) at a pseudo-random round, resume from the latest
// checkpoint — the continuation must still hit the uninterrupted final
// state. This is the ShardedRunner/CLI crash-recovery story end to end.
TEST(CheckpointCrashResume, ResumesFromTheLatestPeriodicCheckpoint) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomWorkloadOptions opts;
    opts.n = 4 + static_cast<std::int32_t>(seed % 4);
    opts.d = 2 + static_cast<std::int32_t>(seed % 3);
    opts.load = 1.2 + 0.1 * static_cast<double>(seed % 8);
    opts.horizon = 60 + static_cast<Round>(seed % 40);
    opts.seed = 500 + seed;
    opts.two_choice = true;

    Scenario s = uniform_scenario(
        opts, seed % 2 == 0 ? "A_balance" : "A_fix_randomized", 3 + seed);
    const RunResult reference = run_uninterrupted(s);

    // The crashing run: checkpoint every 7 rounds, die mid-stream.
    std::vector<std::uint8_t> latest;
    {
      const auto workload = s.workload();
      const auto strategy = make_strategy(s.strategy, s.strategy_seed);
      EngineOptions options = s.options;
      options.checkpoint_every = 7;
      options.checkpoint_sink = [&](const StreamingEngine& engine) {
        CheckpointManifest manifest;
        manifest.strategy_name = s.strategy;
        manifest.strategy_seed = s.strategy_seed;
        manifest.workload_family = "uniform";
        latest = CheckpointManager::encode(engine, std::move(manifest));
      };
      Simulator sim(*workload, *strategy, options);
      const Round die_at = 10 + static_cast<Round>((seed * 13) % 50);
      while (sim.metrics().rounds < die_at && sim.step()) {
      }
      // Simulator destroyed here without finishing: the crash.
    }
    ASSERT_FALSE(latest.empty()) << "no checkpoint fired before the crash";

    const RunResult resumed = resume_and_finish(s, latest);
    EXPECT_TRUE(resumed.metrics == reference.metrics) << "seed " << seed;
    EXPECT_EQ(resumed.digest, reference.digest) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Container validation and corruption

Scenario corruption_scenario() {
  return uniform_scenario({.n = 5, .d = 4, .load = 1.6, .horizon = 60,
                           .seed = 21, .two_choice = true},
                          "A_balance");
}

// Every corruption must throw ContractViolation from the decode phase,
// leaving the target engine untouched — proven by running the engine from
// scratch afterwards and matching the uninterrupted reference exactly.
void expect_rejected_and_engine_untouched(
    const Scenario& s, const std::vector<std::uint8_t>& corrupt,
    const RunResult& reference, const std::string& label) {
  const auto workload = s.workload();
  const auto strategy = make_strategy(s.strategy, s.strategy_seed);
  Simulator sim(*workload, *strategy, s.options);
  EXPECT_THROW(CheckpointManager::restore(corrupt, sim.engine()),
               ContractViolation)
      << label;
  sim.run();
  EXPECT_TRUE(sim.metrics() == reference.metrics)
      << label << ": failed restore left state behind";
  EXPECT_EQ(state_digest(sim.engine()), reference.digest) << label;
}

TEST(CheckpointCorruption, TruncationsAreRejected) {
  const Scenario s = corruption_scenario();
  const RunResult reference = run_uninterrupted(s);
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 30);
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, std::size_t{19},
        bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(
                                                      size));
    expect_rejected_and_engine_untouched(
        s, cut, reference, "truncated to " + std::to_string(size));
  }
}

TEST(CheckpointCorruption, EverySingleBitFlipIsRejected) {
  const Scenario s = corruption_scenario();
  const RunResult reference = run_uninterrupted(s);
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 30);
  // The trailing FNV digest covers magic, version, and payload; flips in
  // the digest itself mismatch the recomputation. Sample densely.
  for (std::size_t i = 0; i < bytes.size(); i += 11) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[i] ^= 0x10;
    expect_rejected_and_engine_untouched(
        s, flipped, reference, "bit flip at offset " + std::to_string(i));
  }
}

TEST(CheckpointCorruption, WrongMagicAndVersionAreRejected) {
  const Scenario s = corruption_scenario();
  const RunResult reference = run_uninterrupted(s);
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 30);

  std::vector<std::uint8_t> wrong_magic = bytes;
  wrong_magic[0] = 'X';
  expect_rejected_and_engine_untouched(s, wrong_magic, reference,
                                       "wrong magic");

  // A future format version with a *valid* checksum must still be refused:
  // bump the version field and re-stamp the trailing digest.
  std::vector<std::uint8_t> wrong_version = bytes;
  wrong_version[8] = static_cast<std::uint8_t>(
      CheckpointManager::kFormatVersion + 1);
  const std::uint64_t checksum = fnv1a(
      std::span<const std::uint8_t>(wrong_version)
          .first(wrong_version.size() - 8));
  for (int i = 0; i < 8; ++i) {
    wrong_version[wrong_version.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(checksum >> (8 * i));
  }
  expect_rejected_and_engine_untouched(s, wrong_version, reference,
                                       "future version");
}

TEST(CheckpointCorruption, RestoreRefusesMismatchedEngineOptions) {
  const Scenario s = corruption_scenario();
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 30);
  Scenario tracked = s;
  tracked.options.track_live_opt = true;
  const auto workload = tracked.workload();
  const auto strategy = make_strategy(tracked.strategy, tracked.strategy_seed);
  Simulator sim(*workload, *strategy, tracked.options);
  EXPECT_THROW(CheckpointManager::restore(bytes, sim.engine()),
               ContractViolation);
}

TEST(CheckpointCorruption, RestoreRefusesAnEngineThatAlreadyRan) {
  const Scenario s = corruption_scenario();
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 30);
  const auto workload = s.workload();
  const auto strategy = make_strategy(s.strategy, s.strategy_seed);
  Simulator sim(*workload, *strategy, s.options);
  sim.step();
  EXPECT_THROW(CheckpointManager::restore(bytes, sim.engine()),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Encode preconditions, manifest, files

TEST(Checkpoint, EncodeRejectsNonResumableStrategies) {
  // The local strategies carry router state with no export hook (yet).
  UniformWorkload workload({.n = 4, .d = 4, .load = 1.2, .horizon = 40,
                            .seed = 3, .two_choice = true});
  auto strategy = make_strategy("A_local_fix");
  ASSERT_FALSE(strategy->resumable());
  Simulator sim(workload, *strategy, streaming_options());
  while (sim.metrics().rounds < 10 && sim.step()) {
  }
  CheckpointManifest manifest;
  manifest.strategy_name = "A_local_fix";
  EXPECT_THROW(CheckpointManager::encode(sim.engine(), std::move(manifest)),
               ContractViolation);
}

TEST(Checkpoint, PeekManifestReportsTheRunWithoutAnEngine) {
  Scenario s = corruption_scenario();
  s.strategy_seed = 17;
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 25);
  const CheckpointManifest m = CheckpointManager::peek_manifest(bytes);
  EXPECT_EQ(m.strategy_name, "A_balance");
  EXPECT_EQ(m.strategy_seed, 17u);
  // The helper stamps the workload's self-reported name (the CLI uses the
  // bare family string instead); either way the family is identifiable.
  EXPECT_EQ(m.workload_family.rfind("uniform", 0), 0u);
  EXPECT_EQ(m.round, 25);
  EXPECT_EQ(m.config.n, 5);
  EXPECT_EQ(m.config.d, 4);
  EXPECT_FALSE(m.retain_history);
  EXPECT_FALSE(m.git_describe.empty());
  EXPECT_NE(m.to_json().find("\"strategy\":\"A_balance\""), std::string::npos);
}

TEST(Checkpoint, SaveFileIsAtomicAndRoundTrips) {
  const Scenario s = corruption_scenario();
  const std::vector<std::uint8_t> bytes = checkpoint_at(s, 20);
  const std::string path = testing::TempDir() + "reqsched_ckpt_test.ckpt";
  CheckpointManager::save_file(path, bytes);
  // The temp file was renamed away, never left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  EXPECT_EQ(CheckpointManager::load_file(path), bytes);
  std::remove(path.c_str());

  EXPECT_THROW(CheckpointManager::save_file(
                   testing::TempDir() + "no-such-dir/x.ckpt", bytes),
               ContractViolation);
  EXPECT_THROW(CheckpointManager::load_file(testing::TempDir() +
                                            "reqsched_missing.ckpt"),
               ContractViolation);
}

TEST(Checkpoint, StateDigestTracksTheRun) {
  const Scenario s = corruption_scenario();
  const auto workload = s.workload();
  const auto strategy = make_strategy(s.strategy, s.strategy_seed);
  Simulator sim(*workload, *strategy, s.options);
  const std::uint64_t d0 = state_digest(sim.engine());
  sim.step();
  const std::uint64_t d1 = state_digest(sim.engine());
  sim.step();
  const std::uint64_t d2 = state_digest(sim.engine());
  EXPECT_NE(d0, d1);
  EXPECT_NE(d1, d2);
}

}  // namespace
}  // namespace reqsched
