// SlotGraph unit tests plus the CSR-vs-legacy differential suite.
//
// The differential half freezes the pre-refactor pipeline — vector-of-vectors
// adjacency, recursive Hopcroft–Karp, the original alternating-component
// walk — inside this file and asserts the production CSR stack reproduces it
// bit for bit: identical matching vectors, identical prefix-optimum series,
// identical augmenting-path order histograms. Any change to edge enumeration
// order or augmenting traversal order shows up here first.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/augmenting.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "matching/incremental.hpp"
#include "matching/slot_graph.hpp"
#include "offline/offline.hpp"

namespace reqsched {
namespace {

// ---------------------------------------------------------------------------
// Frozen legacy reference (pre-CSR pipeline, do not "modernize").
// ---------------------------------------------------------------------------

struct LegacyGraph {
  std::int32_t left_count = 0;
  std::int32_t right_count = 0;
  std::vector<std::vector<std::int32_t>> adj;
};

LegacyGraph legacy_build(const Trace& trace) {
  LegacyGraph g;
  const std::int32_t n = trace.config().n;
  const Round horizon = trace.empty() ? 0 : trace.last_useful_round();
  g.left_count = static_cast<std::int32_t>(trace.size());
  g.right_count = static_cast<std::int32_t>((horizon + 1) * n);
  g.adj.resize(static_cast<std::size_t>(g.left_count));
  for (const Request& r : trace.requests()) {
    auto& nbrs = g.adj[static_cast<std::size_t>(r.id)];
    for (Round t = r.arrival; t <= r.deadline; ++t) {
      for (const ResourceId res : r.alts) {
        nbrs.push_back(static_cast<std::int32_t>(t * n + res));
      }
    }
  }
  return g;
}

struct LegacyMatching {
  std::vector<std::int32_t> left_to_right;
  std::vector<std::int64_t> right_to_left;

  std::int64_t size() const {
    return std::count_if(left_to_right.begin(), left_to_right.end(),
                         [](std::int32_t r) { return r >= 0; });
  }
};

/// The original recursive Hopcroft–Karp, verbatim modulo container types.
LegacyMatching legacy_hopcroft_karp(const LegacyGraph& g) {
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();
  LegacyMatching m;
  m.left_to_right.assign(static_cast<std::size_t>(g.left_count), -1);
  m.right_to_left.assign(static_cast<std::size_t>(g.right_count), -1);
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.left_count));

  const auto bfs = [&]() -> bool {
    std::queue<std::int32_t> queue;
    for (std::int32_t l = 0; l < g.left_count; ++l) {
      if (m.left_to_right[static_cast<std::size_t>(l)] < 0) {
        dist[static_cast<std::size_t>(l)] = 0;
        queue.push(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const std::int32_t l = queue.front();
      queue.pop();
      for (const std::int32_t r : g.adj[static_cast<std::size_t>(l)]) {
        const auto owner =
            static_cast<std::int32_t>(m.right_to_left[static_cast<std::size_t>(r)]);
        if (owner < 0) {
          found_free_right = true;
        } else if (dist[static_cast<std::size_t>(owner)] == kInf) {
          dist[static_cast<std::size_t>(owner)] =
              dist[static_cast<std::size_t>(l)] + 1;
          queue.push(owner);
        }
      }
    }
    return found_free_right;
  };

  const std::function<bool(std::int32_t)> dfs = [&](std::int32_t l) -> bool {
    for (const std::int32_t r : g.adj[static_cast<std::size_t>(l)]) {
      const auto owner =
          static_cast<std::int32_t>(m.right_to_left[static_cast<std::size_t>(r)]);
      if (owner < 0 || (dist[static_cast<std::size_t>(owner)] ==
                            dist[static_cast<std::size_t>(l)] + 1 &&
                        dfs(owner))) {
        m.left_to_right[static_cast<std::size_t>(l)] = r;
        m.right_to_left[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  };

  while (bfs()) {
    for (std::int32_t l = 0; l < g.left_count; ++l) {
      if (m.left_to_right[static_cast<std::size_t>(l)] < 0) dfs(l);
    }
  }
  return m;
}

std::int64_t legacy_optimum(const Trace& trace) {
  if (trace.empty()) return 0;
  return legacy_hopcroft_karp(legacy_build(trace)).size();
}

/// The original alternating-component walk over M_online (+) M_OPT.
PathStats legacy_analyze(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online) {
  PathStats stats;
  stats.order_histogram.assign(2, 0);
  if (trace.empty()) return stats;

  const std::int32_t n = trace.config().n;
  const LegacyGraph g = legacy_build(trace);
  const LegacyMatching opt = legacy_hopcroft_karp(g);

  std::vector<std::int32_t> online_left(
      static_cast<std::size_t>(trace.size()), -1);
  std::vector<std::int64_t> online_right(
      static_cast<std::size_t>(g.right_count), -1);
  for (const auto& [id, slot] : online) {
    const auto s = static_cast<std::int32_t>(slot.round * n + slot.resource);
    online_left[static_cast<std::size_t>(id)] = s;
    online_right[static_cast<std::size_t>(s)] = id;
  }

  stats.deficiency = opt.size() - static_cast<std::int64_t>(online.size());
  for (RequestId start = 0; start < trace.size(); ++start) {
    if (online_left[static_cast<std::size_t>(start)] >= 0) continue;
    if (opt.left_to_right[static_cast<std::size_t>(start)] < 0) continue;
    std::int64_t order = 0;
    RequestId request = start;
    for (;;) {
      ++order;
      const std::int32_t slot =
          opt.left_to_right[static_cast<std::size_t>(request)];
      const std::int64_t owner = online_right[static_cast<std::size_t>(slot)];
      if (owner < 0) {
        ++stats.augmenting_paths;
        if (static_cast<std::size_t>(order) >= stats.order_histogram.size()) {
          stats.order_histogram.resize(static_cast<std::size_t>(order) + 1, 0);
        }
        ++stats.order_histogram[static_cast<std::size_t>(order)];
        stats.min_order =
            stats.min_order == 0 ? order : std::min(stats.min_order, order);
        break;
      }
      if (opt.left_to_right[static_cast<std::size_t>(owner)] < 0) break;
      request = static_cast<RequestId>(owner);
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// SlotGraph unit tests.
// ---------------------------------------------------------------------------

Trace small_trace() {
  Trace trace(ProblemConfig{3, 2});
  trace.add(0, RequestSpec{0, 1, 2});
  trace.add(0, RequestSpec{2, kNoResource, 1});
  trace.add(1, RequestSpec{1, 2, 2});
  trace.add(3, RequestSpec{0, kNoResource, 2});
  return trace;
}

TEST(SlotGraph, SlotIndexRoundTrip) {
  const SlotGraph sg(small_trace());
  ASSERT_TRUE(sg.built());
  EXPECT_EQ(sg.n(), 3);
  EXPECT_EQ(sg.horizon(), 4);  // last request: arrival 3, window 2
  EXPECT_EQ(sg.slot_count(), (4 + 1) * 3);
  for (std::int32_t s = 0; s < sg.slot_count(); ++s) {
    const SlotRef slot = sg.slot_at(s);
    EXPECT_GE(slot.resource, 0);
    EXPECT_LT(slot.resource, sg.n());
    EXPECT_GE(slot.round, 0);
    EXPECT_LE(slot.round, sg.horizon());
    EXPECT_EQ(sg.slot_index(slot), s);
  }
}

TEST(SlotGraph, NeighborsFollowCanonicalEnumeration) {
  const Trace trace = small_trace();
  const SlotGraph sg(trace);
  ASSERT_EQ(sg.request_count(), trace.size());
  std::vector<std::int32_t> expected;
  for (const Request& r : trace.requests()) {
    expected.clear();
    SlotGraph::append_slot_edges(r, trace.config(), expected);
    const auto got = sg.graph().neighbors(static_cast<std::int32_t>(r.id));
    ASSERT_EQ(std::vector<std::int32_t>(got.begin(), got.end()), expected)
        << "request " << r.id;
  }
}

TEST(SlotGraph, RebuildReplacesContents) {
  SlotGraph sg;
  EXPECT_FALSE(sg.built());
  sg.rebuild(small_trace());
  EXPECT_EQ(sg.request_count(), 4);

  Trace tiny(ProblemConfig{2, 1});
  tiny.add(0, RequestSpec{1, kNoResource, 1});
  sg.rebuild(tiny);
  EXPECT_EQ(sg.request_count(), 1);
  EXPECT_EQ(sg.n(), 2);
  EXPECT_EQ(sg.horizon(), 0);
  EXPECT_EQ(sg.slot_count(), 2);
  const auto nbrs = sg.graph().neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], 1);

  // Empty trace: zero requests, one round worth of slots.
  sg.rebuild(Trace(ProblemConfig{3, 2}));
  EXPECT_EQ(sg.request_count(), 0);
  EXPECT_EQ(sg.slot_count(), 3);
}

TEST(SlotGraph, MatchesLegacyAdjacencyExactly) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.5, .horizon = 30,
                            .seed = 17, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  const Trace& trace = sim.trace();

  const SlotGraph sg(trace);
  const LegacyGraph legacy = legacy_build(trace);
  ASSERT_EQ(sg.request_count(), legacy.left_count);
  ASSERT_EQ(sg.slot_count(), legacy.right_count);
  for (std::int32_t l = 0; l < legacy.left_count; ++l) {
    const auto got = sg.graph().neighbors(l);
    ASSERT_EQ(std::vector<std::int32_t>(got.begin(), got.end()),
              legacy.adj[static_cast<std::size_t>(l)])
        << "request " << l;
  }
}

// ---------------------------------------------------------------------------
// Differential suite: CSR pipeline vs the frozen legacy pipeline.
// ---------------------------------------------------------------------------

/// Asserts the full production stack agrees with the legacy one on `trace`
/// with the given online outcome: bit-identical optimum matching, the exact
/// per-arrival prefix-optimum series, and the exact path-order histogram.
void expect_differential_identity(
    const Trace& trace,
    const std::vector<std::pair<RequestId, SlotRef>>& online) {
  // 1. solve_offline: same optimum AND the same matching, vector for vector.
  SolverScratch scratch;
  const OfflineResult result = solve_offline(trace, scratch);
  const std::int64_t legacy_opt = legacy_optimum(trace);
  ASSERT_EQ(result.optimum, legacy_opt);
  ASSERT_EQ(result.certificate, legacy_opt);
  if (!trace.empty()) {
    const LegacyMatching legacy_m = legacy_hopcroft_karp(legacy_build(trace));
    ASSERT_EQ(scratch.matching.left_to_right, legacy_m.left_to_right);
    for (RequestId id = 0; id < trace.size(); ++id) {
      const std::int32_t r = legacy_m.left_to_right[static_cast<std::size_t>(id)];
      if (r < 0) {
        EXPECT_EQ(result.assignment[static_cast<std::size_t>(id)], kNoSlot);
      } else {
        EXPECT_EQ(result.assignment[static_cast<std::size_t>(id)],
                  scratch.slots.slot_at(r));
      }
    }
  }

  // 2. PrefixOptimumTracker: the per-arrival series equals a from-scratch
  // legacy solve of every prefix.
  PrefixOptimumTracker tracker(trace.config());
  Trace prefix(trace.config());
  for (const Request& r : trace.requests()) {
    prefix.add(r.arrival,
               RequestSpec{r.first(), r.second(),
                           static_cast<std::int32_t>(r.deadline - r.arrival + 1)});
    tracker.add_request(r);
    ASSERT_EQ(tracker.optimum(), legacy_optimum(prefix))
        << "prefix series diverges after " << r;
  }

  // 3. analyze_augmenting_paths: identical PathStats, histogram included.
  const PathStats got = analyze_augmenting_paths(trace, online);
  const PathStats want = legacy_analyze(trace, online);
  EXPECT_EQ(got.order_histogram, want.order_histogram);
  EXPECT_EQ(got.augmenting_paths, want.augmenting_paths);
  EXPECT_EQ(got.min_order, want.min_order);
  EXPECT_EQ(got.deficiency, want.deficiency);
}

void run_and_check(IWorkload& workload, const std::string& strategy_name) {
  auto strategy = make_strategy(strategy_name);
  Simulator sim(workload, *strategy);
  sim.run();
  expect_differential_identity(sim.trace(), sim.online_matching());
}

TEST(CsrDifferential, AllFiveLowerBoundInstances) {
  const auto check = [](TheoremInstance instance,
                        const std::string& strategy_name) {
    SCOPED_TRACE("theorem " + instance.theorem);
    run_and_check(*instance.workload, strategy_name);
  };
  check(make_lb_fix(4, 3), "A_fix");
  check(make_lb_current(3, 3), "A_current");
  check(make_lb_fix_balance(4, 3), "A_fix_balance");
  check(make_lb_eager(4, 3), "A_eager");
  check(make_lb_balance(2, 2, 3), "A_balance");
}

TEST(CsrDifferential, TwoHundredRandomTraces) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RandomWorkloadOptions options{
        .n = static_cast<std::int32_t>(2 + seed % 4),
        .d = static_cast<std::int32_t>(1 + seed % 3),
        .load = 0.5 + 0.1 * static_cast<double>(seed % 14),
        .horizon = static_cast<Round>(8 + seed % 9),
        .seed = seed,
        .two_choice = seed % 3 != 0};
    UniformWorkload workload(options);
    run_and_check(workload, "A_fix");
  }
}

}  // namespace
}  // namespace reqsched
