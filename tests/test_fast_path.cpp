// Differential + fuzz suite for the engine's admission fast path (PR 6).
//
// The batched round loop books trivially-free arrivals without touching the
// Kuhn matcher whenever every probe of the batch is uncontended (the live
// view net of the batch's claims agrees with the pre-batch view — see
// docs/streaming.md for why that makes greedy booking Kuhn-identical).
// This file pins three things:
//
//  * bit-identity — fast-path-on runs are identical (metrics, online
//    matching, prefix-optimum series) to matcher-only runs on the five
//    lower-bound instances, 200 random traces, and deep d > 64 windows
//    where the word-sweep scans replace the rotate+ctz masks;
//  * the handoff — workloads with intra-batch contention exercise both
//    kAdmitted and kContended rounds, and the counters prove it;
//  * the probe itself — admission_probe / claim_admission_slot fuzzed
//    standalone against a naive grid model, plus contract rejections.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/prefix.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "matching/delta_window.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

// ===========================================================================
// Differential harness: fast-path-on vs matcher-only on fresh instances of
// the same workload, captured through the prefix probe.

struct RunCapture {
  Metrics metrics;
  std::vector<std::pair<RequestId, SlotRef>> matching;
  std::vector<RoundSample> series;
  std::int64_t fast_admitted = 0;
  std::int64_t fast_rounds = 0;
  std::int64_t fast_fallbacks = 0;
};

RunCapture run_captured(IWorkload& workload, IStrategy& strategy,
                        bool fast_path) {
  PrefixOptimumProbe probe(strategy);
  EngineOptions options;
  options.admission_fast_path = fast_path;
  Simulator sim(workload, probe, std::move(options));
  RunCapture out;
  out.metrics = sim.run();
  out.matching = sim.online_matching();
  std::sort(out.matching.begin(), out.matching.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.series = probe.take_samples();
  out.fast_admitted = sim.engine().fast_path_admitted();
  out.fast_rounds = sim.engine().fast_path_rounds();
  out.fast_fallbacks = sim.engine().fast_path_fallbacks();
  return out;
}

void expect_identical(const RunCapture& fast, const RunCapture& matcher,
                      const std::string& label) {
  EXPECT_TRUE(fast.metrics == matcher.metrics)
      << label << ": metrics diverged — fast-path " << fast.metrics
      << " vs matcher-only " << matcher.metrics;
  ASSERT_EQ(fast.matching.size(), matcher.matching.size()) << label;
  for (std::size_t i = 0; i < matcher.matching.size(); ++i) {
    EXPECT_EQ(fast.matching[i].first, matcher.matching[i].first) << label;
    EXPECT_EQ(fast.matching[i].second, matcher.matching[i].second)
        << label << ": r" << matcher.matching[i].first
        << " executed in a different slot";
  }
  ASSERT_EQ(fast.series.size(), matcher.series.size()) << label;
  for (std::size_t i = 0; i < matcher.series.size(); ++i) {
    const RoundSample& a = fast.series[i];
    const RoundSample& b = matcher.series[i];
    EXPECT_EQ(a.injected, b.injected) << label << " round " << b.round;
    EXPECT_EQ(a.executed, b.executed) << label << " round " << b.round;
    EXPECT_EQ(a.pending, b.pending) << label << " round " << b.round;
    EXPECT_EQ(a.booked, b.booked) << label << " round " << b.round;
    EXPECT_EQ(a.idle, b.idle) << label << " round " << b.round;
    EXPECT_EQ(a.tightest_slack, b.tightest_slack) << label;
    EXPECT_EQ(a.prefix_opt, b.prefix_opt) << label << " round " << b.round;
    EXPECT_EQ(a.prefix_fulfilled, b.prefix_fulfilled)
        << label << " round " << b.round;
  }
  // The matcher-only side must never have touched the fast-path counters.
  EXPECT_EQ(matcher.fast_admitted, 0) << label;
  EXPECT_EQ(matcher.fast_rounds, 0) << label;
  EXPECT_EQ(matcher.fast_fallbacks, 0) << label;
}

template <typename MakeWorkload>
RunCapture expect_fast_path_matches(const std::string& name,
                                    const MakeWorkload& make_workload) {
  auto fast_workload = make_workload();
  auto matcher_workload = make_workload();
  const auto fast_strategy = make_strategy(name);
  const auto matcher_strategy = make_strategy(name);
  const RunCapture fast =
      run_captured(*fast_workload, *fast_strategy, /*fast_path=*/true);
  const RunCapture matcher =
      run_captured(*matcher_workload, *matcher_strategy, /*fast_path=*/false);
  expect_identical(fast, matcher, name);
  return fast;
}

TEST(FastPathDifferential, LowerBoundInstancesAreBitIdentical) {
  // The adversarially tie-broken theorem traces: any drift in the admission
  // order or slot choice surfaces immediately. A_fix, A_current, and
  // A_fix_balance opt into the fast path (the latter two behind their
  // probe-clamp / empty-backlog refinements); A_eager and A_balance pin
  // that the flag stays inert for strategies that never opted in.
  const std::vector<std::pair<std::string,
                              std::function<TheoremInstance()>>> cases = {
      {"A_fix", [] { return make_lb_fix(4, 3); }},
      {"A_current", [] { return make_lb_current(3, 3); }},
      {"A_fix_balance", [] { return make_lb_fix_balance(4, 3); }},
      {"A_eager", [] { return make_lb_eager(4, 3); }},
      {"A_balance", [] { return make_lb_balance(2, 2, 3); }},
  };
  for (const auto& [name, make] : cases) {
    expect_fast_path_matches(name, [&make] {
      return std::move(make().workload);
    });
  }
}

TEST(FastPathDifferential, ACurrentAndAFixBalanceEngageBitIdentically) {
  // Satellite of the k-choice refactor: A_current (current-round probe
  // clamp + empty-backlog refinement) and A_fix_balance (empty-backlog
  // refinement) now opt in. Random streams across light and saturated
  // loads must stay bit-identical to matcher-only runs, AND the fast path
  // must actually engage — a vacuous pass with zero fast rounds would mean
  // the refinement checks punt everything.
  for (const std::string name : {"A_current", "A_fix_balance"}) {
    std::int64_t engaged_total = 0;
    std::int64_t fallback_total = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      const RandomWorkloadOptions options{
          .n = static_cast<std::int32_t>(2 + seed % 5),
          .d = static_cast<std::int32_t>(1 + seed % 4),
          .load = 0.3 + 0.1 * static_cast<double>(seed % 12),
          .horizon = static_cast<Round>(10 + seed % 11),
          .seed = 3000 + seed,
          .two_choice = seed % 4 != 0};
      const RunCapture fast = expect_fast_path_matches(name, [&options] {
        return std::make_unique<UniformWorkload>(options);
      });
      engaged_total += fast.fast_rounds;
      fallback_total += fast.fast_fallbacks;
      if (::testing::Test::HasFailure()) {
        FAIL() << name << ": first divergence on seed " << seed;
      }
    }
    EXPECT_GT(engaged_total, 0)
        << name << " never engaged the fast path across the sweep";
    EXPECT_GT(fallback_total, 0)
        << name << " never punted — the refinements are not being exercised";
  }
}

TEST(FastPathDifferential, TwoHundredRandomTracesAreBitIdentical) {
  std::int64_t admitted_total = 0;
  std::int64_t fallback_total = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const RandomWorkloadOptions options{
        .n = static_cast<std::int32_t>(2 + seed % 4),
        .d = static_cast<std::int32_t>(1 + seed % 3),
        .load = 0.5 + 0.1 * static_cast<double>(seed % 14),
        .horizon = static_cast<Round>(8 + seed % 9),
        .seed = seed,
        .two_choice = seed % 3 != 0};
    const RunCapture fast = expect_fast_path_matches("A_fix", [&options] {
      return std::make_unique<UniformWorkload>(options);
    });
    admitted_total += fast.fast_rounds;
    fallback_total += fast.fast_fallbacks;
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence on seed " << seed;
    }
  }
  // The sweep must exercise both sides of the handoff, not vacuously pass
  // with the fast path never (or always) engaging.
  EXPECT_GT(admitted_total, 0);
  EXPECT_GT(fallback_total, 0);
}

TEST(FastPathDifferential, DeepWindowsUseTheWordSweepsBitIdentically) {
  // d > 64 disables the rotate+ctz round masks: admission probes go through
  // scan_first_allowed_wide's two-segment word sweep, claims and all.
  std::int64_t admitted_total = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const RandomWorkloadOptions options{
        .n = static_cast<std::int32_t>(2 + seed % 4),
        .d = static_cast<std::int32_t>(65 + (seed * 7) % 64),
        .load = 0.4 + 0.1 * static_cast<double>(seed % 8),
        .horizon = static_cast<Round>(40 + seed % 17),
        .seed = 1000 + seed,
        .two_choice = seed % 3 != 0};
    const RunCapture fast = expect_fast_path_matches("A_fix", [&options] {
      return std::make_unique<UniformWorkload>(options);
    });
    admitted_total += fast.fast_rounds;
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence on seed " << seed << " (d=" << options.d
             << ")";
    }
  }
  EXPECT_GT(admitted_total, 0);
}

TEST(FastPathHandoff, ContendedStreamsExerciseBothOutcomes) {
  // n = 8 at load 0.6: batches of ~5 arrivals collide on a shared first
  // choice about two rounds in three (Kuhn would augment where greedy
  // cannot), so a single run must show both admitted and punted rounds —
  // and still be bit-identical to the matcher-only run.
  const RandomWorkloadOptions options{.n = 8, .d = 3, .load = 0.6,
                                      .horizon = 600, .seed = 11,
                                      .two_choice = true};
  const RunCapture fast = expect_fast_path_matches("A_fix", [&options] {
    return std::make_unique<UniformWorkload>(options);
  });
  EXPECT_GT(fast.fast_rounds, 0) << "no round was fully admitted";
  EXPECT_GT(fast.fast_fallbacks, 0) << "no round fell back to the matcher";
  EXPECT_GT(fast.fast_admitted, 0);
}

TEST(FastPathEngine, StrategiesWithoutWindowCannotOptIn) {
  // The engine refuses a strategy that asks for the fast path without the
  // window problem the probes live on.
  class BrokenStrategy final : public IStrategy {
   public:
    std::string name() const override { return "broken"; }
    void on_round(Simulator&) override {}
    bool wants_window_problem() const override { return false; }
    bool wants_admission_fast_path() const override { return true; }
  };
  UniformWorkload workload({.n = 2, .d = 2, .load = 1.0, .horizon = 4,
                            .seed = 1, .two_choice = true});
  BrokenStrategy strategy;
  EXPECT_THROW(Simulator(workload, strategy), ContractViolation);
}

// ===========================================================================
// Standalone probe fuzz: admission_probe / claim_admission_slot against a
// naive grid model, across rotations, multi-word masks, and d > 64.

struct Model {
  std::map<RequestId, Request> rows;
  std::map<RequestId, SlotRef> booked;
  std::map<std::pair<Round, ResourceId>, RequestId> occupant;
  std::vector<SlotRef> claims;

  bool is_free(SlotRef s) const {
    return occupant.count({s.round, s.resource}) == 0;
  }
  bool is_claimed(SlotRef s) const {
    return std::find(claims.begin(), claims.end(), s) != claims.end();
  }
};

/// The probe's slot order, naively: rounds ascending clamped to the window,
/// first preferred over second at the same round, free slots only —
/// optionally skipping the batch's claims (the live view).
SlotRef naive_first_free(const Model& model, const Request& r, Round t,
                         std::int32_t d, bool exclude_claims) {
  const Round lo = std::max(r.arrival, t);
  const Round hi = std::min(r.deadline, t + d - 1);
  for (Round round = lo; round <= hi; ++round) {
    for (const ResourceId res : r.alts) {
      const SlotRef slot{res, round};
      if (!model.is_free(slot)) continue;
      if (exclude_claims && model.is_claimed(slot)) continue;
      return slot;
    }
  }
  return kNoSlot;
}

void probe_fuzz_trial(std::int32_t n, std::int32_t d, std::uint64_t seed,
                      int steps) {
  const ProblemConfig config{n, d};
  Prng rng(seed);
  DeltaWindowProblem p;
  p.reset(config);
  Model model;
  Round t = 0;
  RequestId next_id = 0;

  const auto do_advance = [&] {
    for (auto it = model.booked.begin(); it != model.booked.end();) {
      if (it->second.round == t) {
        const RequestId id = it->first;
        p.unbook(id);
        model.occupant.erase({t, it->second.resource});
        it = model.booked.erase(it);
        p.retire(id);
        model.rows.erase(id);
      } else {
        ++it;
      }
    }
    for (auto it = model.rows.begin(); it != model.rows.end();) {
      if (it->second.deadline <= t && model.booked.count(it->first) == 0) {
        p.retire(it->first);
        it = model.rows.erase(it);
      } else {
        ++it;
      }
    }
    p.advance();
    ++t;
  };

  for (int step = 0; step < steps; ++step) {
    const auto roll = rng.next_below(100);
    if (roll < 30) {  // arrival
      Request r;
      r.id = next_id++;
      r.arrival = t;
      r.deadline = t + static_cast<Round>(rng.next_below(
                           static_cast<std::uint64_t>(d)));
      const auto first = static_cast<ResourceId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      ResourceId second = kNoResource;
      if (n > 1 && rng.next_below(5) != 0) {
        second = static_cast<ResourceId>(rng.next_below(
            static_cast<std::uint64_t>(n - 1)));
        if (second >= first) ++second;
      }
      r.alts = AltList(first, second);
      p.add_request(r);
      model.rows.emplace(r.id, r);
    } else if (roll < 55) {  // book: congest the window the probes scan
      std::vector<RequestId> unbooked;
      for (const auto& [id, r] : model.rows) {
        if (model.booked.count(id) == 0) unbooked.push_back(id);
      }
      if (unbooked.empty()) continue;
      const RequestId id = unbooked[rng.next_below(unbooked.size())];
      const Request& r = model.rows.at(id);
      const SlotRef slot = naive_first_free(model, r, t, d,
                                            /*exclude_claims=*/false);
      if (!slot.valid()) continue;
      p.book(id, slot);
      model.booked[id] = slot;
      model.occupant[{slot.round, slot.resource}] = id;
    } else if (roll < 65) {  // round boundary: rotate the ring masks
      do_advance();
    } else {  // admission batch: probe every row, claim like the engine does
      p.begin_admission_batch();
      model.claims.clear();
      for (const auto& [id, r] : model.rows) {
        if (model.booked.count(id) != 0) continue;
        const auto probe = p.admission_probe(r);
        const SlotRef live = naive_first_free(model, r, t, d,
                                              /*exclude_claims=*/true);
        const SlotRef pre = naive_first_free(model, r, t, d,
                                             /*exclude_claims=*/false);
        ASSERT_EQ(probe.slot, live)
            << "r" << id << " live probe (n=" << n << ", d=" << d
            << ", seed=" << seed << ", step=" << step << ")";
        ASSERT_EQ(probe.contended, live != pre)
            << "r" << id << " contention verdict (n=" << n << ", d=" << d
            << ", seed=" << seed << ", step=" << step << ")";
        if (probe.contended) break;  // the engine punts the whole batch
        if (!probe.slot.valid()) continue;
        p.claim_admission_slot(probe.slot);
        model.claims.push_back(probe.slot);
      }
      p.end_admission_batch();
      model.claims.clear();
      // Claims must evaporate without a trace: the very next probe of a
      // fresh batch sees live == pre for every row.
      p.begin_admission_batch();
      for (const auto& [id, r] : model.rows) {
        if (model.booked.count(id) != 0) continue;
        const auto probe = p.admission_probe(r);
        EXPECT_FALSE(probe.contended)
            << "stale claim for r" << id << " (seed=" << seed << ")";
        EXPECT_EQ(probe.slot,
                  naive_first_free(model, r, t, d, /*exclude_claims=*/false));
      }
      p.end_admission_batch();
      p.audit_check();
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence at step " << step << " (n=" << n << ", d=" << d
             << ", seed=" << seed << ")";
    }
  }
}

TEST(AdmissionProbeFuzz, AgreesWithNaiveModel) {
  probe_fuzz_trial(/*n=*/3, /*d=*/3, /*seed=*/11, /*steps=*/400);
  probe_fuzz_trial(/*n=*/2, /*d=*/2, /*seed=*/22, /*steps=*/400);
  probe_fuzz_trial(/*n=*/5, /*d=*/4, /*seed=*/33, /*steps=*/400);
  probe_fuzz_trial(/*n=*/8, /*d=*/64, /*seed=*/44, /*steps=*/300);
}

TEST(AdmissionProbeFuzz, WideWindowsCrossTheWordBoundary) {
  // d > 64 routes every probe through the two-segment word sweep; n = 70
  // additionally crosses the per-column mask word boundary.
  probe_fuzz_trial(/*n=*/4, /*d=*/70, /*seed=*/55, /*steps=*/260);
  probe_fuzz_trial(/*n=*/3, /*d=*/130, /*seed=*/66, /*steps=*/260);
  probe_fuzz_trial(/*n=*/70, /*d=*/2, /*seed=*/77, /*steps=*/200);
}

TEST(AdmissionBatchContracts, RejectsOutOfContractCalls) {
  const ProblemConfig config{2, 2};
  DeltaWindowProblem p;
  p.reset(config);
  p.add_request(Request{0, 0, 1, 0, 1});

  // Probes and claims are batch-only; batches cannot nest or double-close.
  EXPECT_THROW(p.admission_probe(Request{0, 0, 1, 0, 1}), ContractViolation);
  EXPECT_THROW(p.claim_admission_slot(SlotRef{0, 0}), ContractViolation);
  EXPECT_THROW(p.end_admission_batch(), ContractViolation);
  p.begin_admission_batch();
  EXPECT_THROW(p.begin_admission_batch(), ContractViolation);

  // Claims must target free slots, once.
  p.claim_admission_slot(SlotRef{0, 0});
  EXPECT_THROW(p.claim_admission_slot(SlotRef{0, 0}), ContractViolation);
  p.end_admission_batch();
  EXPECT_FALSE(p.admission_batch_open());

  p.book(0, SlotRef{0, 0});
  p.begin_admission_batch();
  EXPECT_THROW(p.claim_admission_slot(SlotRef{0, 0}), ContractViolation);
  p.end_admission_batch();
}

}  // namespace
}  // namespace reqsched
