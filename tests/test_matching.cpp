// Unit tests for the bipartite matching substrate.
#include <gtest/gtest.h>

#include "matching/bipartite.hpp"
#include "matching/maxflow.hpp"
#include "matching/mincost_flow.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

BipartiteGraph random_graph(Prng& rng, std::int32_t lefts, std::int32_t rights,
                            double p) {
  BipartiteGraph g(lefts, rights);
  for (std::int32_t l = 0; l < lefts; ++l) {
    for (std::int32_t r = 0; r < rights; ++r) {
      if (rng.next_bool(p)) g.add_edge(l, r);
    }
  }
  g.finalize();
  return g;
}

TEST(BipartiteGraph, RejectsOutOfRangeEdges) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, -1), ContractViolation);
}

TEST(GreedyMaximal, IsMaximal) {
  Prng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = random_graph(rng, 12, 10, 0.2);
    const Matching m = greedy_maximal(g);
    validate_matching(g, m);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(KuhnOrdered, MatchesHopcroftKarpCardinality) {
  Prng rng(42);
  for (int trial = 0; trial < 80; ++trial) {
    const auto g = random_graph(rng, 15, 12, 0.15);
    const Matching kuhn = kuhn_ordered(g);
    const Matching hk = hopcroft_karp(g);
    validate_matching(g, kuhn);
    validate_matching(g, hk);
    EXPECT_EQ(kuhn.size(), hk.size());
  }
}

TEST(KuhnOrdered, EarlierLeftsStayMatched) {
  // Priority property: a left processed earlier is matched whenever the
  // transversal matroid admits it, regardless of later lefts.
  BipartiteGraph g(3, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  g.add_edge(2, 0);
  g.finalize();
  const Matching m = kuhn_ordered(g);
  EXPECT_TRUE(m.left_matched(0));
  EXPECT_TRUE(m.left_matched(1));
  EXPECT_FALSE(m.left_matched(2));

  const std::int32_t order[] = {2, 1, 0};
  const Matching m2 = kuhn_ordered(g, order);
  EXPECT_TRUE(m2.left_matched(2));
  EXPECT_TRUE(m2.left_matched(1));
  EXPECT_FALSE(m2.left_matched(0));
}

TEST(KuhnOrdered, SeedIsExtendedNotDiscarded) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.finalize();
  Matching seed = Matching::empty(g);
  seed.match(0, 0);
  const Matching m = kuhn_ordered(g, {}, &seed);
  EXPECT_EQ(m.size(), 2);
  // Left 0 stays matched (possibly moved); left 1 gets right 0.
  EXPECT_TRUE(m.left_matched(0));
  EXPECT_TRUE(m.left_matched(1));
}

TEST(HopcroftKarp, KoenigCoverCertifiesOptimality) {
  Prng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const auto g = random_graph(rng, 20, 18, 0.12);
    const Matching m = hopcroft_karp(g);
    const VertexCover cover = koenig_cover(g, m);
    EXPECT_EQ(cover.size(), m.size());
    EXPECT_TRUE(covers_all_edges(g, cover));
  }
}

TEST(MaxFlow, UnitBipartiteEqualsMatching) {
  Prng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const auto g = random_graph(rng, 10, 9, 0.2);
    MaxFlow flow(2 + 10 + 9);
    const std::int32_t source = 0;
    const std::int32_t sink = 1;
    for (std::int32_t l = 0; l < 10; ++l) flow.add_edge(source, 2 + l, 1);
    for (std::int32_t r = 0; r < 9; ++r) flow.add_edge(2 + 10 + r, sink, 1);
    for (std::int32_t l = 0; l < 10; ++l) {
      for (const std::int32_t r : g.neighbors(l)) {
        flow.add_edge(2 + l, 2 + 10 + r, 1);
      }
    }
    EXPECT_EQ(flow.solve(source, sink), hopcroft_karp(g).size());
  }
}

TEST(MaxFlow, CapacityUpdateAndIncrementalSolve) {
  MaxFlow flow(4);
  const auto a = flow.add_edge(0, 1, 1);
  flow.add_edge(1, 2, 5);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.solve(0, 3), 1);
  flow.set_capacity(a, 3);
  EXPECT_EQ(flow.solve(0, 3), 2);  // incremental: 2 more units
  EXPECT_EQ(flow.flow_on(a), 3);
  EXPECT_THROW(flow.set_capacity(a, 2), ContractViolation);
}

TEST(MinCostMaxFlow, PrefersCheapPathAmongMaxFlows) {
  // Two parallel unit paths, one cheap one expensive, demand 1... with
  // capacity for both, max flow uses both; with a shared bottleneck the
  // cheap one wins.
  MinCostMaxFlow flow(4);
  flow.add_edge(0, 1, 1, 0);
  const auto cheap = flow.add_edge(1, 2, 1, -5);
  const auto costly = flow.add_edge(1, 3, 1, 1);
  flow.add_edge(2, 3, 1, 0);
  const auto [value, cost] = flow.solve(0, 3);
  EXPECT_EQ(value, 1);
  EXPECT_EQ(cost, -5);
  EXPECT_EQ(flow.flow_on(cheap), 1);
  EXPECT_EQ(flow.flow_on(costly), 0);
}

TEST(MinCostMaxFlow, FlowValueDominatesCost) {
  // Taking the negative-cost detour must not reduce the total flow.
  MinCostMaxFlow flow(4);
  flow.add_edge(0, 1, 2, 0);
  flow.add_edge(1, 2, 1, -100);
  flow.add_edge(1, 3, 1, 50);
  flow.add_edge(2, 3, 1, 0);
  const auto [value, cost] = flow.solve(0, 3);
  EXPECT_EQ(value, 2);
  EXPECT_EQ(cost, -50);
}

}  // namespace
}  // namespace reqsched
