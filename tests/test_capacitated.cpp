// End-to-end coverage of the generalized model: k-choice alternative lists,
// per-(resource, round) capacities b_r, and multi-round occupancy runs —
// through the trace, the offline solver, the streaming engine, and every
// strategy whose capability flags claim support. The degenerate-config
// differential suite pins that k=2/b=1/occ=1 is bit-identical to the seed;
// this file pins that the new axes actually *do* something.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "adversary/random.hpp"
#include "analysis/bounds.hpp"
#include "analysis/registry.hpp"
#include "core/trace.hpp"
#include "core/workload.hpp"
#include "engine/simulator.hpp"
#include "offline/offline.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

Metrics run_trace(const Trace& trace, const std::string& strategy_name) {
  TraceWorkload workload(trace);
  auto strategy = make_strategy(strategy_name);
  Simulator sim(workload, *strategy);
  return sim.run();
}

// ---------------------------------------------------------------------------
// Capacity units.

TEST(CapacityUnits, UniformCapacityDoublesOneRoundThroughput) {
  // n=1, d=1: the whole instance is one (resource, round) cell. At b=1 only
  // one of the two requests fits; at b=2 both do.
  for (const std::int32_t b : {1, 2}) {
    Trace trace(ProblemConfig{1, 1, b});
    trace.add(0, RequestSpec{0, kNoResource, 1});
    trace.add(0, RequestSpec{0, kNoResource, 1});
    const Metrics m = run_trace(trace, "A_fix");
    EXPECT_EQ(m.fulfilled, b) << "b=" << b;
    EXPECT_EQ(m.expired, 2 - b) << "b=" << b;
  }
}

TEST(CapacityUnits, PerResourceCapacitiesAreHonored) {
  // capacities = {1, 3}: resource 0 takes one request per round, resource 1
  // takes three. Five single-alternative arrivals in one d=1 round: the
  // second request on resource 0 must expire, everything else fits.
  Trace trace(ProblemConfig{2, 1, 1, {1, 3}});
  trace.add(0, RequestSpec{0, kNoResource, 1});
  trace.add(0, RequestSpec{0, kNoResource, 1});
  trace.add(0, RequestSpec{1, kNoResource, 1});
  trace.add(0, RequestSpec{1, kNoResource, 1});
  trace.add(0, RequestSpec{1, kNoResource, 1});
  const Metrics m = run_trace(trace, "A_fix");
  EXPECT_EQ(m.fulfilled, 4);
  EXPECT_EQ(m.expired, 1);
}

TEST(CapacityUnits, OfflineOptimumCountsUnits) {
  Trace trace(ProblemConfig{1, 1, 2});
  trace.add(0, RequestSpec{0, kNoResource, 1});
  trace.add(0, RequestSpec{0, kNoResource, 1});
  trace.add(0, RequestSpec{0, kNoResource, 1});
  EXPECT_EQ(offline_optimum(trace), 2);
}

TEST(CapacityUnits, OfflineOptimumIsMonotoneInCapacity) {
  // Every b-feasible schedule stays feasible at b+1, so OPT may only grow.
  Prng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::int64_t> opts;
    for (const std::int32_t b : {1, 2, 3}) {
      Trace trace(ProblemConfig{3, 2, b});
      Prng local(100 + static_cast<std::uint64_t>(trial));
      for (Round t = 0; t < 6; ++t) {
        const std::uint64_t count = local.next_below(7);
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto first = static_cast<ResourceId>(local.next_below(3));
          auto second = static_cast<ResourceId>(local.next_below(2));
          if (second >= first) ++second;
          trace.add(t, RequestSpec{first, second,
                                   static_cast<std::int32_t>(
                                       1 + local.next_below(2))});
        }
      }
      opts.push_back(offline_optimum(trace));
    }
    EXPECT_LE(opts[0], opts[1]) << "trial " << trial;
    EXPECT_LE(opts[1], opts[2]) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// k-choice alternative lists.

TEST(KChoice, MoreAlternativesNeverHurtOffline) {
  // The k=4 trace's edge set is a superset of the k=2 trace's (same
  // arrivals, alternative lists extended), so every k=2 matching survives.
  Prng rng(97);
  Trace narrow(ProblemConfig{6, 3});
  Trace wide(ProblemConfig{6, 3});
  for (Round t = 0; t < 12; ++t) {
    const std::uint64_t count = rng.next_below(8);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::vector<ResourceId> picks;
      while (picks.size() < 4) {
        const auto r = static_cast<ResourceId>(rng.next_below(6));
        if (std::find(picks.begin(), picks.end(), r) == picks.end()) {
          picks.push_back(r);
        }
      }
      const auto window =
          static_cast<std::int32_t>(1 + rng.next_below(3));
      RequestSpec two;
      two.alts = AltList(picks[0], picks[1]);
      two.window = window;
      narrow.add(t, two);
      RequestSpec four;
      for (const ResourceId r : picks) four.alts.push_back(r);
      four.window = window;
      wide.add(t, four);
    }
  }
  EXPECT_GE(offline_optimum(wide), offline_optimum(narrow));
}

TEST(KChoice, CapableStrategiesRunKAryWorkloads) {
  const auto names = strategies_supporting(/*k_choice=*/true,
                                           /*capacitated=*/false,
                                           /*occupancy=*/false);
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    UniformWorkload workload({.n = 6, .d = 3, .load = 1.5, .horizon = 40,
                              .seed = 13, .two_choice = true, .k = 4});
    auto strategy = make_strategy(name, /*seed=*/5);
    Simulator sim(workload, *strategy);
    const Metrics m = sim.run();
    EXPECT_GT(m.injected, 0) << name;
    EXPECT_GT(m.fulfilled, 0) << name;
    EXPECT_LE(m.fulfilled, m.injected) << name;
  }
}

// ---------------------------------------------------------------------------
// Multi-round occupancy.

TEST(Occupancy, RunsHoldTheResourceForTheirDuration) {
  // n=1, d=3: a 2-round run and a 1-round request share one resource. Both
  // fit in the 3-round window, but the single-round execution cannot land
  // inside the run's [start, start + 1] hold.
  Trace trace(ProblemConfig{1, 3});
  trace.add(0, RequestSpec{0, kNoResource, 3, 2});
  trace.add(0, RequestSpec{0, kNoResource, 3, 1});
  TraceWorkload workload(trace);
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  const Metrics m = sim.run();
  EXPECT_EQ(m.fulfilled, 2);
  EXPECT_EQ(m.expired, 0);
  Round run_start = kNoRound;
  Round single = kNoRound;
  for (const auto& [id, slot] : sim.online_matching()) {
    (id == 0 ? run_start : single) = slot.round;
  }
  ASSERT_NE(run_start, kNoRound);
  ASSERT_NE(single, kNoRound);
  EXPECT_TRUE(single < run_start || single > run_start + 1)
      << "single-round execution at t=" << single
      << " landed inside the occupancy run starting at t=" << run_start;
}

TEST(Occupancy, OverfullRunsExpire) {
  // Two 2-round runs on one resource inside a 2-round window: only one can
  // start at t=0; the other has no feasible start left.
  Trace trace(ProblemConfig{1, 2});
  trace.add(0, RequestSpec{0, kNoResource, 2, 2});
  trace.add(0, RequestSpec{0, kNoResource, 2, 2});
  const Metrics m = run_trace(trace, "A_fix");
  EXPECT_EQ(m.fulfilled, 1);
  EXPECT_EQ(m.expired, 1);
}

TEST(Occupancy, FullModelRunsOnEveryFullyCapableStrategy) {
  const auto names = strategies_supporting(/*k_choice=*/true,
                                           /*capacitated=*/true,
                                           /*occupancy=*/true);
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    UniformWorkload workload({.n = 8, .d = 6, .load = 2.0, .horizon = 50,
                              .seed = 29, .two_choice = true, .k = 3, .b = 2,
                              .max_occupancy = 3});
    auto strategy = make_strategy(name);
    Simulator sim(workload, *strategy);
    const Metrics m = sim.run();
    EXPECT_GT(m.fulfilled, 0) << name;
    EXPECT_EQ(m.fulfilled + m.expired, m.injected) << name;
  }
}

// ---------------------------------------------------------------------------
// Registry capability flags.

TEST(Registry, CapabilityFlagsPartitionTheRegistry) {
  EXPECT_EQ(strategies_supporting(false, false, false).size(),
            all_strategy_names().size());
  // The five StrategyRuntime globals carry the whole generalized model.
  const auto full = strategies_supporting(true, true, true);
  EXPECT_EQ(full, global_strategy_names());
  // The randomized variants ride the k-choice axis only.
  const auto k_only = strategies_supporting(true, false, false);
  EXPECT_EQ(k_only.size(), full.size() + 2);
  for (const std::string name : {"A_current_randomized", "A_fix_randomized"}) {
    EXPECT_NE(std::find(k_only.begin(), k_only.end(), name), k_only.end())
        << name;
    EXPECT_EQ(std::find(full.begin(), full.end(), name), full.end()) << name;
  }
  // Locals and EDF baselines stay paper-shape on every axis.
  for (const std::string name :
       {"A_local_fix", "A_local_eager", "EDF_single"}) {
    EXPECT_EQ(std::find(k_only.begin(), k_only.end(), name), k_only.end())
        << name;
  }
}

// ---------------------------------------------------------------------------
// Reference bounds for the EXPERIMENTS comparisons.

TEST(Bounds, CapacitatedGreedyRatioMatchesKnownPoints) {
  // b=1 is the classic greedy bound 1/(1 - 1/2) = 2; the sequence decreases
  // towards e/(e-1) as capacity grows.
  EXPECT_DOUBLE_EQ(capacitated_greedy_ratio(1), 2.0);
  EXPECT_NEAR(capacitated_greedy_limit(),
              std::exp(1.0) / (std::exp(1.0) - 1.0), 1e-12);
  double prev = capacitated_greedy_ratio(1);
  for (std::int32_t b = 2; b <= 64; b *= 2) {
    const double ratio = capacitated_greedy_ratio(b);
    EXPECT_LT(ratio, prev) << "b=" << b;
    EXPECT_GT(ratio, capacitated_greedy_limit()) << "b=" << b;
    prev = ratio;
  }
  EXPECT_NEAR(capacitated_greedy_ratio(1024), capacitated_greedy_limit(),
              1e-3);
}

TEST(Bounds, ParkKdGapShrinksWithMoreChoices) {
  // The (k, d)-choice max-load gap ln ln n / ln(d/k): more choices per
  // request (larger d at fixed k) shrink it; the k=1 specialization is the
  // classic d-choice gap.
  const double two = park_kd_gap(1 << 20, 1, 2);
  const double four = park_kd_gap(1 << 20, 1, 4);
  EXPECT_GT(two, four);
  EXPECT_GT(four, 0.0);
  EXPECT_DOUBLE_EQ(choice_load_gap(1 << 20, 2), two);
  EXPECT_NEAR(park_kd_gap(1 << 20, 2, 4),
              std::log(std::log(static_cast<double>(1 << 20))) /
                  std::log(2.0),
              1e-12);
  EXPECT_THROW(park_kd_gap(1 << 20, 2, 2), ContractViolation);
}

}  // namespace
}  // namespace reqsched
