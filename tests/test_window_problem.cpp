// Unit tests for the strategy plumbing: round-problem construction,
// slot scopes, adjacency ordering, lex lifting, and rebooking.
#include <gtest/gtest.h>

#include "engine/simulator.hpp"
#include "core/workload.hpp"
#include "strategies/window_problem.hpp"

namespace reqsched {
namespace {

/// A strategy hook that hands each round to a lambda.
class HookStrategy final : public IStrategy {
 public:
  explicit HookStrategy(std::function<void(Simulator&)> hook)
      : hook_(std::move(hook)) {}
  std::string name() const override { return "hook"; }
  void on_round(Simulator& sim) override { hook_(sim); }

 private:
  std::function<void(Simulator&)> hook_;
};

TEST(WindowProblem, ScopesSelectTheRightSlots) {
  Trace trace(ProblemConfig{2, 3});
  trace.add(0, RequestSpec{0, 1, 0});  // r0
  trace.add(0, RequestSpec{0, 1, 0});  // r1
  TraceWorkload workload(trace);
  bool checked = false;
  HookStrategy strategy([&](Simulator& sim) {
    if (sim.now() != 0) return;
    // Book r0 at (0,1) to make scope differences visible.
    sim.assign(0, SlotRef{0, 1});

    const std::vector<RequestId> lefts{1};
    const RoundProblem current =
        build_round_problem(sim, lefts, SlotScope::kCurrentRound);
    EXPECT_EQ(current.rights.size(), 2u);  // (0,0), (1,0)

    const RoundProblem free_window =
        build_round_problem(sim, lefts, SlotScope::kFreeWindow);
    EXPECT_EQ(free_window.rights.size(), 5u);  // 6 slots - 1 booked

    const RoundProblem full =
        build_round_problem(sim, lefts, SlotScope::kFullWindow);
    EXPECT_EQ(full.rights.size(), 6u);

    // Rights are ordered (round asc, resource asc).
    for (std::size_t i = 1; i < full.rights.size(); ++i) {
      const auto& a = full.rights[i - 1];
      const auto& b = full.rights[i];
      EXPECT_TRUE(a.round < b.round ||
                  (a.round == b.round && a.resource < b.resource));
    }

    // r1's adjacency in the free-window problem: every free slot of both
    // alternatives within its window.
    EXPECT_EQ(free_window.graph.neighbors(0).size(), 5u);
    checked = true;
    sim.unassign(0);
  });
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(WindowProblem, AdjacencyRespectsDeadlines) {
  Trace trace(ProblemConfig{2, 4});
  trace.add(0, RequestSpec{0, 1, 2});  // window 2: rounds 0..1 only
  TraceWorkload workload(trace);
  bool checked = false;
  HookStrategy strategy([&](Simulator& sim) {
    if (sim.now() != 0) return;
    const std::vector<RequestId> lefts{0};
    const RoundProblem problem =
        build_round_problem(sim, lefts, SlotScope::kFreeWindow);
    // 2 resources x rounds {0,1} = 4 candidate slots.
    EXPECT_EQ(problem.graph.neighbors(0).size(), 4u);
    for (const std::int32_t r : problem.graph.neighbors(0)) {
      EXPECT_LE(problem.rights[static_cast<std::size_t>(r)].round, 1);
    }
    checked = true;
  });
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(WindowProblem, RebookHandlesCyclicSwaps) {
  // r0 and r1 swap slots — naive move-by-move would collide; the two-phase
  // rebook must succeed and count two reassignments.
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(0, RequestSpec{0, 1, 0});
  TraceWorkload workload(trace);
  bool swapped = false;
  HookStrategy strategy([&](Simulator& sim) {
    if (sim.now() != 0) return;
    sim.assign(0, SlotRef{0, 0});
    sim.assign(1, SlotRef{1, 0});
    const auto alive = sim.alive();
    const RoundProblem problem = build_round_problem(
        sim, {alive.begin(), alive.end()}, SlotScope::kFullWindow);
    // Target: swap. Find right indices for the two slots.
    std::vector<std::int32_t> target(problem.lefts.size(), -1);
    target[0] = problem.right_index_of(SlotRef{1, 0});
    target[1] = problem.right_index_of(SlotRef{0, 0});
    rebook(sim, problem, target);
    EXPECT_EQ(sim.slot_of(0), (SlotRef{1, 0}));
    EXPECT_EQ(sim.slot_of(1), (SlotRef{0, 0}));
    swapped = true;
  });
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_TRUE(swapped);
  EXPECT_EQ(sim.metrics().reassignments, 2);
}

TEST(WindowProblem, RebookDropsAndAdds) {
  Trace trace(ProblemConfig{1, 2});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  TraceWorkload workload(trace);
  HookStrategy strategy([&](Simulator& sim) {
    if (sim.now() != 0) return;
    sim.assign(0, SlotRef{0, 0});
    const auto alive = sim.alive();
    const RoundProblem problem = build_round_problem(
        sim, {alive.begin(), alive.end()}, SlotScope::kFullWindow);
    // Drop r0, book r1 at (0,0) instead, r0 to (0,1).
    std::vector<std::int32_t> target(problem.lefts.size(), -1);
    target[0] = problem.right_index_of(SlotRef{0, 1});
    target[1] = problem.right_index_of(SlotRef{0, 0});
    rebook(sim, problem, target);
    EXPECT_EQ(sim.slot_of(0), (SlotRef{0, 1}));
    EXPECT_EQ(sim.slot_of(1), (SlotRef{0, 0}));
  });
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(sim.metrics().fulfilled, 2);
}

TEST(WindowProblem, HelperListsSeparateNewFromOld) {
  Trace trace(ProblemConfig{2, 3});
  trace.add(0, RequestSpec{0, 1, 0});  // r0: old by round 1
  trace.add(1, RequestSpec{0, 1, 0});  // r1: new at round 1
  TraceWorkload workload(trace);
  bool checked = false;
  HookStrategy strategy([&](Simulator& sim) {
    if (sim.now() != 1) return;
    // Nothing was booked in round 0, so r0 is an unscheduled straggler.
    const auto unscheduled = unscheduled_alive(sim);
    EXPECT_EQ(unscheduled.size(), 2u);
    const auto older = older_unscheduled(sim);
    ASSERT_EQ(older.size(), 1u);
    EXPECT_EQ(older[0], 0);
    checked = true;
  });
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace reqsched
