// The lexicographic matching solver against brute-force enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "matching/lex_matcher.hpp"
#include "matching/mincost_flow.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

struct BruteResult {
  std::vector<std::int64_t> best_profile;
  std::int64_t best_cardinality = -1;
  bool found = false;
};

/// Enumerates every matching; keeps the objective-optimal profile.
BruteResult brute_force(const LexMatchProblem& p) {
  BruteResult result;
  std::vector<std::int32_t> right_owner(
      static_cast<std::size_t>(p.right_count()), -1);
  std::vector<char> required(static_cast<std::size_t>(p.left_count()), 0);
  for (const auto l : p.required_lefts) {
    required[static_cast<std::size_t>(l)] = 1;
  }

  std::vector<std::int64_t> profile(static_cast<std::size_t>(p.level_count),
                                    0);
  std::int64_t matched = 0;
  std::int64_t required_matched = 0;
  const std::int64_t required_total =
      static_cast<std::int64_t>(p.required_lefts.size());

  const std::function<void(std::int32_t)> recurse = [&](std::int32_t l) {
    if (l == p.left_count()) {
      if (required_matched != required_total) return;
      bool better = false;
      if (!result.found) {
        better = true;
      } else if (p.cardinality_first && matched != result.best_cardinality) {
        better = matched > result.best_cardinality;
      } else {
        better = compare_profiles(result.best_profile, profile) < 0;
      }
      if (better) {
        result.best_profile = profile;
        result.best_cardinality = matched;
        result.found = true;
      }
      return;
    }
    for (const std::int32_t r : p.graph.neighbors(l)) {
      if (right_owner[static_cast<std::size_t>(r)] >= 0) continue;
      right_owner[static_cast<std::size_t>(r)] = l;
      ++profile[static_cast<std::size_t>(
          p.level_of_right[static_cast<std::size_t>(r)])];
      ++matched;
      required_matched += required[static_cast<std::size_t>(l)];
      recurse(l + 1);
      required_matched -= required[static_cast<std::size_t>(l)];
      --matched;
      --profile[static_cast<std::size_t>(
          p.level_of_right[static_cast<std::size_t>(r)])];
      right_owner[static_cast<std::size_t>(r)] = -1;
    }
    if (!required[static_cast<std::size_t>(l)]) recurse(l + 1);
    // Required lefts must be matched; skipping them is not explored unless
    // impossible, which the required_matched check rejects.
    if (required[static_cast<std::size_t>(l)]) {
      // Explore the skip branch anyway so infeasible setups are caught by
      // the caller (they never occur in the library's use).
    }
  };
  recurse(0);
  return result;
}

LexMatchProblem random_problem(Prng& rng, bool cardinality_first) {
  LexMatchProblem p;
  const auto lefts = static_cast<std::int32_t>(2 + rng.next_below(4));   // 2..5
  const auto rights = static_cast<std::int32_t>(2 + rng.next_below(4));  // 2..5
  p.level_count = static_cast<std::int32_t>(1 + rng.next_below(3));      // 1..3
  p.cardinality_first = cardinality_first;
  p.graph.reset(lefts, rights);
  for (std::int32_t l = 0; l < lefts; ++l) {
    for (std::int32_t r = 0; r < rights; ++r) {
      if (rng.next_bool(0.45)) p.graph.add_edge(l, r);
    }
  }
  p.graph.finalize();
  p.level_of_right.resize(static_cast<std::size_t>(rights));
  for (auto& lvl : p.level_of_right) {
    lvl = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(p.level_count)));
  }
  return p;
}

void expect_result_consistent(const LexMatchProblem& p,
                              const LexMatchResult& result) {
  // The reported profile must match the reported assignment.
  std::vector<std::int64_t> profile(static_cast<std::size_t>(p.level_count),
                                    0);
  std::vector<char> right_used(static_cast<std::size_t>(p.right_count()), 0);
  std::int64_t matched = 0;
  for (std::int32_t l = 0; l < p.left_count(); ++l) {
    const std::int32_t r = result.left_to_right[static_cast<std::size_t>(l)];
    if (r < 0) continue;
    const auto& nbrs = p.graph.neighbors(l);
    ASSERT_NE(std::find(nbrs.begin(), nbrs.end(), r), nbrs.end());
    ASSERT_FALSE(right_used[static_cast<std::size_t>(r)]);
    right_used[static_cast<std::size_t>(r)] = 1;
    ++profile[static_cast<std::size_t>(
        p.level_of_right[static_cast<std::size_t>(r)])];
    ++matched;
  }
  EXPECT_EQ(profile, result.level_counts);
  EXPECT_EQ(matched, result.cardinality);
}

TEST(LexMatcher, PureLexMatchesBruteForce) {
  Prng rng(11);
  for (int trial = 0; trial < 400; ++trial) {
    const LexMatchProblem p = random_problem(rng, /*cardinality_first=*/false);
    const LexMatchResult result = solve_lex_matching(p);
    expect_result_consistent(p, result);
    const BruteResult brute = brute_force(p);
    ASSERT_TRUE(brute.found);
    EXPECT_EQ(result.level_counts, brute.best_profile)
        << "trial " << trial;
  }
}

TEST(LexMatcher, CardinalityFirstMatchesBruteForce) {
  Prng rng(22);
  for (int trial = 0; trial < 400; ++trial) {
    const LexMatchProblem p = random_problem(rng, /*cardinality_first=*/true);
    const LexMatchResult result = solve_lex_matching(p);
    expect_result_consistent(p, result);
    const BruteResult brute = brute_force(p);
    ASSERT_TRUE(brute.found);
    EXPECT_EQ(result.cardinality, brute.best_cardinality) << "trial " << trial;
    EXPECT_EQ(result.level_counts, brute.best_profile) << "trial " << trial;
  }
}

TEST(LexMatcher, RequiredLeftsStayMatched) {
  Prng rng(33);
  int checked = 0;
  for (int trial = 0; trial < 600 && checked < 100; ++trial) {
    LexMatchProblem p = random_problem(rng, /*cardinality_first=*/true);
    // Pick a required set that is simultaneously matchable: take a greedy
    // matching and require its lefts.
    std::vector<char> right_used(static_cast<std::size_t>(p.right_count()), 0);
    for (std::int32_t l = 0; l < p.left_count(); ++l) {
      for (const std::int32_t r : p.graph.neighbors(l)) {
        if (!right_used[static_cast<std::size_t>(r)]) {
          right_used[static_cast<std::size_t>(r)] = 1;
          p.required_lefts.push_back(l);
          break;
        }
      }
    }
    if (p.required_lefts.empty()) continue;
    ++checked;
    const LexMatchResult result = solve_lex_matching(p);
    for (const std::int32_t l : p.required_lefts) {
      EXPECT_GE(result.left_to_right[static_cast<std::size_t>(l)], 0);
    }
    const BruteResult brute = brute_force(p);
    ASSERT_TRUE(brute.found);
    EXPECT_EQ(result.cardinality, brute.best_cardinality);
    EXPECT_EQ(result.level_counts, brute.best_profile);
  }
  EXPECT_GE(checked, 50);
}

TEST(LexMatcher, PureLexImpliesMaximality) {
  Prng rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    const LexMatchProblem p = random_problem(rng, false);
    const LexMatchResult result = solve_lex_matching(p);
    // No unmatched left may have an unused neighbour.
    std::vector<char> right_used(static_cast<std::size_t>(p.right_count()), 0);
    for (std::int32_t l = 0; l < p.left_count(); ++l) {
      const std::int32_t r = result.left_to_right[static_cast<std::size_t>(l)];
      if (r >= 0) right_used[static_cast<std::size_t>(r)] = 1;
    }
    for (std::int32_t l = 0; l < p.left_count(); ++l) {
      if (result.left_to_right[static_cast<std::size_t>(l)] >= 0) continue;
      for (const std::int32_t r : p.graph.neighbors(l)) {
        EXPECT_TRUE(right_used[static_cast<std::size_t>(r)])
            << "left " << l << " could still take right " << r;
      }
    }
  }
}

TEST(LexMatcher, AgreesWithBigWeightFlowOracle) {
  // Third oracle besides brute force: on small instances the lexicographic
  // objective can be encoded directly as min-cost max-flow with explicit
  // geometric weights w_level = (R+1)^(L-level) — exactly the paper's F.
  // (The production solver avoids these weights because they overflow for
  // real n, d; here they fit comfortably.)
  Prng rng(55);
  for (int trial = 0; trial < 150; ++trial) {
    const LexMatchProblem p = random_problem(rng, /*cardinality_first=*/true);
    const LexMatchResult result = solve_lex_matching(p);

    const std::int64_t base = p.right_count() + 1;
    std::vector<std::int64_t> weight(
        static_cast<std::size_t>(p.level_count));
    std::int64_t w = 1;
    for (std::int32_t lvl = p.level_count - 1; lvl >= 0; --lvl) {
      weight[static_cast<std::size_t>(lvl)] = w;
      w *= base;
    }
    // Cardinality dominates: each matched left also earns a huge bonus.
    const std::int64_t card_bonus = w * base;

    MinCostMaxFlow flow(2 + p.left_count() + p.right_count());
    const std::int32_t source = 0;
    const std::int32_t sink = 1;
    for (std::int32_t l = 0; l < p.left_count(); ++l) {
      flow.add_edge(source, 2 + l, 1, -card_bonus);
      for (const std::int32_t r : p.graph.neighbors(l)) {
        flow.add_edge(2 + l, 2 + p.left_count() + r, 1, 0);
      }
    }
    for (std::int32_t r = 0; r < p.right_count(); ++r) {
      flow.add_edge(
          2 + p.left_count() + r, sink, 1,
          -weight[static_cast<std::size_t>(
              p.level_of_right[static_cast<std::size_t>(r)])]);
    }
    const auto [value, cost] = flow.solve(source, sink);
    EXPECT_EQ(value, result.cardinality) << "trial " << trial;
    std::int64_t expected_cost = -card_bonus * result.cardinality;
    for (std::int32_t lvl = 0; lvl < p.level_count; ++lvl) {
      expected_cost -= weight[static_cast<std::size_t>(lvl)] *
                       result.level_counts[static_cast<std::size_t>(lvl)];
    }
    EXPECT_EQ(cost, expected_cost) << "trial " << trial;
  }
}

TEST(LexMatcher, EmptyAndDegenerateProblems) {
  LexMatchProblem p;
  p.level_count = 1;
  const auto result = solve_lex_matching(p);
  EXPECT_EQ(result.cardinality, 0);
  EXPECT_EQ(result.level_counts, std::vector<std::int64_t>{0});

  LexMatchProblem q;
  q.graph.reset(2, 0);  // two lefts, no rights at all
  q.level_count = 2;
  const auto r2 = solve_lex_matching(q);
  EXPECT_EQ(r2.cardinality, 0);
}

}  // namespace
}  // namespace reqsched
