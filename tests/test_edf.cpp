// EDF tests: Observation 3.1 (1-competitive with one alternative) and
// Observation 3.2 (2-competitive with two, tight for independent copies).
#include <gtest/gtest.h>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/harness.hpp"
#include "offline/offline.hpp"
#include "strategies/edf.hpp"

namespace reqsched {
namespace {

TEST(EdfSingle, OneCompetitiveOnRandomSingleAlternativeWorkloads) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    UniformWorkload workload({.n = 4,
                              .d = 3,
                              .load = 1.4,
                              .horizon = 60,
                              .seed = seed,
                              .two_choice = false});
    EdfSingle strategy;
    const RunResult result = run_experiment(workload, strategy);
    EXPECT_EQ(result.optimum, result.metrics.fulfilled)
        << "EDF must match OPT exactly (Observation 3.1), seed " << seed;
  }
}

TEST(EdfSingle, RejectsTwoAlternativeRequests) {
  UniformWorkload workload({.n = 3, .d = 2, .load = 1.0, .horizon = 3,
                            .seed = 1, .two_choice = true});
  EdfSingle strategy;
  Simulator sim(workload, strategy);
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(EdfSingle, ServesEarliestDeadlineFirst) {
  Trace trace(ProblemConfig{1, 3});
  trace.add(0, RequestSpec{0, kNoResource, 3});  // r0, deadline 2
  trace.add(0, RequestSpec{0, kNoResource, 1});  // r1, deadline 0 (urgent)
  TraceWorkload workload(trace);
  EdfSingle strategy;
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(sim.status(1), RequestStatus::kFulfilled);
  EXPECT_EQ(sim.fulfilled_slot(1).round, 0);
  EXPECT_EQ(sim.status(0), RequestStatus::kFulfilled);
}

TEST(EdfTwoChoice, NeverWorseThanTwiceOpt) {
  for (const std::uint64_t seed : {10u, 11u, 12u, 13u}) {
    UniformWorkload workload({.n = 5, .d = 3, .load = 1.8, .horizon = 60,
                              .seed = seed, .two_choice = true});
    EdfTwoChoice strategy(false);
    const RunResult result = run_experiment(workload, strategy);
    EXPECT_LE(result.ratio, 2.0 + 1e-12) << "seed " << seed;
  }
}

TEST(EdfTwoChoice, TightInstanceWastesHalfTheSlots) {
  auto instance = make_lb_edf(4, 6);
  EdfTwoChoice strategy(false);
  const RunResult result = run_experiment(*instance, strategy);
  EXPECT_DOUBLE_EQ(result.ratio, 2.0);
  // The second group is starved by duplicate service of the first.
  EXPECT_GT(result.metrics.wasted_executions, 0);
}

TEST(EdfTwoChoice, CancellingCopiesStillTwoCompetitiveButWastesLess) {
  auto instance = make_lb_edf(4, 6);
  EdfTwoChoice wasteful(false);
  const RunResult waste_run = run_experiment(*instance, wasteful);

  auto instance2 = make_lb_edf(4, 6);
  EdfTwoChoice cancelling(true);
  const RunResult cancel_run = run_experiment(*instance2, cancelling);

  EXPECT_LE(cancel_run.ratio, 2.0 + 1e-12);
  EXPECT_LE(cancel_run.metrics.wasted_executions,
            waste_run.metrics.wasted_executions);
}

TEST(EdfTwoChoice, CancellationHelpsOnBenignWorkloads) {
  UniformWorkload a({.n = 6, .d = 3, .load = 1.5, .horizon = 80, .seed = 42,
                     .two_choice = true});
  EdfTwoChoice wasteful(false);
  const RunResult waste_run = run_experiment(a, wasteful);

  UniformWorkload b({.n = 6, .d = 3, .load = 1.5, .horizon = 80, .seed = 42,
                     .two_choice = true});
  EdfTwoChoice cancelling(true);
  const RunResult cancel_run = run_experiment(b, cancelling);

  EXPECT_GE(cancel_run.metrics.fulfilled, waste_run.metrics.fulfilled);
}

}  // namespace
}  // namespace reqsched
