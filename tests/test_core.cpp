// Unit tests for the core model: trace, schedule, simulator round semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/simulator.hpp"
#include "core/trace.hpp"
#include "core/workload.hpp"

namespace reqsched {
namespace {

Trace simple_trace() {
  Trace trace(ProblemConfig{3, 2});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(0, RequestSpec{1, 2, 0});
  trace.add(1, RequestSpec{0, 2, 0});
  return trace;
}

TEST(Trace, ValidatesRequests) {
  Trace trace(ProblemConfig{2, 3});
  const RequestId id = trace.add(0, RequestSpec{0, 1, 0});
  EXPECT_EQ(id, 0);
  EXPECT_EQ(trace.request(id).deadline, 2);
  EXPECT_THROW(trace.add(0, RequestSpec{0, 0, 0}), ContractViolation);
  EXPECT_THROW(trace.add(0, RequestSpec{0, 5, 0}), ContractViolation);
  trace.add(3, RequestSpec{1, kNoResource, 0});  // single alternative is fine
  EXPECT_THROW(trace.add(1, RequestSpec{0, 1, 0}),
               ContractViolation);  // arrivals must be monotone
  EXPECT_THROW(trace.add(4, RequestSpec{0, 1, 9}),
               ContractViolation);  // window > d
}

TEST(Trace, RoundTripsThroughText) {
  const Trace trace = simple_trace();
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  ASSERT_EQ(loaded.size(), trace.size());
  for (RequestId id = 0; id < trace.size(); ++id) {
    EXPECT_EQ(loaded.request(id).arrival, trace.request(id).arrival);
    EXPECT_EQ(loaded.request(id).deadline, trace.request(id).deadline);
    EXPECT_EQ(loaded.request(id).alts, trace.request(id).alts);
  }
  EXPECT_EQ(loaded.config().n, 3);
  EXPECT_EQ(loaded.last_useful_round(), trace.last_useful_round());
}

TEST(Request, AlternativeQueries) {
  Request r;
  r.id = 0;
  r.arrival = 2;
  r.deadline = 4;
  r.alts = AltList(1, 3);
  EXPECT_EQ(r.alternative_count(), 2);
  EXPECT_TRUE(r.allows_resource(1));
  EXPECT_TRUE(r.allows_resource(3));
  EXPECT_FALSE(r.allows_resource(0));
  EXPECT_EQ(r.other_alternative(1), 3);
  EXPECT_EQ(r.other_alternative(3), 1);
  EXPECT_TRUE(r.allows_slot({1, 2}));
  EXPECT_TRUE(r.allows_slot({3, 4}));
  EXPECT_FALSE(r.allows_slot({1, 5}));
  EXPECT_FALSE(r.allows_slot({1, 1}));
}

TEST(Schedule, AssignUnassignAndWindow) {
  Schedule schedule(ProblemConfig{2, 3});
  Request r;
  r.id = 7;
  r.arrival = 0;
  r.deadline = 2;
  r.alts = AltList(0, 1);

  schedule.assign(r, {0, 1});
  EXPECT_EQ(schedule.request_at({0, 1}), 7);
  EXPECT_EQ(schedule.slot_of(7), (SlotRef{0, 1}));
  EXPECT_THROW(schedule.assign(r, {1, 0}), ContractViolation);  // double book
  schedule.unassign(7);
  EXPECT_TRUE(schedule.is_free({0, 1}));

  // Outside window / wrong resource / past deadline.
  EXPECT_THROW(schedule.assign(r, {0, 3}), ContractViolation);
  Request other = r;
  other.id = 8;
  other.alts = AltList(1);
  EXPECT_THROW(schedule.assign(other, {0, 0}), ContractViolation);
}

TEST(Schedule, AdvanceRecyclesRow) {
  Schedule schedule(ProblemConfig{1, 2});
  Request r;
  r.id = 1;
  r.arrival = 0;
  r.deadline = 1;
  r.alts = AltList(0);
  schedule.assign(r, {0, 0});
  const auto leftover = schedule.advance();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], 1);
  EXPECT_EQ(schedule.window_begin(), 1);
  EXPECT_TRUE(schedule.is_free({0, 1}));
  EXPECT_TRUE(schedule.is_free({0, 2}));
}

TEST(Schedule, FreeSlotHelpers) {
  Schedule schedule(ProblemConfig{2, 3});
  Request r;
  r.id = 1;
  r.arrival = 0;
  r.deadline = 2;
  r.alts = AltList(0, 1);
  schedule.assign(r, {0, 0});
  EXPECT_EQ(schedule.booked_in_round(0), 1);
  EXPECT_EQ(schedule.earliest_free_slot(0, 0, 2), (SlotRef{0, 1}));
  EXPECT_EQ(schedule.free_slots_of(0).size(), 2u);
  EXPECT_EQ(schedule.earliest_free_slot(0, 5, 9), kNoSlot);
}

/// A strategy that books every new request into its earliest free slot on
/// the first alternative only.
class FirstFitStrategy final : public IStrategy {
 public:
  std::string name() const override { return "first_fit"; }
  void on_round(Simulator& sim) override {
    for (const RequestId id : sim.injected_now()) {
      const Request& r = sim.request(id);
      const SlotRef slot =
          sim.schedule().earliest_free_slot(r.first(), sim.now(), r.deadline);
      if (slot.valid()) sim.assign(id, slot);
    }
  }
};

TEST(Simulator, RunsTraceAndCounts) {
  const Trace trace = simple_trace();
  TraceWorkload workload(trace);
  FirstFitStrategy strategy;
  Simulator sim(workload, strategy);
  const Metrics& metrics = sim.run();
  EXPECT_EQ(metrics.injected, 3);
  EXPECT_EQ(metrics.fulfilled, 3);
  EXPECT_EQ(metrics.expired, 0);
  EXPECT_EQ(sim.trace().size(), 3);
  EXPECT_TRUE(sim.finished());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExpiresUnservedRequests) {
  Trace trace(ProblemConfig{1, 1});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  trace.add(0, RequestSpec{0, kNoResource, 0});  // same round, one resource
  TraceWorkload workload(trace);
  FirstFitStrategy strategy;
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(sim.metrics().fulfilled, 1);
  EXPECT_EQ(sim.metrics().expired, 1);
  EXPECT_EQ(sim.status(0), RequestStatus::kFulfilled);
  EXPECT_EQ(sim.status(1), RequestStatus::kExpired);
  EXPECT_EQ(sim.fulfilled_slot(0), (SlotRef{0, 0}));
  EXPECT_EQ(sim.online_matching().size(), 1u);
}

/// A strategy that misbehaves to exercise the simulator's guards.
class NaughtyStrategy final : public IStrategy {
 public:
  enum class Mode { kDoubleBook, kExpiredAssign };
  explicit NaughtyStrategy(Mode mode) : mode_(mode) {}
  std::string name() const override { return "naughty"; }
  void on_round(Simulator& sim) override {
    if (mode_ == Mode::kDoubleBook && sim.injected_now().size() >= 2) {
      sim.assign(sim.injected_now()[0], {0, sim.now()});
      sim.assign(sim.injected_now()[1], {0, sim.now()});
    }
  }

 private:
  Mode mode_;
};

TEST(Simulator, RejectsConflictingAssignments) {
  Trace trace(ProblemConfig{2, 2});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(0, RequestSpec{0, 1, 0});
  TraceWorkload workload(trace);
  NaughtyStrategy strategy(NaughtyStrategy::Mode::kDoubleBook);
  Simulator sim(workload, strategy);
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(Simulator, EditsOutsideOnRoundAreRejected) {
  Trace trace(ProblemConfig{1, 2});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  TraceWorkload workload(trace);
  FirstFitStrategy strategy;
  Simulator sim(workload, strategy);
  EXPECT_THROW(sim.assign(0, {0, 0}), ContractViolation);
}

TEST(Simulator, MaxRoundGuardFires) {
  Trace trace(ProblemConfig{1, 4});
  trace.add(2, RequestSpec{0, kNoResource, 0});
  TraceWorkload workload(trace);
  FirstFitStrategy strategy;
  Simulator sim(workload, strategy);
  EXPECT_THROW(sim.run(1), ContractViolation);
}

}  // namespace
}  // namespace reqsched
