// Unit tests for the offline optimum.
#include <gtest/gtest.h>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "offline/offline.hpp"

namespace reqsched {
namespace {

TEST(Offline, EmptyTrace) {
  Trace trace(ProblemConfig{2, 2});
  EXPECT_EQ(offline_optimum(trace), 0);
}

TEST(Offline, SimpleTwoChoiceInstance) {
  // Two requests both naming (S0, S1), one round, d = 1: both fit.
  Trace trace(ProblemConfig{2, 1});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(0, RequestSpec{0, 1, 0});
  EXPECT_EQ(offline_optimum(trace), 2);
  // A third one must drop.
  trace.add(0, RequestSpec{0, 1, 0});
  EXPECT_EQ(offline_optimum(trace), 2);
}

TEST(Offline, DeadlineWindowsAreRespected) {
  // One resource, d = 2: three same-round requests, only two slots.
  Trace trace(ProblemConfig{1, 2});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  trace.add(0, RequestSpec{0, kNoResource, 0});
  const OfflineResult result = solve_offline(trace);
  EXPECT_EQ(result.optimum, 2);
  EXPECT_EQ(result.certificate, 2);
}

TEST(Offline, AssignmentIsAValidSchedule) {
  UniformWorkload workload({.n = 5, .d = 3, .load = 1.5, .horizon = 40,
                            .seed = 12, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  Simulator sim(workload, *strategy);
  sim.run();
  const OfflineResult result = solve_offline(sim.trace());

  std::set<std::pair<ResourceId, Round>> used;
  std::int64_t assigned = 0;
  for (RequestId id = 0; id < sim.trace().size(); ++id) {
    const SlotRef slot = result.assignment[static_cast<std::size_t>(id)];
    if (!slot.valid()) continue;
    ++assigned;
    const Request& r = sim.trace().request(id);
    EXPECT_TRUE(r.allows_slot(slot)) << r << " -> " << slot;
    EXPECT_TRUE(used.emplace(slot.resource, slot.round).second)
        << "slot reused: " << slot;
  }
  EXPECT_EQ(assigned, result.optimum);
  EXPECT_GE(result.optimum, sim.metrics().fulfilled);
}

TEST(OfflineGraph, SlotIndexRoundTrips) {
  Trace trace(ProblemConfig{3, 2});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(2, RequestSpec{1, 2, 0});
  const OfflineGraph og(trace);
  EXPECT_EQ(og.horizon(), 3);
  for (std::int32_t s = 0; s < og.slot_count(); ++s) {
    EXPECT_EQ(og.slot_index(og.slot_at(s)), s);
  }
}

}  // namespace
}  // namespace reqsched
