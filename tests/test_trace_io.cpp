// Trace serialization: save/load round-trip fuzzing plus the rejection
// paths of the validating loader (deadline bounds, header count mismatches).
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

void expect_round_trip(const Trace& trace) {
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  ASSERT_EQ(loaded.config().n, trace.config().n);
  ASSERT_EQ(loaded.config().d, trace.config().d);
  ASSERT_EQ(loaded.config().b, trace.config().b);
  ASSERT_EQ(loaded.config().capacities, trace.config().capacities);
  ASSERT_EQ(loaded.size(), trace.size());
  for (RequestId id = 0; id < trace.size(); ++id) {
    const Request& want = trace.request(id);
    const Request& got = loaded.request(id);
    EXPECT_EQ(got.arrival, want.arrival) << "request " << id;
    EXPECT_EQ(got.deadline, want.deadline) << "request " << id;
    EXPECT_EQ(got.alts, want.alts) << "request " << id;
    EXPECT_EQ(got.occupancy, want.occupancy) << "request " << id;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  expect_round_trip(Trace(ProblemConfig{5, 3}));
}

TEST(TraceIo, SingleAlternativeRoundTrips) {
  Trace trace(ProblemConfig{3, 4});
  trace.add(0, RequestSpec{2, kNoResource, 1});
  trace.add(2, RequestSpec{0, kNoResource, 4});
  expect_round_trip(trace);
}

TEST(TraceIo, RandomMixedRoundTripFuzz) {
  Prng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::int32_t>(1 + rng.next_below(7));
    const auto d = static_cast<std::int32_t>(1 + rng.next_below(6));
    Trace trace(ProblemConfig{n, d});
    Round arrival = 0;
    const std::uint64_t count = rng.next_below(40);
    for (std::uint64_t i = 0; i < count; ++i) {
      arrival += static_cast<Round>(rng.next_below(4));
      RequestSpec spec;
      const auto first = static_cast<ResourceId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      ResourceId second = kNoResource;
      // Mix single- and two-alternative requests in one trace.
      if (n > 1 && rng.next_bool(0.6)) {
        second = static_cast<ResourceId>(
            rng.next_below(static_cast<std::uint64_t>(n - 1)));
        if (second >= first) ++second;
      }
      spec.alts = AltList(first, second);
      spec.window = static_cast<std::int32_t>(
          1 + rng.next_below(static_cast<std::uint64_t>(d)));
      trace.add(arrival, spec);
    }
    expect_round_trip(trace);
  }
}

TEST(TraceIo, PaperModelTracesKeepTheV1ByteFormat) {
  // Two-alternative, b=1, occ=1 traces must stay readable by
  // pre-generalization tooling: the v1 header and line layout, byte for
  // byte.
  Trace trace(ProblemConfig{3, 2});
  trace.add(0, RequestSpec{0, 1, 2});
  trace.add(1, RequestSpec{2, kNoResource, 1});
  std::stringstream buffer;
  trace.save(buffer);
  EXPECT_EQ(buffer.str(), "reqsched-trace 3 2 2\n0 0 1 1\n1 2 -1 1\n");
}

TEST(TraceIo, GeneralizedTracesRoundTripThroughV2) {
  // Any of the three new axes (k > 2, b > 1, occupancy > 1, per-resource
  // capacities) forces the v2 format; everything must survive the trip.
  Trace trace(ProblemConfig{5, 4, 2, {1, 2, 2, 3, 1}});
  RequestSpec wide;
  wide.alts = AltList(0, 1);
  wide.alts.push_back(3);
  wide.alts.push_back(4);
  wide.window = 3;
  trace.add(0, wide);
  trace.add(1, RequestSpec{2, kNoResource, 4, 3});  // a 3-round run
  trace.add(1, RequestSpec{4, 0, 2});
  std::stringstream buffer;
  trace.save(buffer);
  EXPECT_EQ(buffer.str().rfind("reqsched-trace-v2 ", 0), 0u)
      << "generalized traces must use the v2 header";
  expect_round_trip(trace);
}

TEST(TraceIo, V2RandomRoundTripFuzz) {
  Prng rng(4096);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<std::int32_t>(2 + rng.next_below(6));
    const auto d = static_cast<std::int32_t>(2 + rng.next_below(5));
    ProblemConfig config{n, d,
                         static_cast<std::int32_t>(1 + rng.next_below(3))};
    if (rng.next_bool(0.4)) {
      for (std::int32_t r = 0; r < n; ++r) {
        config.capacities.push_back(
            static_cast<std::int32_t>(1 + rng.next_below(4)));
      }
    }
    Trace trace(config);
    Round arrival = 0;
    const std::uint64_t count = rng.next_below(30);
    for (std::uint64_t i = 0; i < count; ++i) {
      arrival += static_cast<Round>(rng.next_below(3));
      RequestSpec spec;
      const auto k = static_cast<std::int32_t>(
          1 + rng.next_below(static_cast<std::uint64_t>(std::min(n, 8))));
      while (spec.alts.size() < k) {
        const auto r = static_cast<ResourceId>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        bool seen = false;
        for (const ResourceId have : spec.alts) seen |= have == r;
        if (!seen) spec.alts.push_back(r);
      }
      spec.window = static_cast<std::int32_t>(
          1 + rng.next_below(static_cast<std::uint64_t>(d)));
      spec.occupancy = static_cast<std::int32_t>(
          1 + rng.next_below(static_cast<std::uint64_t>(spec.window)));
      trace.add(arrival, spec);
    }
    expect_round_trip(trace);
  }
}

TEST(TraceIo, V2RejectsMissingCapacityLine) {
  std::stringstream bad("reqsched-trace-v2 2 3 1\n0 0 1 2 0 1\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, V2RejectsOversizedOccupancy) {
  // occupancy 3 cannot fit the request's 2-round window [0, 1].
  std::stringstream bad("reqsched-trace-v2 2 3 1\ncapacity 1\n0 1 3 1 0\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, V2RejectsBadAlternativeCount) {
  std::stringstream bad("reqsched-trace-v2 2 3 1\ncapacity 1\n0 1 1 0\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, V2RejectsShortCapacityList) {
  // n = 3 but only two per-resource entries.
  std::stringstream bad("reqsched-trace-v2 3 2 0\ncapacity 1 2 2\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsDeadlineBeyondWindow) {
  // d = 3 allows deadlines in [arrival, arrival + 2]; 5 is out of range.
  std::stringstream bad("reqsched-trace 2 3 1\n0 0 1 5\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsDeadlineBeforeArrival) {
  std::stringstream bad("reqsched-trace 2 3 1\n4 0 1 3\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsNegativeRequestCount) {
  std::stringstream bad("reqsched-trace 2 2 -1\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::stringstream bad("reqsched-trace 2 2 3\n0 0 1 1\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsRowsBeyondDeclaredCount) {
  // Header says one request, stream carries two: the loader must not
  // silently drop the tail.
  std::stringstream bad("reqsched-trace 2 2 1\n0 0 1 1\n1 1 0 2\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, AcceptsTrailingWhitespaceOnly) {
  std::stringstream ok("reqsched-trace 2 2 1\n0 0 1 1\n  \n\n");
  const Trace trace = Trace::load(ok);
  EXPECT_EQ(trace.size(), 1);
  EXPECT_EQ(trace.request(0).deadline, 1);
}

}  // namespace
}  // namespace reqsched
