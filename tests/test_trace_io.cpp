// Trace serialization: save/load round-trip fuzzing plus the rejection
// paths of the validating loader (deadline bounds, header count mismatches).
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "util/prng.hpp"

namespace reqsched {
namespace {

void expect_round_trip(const Trace& trace) {
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  ASSERT_EQ(loaded.config().n, trace.config().n);
  ASSERT_EQ(loaded.config().d, trace.config().d);
  ASSERT_EQ(loaded.size(), trace.size());
  for (RequestId id = 0; id < trace.size(); ++id) {
    const Request& want = trace.request(id);
    const Request& got = loaded.request(id);
    EXPECT_EQ(got.arrival, want.arrival) << "request " << id;
    EXPECT_EQ(got.deadline, want.deadline) << "request " << id;
    EXPECT_EQ(got.first, want.first) << "request " << id;
    EXPECT_EQ(got.second, want.second) << "request " << id;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  expect_round_trip(Trace(ProblemConfig{5, 3}));
}

TEST(TraceIo, SingleAlternativeRoundTrips) {
  Trace trace(ProblemConfig{3, 4});
  trace.add(0, RequestSpec{2, kNoResource, 1});
  trace.add(2, RequestSpec{0, kNoResource, 4});
  expect_round_trip(trace);
}

TEST(TraceIo, RandomMixedRoundTripFuzz) {
  Prng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::int32_t>(1 + rng.next_below(7));
    const auto d = static_cast<std::int32_t>(1 + rng.next_below(6));
    Trace trace(ProblemConfig{n, d});
    Round arrival = 0;
    const std::uint64_t count = rng.next_below(40);
    for (std::uint64_t i = 0; i < count; ++i) {
      arrival += static_cast<Round>(rng.next_below(4));
      RequestSpec spec;
      spec.first = static_cast<ResourceId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      // Mix single- and two-alternative requests in one trace.
      if (n > 1 && rng.next_bool(0.6)) {
        spec.second = static_cast<ResourceId>(
            rng.next_below(static_cast<std::uint64_t>(n - 1)));
        if (spec.second >= spec.first) ++spec.second;
      }
      spec.window = static_cast<std::int32_t>(
          1 + rng.next_below(static_cast<std::uint64_t>(d)));
      trace.add(arrival, spec);
    }
    expect_round_trip(trace);
  }
}

TEST(TraceIo, RejectsDeadlineBeyondWindow) {
  // d = 3 allows deadlines in [arrival, arrival + 2]; 5 is out of range.
  std::stringstream bad("reqsched-trace 2 3 1\n0 0 1 5\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsDeadlineBeforeArrival) {
  std::stringstream bad("reqsched-trace 2 3 1\n4 0 1 3\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsNegativeRequestCount) {
  std::stringstream bad("reqsched-trace 2 2 -1\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::stringstream bad("reqsched-trace 2 2 3\n0 0 1 1\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, RejectsRowsBeyondDeclaredCount) {
  // Header says one request, stream carries two: the loader must not
  // silently drop the tail.
  std::stringstream bad("reqsched-trace 2 2 1\n0 0 1 1\n1 1 0 2\n");
  EXPECT_THROW(Trace::load(bad), ContractViolation);
}

TEST(TraceIo, AcceptsTrailingWhitespaceOnly) {
  std::stringstream ok("reqsched-trace 2 2 1\n0 0 1 1\n  \n\n");
  const Trace trace = Trace::load(ok);
  EXPECT_EQ(trace.size(), 1);
  EXPECT_EQ(trace.request(0).deadline, 1);
}

}  // namespace
}  // namespace reqsched
