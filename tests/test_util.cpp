// Unit tests for util: contracts, PRNG, fractions, CLI, tables, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/fraction.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace reqsched {
namespace {

TEST(Assert, ChecksThrowContractViolation) {
  EXPECT_NO_THROW(REQSCHED_CHECK(1 + 1 == 2));
  EXPECT_THROW(REQSCHED_CHECK(1 + 1 == 3), ContractViolation);
  try {
    REQSCHED_CHECK_MSG(false, "context " << 42);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, NextBelowIsInRangeAndCoversRange) {
  Prng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Prng, NextInHonorsBounds) {
  Prng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ShufflePreservesElements) {
  Prng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Prng, StateRoundTripReplaysTheExactSequence) {
  Prng source(99);
  for (int i = 0; i < 57; ++i) source.next();  // advance mid-stream

  // set_state() resumes the exact output sequence from the captured point,
  // including the derived distributions (the checkpoint bit-identity
  // guarantee for every PRNG-driven workload and strategy).
  Prng restored(1);  // different seed: the state must fully overwrite it
  restored.set_state(source.state());
  Prng witness = source;  // copy continues the same stream
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(restored.next(), witness.next());
  }
  EXPECT_EQ(restored.next_below(17), witness.next_below(17));
  EXPECT_EQ(restored.next_double(), witness.next_double());
}

TEST(Prng, StateWordHelpersRoundTripAndValidate) {
  Prng source(1234);
  source.next();
  std::vector<std::uint64_t> words;
  words.push_back(7);  // helpers append after existing content
  append_prng_words(source, words);
  ASSERT_EQ(words.size(), 5u);

  Prng restored(5);
  restore_prng_words(restored,
                     std::span<const std::uint64_t>(words).subspan(1));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored.next(), source.next());

  // Wrong word counts and the all-zero fixed point are contract violations.
  Prng victim(6);
  EXPECT_THROW(restore_prng_words(
                   victim, std::span<const std::uint64_t>(words).subspan(2)),
               ContractViolation);
  EXPECT_THROW(victim.set_state({0, 0, 0, 0}), ContractViolation);
}

TEST(Zipf, SkewsTowardsLowIndices) {
  Prng rng(21);
  ZipfSampler sampler(16, 1.2);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_GT(counts[0], counts[8]);
  EXPECT_GT(counts[0], counts[15]);
}

TEST(Fraction, ArithmeticAndOrdering) {
  const Fraction a(1, 2);
  const Fraction b(2, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a + b, Fraction(1));
  EXPECT_EQ(Fraction(3, 2) - Fraction(1, 2), Fraction(1));
  EXPECT_EQ(Fraction(2, 3) * Fraction(3, 4), Fraction(1, 2));
  EXPECT_EQ(Fraction(1, 2) / Fraction(1, 4), Fraction(2));
  EXPECT_LT(Fraction(4, 3), Fraction(3, 2));
  EXPECT_GT(Fraction(45, 41), Fraction(12, 11));
  EXPECT_EQ(Fraction(-2, -4), Fraction(1, 2));
  EXPECT_EQ(Fraction(2, -4), Fraction(-1, 2));
  EXPECT_THROW(Fraction(1, 0), ContractViolation);
  std::ostringstream os;
  os << Fraction(5, 3) << ' ' << Fraction(2);
  EXPECT_EQ(os.str(), "5/3 2");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7",
                        "--flag", "--list=1,2,3", "--name", "x"};
  CliArgs args(8, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_string("name", ""), "x");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  const auto list = args.get_int_list("list", {});
  EXPECT_EQ(list, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_TRUE(args.unused_keys().empty());
}

TEST(Cli, RejectsMalformedInput) {
  const char* bad[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, bad), ContractViolation);
  const char* argv[] = {"prog", "--x=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("x", 0), ContractViolation);
}

TEST(Cli, ReportsUnusedKeys) {
  const char* argv[] = {"prog", "--typo=1"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.unused_keys(), std::vector<std::string>{"typo"});
}

TEST(AsciiTable, RendersAlignedRows) {
  AsciiTable table({"name", "value"});
  table.set_title("demo");
  table.add_row({"x", "1"});
  table.add_row({"longer", AsciiTable::fmt(1.5, 2)});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one-cell"}), ContractViolation);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  parallel_for(pool, 100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 30);
}

}  // namespace
}  // namespace reqsched
