// Corruption tests for the REQSCHED_AUDIT invariant oracles.
//
// Each oracle (DeltaWindowProblem, RequestPool, WindowedPrefixOpt,
// StreamingEngine::audit_check) re-derives its structure from a naive model
// and throws ContractViolation on any disagreement. These tests deliberately
// corrupt the private state through the befriended AuditTestAccess hooks and
// assert the oracle actually fires — a silent oracle is worse than none,
// because the audit CI job would then certify nothing.
//
// The audit_check() entry points and the REQSCHED_AUDIT_REQUIRE macros are
// compiled in every build (only the per-mutation call sites are gated on
// REQSCHED_AUDIT_ENABLED), so this suite runs in the plain tier-1 pass too.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/workload.hpp"
#include "engine/request_pool.hpp"
#include "engine/simulator.hpp"
#include "engine/streaming.hpp"
#include "engine/windowed_opt.hpp"
#include "matching/delta_window.hpp"
#include "util/assert.hpp"

namespace reqsched {

/// The befriended corruption hooks. Lives in namespace reqsched (not the
/// anonymous namespace) so it names the `friend struct AuditTestAccess`
/// declared by the audited classes.
struct AuditTestAccess {
  // ---- DeltaWindowProblem ----
  static void corrupt_grid(DeltaWindowProblem& w, SlotRef slot, RequestId id) {
    w.grid_[w.unit_base(w.cell_index(slot))] = id;
  }
  static void flip_free_bit(DeltaWindowProblem& w, SlotRef slot) {
    const std::size_t words = w.words_per_column();
    const auto res = static_cast<std::size_t>(slot.resource);
    w.free_[w.column_of(slot.round) * words + res / 64] ^=
        std::uint64_t{1} << (res % 64);
  }
  static void flip_res_mask_bit(DeltaWindowProblem& w, SlotRef slot) {
    const std::size_t col = w.column_of(slot.round);
    w.res_free_[static_cast<std::size_t>(slot.resource) *
                    w.words_per_resource() +
                col / 64] ^= std::uint64_t{1} << (col % 64);
  }
  static void set_res_mask_high_bit(DeltaWindowProblem& w, ResourceId res) {
    w.res_free_[static_cast<std::size_t>(res) * w.words_per_resource() +
                w.words_per_resource() - 1] |= std::uint64_t{1} << 63;
  }
  static void skew_free_count(DeltaWindowProblem& w, SlotRef slot) {
    --w.free_count_[w.cell_index(slot)];
  }
  static void skew_claim_count(DeltaWindowProblem& w, SlotRef slot) {
    ++w.claim_count_[w.cell_index(slot)];
  }
  static void skew_unbooked_rows(DeltaWindowProblem& w) {
    ++w.unbooked_rows_;
  }
  static void skew_booked_runs(DeltaWindowProblem& w) { ++w.booked_runs_; }
  static void skew_col_held(DeltaWindowProblem& w, Round round) {
    ++w.col_held_[w.column_of(round)];
  }
  static void plant_hold(DeltaWindowProblem& w, SlotRef slot) {
    w.grid_[w.unit_base(w.cell_index(slot))] = kHeldUnit;
  }
  static void set_claim_bit(DeltaWindowProblem& w, SlotRef slot) {
    const std::size_t col = w.column_of(slot.round);
    w.res_claimed_[static_cast<std::size_t>(slot.resource) *
                       w.words_per_resource() +
                   col / 64] |= std::uint64_t{1} << (col % 64);
  }
  static void push_phantom_claim(DeltaWindowProblem& w, SlotRef slot) {
    w.batch_claims_.push_back(slot);
  }

  // ---- RequestPool ----
  static void bump_live_count(RequestPool& p) { ++p.live_; }
  static void poison_ring(RequestPool& p, RequestId id) {
    p.ring_at(id) = -7;  // neither a slab slot nor a known tombstone
  }
  static void duplicate_free_entry(RequestPool& p) {
    p.free_.push_back(p.free_.front());
  }
  static void skew_round_marks(RequestPool& p) {
    p.round_marks_.front().second = p.next_ + 5;
  }

  // ---- WindowedPrefixOpt ----
  static void sever_first_match(WindowedPrefixOpt& o) {
    for (auto& s : o.slots_) {
      if (s.key >= 0 && !s.dead && s.match >= 0) {
        s.match = -1;  // the left still points here: mutuality breaks
        return;
      }
    }
    FAIL() << "no matched slot to sever";
  }
  static void bump_live_matched(WindowedPrefixOpt& o) { ++o.live_matched_; }
  static void shift_first_key(WindowedPrefixOpt& o) {
    for (auto& s : o.slots_) {
      if (s.key >= 0) {
        s.key += 1000;  // slot_index_ still maps the old key here
        return;
      }
    }
    FAIL() << "no interned slot to corrupt";
  }

  // ---- StreamingEngine ----
  static void duplicate_alive(StreamingEngine& e) {
    e.alive_.push_back(e.alive_.front());
  }
  static void drop_alive(StreamingEngine& e) { e.alive_.pop_back(); }
};

namespace {

Request two_choice_request(RequestId id, Round arrival, Round deadline,
                           ResourceId first, ResourceId second) {
  return Request{id, arrival, deadline, AltList(first, second)};
}

/// A strategy that books nothing; optionally asks for the delta-maintained
/// window problem so the engine mirrors arrivals/retirements into it.
class IdleStrategy final : public IStrategy {
 public:
  explicit IdleStrategy(bool wants_window) : wants_window_(wants_window) {}
  std::string name() const override { return "idle"; }
  void on_round(Simulator&) override {}
  bool wants_window_problem() const override { return wants_window_; }

 private:
  bool wants_window_;
};

// ---------------------------------------------------------------------------
// DeltaWindowProblem

class DeltaWindowAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    window_.reset(ProblemConfig{2, 3});
    window_.add_request(two_choice_request(0, 0, 2, 0, 1));
    window_.add_request(two_choice_request(1, 0, 1, 1, kNoResource));
    window_.book(0, SlotRef{0, 1});
  }
  DeltaWindowProblem window_;
};

TEST_F(DeltaWindowAudit, CleanStatePasses) {
  EXPECT_NO_THROW(window_.audit_check());
  window_.unbook(0);
  window_.retire(1);
  EXPECT_NO_THROW(window_.audit_check());
}

TEST_F(DeltaWindowAudit, FiresOnGridCorruption) {
  // A free cell claims an occupant the row table knows nothing about.
  AuditTestAccess::corrupt_grid(window_, SlotRef{1, 2}, 99);
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnStaleFreeBit) {
  // The column bitmask says "booked" while the grid says "free".
  AuditTestAccess::flip_free_bit(window_, SlotRef{1, 0});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnTransposedMaskDrift) {
  // The transposed per-resource view disagrees with the column view.
  AuditTestAccess::flip_res_mask_bit(window_, SlotRef{0, 2});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnMaskBitsPastD) {
  // Bits at or above d break the rotate arithmetic even when every in-range
  // bit agrees.
  AuditTestAccess::set_res_mask_high_bit(window_, 0);
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnFreeCountDrift) {
  // The authoritative per-cell free count disagrees with the unit grid.
  AuditTestAccess::skew_free_count(window_, SlotRef{1, 2});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnUnbookedCounterDrift) {
  AuditTestAccess::skew_unbooked_rows(window_);
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnBookedRunCounterDrift) {
  AuditTestAccess::skew_booked_runs(window_);
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnColumnHoldTallyDrift) {
  AuditTestAccess::skew_col_held(window_, 2);
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnPhantomHold) {
  // A free unit marked as an executed-run hold without the tallies knowing.
  AuditTestAccess::plant_hold(window_, SlotRef{1, 2});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, OccupancyRunLifecyclePasses) {
  // A 2-round run books two units, executes into a hold, and the hold
  // departs with its column — clean at every step.
  DeltaWindowProblem w;
  w.reset(ProblemConfig{2, 3});
  Request run{7, 0, 2, AltList(0, 1), /*occ=*/2};
  w.add_request(run);
  EXPECT_NO_THROW(w.audit_check());
  w.book(7, SlotRef{0, 0});
  EXPECT_NO_THROW(w.audit_check());
  w.retire_executed(7);  // start unit consumed, round-1 unit becomes a hold
  EXPECT_NO_THROW(w.audit_check());
  EXPECT_EQ(w.free_units(SlotRef{0, 1}), 0);
  w.advance();
  EXPECT_NO_THROW(w.audit_check());
  w.advance();  // the hold's column departs
  EXPECT_NO_THROW(w.audit_check());
  EXPECT_EQ(w.free_units(SlotRef{0, 3}), 1);
}

TEST_F(DeltaWindowAudit, FiresOnClaimCountDrift) {
  // A claim count with no matching batch_claims_ entry.
  window_.begin_admission_batch();
  AuditTestAccess::skew_claim_count(window_, SlotRef{1, 1});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnClaimMaskDrift) {
  // A claim bit with no matching batch_claims_ entry: probes would treat the
  // slot as taken while the commit loop would never book it.
  window_.begin_admission_batch();
  AuditTestAccess::set_claim_bit(window_, SlotRef{1, 1});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnClaimsLeakingPastTheBatch) {
  // batch_claims_ entries must evaporate with end_admission_batch(); a
  // leftover entry means a later batch would commit a stale slot.
  AuditTestAccess::push_phantom_claim(window_, SlotRef{1, 1});
  EXPECT_THROW(window_.audit_check(), ContractViolation);
}

TEST_F(DeltaWindowAudit, FiresOnBookedClaim) {
  // Claims must never cover booked slots (claims-only batches leave the free
  // bits untouched, so booking a claimed slot mid-batch is legal at the
  // book() contract level — only the audit oracle sees the divergence). In
  // REQSCHED_AUDIT builds book()'s own mutation call site fires the oracle
  // before the explicit check does; both throws are the point.
  window_.begin_admission_batch();
  window_.claim_admission_slot(SlotRef{1, 1});
  EXPECT_THROW(
      {
        window_.book(1, SlotRef{1, 1});
        window_.audit_check();
      },
      ContractViolation);
}

// ---------------------------------------------------------------------------
// RequestPool

class RequestPoolAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_.reset(ProblemConfig{2, 2}, /*retain_history=*/false);
    a_ = pool_.admit(0, RequestSpec{0, 1, 0});
    b_ = pool_.admit(0, RequestSpec{1, 0, 0});
    c_ = pool_.admit(1, RequestSpec{0, kNoResource, 0});
    pool_.fulfill(a_, SlotRef{0, 0});
  }
  RequestPool pool_;
  RequestId a_ = kNoRequest;
  RequestId b_ = kNoRequest;
  RequestId c_ = kNoRequest;
};

TEST_F(RequestPoolAudit, CleanStatePasses) {
  EXPECT_NO_THROW(pool_.audit_check());
  pool_.expire(b_);
  pool_.advance(2);
  EXPECT_NO_THROW(pool_.audit_check());
}

TEST_F(RequestPoolAudit, CleanRetainModePasses) {
  RequestPool retain;
  retain.reset(ProblemConfig{2, 3}, /*retain_history=*/true);
  const RequestId x = retain.admit(0, RequestSpec{0, 1, 0});
  retain.fulfill(x, SlotRef{1, 1});
  retain.admit(1, RequestSpec{1, 0, 0});
  EXPECT_NO_THROW(retain.audit_check());
}

TEST_F(RequestPoolAudit, FiresOnLiveCountDrift) {
  AuditTestAccess::bump_live_count(pool_);
  EXPECT_THROW(pool_.audit_check(), ContractViolation);
}

TEST_F(RequestPoolAudit, FiresOnUnknownTombstone) {
  AuditTestAccess::poison_ring(pool_, b_);
  EXPECT_THROW(pool_.audit_check(), ContractViolation);
}

TEST_F(RequestPoolAudit, FiresOnFreeListDuplicate) {
  // a_'s slab slot is on the free list; referencing it twice leaks the slab
  // accounting.
  AuditTestAccess::duplicate_free_entry(pool_);
  EXPECT_THROW(pool_.audit_check(), ContractViolation);
}

TEST_F(RequestPoolAudit, FiresOnRoundMarkSkew) {
  AuditTestAccess::skew_round_marks(pool_);
  EXPECT_THROW(pool_.audit_check(), ContractViolation);
}

// ---------------------------------------------------------------------------
// WindowedPrefixOpt

class WindowedOptAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    opt_.reset(ProblemConfig{2, 2});
    // Resource 0 only, rounds {0, 1}: two requests saturate it.
    EXPECT_TRUE(opt_.add_request(two_choice_request(0, 0, 1, 0, kNoResource)));
    EXPECT_TRUE(opt_.add_request(two_choice_request(1, 0, 1, 0, kNoResource)));
  }
  WindowedPrefixOpt opt_;
};

TEST_F(WindowedOptAudit, CleanStatePasses) {
  EXPECT_NO_THROW(opt_.audit_check());
  // A third request on the saturated resource fails its search and freezes
  // the Hall witness; the structure must stay consistent through the freeze
  // and the closure prune.
  EXPECT_FALSE(opt_.add_request(two_choice_request(2, 1, 1, 0, kNoResource)));
  EXPECT_NO_THROW(opt_.audit_check());
  EXPECT_EQ(opt_.optimum(), 2);
  opt_.advance_to(2);
  EXPECT_NO_THROW(opt_.audit_check());
  EXPECT_EQ(opt_.optimum(), 2);
}

TEST_F(WindowedOptAudit, FiresOnSeveredMatchPointer) {
  AuditTestAccess::sever_first_match(opt_);
  EXPECT_THROW(opt_.audit_check(), ContractViolation);
}

TEST_F(WindowedOptAudit, FiresOnMatchedCounterDrift) {
  AuditTestAccess::bump_live_matched(opt_);
  EXPECT_THROW(opt_.audit_check(), ContractViolation);
}

TEST_F(WindowedOptAudit, FiresOnInterningDrift) {
  AuditTestAccess::shift_first_key(opt_);
  EXPECT_THROW(opt_.audit_check(), ContractViolation);
}

// ---------------------------------------------------------------------------
// StreamingEngine

class StreamingAudit : public ::testing::Test {
 protected:
  StreamingAudit() : trace_(ProblemConfig{2, 3}) {
    trace_.add(0, RequestSpec{0, 1, 0});
    trace_.add(0, RequestSpec{1, 0, 0});
    trace_.add(1, RequestSpec{0, kNoResource, 0});
  }
  Trace trace_;
};

TEST_F(StreamingAudit, CleanStatePassesWithWindowMirror) {
  TraceWorkload workload(trace_);
  IdleStrategy strategy(/*wants_window=*/true);
  Simulator sim(workload, strategy, streaming_options());
  ASSERT_TRUE(sim.step());
  EXPECT_NO_THROW(sim.engine().audit_check());
  ASSERT_TRUE(sim.step());
  EXPECT_NO_THROW(sim.engine().audit_check());
}

TEST_F(StreamingAudit, FiresOnDuplicateAliveEntry) {
  TraceWorkload workload(trace_);
  IdleStrategy strategy(/*wants_window=*/false);
  Simulator sim(workload, strategy, streaming_options());
  ASSERT_TRUE(sim.step());
  AuditTestAccess::duplicate_alive(sim.engine());
  EXPECT_THROW(sim.engine().audit_check(), ContractViolation);
}

TEST_F(StreamingAudit, FiresOnDroppedAliveEntry) {
  TraceWorkload workload(trace_);
  IdleStrategy strategy(/*wants_window=*/true);
  Simulator sim(workload, strategy, streaming_options());
  ASSERT_TRUE(sim.step());
  AuditTestAccess::drop_alive(sim.engine());
  EXPECT_THROW(sim.engine().audit_check(), ContractViolation);
}

// In audit builds the oracles also run automatically after every mutation;
// a healthy end-to-end run must sail through all of them.
TEST(AuditBuild, FullRunIsCleanUnderAutomaticOracles) {
  Trace trace(ProblemConfig{2, 3});
  trace.add(0, RequestSpec{0, 1, 0});
  trace.add(0, RequestSpec{1, 0, 0});
  trace.add(2, RequestSpec{0, 1, 0});
  trace.add(3, RequestSpec{1, kNoResource, 0});
  TraceWorkload workload(trace);
  IdleStrategy strategy(/*wants_window=*/true);
  EngineOptions options = streaming_options();
  options.track_live_opt = true;
  options.opt_prune_every = 1;
  Simulator sim(workload, strategy, options);
  EXPECT_NO_THROW(sim.run());
  EXPECT_NO_THROW(sim.engine().audit_check());
#ifdef REQSCHED_AUDIT
  EXPECT_EQ(REQSCHED_AUDIT_ENABLED, 1);
#else
  EXPECT_EQ(REQSCHED_AUDIT_ENABLED, 0);
#endif
}

}  // namespace
}  // namespace reqsched
