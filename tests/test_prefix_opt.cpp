// Tests for the incremental prefix-optimum engine and its probe: prefix
// optima are monotone, agree with the König-certified offline solver on
// EVERY prefix (randomized and adversarial traces), and the per-round ratio
// series is consistent with the full-run harness numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "adversary/random.hpp"
#include "adversary/theorems.hpp"
#include "analysis/harness.hpp"
#include "analysis/prefix.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "matching/bipartite.hpp"
#include "matching/incremental.hpp"
#include "offline/offline.hpp"

namespace reqsched {
namespace {

RequestSpec spec_of(const Request& r) {
  return RequestSpec{r.first(), r.second(),
                     static_cast<std::int32_t>(r.deadline - r.arrival + 1)};
}

/// Hard invariant: after every single arrival, the incremental optimum
/// equals solve_offline (Hopcroft–Karp + König certificate) on the prefix,
/// and it never moves by more than one.
void expect_prefix_exact(const Trace& trace) {
  PrefixOptimumTracker tracker(trace.config());
  Trace prefix(trace.config());
  std::int64_t previous = 0;
  for (const Request& r : trace.requests()) {
    prefix.add(r.arrival, spec_of(r));
    const bool grew = tracker.add_request(r);
    const std::int64_t opt = tracker.optimum();
    EXPECT_GE(opt, previous) << "prefix optimum decreased at " << r;
    EXPECT_LE(opt, previous + 1) << "prefix optimum jumped at " << r;
    EXPECT_EQ(grew, opt == previous + 1);
    ASSERT_EQ(opt, offline_optimum(prefix))
        << "incremental != offline after " << r;
    previous = opt;
  }
  EXPECT_EQ(tracker.requests_seen(), trace.size());
}

Trace realized_trace(IWorkload& workload, const std::string& strategy_name) {
  auto strategy = make_strategy(strategy_name);
  Simulator sim(workload, *strategy);
  sim.run();
  return sim.trace();
}

TEST(IncrementalMatching, GrowsOneAugmentationAtATime) {
  IncrementalMatching m;
  EXPECT_EQ(m.size(), 0);
  EXPECT_TRUE(m.add_left(std::vector<std::int32_t>{0}));
  EXPECT_EQ(m.size(), 1);
  // Same single neighbour: must reroute nothing and report no growth.
  EXPECT_FALSE(m.add_left(std::vector<std::int32_t>{0}));
  EXPECT_EQ(m.size(), 1);
  // New right frees the conflict via an augmenting path 2 -> 0 -> 1.
  EXPECT_TRUE(m.add_left(std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.left_of(0) >= 0, true);
  EXPECT_EQ(m.left_of(1) >= 0, true);
}

TEST(IncrementalMatching, MatchesHopcroftKarpOnRandomGraphs) {
  std::mt19937 rng(1234);
  for (int instance = 0; instance < 20; ++instance) {
    const std::int32_t lefts = 40;
    const std::int32_t rights = 1 + static_cast<std::int32_t>(rng() % 30);
    std::uniform_int_distribution<std::int32_t> pick_right(0, rights - 1);
    std::uniform_int_distribution<int> degree(0, 4);

    IncrementalMatching incremental;
    BipartiteGraph g(lefts, rights);
    for (std::int32_t l = 0; l < lefts; ++l) {
      std::vector<std::int32_t> nbrs;
      const int deg = degree(rng);
      for (int e = 0; e < deg; ++e) {
        const std::int32_t r = pick_right(rng);
        // Distinct rights per left: the builder rejects duplicates in debug.
        if (std::find(nbrs.begin(), nbrs.end(), r) == nbrs.end()) {
          nbrs.push_back(r);
        }
      }
      for (const std::int32_t r : nbrs) g.add_edge(l, r);
      g.finalize();
      incremental.add_left(nbrs);
      // Maximum on every prefix subgraph: compare against a from-scratch
      // solve of the first l+1 lefts.
      BipartiteGraph prefix(l + 1, rights);
      for (std::int32_t pl = 0; pl <= l; ++pl) {
        for (const std::int32_t r : g.neighbors(pl)) prefix.add_edge(pl, r);
      }
      prefix.finalize();
      ASSERT_EQ(incremental.size(), hopcroft_karp(prefix).size())
          << "instance " << instance << " after left " << l;
    }
  }
}

TEST(PrefixOpt, ExactOnRandomizedTraces) {
  for (const std::uint64_t seed : {1u, 2u, 7u}) {
    const RandomWorkloadOptions base{.n = 4, .d = 3, .load = 1.8,
                                     .horizon = 25, .seed = seed,
                                     .two_choice = true};
    UniformWorkload uniform(base);
    expect_prefix_exact(realized_trace(uniform, "A_fix"));
    ZipfWorkload zipf(base, 1.1);
    expect_prefix_exact(realized_trace(zipf, "A_balance"));
    BlockStormWorkload storm(base, 0.4, 3);
    expect_prefix_exact(realized_trace(storm, "A_eager"));
  }
}

TEST(PrefixOpt, ExactOnAllFiveLowerBoundInstances) {
  const auto check = [](TheoremInstance instance,
                        const std::string& strategy_name) {
    SCOPED_TRACE("theorem " + instance.theorem);
    expect_prefix_exact(realized_trace(*instance.workload, strategy_name));
  };
  check(make_lb_fix(4, 3), "A_fix");
  check(make_lb_current(3, 3), "A_current");
  check(make_lb_fix_balance(4, 3), "A_fix_balance");
  check(make_lb_eager(4, 3), "A_eager");
  check(make_lb_balance(2, 2, 3), "A_balance");
}

TEST(PrefixOpt, ProbeMatchesOfflineOnEveryRoundPrefix) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.6, .horizon = 15,
                            .seed = 5, .two_choice = true});
  PrefixOptimumProbe probe(make_strategy("A_fix"));
  Simulator sim(workload, probe);
  sim.run();

  const Trace& trace = sim.trace();
  ASSERT_EQ(static_cast<std::int64_t>(probe.samples().size()),
            sim.metrics().rounds);
  std::int64_t prev_opt = 0;
  std::int64_t prev_fulfilled = 0;
  for (const RoundSample& s : probe.samples()) {
    ASSERT_TRUE(s.has_prefix());
    Trace prefix(trace.config());
    for (const Request& r : trace.requests()) {
      if (r.arrival > s.round) break;
      prefix.add(r.arrival, spec_of(r));
    }
    EXPECT_EQ(s.prefix_opt, offline_optimum(prefix)) << "round " << s.round;
    EXPECT_GE(s.prefix_opt, prev_opt);
    EXPECT_GE(s.prefix_fulfilled, prev_fulfilled);
    EXPECT_GE(s.prefix_opt, s.prefix_fulfilled);
    prev_opt = s.prefix_opt;
    prev_fulfilled = s.prefix_fulfilled;
  }
  EXPECT_EQ(prev_opt, offline_optimum(trace));
  EXPECT_EQ(prev_fulfilled, sim.metrics().fulfilled);
}

TEST(PrefixOpt, FinalPrefixSampleEqualsRunResult) {
  for (const auto& name : global_strategy_names()) {
    UniformWorkload workload({.n = 4, .d = 3, .load = 1.7, .horizon = 20,
                              .seed = 9, .two_choice = true});
    auto strategy = make_strategy(name);
    const RunResult result = run_experiment(
        workload, *strategy, {.analyze_paths = false, .track_prefix = true});
    ASSERT_FALSE(result.prefix_series.empty()) << name;
    const RoundSample& last = result.prefix_series.back();
    EXPECT_EQ(last.prefix_opt, result.optimum) << name;
    EXPECT_EQ(last.prefix_fulfilled, result.metrics.fulfilled) << name;
    EXPECT_DOUBLE_EQ(last.prefix_ratio, result.ratio) << name;
  }
}

TEST(PrefixOpt, SlopeRatiosComeFromOneRun) {
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.7, .horizon = 30,
                            .seed = 3, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  const RunResult run = run_experiment(
      workload, *strategy, {.analyze_paths = false, .track_prefix = true});
  ASSERT_GE(run.prefix_series.size(), 10u);

  const Round a = 5;
  const Round b = static_cast<Round>(run.prefix_series.size()) - 1;
  const RoundSample& sa = run.prefix_series[static_cast<std::size_t>(a)];
  const RoundSample& sb = run.prefix_series[static_cast<std::size_t>(b)];
  const double expected =
      static_cast<double>(sb.prefix_opt - sa.prefix_opt) /
      static_cast<double>(sb.prefix_fulfilled - sa.prefix_fulfilled);
  EXPECT_DOUBLE_EQ(prefix_slope_ratio(run, a, b), expected);

  const auto series = prefix_slope_series(run, a);
  ASSERT_EQ(series.size(),
            run.prefix_series.size() - static_cast<std::size_t>(a) - 1);
  EXPECT_DOUBLE_EQ(series.back(), expected);

  // The slope at the full horizon of a fulfilled-everything baseline is the
  // same additive-constant-free quantity pairwise_slope_ratio reports
  // between two separate runs — here it cost one simulation, not two.
  EXPECT_THROW(prefix_slope_ratio(run, b, a), ContractViolation);
}

TEST(PrefixOpt, UntrackedRunsCarryNoSeries) {
  UniformWorkload workload({.n = 3, .d = 2, .load = 1.0, .horizon = 10,
                            .seed = 4, .two_choice = true});
  auto strategy = make_strategy("A_fix");
  const RunResult run =
      run_experiment(workload, *strategy, {.analyze_paths = false});
  EXPECT_TRUE(run.prefix_series.empty());
  EXPECT_THROW(prefix_slope_ratio(run, 0, 1), ContractViolation);
}

TEST(PrefixOpt, CompetitiveRatioDegenerateConventions) {
  EXPECT_DOUBLE_EQ(competitive_ratio(0, 0), 1.0);
  EXPECT_TRUE(std::isinf(competitive_ratio(3, 0)));
  EXPECT_DOUBLE_EQ(competitive_ratio(3, 2), 1.5);
}

}  // namespace
}  // namespace reqsched
