// Behavioural tests of the five global strategies: each one's defining rule
// is checked against the simulator state round by round.
#include <gtest/gtest.h>

#include "adversary/random.hpp"
#include "analysis/registry.hpp"
#include "engine/simulator.hpp"
#include "strategies/global.hpp"
#include "strategies/scripted.hpp"

namespace reqsched {
namespace {

/// Wraps a strategy and asserts, via the proposal checker, that its outcome
/// is one the strategy class permits — i.e. the reference implementation
/// conforms to its own rules.
class SelfCheckStrategy final : public IStrategy {
 public:
  SelfCheckStrategy(StrategyKind kind)
      : kind_(kind), inner_(make_reference_strategy(kind)) {}

  std::string name() const override { return inner_->name() + "_selfcheck"; }
  void reset(const ProblemConfig& config) override { inner_->reset(config); }
  bool wants_window_problem() const override {
    return inner_->wants_window_problem();
  }

  void on_round(Simulator& sim) override {
    // Snapshot the checker's reference BEFORE the strategy runs by checking
    // the outcome against the pre-round state: check_proposal computes all
    // optima from the simulator, so it must run before edits. We therefore
    // run the inner strategy on a cloned decision and verify afterwards by
    // re-running the checker on the final booking map against a fresh
    // pre-state — instead, we verify directly: capture bookings after the
    // round and validate them with check_proposal evaluated lazily first.
    //
    // Simpler and exact: compute the check against the pre-state using a
    // deferred proposal — the inner strategy's result.
    pre_checked_ = false;
    inner_->on_round(sim);
    Proposal outcome;
    for (const RequestId id : sim.alive()) {
      const SlotRef slot = sim.slot_of(id);
      if (slot.valid()) outcome.emplace_back(id, slot);
    }
    outcomes_.push_back(std::move(outcome));
  }

  const std::vector<Proposal>& outcomes() const { return outcomes_; }

 private:
  StrategyKind kind_;
  std::unique_ptr<IStrategy> inner_;
  bool pre_checked_ = false;
  std::vector<Proposal> outcomes_;
};

/// Replays a workload under the reference strategy, capturing each round's
/// outcome; then replays again, this time feeding the captured outcomes as
/// proposals through the checker. Zero violations proves the reference
/// implementation obeys its own class rules.
void expect_reference_conforms(StrategyKind kind, IWorkload& workload) {
  // First pass: record outcomes.
  SelfCheckStrategy recorder(kind);
  {
    Simulator sim(workload, recorder);
    sim.run();
  }
  // Second pass: feed them back as proposals.
  class ReplaySource final : public IProposalSource {
   public:
    explicit ReplaySource(const std::vector<Proposal>& outcomes)
        : outcomes_(outcomes) {}
    std::optional<Proposal> propose(const Simulator&) override {
      REQSCHED_CHECK(index_ < outcomes_.size());
      return outcomes_[index_++];
    }

   private:
    const std::vector<Proposal>& outcomes_;
    std::size_t index_ = 0;
  } source(recorder.outcomes());

  ScriptedStrategy scripted(kind, source);
  Simulator sim(workload, scripted);
  sim.run();
  EXPECT_EQ(scripted.violations(), 0)
      << to_string(kind) << ": "
      << (scripted.violation_log().empty() ? std::string("-")
                                           : scripted.violation_log().front());
}

class ReferenceConformanceTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, std::uint64_t>> {
};

TEST_P(ReferenceConformanceTest, ReferenceObeysItsOwnRules) {
  const auto [kind, seed] = GetParam();
  UniformWorkload workload({.n = 4, .d = 3, .load = 1.3, .horizon = 30,
                            .seed = seed, .two_choice = true});
  expect_reference_conforms(kind, workload);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, ReferenceConformanceTest,
    ::testing::Combine(::testing::Values(StrategyKind::kFix,
                                         StrategyKind::kCurrent,
                                         StrategyKind::kFixBalance,
                                         StrategyKind::kEager,
                                         StrategyKind::kBalance),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AFixRule, NeverReschedules) {
  UniformWorkload workload({.n = 5, .d = 4, .load = 1.5, .horizon = 50,
                            .seed = 5, .two_choice = true});
  AFix strategy;
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(sim.metrics().reassignments, 0);
  EXPECT_EQ(sim.metrics().unassignments, 0);
}

TEST(AFixBalanceRule, NeverReschedules) {
  UniformWorkload workload({.n = 5, .d = 4, .load = 1.5, .horizon = 50,
                            .seed = 6, .two_choice = true});
  AFixBalance strategy;
  Simulator sim(workload, strategy);
  sim.run();
  EXPECT_EQ(sim.metrics().reassignments, 0);
  EXPECT_EQ(sim.metrics().unassignments, 0);
}

TEST(ACurrentRule, OnlyBooksTheCurrentRound) {
  // A_current books nothing into the future, so at the end of every round
  // the window beyond `now` is empty; equivalently the schedule's booked
  // count right before execution is at most n. We observe it via a probe.
  class Probe final : public IStrategy {
   public:
    std::string name() const override { return "probe"; }
    void reset(const ProblemConfig& config) override { inner_.reset(config); }
    bool wants_window_problem() const override {
      return inner_.wants_window_problem();
    }
    void on_round(Simulator& sim) override {
      inner_.on_round(sim);
      for (Round t = sim.now() + 1; t < sim.schedule().window_end(); ++t) {
        EXPECT_EQ(sim.schedule().booked_in_round(t), 0);
      }
    }
    ACurrent inner_;
  };
  UniformWorkload workload({.n = 4, .d = 5, .load = 1.2, .horizon = 40,
                            .seed = 7, .two_choice = true});
  Probe probe;
  Simulator sim(workload, probe);
  sim.run();
}

TEST(AEagerRule, PreviouslyScheduledStayScheduled) {
  class Probe final : public IStrategy {
   public:
    std::string name() const override { return "probe"; }
    void reset(const ProblemConfig& config) override { inner_.reset(config); }
    bool wants_window_problem() const override {
      return inner_.wants_window_problem();
    }
    void on_round(Simulator& sim) override {
      std::vector<RequestId> booked_before;
      for (const RequestId id : sim.alive()) {
        if (sim.is_scheduled(id)) booked_before.push_back(id);
      }
      inner_.on_round(sim);
      for (const RequestId id : booked_before) {
        EXPECT_TRUE(sim.is_scheduled(id)) << "r" << id << " was dropped";
      }
    }
    AEager inner_;
  };
  UniformWorkload workload({.n = 4, .d = 4, .load = 1.6, .horizon = 40,
                            .seed = 8, .two_choice = true});
  Probe probe;
  Simulator sim(workload, probe);
  sim.run();
}

TEST(ABalanceRule, PreviouslyScheduledStayScheduled) {
  class Probe final : public IStrategy {
   public:
    std::string name() const override { return "probe"; }
    void reset(const ProblemConfig& config) override { inner_.reset(config); }
    bool wants_window_problem() const override {
      return inner_.wants_window_problem();
    }
    void on_round(Simulator& sim) override {
      std::vector<RequestId> booked_before;
      for (const RequestId id : sim.alive()) {
        if (sim.is_scheduled(id)) booked_before.push_back(id);
      }
      inner_.on_round(sim);
      for (const RequestId id : booked_before) {
        EXPECT_TRUE(sim.is_scheduled(id)) << "r" << id << " was dropped";
      }
    }
    ABalance inner_;
  };
  UniformWorkload workload({.n = 4, .d = 4, .load = 1.6, .horizon = 40,
                            .seed = 9, .two_choice = true});
  Probe probe;
  Simulator sim(workload, probe);
  sim.run();
}

TEST(Registry, CreatesEveryStrategy) {
  for (const auto& name : all_strategy_names()) {
    const auto strategy = make_strategy(name);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
  }
  EXPECT_THROW(make_strategy("nope"), ContractViolation);
}

}  // namespace
}  // namespace reqsched
